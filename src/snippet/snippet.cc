#include "snippet/snippet.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

namespace qec::snippet {

SnippetGenerator::SnippetGenerator(SnippetOptions options)
    : options_(options) {}

Snippet SnippetGenerator::Generate(const doc::Document& document,
                                   const std::vector<TermId>& query_terms,
                                   const text::Vocabulary& vocabulary) const {
  if (document.kind() == doc::DocumentKind::kStructured) {
    return GenerateStructured(document, query_terms, vocabulary);
  }
  return GenerateText(document, query_terms, vocabulary);
}

Snippet SnippetGenerator::GenerateText(
    const doc::Document& document, const std::vector<TermId>& query_terms,
    const text::Vocabulary& vocabulary) const {
  const auto& terms = document.terms();
  std::unordered_set<TermId> query_set(query_terms.begin(),
                                       query_terms.end());
  const size_t window =
      std::min(std::max<size_t>(options_.window_size, 1), std::max<size_t>(
          terms.size(), 1));

  // Slide the window; count distinct query terms inside it.
  size_t best_start = 0;
  size_t best_covered = 0;
  if (!terms.empty()) {
    std::unordered_map<TermId, int> in_window;
    size_t covered = 0;
    auto add = [&](TermId t) {
      if (query_set.count(t) != 0 && in_window[t]++ == 0) ++covered;
    };
    auto remove = [&](TermId t) {
      if (query_set.count(t) != 0 && --in_window[t] == 0) --covered;
    };
    for (size_t i = 0; i < terms.size(); ++i) {
      add(terms[i]);
      if (i + 1 >= window) {
        if (covered > best_covered) {
          best_covered = covered;
          best_start = i + 1 - window;
        }
        remove(terms[i + 1 - window]);
      }
    }
    if (terms.size() < window && covered > best_covered) {
      best_covered = covered;
      best_start = 0;
    }
  }

  Snippet out;
  out.start_position = best_start;
  out.query_terms_covered = best_covered;
  const size_t end = std::min(best_start + window, terms.size());
  for (size_t i = best_start; i < end; ++i) {
    if (i > best_start) out.text += ' ';
    const std::string_view word = vocabulary.TermString(terms[i]);
    if (options_.highlight && query_set.count(terms[i]) != 0) {
      out.text += '[';
      out.text += word;
      out.text += ']';
    } else {
      out.text += word;
    }
  }
  if (best_start > 0) out.text = "... " + out.text;
  if (end < terms.size()) out.text += " ...";
  return out;
}

Snippet SnippetGenerator::GenerateStructured(
    const doc::Document& document, const std::vector<TermId>& query_terms,
    const text::Vocabulary& vocabulary) const {
  std::unordered_set<std::string> query_words;
  for (TermId t : query_terms) query_words.emplace(vocabulary.TermString(t));

  // A feature "matches" when any of its parts, lowercased, is a query word
  // or its canonical token is one.
  auto matches = [&](const doc::Feature& f) {
    if (query_words.count(doc::FeatureToken(f)) != 0) return true;
    for (const std::string* part : {&f.entity, &f.attribute, &f.value}) {
      std::string lowered;
      for (char c : *part) {
        lowered += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
      }
      // Whole-part match or word-level containment.
      if (query_words.count(lowered) != 0) return true;
      size_t pos = 0;
      while (pos <= lowered.size()) {
        size_t space = lowered.find(' ', pos);
        std::string word = lowered.substr(
            pos, space == std::string::npos ? std::string::npos : space - pos);
        if (!word.empty() && query_words.count(word) != 0) return true;
        if (space == std::string::npos) break;
        pos = space + 1;
      }
    }
    return false;
  };

  std::vector<const doc::Feature*> chosen;
  for (const auto& f : document.features()) {
    if (chosen.size() >= options_.max_features) break;
    if (matches(f)) chosen.push_back(&f);
  }
  size_t matched = chosen.size();
  for (const auto& f : document.features()) {
    if (chosen.size() >= options_.max_features) break;
    if (std::find(chosen.begin(), chosen.end(), &f) == chosen.end()) {
      chosen.push_back(&f);
    }
  }

  Snippet out;
  out.query_terms_covered = matched;
  for (size_t i = 0; i < chosen.size(); ++i) {
    if (i > 0) out.text += "; ";
    const doc::Feature& f = *chosen[i];
    std::string rendered = f.entity + ": " + f.attribute + ": " + f.value;
    if (options_.highlight && i < matched) {
      out.text += '[';
      out.text += rendered;
      out.text += ']';
    } else {
      out.text += rendered;
    }
  }
  return out;
}

}  // namespace qec::snippet
