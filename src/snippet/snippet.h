#ifndef QEC_SNIPPET_SNIPPET_H_
#define QEC_SNIPPET_SNIPPET_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "doc/document.h"
#include "text/vocabulary.h"

namespace qec::snippet {

/// Snippet generation knobs.
struct SnippetOptions {
  /// Window width in term positions for text documents.
  size_t window_size = 12;
  /// Wrap matched query terms in brackets ("[java]").
  bool highlight = true;
  /// Maximum features rendered for structured documents.
  size_t max_features = 4;
};

/// A generated snippet with its coverage diagnostics.
struct Snippet {
  std::string text;
  /// Number of distinct query terms the snippet contains.
  size_t query_terms_covered = 0;
  /// Window start position (text documents; 0 for structured).
  size_t start_position = 0;
};

/// Query-biased snippet generation in the spirit of the paper's feature
/// model source [13] (Huang, Liu, Chen — SIGMOD'08): for text documents,
/// the term window covering the most distinct query terms (earliest on
/// ties); for structured documents, the features whose tokens match the
/// query first, then leading features up to the cap.
class SnippetGenerator {
 public:
  explicit SnippetGenerator(SnippetOptions options = {});

  Snippet Generate(const doc::Document& document,
                   const std::vector<TermId>& query_terms,
                   const text::Vocabulary& vocabulary) const;

  const SnippetOptions& options() const { return options_; }

 private:
  Snippet GenerateText(const doc::Document& document,
                       const std::vector<TermId>& query_terms,
                       const text::Vocabulary& vocabulary) const;
  Snippet GenerateStructured(const doc::Document& document,
                             const std::vector<TermId>& query_terms,
                             const text::Vocabulary& vocabulary) const;

  SnippetOptions options_;
};

}  // namespace qec::snippet

#endif  // QEC_SNIPPET_SNIPPET_H_
