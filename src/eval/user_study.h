#ifndef QEC_EVAL_USER_STUDY_H_
#define QEC_EVAL_USER_STUDY_H_

#include <cstdint>
#include <vector>

#include "baselines/suggestion.h"
#include "cluster/kmeans.h"
#include "core/result_universe.h"

namespace qec::eval {

/// Synthetic-rater panel configuration. The paper ran 45 Mechanical Turk
/// raters (Sec. 5.2.1); we simulate a panel whose judgment model encodes
/// exactly what the paper's Part 3 found users care about — queries should
/// be result-oriented, and query *sets* comprehensive and diverse — plus
/// per-rater noise.
struct UserStudyOptions {
  size_t num_raters = 45;
  /// Stddev of each rater's Gaussian perception noise (on the 0-1 scale).
  double noise_stddev = 0.08;
  uint64_t seed = 13;
};

/// Objective individual quality of one expanded query in [0, 1]: a blend of
/// whether it retrieves anything, how well its result set matches its best
/// cluster (F-measure), and whether its keywords exist in the corpus at all
/// (the paper: "users prefer the expanded queries to be results oriented").
/// Suggestions carrying query-log popularity are credited
/// max(corpus quality, 0.8 * popularity): raters recognise popular queries
/// as helpful even without local corpus evidence.
double ObjectiveIndividualQuality(const core::ResultUniverse& universe,
                                  const cluster::Clustering& clustering,
                                  const baselines::SuggestedQuery& query);

/// Comprehensiveness of a query set in [0, 1]: weighted fraction of the
/// original results retrieved by at least one expanded query.
double Comprehensiveness(const core::ResultUniverse& universe,
                         const std::vector<baselines::SuggestedQuery>& set);

/// Diversity of a query set in [0, 1]: one minus the average pairwise
/// overlap of the expanded queries' result sets.
double Diversity(const core::ResultUniverse& universe,
                 const std::vector<baselines::SuggestedQuery>& set);

/// Simulated user-study outcomes (Figs. 1-4).
class UserStudySimulator {
 public:
  /// Score distribution of one rated item.
  struct Assessment {
    /// Mean 1-5 score across raters.
    double mean_score = 0.0;
    /// Fraction of raters choosing each justification option.
    double frac_a = 0.0;
    double frac_b = 0.0;
    double frac_c = 0.0;
  };

  explicit UserStudySimulator(UserStudyOptions options = {});

  /// Part 1 (Figs. 1-2): raters score one expanded query 1-5 and justify
  /// with (A) highly related & helpful / (B) related but better exist /
  /// (C) not related.
  Assessment AssessIndividual(const core::ResultUniverse& universe,
                              const cluster::Clustering& clustering,
                              const baselines::SuggestedQuery& query) const;

  /// Part 2 (Figs. 3-4): raters score the whole query set 1-5 and justify
  /// with (A) not comprehensive & not diverse / (B) either missing /
  /// (C) comprehensive & diverse.
  Assessment AssessCollective(
      const core::ResultUniverse& universe,
      const std::vector<baselines::SuggestedQuery>& set) const;

  const UserStudyOptions& options() const { return options_; }

 private:
  UserStudyOptions options_;
};

}  // namespace qec::eval

#endif  // QEC_EVAL_USER_STUDY_H_
