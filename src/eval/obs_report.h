#ifndef QEC_EVAL_OBS_REPORT_H_
#define QEC_EVAL_OBS_REPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace qec::eval {

/// Renders a metrics snapshot as aligned text tables (TablePrinter style):
/// one table for counters + gauges, one for span/latency histograms with
/// p50/p95/p99, one for span aggregates.
std::string RenderMetricsReport(const obs::MetricsSnapshot& snapshot);

/// Observability flags shared by qec_cli, the examples, and the bench
/// binaries, so every entry point can emit a machine-readable snapshot:
///   --metrics-out=FILE   write a metrics JSON snapshot on exit
///   --trace              record span events; print a flat profile on exit
///   --trace-out=FILE     also write the chrome://tracing JSON
///   --log-level=LEVEL    SetMinLogLevel (debug|info|warning|error|fatal)
struct ObsFlags {
  std::string metrics_out;
  std::string trace_out;
  bool trace = false;
};

/// Strips the recognized flags from `args` (unrecognized entries are kept
/// in order) and applies the immediate ones: --log-level takes effect here,
/// and --trace/--trace-out turn span event recording on.
ObsFlags ConsumeObsFlags(std::vector<std::string>& args);

/// argc/argv variant for plain main()s; rewrites argv in place.
ObsFlags ParseObsFlags(int& argc, char** argv);

/// Emits everything `flags` asked for: the metrics JSON file, the trace
/// JSON file, and (under --trace) the flat span profile on stdout. Returns
/// false if a file could not be written.
bool EmitObsOutputs(const ObsFlags& flags);

}  // namespace qec::eval

#endif  // QEC_EVAL_OBS_REPORT_H_
