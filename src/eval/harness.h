#ifndef QEC_EVAL_HARNESS_H_
#define QEC_EVAL_HARNESS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/query_log.h"
#include "baselines/suggestion.h"
#include "cluster/kmeans.h"
#include "common/status.h"
#include "core/query_expander.h"
#include "core/result_universe.h"
#include "datagen/shopping.h"
#include "datagen/wikipedia.h"
#include "datagen/workload.h"
#include "doc/corpus.h"
#include "index/inverted_index.h"

namespace qec::eval {

/// A dataset with its index and Table 1 query workload. Corpus and index
/// are heap-held so the bundle can move (e.g. through a Result<>) without
/// invalidating the index's corpus pointer.
struct DatasetBundle {
  std::string name;
  std::unique_ptr<doc::Corpus> corpus;
  std::unique_ptr<index::InvertedIndex> index;
  std::vector<datagen::WorkloadQuery> queries;
};

/// Generates + indexes the shopping dataset with its QS1-QS10 workload.
DatasetBundle MakeShoppingBundle(datagen::ShoppingOptions options = {});

/// Generates + indexes the Wikipedia dataset with its QW1-QW10 workload.
DatasetBundle MakeWikipediaBundle(datagen::WikipediaOptions options = {});

/// Loads a prebuilt snapshot (storage/snapshot.h) as a bundle — no XML
/// parsing, no index rebuild. `workload` picks the Table 1 queries:
/// "shopping", "wikipedia", or "" for none.
Result<DatasetBundle> MakeSnapshotBundle(const std::string& path,
                                         std::string_view workload = "");

/// The five compared expansion methods of Sec. 5 plus the F-measure
/// variant.
enum class Method { kIskr, kPebc, kFMeasure, kCs, kGoogle, kDataClouds };

std::string_view MethodName(Method method);

/// Methods in the order the paper's figures list them.
std::vector<Method> UserStudyMethods();   // ISKR PEBC CS Google DataClouds
std::vector<Method> ScoreMethods();       // ISKR PEBC F-measure CS (Fig. 5)
std::vector<Method> TimingMethods();      // all five + F-measure (Fig. 6)

/// Per-query shared evaluation state: one retrieval + one clustering reused
/// by every method so the comparison is apples-to-apples.
struct QueryCase {
  std::vector<TermId> user_terms;
  std::unique_ptr<core::ResultUniverse> universe;
  cluster::Clustering clustering;
  double clustering_seconds = 0.0;
};

/// Retrieves the top-K results of `query_text`, builds the universe, and
/// clusters it. Fails if the query retrieves nothing. `auto_k` selects the
/// cluster count by silhouette within [1, max_clusters] (O(n^2) — disable
/// for large scalability runs, where the paper uses plain k-means).
Result<QueryCase> PrepareQueryCase(const DatasetBundle& bundle,
                                   std::string_view query_text,
                                   size_t top_k = 30, size_t max_clusters = 5,
                                   uint64_t seed = 42, bool auto_k = true);

/// One method's output on one query.
struct MethodRun {
  std::vector<baselines::SuggestedQuery> suggestions;
  /// Query-expansion time only (clustering time is in QueryCase).
  double seconds = 0.0;
  /// Eq. 1 score; negative when inapplicable (Data Clouds and the query-log
  /// method are not cluster-based — Sec. 5.2.2).
  double set_score = -1.0;
};

/// Runs `method` on a prepared query case. `query_log` is required for
/// Method::kGoogle; `raw_query_text` is the original query string (the
/// query-log method matches on text, not TermIds).
MethodRun RunMethod(const DatasetBundle& bundle, const QueryCase& query_case,
                    Method method,
                    const baselines::QueryLogSuggester* query_log,
                    std::string_view raw_query_text);

/// Creates (if needed) and returns the directory bench binaries drop their
/// CSV outputs into ("qec_results", relative to the working directory).
std::string ResultsDir();

}  // namespace qec::eval

#endif  // QEC_EVAL_HARNESS_H_
