#include "eval/user_study.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "core/metrics.h"

namespace qec::eval {

namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Raters perceive the objective quality with Gaussian noise, then map it
/// to a 1-5 score and a justification option via thresholds.
UserStudySimulator::Assessment RatePanel(double objective_quality,
                                         double option_hi, double option_lo,
                                         const UserStudyOptions& options,
                                         uint64_t item_seed) {
  Rng rng(options.seed ^ item_seed * 0x9e3779b97f4a7c15ULL);
  UserStudySimulator::Assessment a;
  double score_sum = 0.0;
  size_t hi = 0, mid = 0, lo = 0;
  for (size_t r = 0; r < options.num_raters; ++r) {
    double perceived =
        Clamp01(objective_quality + rng.Gaussian(0.0, options.noise_stddev));
    score_sum += 1.0 + 4.0 * perceived;
    if (perceived >= option_hi) {
      ++hi;
    } else if (perceived >= option_lo) {
      ++mid;
    } else {
      ++lo;
    }
  }
  const double n = static_cast<double>(options.num_raters);
  a.mean_score = score_sum / n;
  // Individual study: option (A) is the favourable one; collective study
  // labels (C) favourable. Callers map hi/mid/lo onto A/B/C as appropriate.
  a.frac_a = static_cast<double>(hi) / n;
  a.frac_b = static_cast<double>(mid) / n;
  a.frac_c = static_cast<double>(lo) / n;
  return a;
}

DynamicBitset RetrieveSuggestion(const core::ResultUniverse& universe,
                                 const baselines::SuggestedQuery& query) {
  // A suggestion with off-corpus keywords retrieves nothing: a document
  // cannot contain a word absent from the corpus vocabulary.
  if (query.terms.size() < query.keywords.size()) {
    return universe.EmptySet();
  }
  return universe.Retrieve(query.terms);
}

}  // namespace

double ObjectiveIndividualQuality(const core::ResultUniverse& universe,
                                  const cluster::Clustering& clustering,
                                  const baselines::SuggestedQuery& query) {
  const double on_corpus =
      query.keywords.empty()
          ? 0.0
          : static_cast<double>(query.terms.size()) /
                static_cast<double>(query.keywords.size());
  DynamicBitset retrieved = RetrieveSuggestion(universe, query);
  const bool has_results = retrieved.Any();

  // Best F-measure over the clusters: how well the query captures *some*
  // coherent interpretation of the original query.
  double best_f = 0.0;
  const auto members = clustering.Members();
  for (const auto& cluster_members : members) {
    DynamicBitset bits = universe.EmptySet();
    for (size_t i : cluster_members) bits.Set(i);
    best_f = std::max(
        best_f, core::EvaluateQuery(universe, retrieved, bits).f_measure);
  }
  const double corpus_quality = Clamp01(
      0.10 * (has_results ? 1.0 : 0.0) + 0.75 * best_f + 0.15 * on_corpus);
  // Popularity rescues suggestions with little corpus evidence: raters
  // recognise a popular query as helpful even when it retrieves nothing in
  // this collection (capped below a perfectly results-oriented query).
  return std::max(corpus_quality, 0.8 * Clamp01(query.popularity));
}

double Comprehensiveness(const core::ResultUniverse& universe,
                         const std::vector<baselines::SuggestedQuery>& set) {
  if (set.empty()) return 0.0;
  DynamicBitset covered = universe.EmptySet();
  for (const auto& q : set) covered |= RetrieveSuggestion(universe, q);
  const double total = universe.total_weight();
  return total > 0.0 ? universe.TotalWeight(covered) / total : 0.0;
}

double Diversity(const core::ResultUniverse& universe,
                 const std::vector<baselines::SuggestedQuery>& set) {
  if (set.size() < 2) return set.empty() ? 0.0 : 1.0;
  std::vector<DynamicBitset> retrieved;
  retrieved.reserve(set.size());
  for (const auto& q : set) retrieved.push_back(RetrieveSuggestion(universe, q));
  double overlap_sum = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < retrieved.size(); ++i) {
    for (size_t j = i + 1; j < retrieved.size(); ++j) {
      DynamicBitset both = retrieved[i];
      both &= retrieved[j];
      const double wi = universe.TotalWeight(retrieved[i]);
      const double wj = universe.TotalWeight(retrieved[j]);
      const double denom = std::min(wi, wj);
      // Two empty result sets are maximally non-diverse: the queries are
      // dead weight.
      overlap_sum += denom > 0.0 ? universe.TotalWeight(both) / denom : 1.0;
      ++pairs;
    }
  }
  return Clamp01(1.0 - overlap_sum / static_cast<double>(pairs));
}

UserStudySimulator::UserStudySimulator(UserStudyOptions options)
    : options_(options) {}

UserStudySimulator::Assessment UserStudySimulator::AssessIndividual(
    const core::ResultUniverse& universe, const cluster::Clustering& clustering,
    const baselines::SuggestedQuery& query) const {
  double quality = ObjectiveIndividualQuality(universe, clustering, query);
  uint64_t item_seed = 1;
  for (const auto& k : query.keywords) {
    for (char c : k) item_seed = item_seed * 131 + static_cast<uint64_t>(c);
  }
  // (A) highly related >= 0.6; (B) related but better exist; (C) < 0.3.
  return RatePanel(quality, 0.6, 0.3, options_, item_seed);
}

UserStudySimulator::Assessment UserStudySimulator::AssessCollective(
    const core::ResultUniverse& universe,
    const std::vector<baselines::SuggestedQuery>& set) const {
  const double comprehensiveness = Comprehensiveness(universe, set);
  const double diversity = Diversity(universe, set);
  const double quality = Clamp01(0.5 * comprehensiveness + 0.5 * diversity);
  uint64_t item_seed = 2;
  for (const auto& q : set) {
    for (const auto& k : q.keywords) {
      for (char c : k) item_seed = item_seed * 131 + static_cast<uint64_t>(c);
    }
  }
  Assessment a = RatePanel(quality, 0.6, 0.3, options_, item_seed);
  // Collective study: (C) comprehensive & diverse is the favourable bucket,
  // (A) the unfavourable one — swap to match Fig. 4's labels.
  std::swap(a.frac_a, a.frac_c);
  return a;
}

}  // namespace qec::eval
