#include "eval/bootstrap.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace qec::eval {

BootstrapInterval PairedBootstrap(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  double confidence, size_t resamples,
                                  uint64_t seed) {
  QEC_CHECK_EQ(a.size(), b.size());
  QEC_CHECK_GE(a.size(), 2u);
  const size_t n = a.size();

  std::vector<double> diffs(n);
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    diffs[i] = a[i] - b[i];
    mean += diffs[i];
  }
  mean /= static_cast<double>(n);

  Rng rng(seed);
  std::vector<double> means;
  means.reserve(resamples);
  for (size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += diffs[rng.UniformInt(n)];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());

  const double alpha = (1.0 - confidence) / 2.0;
  auto percentile = [&](double p) {
    double idx = p * static_cast<double>(means.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, means.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return means[lo] * (1.0 - frac) + means[hi] * frac;
  };

  BootstrapInterval out;
  out.mean_difference = mean;
  out.low = percentile(alpha);
  out.high = percentile(1.0 - alpha);
  out.significant = out.low > 0.0 || out.high < 0.0;
  return out;
}

}  // namespace qec::eval
