#include "eval/obs_report.h"

#include <cstdio>
#include <string_view>

#include "common/logging.h"
#include "common/string_util.h"
#include "eval/table_printer.h"
#include "obs/trace.h"

namespace qec::eval {

namespace {

std::string FormatMs(double ns) { return FormatDouble(ns / 1e6, 3); }

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    QEC_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok) QEC_LOG(Error) << "short write to " << path;
  return ok;
}

/// Matches "--flag=value" and returns the value part.
bool FlagValue(std::string_view arg, std::string_view flag,
               std::string* value) {
  if (arg.size() <= flag.size() + 1 || arg.substr(0, flag.size()) != flag ||
      arg[flag.size()] != '=') {
    return false;
  }
  *value = std::string(arg.substr(flag.size() + 1));
  return true;
}

}  // namespace

std::string RenderMetricsReport(const obs::MetricsSnapshot& snapshot) {
  std::string out;

  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    TablePrinter table({"metric", "value"});
    for (const auto& [name, value] : snapshot.counters) {
      table.AddRow({name, std::to_string(value)});
    }
    for (const auto& [name, value] : snapshot.gauges) {
      table.AddRow({name, FormatDouble(value, 3)});
    }
    out += table.ToString();
  }

  if (!snapshot.histograms.empty()) {
    out += "\n";
    TablePrinter table({"histogram", "count", "p50_ms", "p95_ms", "p99_ms",
                        "max_ms"});
    for (const auto& h : snapshot.histograms) {
      if (h.count == 0) continue;
      table.AddRow({h.name, std::to_string(h.count), FormatMs(h.p50),
                    FormatMs(h.p95), FormatMs(h.p99),
                    FormatMs(static_cast<double>(h.max))});
    }
    out += table.ToString();
  }

  if (!snapshot.spans.empty()) {
    out += "\n";
    TablePrinter table({"span", "count", "total_ms", "self_ms", "avg_ms"});
    for (const auto& s : snapshot.spans) {
      table.AddRow({s.name, std::to_string(s.count),
                    FormatMs(static_cast<double>(s.total_ns)),
                    FormatMs(static_cast<double>(s.self_ns)),
                    FormatMs(s.count > 0 ? static_cast<double>(s.total_ns) /
                                               static_cast<double>(s.count)
                                         : 0.0)});
    }
    out += table.ToString();
  }

  return out;
}

ObsFlags ConsumeObsFlags(std::vector<std::string>& args) {
  ObsFlags flags;
  std::vector<std::string> kept;
  kept.reserve(args.size());
  for (const std::string& arg : args) {
    std::string value;
    if (FlagValue(arg, "--metrics-out", &value)) {
      flags.metrics_out = value;
    } else if (FlagValue(arg, "--trace-out", &value)) {
      flags.trace_out = value;
    } else if (arg == "--trace") {
      flags.trace = true;
    } else if (FlagValue(arg, "--log-level", &value)) {
      LogLevel level;
      if (ParseLogLevel(value, &level)) {
        SetMinLogLevel(level);
      } else {
        QEC_LOG(Warning) << "unknown --log-level '" << value << "' ignored";
      }
    } else {
      kept.push_back(arg);
    }
  }
  args = std::move(kept);
  if (flags.trace || !flags.trace_out.empty()) {
    obs::SetTraceEventRecording(true);
  }
  return flags;
}

ObsFlags ParseObsFlags(int& argc, char** argv) {
  ObsFlags flags;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::vector<std::string> one = {argv[i]};
    ObsFlags f = ConsumeObsFlags(one);
    if (!f.metrics_out.empty()) flags.metrics_out = f.metrics_out;
    if (!f.trace_out.empty()) flags.trace_out = f.trace_out;
    flags.trace = flags.trace || f.trace;
    // Unconsumed arguments compact leftward; consumed ones drop out.
    if (!one.empty()) argv[out++] = argv[i];
  }
  argc = out;
  return flags;
}

bool EmitObsOutputs(const ObsFlags& flags) {
  bool ok = true;
  if (!flags.metrics_out.empty()) {
    const obs::MetricsSnapshot snapshot = obs::CaptureMetrics();
    ok = WriteFile(flags.metrics_out, snapshot.ToJson()) && ok;
    std::printf("metrics snapshot written to %s\n", flags.metrics_out.c_str());
  }
  if (!flags.trace_out.empty()) {
    ok = WriteFile(flags.trace_out, obs::TraceEventsJson()) && ok;
    std::printf("trace events written to %s\n", flags.trace_out.c_str());
  }
  if (flags.trace) {
    std::printf("\n--- span profile ---\n%s", obs::SpanFlatProfile().c_str());
  }
  return ok;
}

}  // namespace qec::eval
