#ifndef QEC_EVAL_TABLE_PRINTER_H_
#define QEC_EVAL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace qec::eval {

/// Fixed-width ASCII table used by the bench binaries to print the paper's
/// figures/tables as aligned rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// The rendered table, headers underlined, columns padded.
  std::string ToString() const;

  /// RFC-4180-style CSV (quotes cells containing commas/quotes/newlines).
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`, creating parent directory "results" style
  /// paths is the caller's job. Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qec::eval

#endif  // QEC_EVAL_TABLE_PRINTER_H_
