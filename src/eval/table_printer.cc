#include "eval/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace qec::eval {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  QEC_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

namespace {
std::string CsvCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TablePrinter::ToCsv() const {
  std::string out;
  auto render = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvCell(row[c]);
    }
    out += '\n';
  };
  render(headers_);
  for (const auto& row : rows_) render(row);
  return out;
}

bool TablePrinter::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::string csv = ToCsv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  std::fclose(f);
  return ok;
}

}  // namespace qec::eval
