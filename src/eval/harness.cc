#include "eval/harness.h"

#include <utility>

#include "baselines/cluster_summarization.h"
#include "baselines/data_clouds.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/metrics.h"
#include "obs/trace.h"
#include "storage/snapshot.h"

#include <sys/stat.h>

namespace qec::eval {

DatasetBundle MakeShoppingBundle(datagen::ShoppingOptions options) {
  DatasetBundle bundle;
  bundle.name = "shopping";
  bundle.corpus = std::make_unique<doc::Corpus>(
      datagen::ShoppingGenerator(options).Generate());
  bundle.index = std::make_unique<index::InvertedIndex>(*bundle.corpus);
  bundle.queries = datagen::ShoppingQueries();
  return bundle;
}

DatasetBundle MakeWikipediaBundle(datagen::WikipediaOptions options) {
  DatasetBundle bundle;
  bundle.name = "wikipedia";
  bundle.corpus = std::make_unique<doc::Corpus>(
      datagen::WikipediaGenerator(options).Generate());
  bundle.index = std::make_unique<index::InvertedIndex>(*bundle.corpus);
  bundle.queries = datagen::WikipediaQueries();
  return bundle;
}

Result<DatasetBundle> MakeSnapshotBundle(const std::string& path,
                                         std::string_view workload) {
  auto blob = storage::ReadSnapshotBlob(path);
  if (!blob.ok()) return blob.status();
  auto reader = storage::SnapshotReader::Open(*blob);
  if (!reader.ok()) return reader.status();
  auto corpus = reader->LoadCorpus();
  if (!corpus.ok()) return corpus.status();

  DatasetBundle bundle;
  bundle.name = "snapshot:" + path;
  bundle.corpus = std::make_unique<doc::Corpus>(std::move(*corpus));
  auto loaded_index = reader->LoadIndex(*bundle.corpus);
  if (!loaded_index.ok()) return loaded_index.status();
  bundle.index =
      std::make_unique<index::InvertedIndex>(std::move(*loaded_index));
  if (workload == "shopping") {
    bundle.queries = datagen::ShoppingQueries();
  } else if (workload == "wikipedia") {
    bundle.queries = datagen::WikipediaQueries();
  } else if (!workload.empty()) {
    return Status::InvalidArgument("unknown workload '" +
                                   std::string(workload) + "'");
  }
  return bundle;
}

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kIskr:
      return "ISKR";
    case Method::kPebc:
      return "PEBC";
    case Method::kFMeasure:
      return "F-measure";
    case Method::kCs:
      return "CS";
    case Method::kGoogle:
      return "Google";
    case Method::kDataClouds:
      return "DataClouds";
  }
  return "?";
}

std::vector<Method> UserStudyMethods() {
  return {Method::kIskr, Method::kPebc, Method::kCs, Method::kGoogle,
          Method::kDataClouds};
}

std::vector<Method> ScoreMethods() {
  return {Method::kIskr, Method::kPebc, Method::kFMeasure, Method::kCs};
}

std::vector<Method> TimingMethods() {
  return {Method::kIskr, Method::kPebc, Method::kDataClouds,
          Method::kFMeasure, Method::kCs};
}

Result<QueryCase> PrepareQueryCase(const DatasetBundle& bundle,
                                   std::string_view query_text, size_t top_k,
                                   size_t max_clusters, uint64_t seed,
                                   bool auto_k) {
  QEC_TRACE_SPAN("eval/prepare_query_case");
  QueryCase qc;
  qc.user_terms = bundle.corpus->analyzer().AnalyzeReadOnly(query_text);
  if (qc.user_terms.empty()) {
    return Status::InvalidArgument("query '" + std::string(query_text) +
                                   "' has no known terms");
  }
  std::vector<index::RankedResult> results =
      bundle.index->Search(qc.user_terms, top_k);
  if (results.empty()) {
    return Status::NotFound("query '" + std::string(query_text) +
                            "' retrieved no results");
  }
  qc.universe =
      std::make_unique<core::ResultUniverse>(*bundle.corpus, results);

  Stopwatch watch;
  std::vector<cluster::SparseVector> vectors;
  vectors.reserve(qc.universe->size());
  for (size_t i = 0; i < qc.universe->size(); ++i) {
    vectors.push_back(cluster::SparseVector::FromDocument(
        bundle.corpus->Get(qc.universe->doc_at(i))));
  }
  cluster::KMeansOptions kopts;
  kopts.k = max_clusters;
  kopts.seed = seed;
  kopts.auto_k = auto_k;  // max_clusters is an upper bound (Sec. 1)
  qc.clustering = cluster::KMeans(kopts).Cluster(vectors);
  qc.clustering_seconds = watch.ElapsedSeconds();
  return qc;
}

namespace {

MethodRun RunClusterAlgorithm(const DatasetBundle& bundle,
                              const QueryCase& qc,
                              core::ExpansionAlgorithm algorithm) {
  core::QueryExpanderOptions options;
  options.algorithm = algorithm;
  core::QueryExpander expander(*bundle.index, options);
  core::ExpansionOutcome outcome = expander.ExpandClustered(
      qc.user_terms, *qc.universe, qc.clustering);
  MethodRun run;
  run.seconds = outcome.expansion_seconds;
  run.set_score = outcome.set_score;
  for (auto& eq : outcome.queries) {
    baselines::SuggestedQuery s;
    s.keywords = std::move(eq.keywords);
    s.terms = std::move(eq.terms);
    run.suggestions.push_back(std::move(s));
  }
  return run;
}

}  // namespace

MethodRun RunMethod(const DatasetBundle& bundle, const QueryCase& qc,
                    Method method,
                    const baselines::QueryLogSuggester* query_log,
                    std::string_view raw_query_text) {
  QEC_TRACE_SPAN("eval/run_method");
  switch (method) {
    case Method::kIskr:
      return RunClusterAlgorithm(bundle, qc, core::ExpansionAlgorithm::kIskr);
    case Method::kPebc:
      return RunClusterAlgorithm(bundle, qc, core::ExpansionAlgorithm::kPebc);
    case Method::kFMeasure:
      return RunClusterAlgorithm(bundle, qc,
                                 core::ExpansionAlgorithm::kFMeasure);
    case Method::kCs: {
      baselines::ClusterSummarization cs;
      Stopwatch watch;
      MethodRun run;
      run.suggestions = cs.Suggest(*qc.universe, *bundle.index, qc.user_terms,
                                   qc.clustering);
      run.seconds = watch.ElapsedSeconds();
      run.set_score = core::SetScore(
          cs.Evaluate(*qc.universe, run.suggestions, qc.clustering));
      return run;
    }
    case Method::kDataClouds: {
      baselines::DataCloudsOptions options;
      options.num_queries = qc.clustering.num_clusters;
      baselines::DataClouds clouds(options);
      Stopwatch watch;
      MethodRun run;
      run.suggestions =
          clouds.Suggest(*qc.universe, *bundle.index, qc.user_terms);
      run.seconds = watch.ElapsedSeconds();
      return run;
    }
    case Method::kGoogle: {
      QEC_CHECK(query_log != nullptr)
          << "the query-log method needs a query log";
      Stopwatch watch;
      MethodRun run;
      run.suggestions =
          query_log->Suggest(raw_query_text, bundle.corpus->analyzer(),
                             qc.clustering.num_clusters);
      run.seconds = watch.ElapsedSeconds();
      return run;
    }
  }
  QEC_LOG(Fatal) << "unknown method";
  return {};
}

std::string ResultsDir() {
  const std::string dir = "qec_results";
  ::mkdir(dir.c_str(), 0755);  // EEXIST is fine
  return dir;
}

}  // namespace qec::eval
