#ifndef QEC_EVAL_BOOTSTRAP_H_
#define QEC_EVAL_BOOTSTRAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qec::eval {

/// A bootstrap confidence interval for a mean difference.
struct BootstrapInterval {
  double mean_difference = 0.0;
  double low = 0.0;   // lower CI bound
  double high = 0.0;  // upper CI bound
  /// True when the interval excludes zero — the paired difference is
  /// distinguishable from noise at the chosen confidence level.
  bool significant = false;
};

/// Paired bootstrap over per-query metric pairs (a[i] vs b[i], same query):
/// resamples query indices with replacement `resamples` times and reports
/// the percentile confidence interval of mean(a - b) at `confidence`
/// (e.g. 0.95). Deterministic for a fixed seed. Requires a.size() ==
/// b.size() and at least 2 pairs.
BootstrapInterval PairedBootstrap(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  double confidence = 0.95,
                                  size_t resamples = 2000,
                                  uint64_t seed = 1234);

}  // namespace qec::eval

#endif  // QEC_EVAL_BOOTSTRAP_H_
