#ifndef QEC_INDEX_INVERTED_INDEX_H_
#define QEC_INDEX_INVERTED_INDEX_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "doc/corpus.h"

namespace qec::index {

/// One posting: a document containing the term, with its term frequency.
struct Posting {
  DocId doc;
  int tf;
};

/// A retrieved document with its ranking score.
struct RankedResult {
  DocId doc;
  double score;

  friend bool operator==(const RankedResult& a, const RankedResult& b) {
    return a.doc == b.doc && a.score == b.score;
  }
};

/// Inverted index over a corpus, with boolean (AND/OR) evaluation and
/// TF-IDF ranked retrieval. The index holds a reference to the corpus,
/// which must outlive it; call Rebuild() after appending documents.
class InvertedIndex {
 public:
  /// Builds the index over all documents currently in `corpus`.
  explicit InvertedIndex(const doc::Corpus& corpus);

  /// Deserialization support (index_io.h): adopts prebuilt posting lists
  /// instead of scanning the corpus. `postings` must be indexed by TermId,
  /// each list sorted by DocId with ids < corpus.NumDocs() — index_io
  /// validates this before calling.
  static InvertedIndex FromPostings(const doc::Corpus& corpus,
                                    std::vector<std::vector<Posting>> postings);

  /// Rebuilds from scratch (e.g. after documents were appended).
  void Rebuild();

  /// Rebuild with `num_threads` workers: documents are scanned in disjoint
  /// shards whose partial posting lists are merged in DocId order, so the
  /// result is byte-identical to the serial Rebuild(). Worthwhile from a
  /// few thousand documents up.
  void RebuildParallel(size_t num_threads);

  const doc::Corpus& corpus() const { return *corpus_; }

  /// Installs the external-id mapping of a cluster-reordered corpus:
  /// `ids[internal]` is the doc id the document had before reordering
  /// (the QECSNAP `PERM` section). Ranked-search score ties then break on
  /// external ids, so result order — and everything downstream, expansion
  /// included — is byte-identical to an unpermuted index. Empty = identity.
  /// `ids` must be empty or a permutation of [0, NumDocs) (the snapshot
  /// reader validates before calling; direct callers get a size check).
  void SetExternalIds(std::vector<DocId> ids);

  /// The external (pre-reorder) id of internal doc `doc`.
  DocId ExternalId(DocId doc) const {
    return external_ids_.empty() ? doc : external_ids_[doc];
  }

  /// The installed mapping (empty = identity).
  const std::vector<DocId>& external_ids() const { return external_ids_; }

  /// Number of documents containing `term`.
  size_t DocumentFrequency(TermId term) const;

  /// Posting list of `term`, sorted by DocId (empty when unknown).
  const std::vector<Posting>& Postings(TermId term) const;

  /// Smoothed inverse document frequency: log(1 + N / df). Terms absent
  /// from the corpus get idf of log(1 + N).
  double Idf(TermId term) const;

  /// Documents containing ALL of `terms` (AND semantics, the paper's result
  /// definition), sorted by DocId. An empty conjunction returns every
  /// document (the algebraic identity; callers with user-facing empty
  /// queries should special-case them).
  std::vector<DocId> EvaluateAnd(const std::vector<TermId>& terms) const;

  /// Documents containing AT LEAST ONE of `terms` (OR semantics), sorted by
  /// DocId. Empty disjunction returns no documents.
  std::vector<DocId> EvaluateOr(const std::vector<TermId>& terms) const;

  /// TF-IDF score of `doc` for `terms`: sum over query terms of
  /// tf(t, doc) * idf(t).
  double TfIdfScore(const std::vector<TermId>& terms, DocId doc) const;

  /// Ranked retrieval under AND semantics: evaluates the conjunction, scores
  /// by TF-IDF, sorts descending by score (DocId ascending tiebreak), and
  /// truncates to `top_k` (0 = no limit).
  std::vector<RankedResult> Search(const std::vector<TermId>& terms,
                                   size_t top_k = 0) const;

  /// Analyzer-assisted search: analyzes `query` with the corpus analyzer
  /// (read-only) and runs Search. Unknown words yield no results (a document
  /// cannot contain a word absent from the corpus).
  std::vector<RankedResult> SearchText(std::string_view query,
                                       size_t top_k = 0) const;

  /// Vector-space retrieval (the paper's Sec. 7 future work asks for VSM
  /// support): documents containing at least one query term, ranked by
  /// cosine similarity between TF-IDF vectors of query and document.
  /// Scores are in (0, 1]; a document exactly matching the query's term
  /// distribution scores 1.
  std::vector<RankedResult> SearchVsm(const std::vector<TermId>& terms,
                                      size_t top_k = 0) const;

  /// Okapi BM25 parameters.
  struct Bm25Params {
    double k1 = 1.2;  // term-frequency saturation
    double b = 0.75;  // document-length normalization
  };

  /// BM25 ranked retrieval over documents containing at least one query
  /// term (the standard probabilistic ranking alternative to TF-IDF).
  std::vector<RankedResult> SearchBm25(const std::vector<TermId>& terms,
                                       size_t top_k, const Bm25Params& params)
      const;
  std::vector<RankedResult> SearchBm25(const std::vector<TermId>& terms,
                                       size_t top_k = 0) const {
    return SearchBm25(terms, top_k, Bm25Params{});
  }

 private:
  struct AdoptPostingsTag {};
  InvertedIndex(const doc::Corpus& corpus,
                std::vector<std::vector<Posting>> postings, AdoptPostingsTag);

  void ComputeDocNorms();

  const doc::Corpus* corpus_;
  std::vector<std::vector<Posting>> postings_;  // indexed by TermId
  std::vector<double> doc_norms_;  // ||tf-idf vector|| per document
  std::vector<DocId> external_ids_;  // empty = identity
  std::vector<Posting> empty_;
};

}  // namespace qec::index

#endif  // QEC_INDEX_INVERTED_INDEX_H_
