#ifndef QEC_INDEX_INDEX_IO_H_
#define QEC_INDEX_INDEX_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "index/inverted_index.h"

namespace qec::index {

/// Serializes the index's posting lists (delta + varbyte compressed per
/// term, see posting_codec.h). Pairs with corpus_io: persist the corpus
/// once and the index blob beside it to skip the rebuild scan on load.
std::string SerializeIndex(const InvertedIndex& index);

/// Reconstructs an index over `corpus` from a blob produced by
/// SerializeIndex. Validates the blob against the corpus: term count must
/// match the vocabulary and every doc id must exist. The returned index
/// behaves identically to `InvertedIndex(corpus)`.
Result<InvertedIndex> DeserializeIndex(const doc::Corpus& corpus,
                                       std::string_view data);

/// File helpers (Internal / NotFound / Corruption on failure).
Status SaveIndex(const InvertedIndex& index, const std::string& path);
Result<InvertedIndex> LoadIndex(const doc::Corpus& corpus,
                                const std::string& path);

}  // namespace qec::index

#endif  // QEC_INDEX_INDEX_IO_H_
