#ifndef QEC_INDEX_POSTING_CODEC_H_
#define QEC_INDEX_POSTING_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "index/inverted_index.h"

namespace qec::index {

/// Compresses a posting list (sorted by DocId) with delta + varbyte
/// coding: doc-id gaps and term frequencies each as LEB128-style variable
/// length integers. The standard storage layout for inverted files.
std::string EncodePostings(const std::vector<Posting>& postings);

/// Decodes a blob produced by EncodePostings. Returns Corruption on
/// truncated varbytes, non-monotonic doc ids, zero term frequencies,
/// posting counts the payload cannot possibly hold (each posting costs at
/// least 2 bytes), or trailing bytes after the last posting.
Result<std::vector<Posting>> DecodePostings(std::string_view data);

/// Appends `value` to `out` as a varbyte integer (7 bits per byte, high
/// bit = continuation). Exposed for the index serializer.
void AppendVarint(uint64_t value, std::string& out);

/// Reads a varbyte integer at `*pos`, advancing it. Returns Corruption on
/// truncation or overlong (> 10 byte) encodings.
Result<uint64_t> ReadVarint(std::string_view data, size_t* pos);

}  // namespace qec::index

#endif  // QEC_INDEX_POSTING_CODEC_H_
