#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qec::index {

InvertedIndex::InvertedIndex(const doc::Corpus& corpus) : corpus_(&corpus) {
  Rebuild();
}

InvertedIndex::InvertedIndex(const doc::Corpus& corpus,
                             std::vector<std::vector<Posting>> postings,
                             AdoptPostingsTag)
    : corpus_(&corpus), postings_(std::move(postings)) {
  ComputeDocNorms();
}

InvertedIndex InvertedIndex::FromPostings(
    const doc::Corpus& corpus, std::vector<std::vector<Posting>> postings) {
  return InvertedIndex(corpus, std::move(postings), AdoptPostingsTag{});
}

void InvertedIndex::Rebuild() {
  QEC_TRACE_SPAN("index/rebuild");
  postings_.assign(corpus_->analyzer().vocabulary().size(), {});
  for (DocId d = 0; d < corpus_->NumDocs(); ++d) {
    const doc::Document& doc = corpus_->Get(d);
    const auto& term_set = doc.term_set();
    for (TermId t : term_set) {
      postings_[t].push_back(Posting{d, doc.TermFrequency(t)});
    }
  }
  ComputeDocNorms();
}

void InvertedIndex::RebuildParallel(size_t num_threads) {
  const size_t n = corpus_->NumDocs();
  const size_t threads = std::max<size_t>(1, std::min(num_threads, n));
  if (threads <= 1) {
    Rebuild();
    return;
  }
  const size_t vocab_size = corpus_->analyzer().vocabulary().size();
  // Each worker scans a contiguous DocId shard into its own partial index;
  // shards are then concatenated per term. Shard s covers ids
  // [s * n / threads, (s+1) * n / threads), ascending — so per-term
  // concatenation in shard order preserves DocId order exactly.
  std::vector<std::vector<std::vector<Posting>>> partials(
      threads, std::vector<std::vector<Posting>>(vocab_size));
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t s = 0; s < threads; ++s) {
    pool.emplace_back([&, s] {
      const DocId begin = static_cast<DocId>(s * n / threads);
      const DocId end = static_cast<DocId>((s + 1) * n / threads);
      for (DocId d = begin; d < end; ++d) {
        const doc::Document& doc = corpus_->Get(d);
        for (TermId t : doc.term_set()) {
          partials[s][t].push_back(Posting{d, doc.TermFrequency(t)});
        }
      }
    });
  }
  for (auto& th : pool) th.join();

  postings_.assign(vocab_size, {});
  for (TermId t = 0; t < vocab_size; ++t) {
    size_t total = 0;
    for (size_t s = 0; s < threads; ++s) total += partials[s][t].size();
    postings_[t].reserve(total);
    for (size_t s = 0; s < threads; ++s) {
      postings_[t].insert(postings_[t].end(), partials[s][t].begin(),
                          partials[s][t].end());
    }
  }
  ComputeDocNorms();
}

void InvertedIndex::ComputeDocNorms() {
  // TF-IDF document norms for VSM scoring (needs df, so a second pass).
  doc_norms_.assign(corpus_->NumDocs(), 0.0);
  for (DocId d = 0; d < corpus_->NumDocs(); ++d) {
    const doc::Document& doc = corpus_->Get(d);
    double sq = 0.0;
    for (TermId t : doc.term_set()) {
      double w = static_cast<double>(doc.TermFrequency(t)) * Idf(t);
      sq += w * w;
    }
    doc_norms_[d] = std::sqrt(sq);
  }
}

void InvertedIndex::SetExternalIds(std::vector<DocId> ids) {
  if (!ids.empty()) QEC_CHECK_EQ(ids.size(), corpus_->NumDocs());
  external_ids_ = std::move(ids);
}

size_t InvertedIndex::DocumentFrequency(TermId term) const {
  return Postings(term).size();
}

const std::vector<Posting>& InvertedIndex::Postings(TermId term) const {
  if (term >= postings_.size()) return empty_;
  return postings_[term];
}

double InvertedIndex::Idf(TermId term) const {
  const double n = static_cast<double>(corpus_->NumDocs());
  const size_t df = DocumentFrequency(term);
  if (df == 0) return std::log(1.0 + n);
  return std::log(1.0 + n / static_cast<double>(df));
}

std::vector<DocId> InvertedIndex::EvaluateAnd(
    const std::vector<TermId>& terms) const {
  if (terms.empty()) {
    std::vector<DocId> all(corpus_->NumDocs());
    for (DocId d = 0; d < all.size(); ++d) all[d] = d;
    return all;
  }
  // Intersect starting from the rarest term for efficiency.
  std::vector<TermId> sorted = terms;
  std::sort(sorted.begin(), sorted.end(), [this](TermId a, TermId b) {
    return DocumentFrequency(a) < DocumentFrequency(b);
  });
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  size_t scanned = 0;
  std::vector<DocId> current;
  for (const Posting& p : Postings(sorted[0])) current.push_back(p.doc);
  scanned += current.size();
  for (size_t i = 1; i < sorted.size() && !current.empty(); ++i) {
    const auto& plist = Postings(sorted[i]);
    std::vector<DocId> next;
    next.reserve(std::min(current.size(), plist.size()));
    size_t a = 0, b = 0;
    while (a < current.size() && b < plist.size()) {
      ++scanned;
      if (current[a] < plist[b].doc) {
        ++a;
      } else if (plist[b].doc < current[a]) {
        ++b;
      } else {
        next.push_back(current[a]);
        ++a;
        ++b;
      }
    }
    current = std::move(next);
  }
  QEC_COUNTER_INC("index/and_queries");
  QEC_COUNTER_ADD("index/postings_scanned", scanned);
  return current;
}

std::vector<DocId> InvertedIndex::EvaluateOr(
    const std::vector<TermId>& terms) const {
  std::vector<DocId> out;
  for (TermId t : terms) {
    for (const Posting& p : Postings(t)) out.push_back(p.doc);
  }
  QEC_COUNTER_INC("index/or_queries");
  QEC_COUNTER_ADD("index/postings_scanned", out.size());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double InvertedIndex::TfIdfScore(const std::vector<TermId>& terms,
                                 DocId doc) const {
  const doc::Document& d = corpus_->Get(doc);
  double score = 0.0;
  for (TermId t : terms) {
    int tf = d.TermFrequency(t);
    if (tf > 0) score += static_cast<double>(tf) * Idf(t);
  }
  return score;
}

std::vector<RankedResult> InvertedIndex::Search(
    const std::vector<TermId>& terms, size_t top_k) const {
  QEC_TRACE_SPAN("index/search");
  QEC_COUNTER_INC("index/searches");
  std::vector<DocId> docs = EvaluateAnd(terms);
  std::vector<RankedResult> out;
  out.reserve(docs.size());
  for (DocId d : docs) out.push_back(RankedResult{d, TfIdfScore(terms, d)});
  // Score ties break on external ids: on a cluster-reordered corpus the
  // ranked order (hence the expansion universe) matches the unpermuted
  // index exactly; with no mapping installed this is the plain id order.
  std::sort(out.begin(), out.end(), [this](const RankedResult& a,
                                           const RankedResult& b) {
    if (a.score != b.score) return a.score > b.score;
    return ExternalId(a.doc) < ExternalId(b.doc);
  });
  if (top_k > 0 && out.size() > top_k) out.resize(top_k);
  return out;
}

std::vector<RankedResult> InvertedIndex::SearchVsm(
    const std::vector<TermId>& terms, size_t top_k) const {
  // Query vector: idf weight per distinct term (tf within the query is
  // almost always 1 for keyword queries; duplicates accumulate).
  std::unordered_map<TermId, double> query_weights;
  for (TermId t : terms) query_weights[t] += Idf(t);
  double query_sq = 0.0;
  for (const auto& [t, w] : query_weights) query_sq += w * w;
  const double query_norm = std::sqrt(query_sq);
  if (query_norm == 0.0) return {};

  // Accumulate dot products by traversing each query term's postings.
  QEC_TRACE_SPAN("index/search_vsm");
  QEC_COUNTER_INC("index/searches");
  size_t scanned = 0;
  std::unordered_map<DocId, double> dots;
  for (const auto& [t, qw] : query_weights) {
    const double idf = Idf(t);
    scanned += Postings(t).size();
    for (const Posting& p : Postings(t)) {
      dots[p.doc] += qw * static_cast<double>(p.tf) * idf;
    }
  }
  QEC_COUNTER_ADD("index/postings_scanned", scanned);

  std::vector<RankedResult> out;
  out.reserve(dots.size());
  for (const auto& [d, dot] : dots) {
    const double norm = doc_norms_[d];
    if (norm <= 0.0) continue;
    out.push_back(RankedResult{d, dot / (norm * query_norm)});
  }
  std::sort(out.begin(), out.end(),
            [this](const RankedResult& a, const RankedResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return ExternalId(a.doc) < ExternalId(b.doc);
            });
  if (top_k > 0 && out.size() > top_k) out.resize(top_k);
  return out;
}

std::vector<RankedResult> InvertedIndex::SearchBm25(
    const std::vector<TermId>& terms, size_t top_k,
    const Bm25Params& params) const {
  const double n = static_cast<double>(corpus_->NumDocs());
  if (n == 0.0) return {};
  const double avg_len = corpus_->Stats().avg_doc_length;

  std::vector<TermId> unique = terms;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  QEC_TRACE_SPAN("index/search_bm25");
  QEC_COUNTER_INC("index/searches");
  size_t scanned = 0;
  std::unordered_map<DocId, double> scores;
  for (TermId t : unique) {
    const double df = static_cast<double>(DocumentFrequency(t));
    if (df == 0.0) continue;
    scanned += Postings(t).size();
    // BM25's idf with the +1 smoothing that keeps it positive.
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    for (const Posting& p : Postings(t)) {
      const double tf = static_cast<double>(p.tf);
      const double len_norm =
          avg_len > 0.0
              ? 1.0 - params.b +
                    params.b *
                        static_cast<double>(corpus_->Get(p.doc).length()) /
                        avg_len
              : 1.0;
      scores[p.doc] +=
          idf * tf * (params.k1 + 1.0) / (tf + params.k1 * len_norm);
    }
  }

  QEC_COUNTER_ADD("index/postings_scanned", scanned);
  std::vector<RankedResult> out;
  out.reserve(scores.size());
  for (const auto& [d, s] : scores) out.push_back(RankedResult{d, s});
  std::sort(out.begin(), out.end(),
            [this](const RankedResult& a, const RankedResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return ExternalId(a.doc) < ExternalId(b.doc);
            });
  if (top_k > 0 && out.size() > top_k) out.resize(top_k);
  return out;
}

std::vector<RankedResult> InvertedIndex::SearchText(std::string_view query,
                                                    size_t top_k) const {
  std::vector<TermId> terms = corpus_->analyzer().AnalyzeReadOnly(query);
  // If analysis dropped unknown words, the AND result must be empty: a
  // document cannot contain a term that is absent from the vocabulary.
  std::vector<std::string> raw_tokens =
      text::Tokenizer(corpus_->analyzer().options().tokenizer).Tokenize(query);
  size_t known_non_stopword = terms.size();
  // Count non-stopword tokens to detect unknown words.
  text::StopwordList stopwords =
      corpus_->analyzer().options().remove_stopwords
          ? text::StopwordList::DefaultEnglish()
          : text::StopwordList();
  size_t expected = 0;
  for (const auto& tok : raw_tokens) {
    if (!stopwords.IsStopword(tok)) ++expected;
  }
  if (known_non_stopword < expected) return {};
  return Search(terms, top_k);
}

}  // namespace qec::index
