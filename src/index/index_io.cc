#include "index/index_io.h"

#include <cstdio>
#include <memory>

#include "index/posting_codec.h"

namespace qec::index {

namespace {
constexpr char kMagic[8] = {'Q', 'E', 'C', 'I', 'N', 'D', 'X', '1'};
}  // namespace

std::string SerializeIndex(const InvertedIndex& index) {
  std::string out(kMagic, sizeof(kMagic));
  const size_t num_terms = index.corpus().analyzer().vocabulary().size();
  AppendVarint(num_terms, out);
  for (TermId t = 0; t < num_terms; ++t) {
    std::string blob = EncodePostings(index.Postings(t));
    AppendVarint(blob.size(), out);
    out += blob;
  }
  return out;
}

Result<InvertedIndex> DeserializeIndex(const doc::Corpus& corpus,
                                       std::string_view data) {
  if (data.size() < sizeof(kMagic) ||
      data.substr(0, sizeof(kMagic)) != std::string_view(kMagic,
                                                         sizeof(kMagic))) {
    return Status::Corruption("bad index magic");
  }
  size_t pos = sizeof(kMagic);
  auto num_terms = ReadVarint(data, &pos);
  if (!num_terms.ok()) return num_terms.status();
  if (*num_terms != corpus.analyzer().vocabulary().size()) {
    return Status::Corruption(
        "index has " + std::to_string(*num_terms) +
        " terms but the corpus vocabulary has " +
        std::to_string(corpus.analyzer().vocabulary().size()));
  }
  std::vector<std::vector<Posting>> postings(*num_terms);
  for (uint64_t t = 0; t < *num_terms; ++t) {
    auto len = ReadVarint(data, &pos);
    if (!len.ok()) return len.status();
    if (pos + *len > data.size()) {
      return Status::Corruption("posting blob truncated");
    }
    auto list = DecodePostings(data.substr(pos, *len));
    if (!list.ok()) return list.status();
    pos += *len;
    for (const Posting& p : *list) {
      if (p.doc >= corpus.NumDocs()) {
        return Status::Corruption("posting references unknown document " +
                                  std::to_string(p.doc));
      }
    }
    postings[t] = std::move(*list);
  }
  if (pos != data.size()) {
    return Status::Corruption("trailing bytes after index");
  }
  return InvertedIndex::FromPostings(corpus, std::move(postings));
}

Status SaveIndex(const InvertedIndex& index, const std::string& path) {
  std::string blob = SerializeIndex(index);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  if (std::fwrite(blob.data(), 1, blob.size(), f.get()) != blob.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::Ok();
}

Result<InvertedIndex> LoadIndex(const doc::Corpus& corpus,
                                const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (f == nullptr) return Status::NotFound("cannot open '" + path + "'");
  std::string blob;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    blob.append(buf, n);
  }
  return DeserializeIndex(corpus, blob);
}

}  // namespace qec::index
