#include "index/posting_codec.h"

#include <limits>

namespace qec::index {

void AppendVarint(uint64_t value, std::string& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

Result<uint64_t> ReadVarint(std::string_view data, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (*pos >= data.size()) {
      return Status::Corruption("varint truncated at byte " +
                                std::to_string(*pos));
    }
    uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return Status::Corruption("overlong varint");
}

std::string EncodePostings(const std::vector<Posting>& postings) {
  std::string out;
  AppendVarint(postings.size(), out);
  DocId prev = 0;
  for (size_t i = 0; i < postings.size(); ++i) {
    const Posting& p = postings[i];
    const uint64_t gap =
        i == 0 ? p.doc : static_cast<uint64_t>(p.doc) - prev - 1;
    AppendVarint(gap, out);
    AppendVarint(static_cast<uint64_t>(p.tf), out);
    prev = p.doc;
  }
  return out;
}

Result<std::vector<Posting>> DecodePostings(std::string_view data) {
  size_t pos = 0;
  auto count = ReadVarint(data, &pos);
  if (!count.ok()) return count.status();
  // Every posting encodes to at least 2 bytes (gap varint + tf varint), so
  // any count above half the remaining payload is corrupt. Rejecting here
  // keeps a corrupt header from over-reserving the output vector.
  if (*count > (data.size() - pos) / 2) {
    return Status::Corruption("implausible posting count");
  }
  std::vector<Posting> out;
  out.reserve(*count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    auto gap = ReadVarint(data, &pos);
    if (!gap.ok()) return gap.status();
    auto tf = ReadVarint(data, &pos);
    if (!tf.ok()) return tf.status();
    const uint64_t doc = i == 0 ? *gap : prev + *gap + 1;
    if (doc > std::numeric_limits<DocId>::max()) {
      return Status::Corruption("doc id overflow");
    }
    if (*tf == 0 || *tf > std::numeric_limits<int>::max()) {
      return Status::Corruption("invalid term frequency");
    }
    out.push_back(Posting{static_cast<DocId>(doc), static_cast<int>(*tf)});
    prev = doc;
  }
  if (pos != data.size()) {
    return Status::Corruption("trailing bytes after postings");
  }
  return out;
}

}  // namespace qec::index
