#include "common/sweep_pool.h"

namespace qec::common {

struct SweepPool::Task {
  void (*fn)(void*);
  void* ctx;
  /// Helper starts not yet handed to a worker. The task leaves the queue
  /// when this reaches zero; the submitting caller is released when both
  /// remaining and active reach zero.
  size_t remaining;
  size_t active = 0;
};

SweepPool& SweepPool::Instance() {
  static SweepPool pool;
  return pool;
}

SweepPool::~SweepPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& th : workers_) th.join();
}

void SweepPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    // Drain queued work even when stopping so no caller is left waiting.
    if (queue_.empty()) return;
    Task* task = queue_.front();
    if (--task->remaining == 0) queue_.pop_front();
    ++task->active;
    lock.unlock();
    task->fn(task->ctx);
    lock.lock();
    --task->active;
    --outstanding_;
    if (task->remaining == 0 && task->active == 0) done_cv_.notify_all();
  }
}

void SweepPool::RunImpl(size_t threads, void (*fn)(void*), void* ctx) {
  const size_t helpers = threads - 1;
  Task task{fn, ctx, helpers};
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.runs;
    outstanding_ += helpers;
    const size_t deficit =
        outstanding_ > workers_.size() ? outstanding_ - workers_.size() : 0;
    stats_.spawns += deficit;
    stats_.reuses += helpers - deficit;
    workers_.reserve(workers_.size() + deficit);
    for (size_t i = 0; i < deficit; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
    queue_.push_back(&task);
  }
  work_cv_.notify_all();
  // The caller is worker zero: it runs the same body as the helpers, so a
  // Run(threads, ...) always applies `threads` workers even while helpers
  // are still waking up.
  fn(ctx);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return task.remaining == 0 && task.active == 0; });
}

SweepPool::Stats SweepPool::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace qec::common
