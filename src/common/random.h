#ifndef QEC_COMMON_RANDOM_H_
#define QEC_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace qec {

/// Deterministic, seedable PRNG (xoshiro256**, seeded via SplitMix64).
/// Every randomized component in the library takes an explicit seed so
/// experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Normally distributed double (Box-Muller).
  double Gaussian(double mean, double stddev);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `n` distinct indices from [0, population) without replacement.
  /// Returns all indices (shuffled) when n >= population.
  std::vector<size_t> SampleWithoutReplacement(size_t population, size_t n);

 private:
  uint64_t state_[4];
};

}  // namespace qec

#endif  // QEC_COMMON_RANDOM_H_
