#ifndef QEC_COMMON_SIMD_KERNELS_H_
#define QEC_COMMON_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace qec::simd {

/// Implementation tier of the multi-word set-algebra kernels. Selected once
/// at startup: AVX2 when the CPU supports it, scalar otherwise, overridable
/// with QEC_KERNEL_DISPATCH=scalar|avx2|auto (tests pin the tier to prove
/// exact equality; benches pin it so numbers are comparable across runs).
enum class KernelTier {
  kScalar,
  kAvx2,
};

/// Word-array kernels behind the DynamicBitset fused set algebra. Every
/// entry is exact: the counts are integers and the early-exit predicates
/// are pure booleans, so each tier returns bit-identical results — only
/// the wall clock differs. Operands are arrays of `n` 64-bit words; all
/// arrays must hold at least `n` words.
struct KernelOps {
  /// popcount(a).
  size_t (*popcount)(const uint64_t* a, size_t n);
  /// popcount(a & b).
  size_t (*and_count)(const uint64_t* a, const uint64_t* b, size_t n);
  /// popcount(a & ~b).
  size_t (*and_not_count)(const uint64_t* a, const uint64_t* b, size_t n);
  /// popcount(a & b & c).
  size_t (*and_count3)(const uint64_t* a, const uint64_t* b,
                       const uint64_t* c, size_t n);
  /// popcount(a & ~b & c).
  size_t (*and_not_and_count)(const uint64_t* a, const uint64_t* b,
                              const uint64_t* c, size_t n);
  /// Any bit set in a? (early exit on the first nonzero block).
  bool (*any)(const uint64_t* a, size_t n);
  /// Any bit set in (a & b)?
  bool (*intersects2)(const uint64_t* a, const uint64_t* b, size_t n);
  /// Any bit set in (a & b & c)?
  bool (*intersects3)(const uint64_t* a, const uint64_t* b, const uint64_t* c,
                      size_t n);
  /// Any bit set in (a & ~b)? (the subset test's complement).
  bool (*any_and_not)(const uint64_t* a, const uint64_t* b, size_t n);
};

/// The active kernel table. First call resolves the tier from
/// QEC_KERNEL_DISPATCH and cpuid; later calls are a relaxed atomic load.
const KernelOps& Ops();

/// The tier Ops() currently dispatches to.
KernelTier ActiveTier();

/// Forces the dispatch tier (tests, benches, the env override). Returns
/// false — leaving the tier unchanged — when the hardware cannot run the
/// requested tier.
bool SetTier(KernelTier tier);

/// True when the CPU supports the AVX2 tier.
bool Avx2Supported();

const char* TierName(KernelTier tier);
const char* ActiveTierName();

/// The QEC_KERNEL_DISPATCH value the startup selection honored: "scalar",
/// "avx2", or "auto" (unset / unrecognized values fall back to auto).
const char* DispatchOverride();

}  // namespace qec::simd

#endif  // QEC_COMMON_SIMD_KERNELS_H_
