#ifndef QEC_COMMON_INTERNED_STRINGS_H_
#define QEC_COMMON_INTERNED_STRINGS_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace qec::common {

/// Append-only interned-string table backed by a chunked char arena. Each
/// distinct string is stored exactly once; Intern returns a string_view
/// into the arena that stays valid for the interner's lifetime (chunks are
/// never reallocated, only appended). The vocabulary keeps one entry per
/// term this way instead of a std::string per map node plus a second copy
/// in the id->term vector, and everything downstream passes 16-byte views
/// instead of owning strings.
///
/// Not thread-safe for concurrent Intern; concurrent readers of
/// previously returned views are fine (the arena is append-only).
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the canonical arena-backed view for `s`, copying it into the
  /// arena on first sight.
  std::string_view Intern(std::string_view s);

  /// Number of distinct strings interned.
  size_t size() const { return set_.size(); }

  /// Total arena bytes reserved (capacity, not just used).
  size_t arena_bytes() const { return arena_bytes_; }

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::string_view CopyToArena(std::string_view s);

  std::unordered_set<std::string_view, Hash> set_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t chunk_used_ = 0;
  size_t chunk_capacity_ = 0;
  size_t arena_bytes_ = 0;
};

}  // namespace qec::common

#endif  // QEC_COMMON_INTERNED_STRINGS_H_
