#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace qec {

namespace {
std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level.store(level); }
LogLevel MinLogLevel() { return g_min_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace qec
