#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace qec {

namespace {

/// kInfo unless QEC_LOG_LEVEL overrides it (evaluated once at startup).
LogLevel InitialLogLevel() {
  const char* env = std::getenv("QEC_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (env != nullptr && !ParseLogLevel(env, &level)) {
    std::fprintf(stderr, "[W logging] unknown QEC_LOG_LEVEL '%s' ignored\n",
                 env);
  }
  return level;
}

std::atomic<LogLevel> g_min_level{InitialLogLevel()};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level.store(level); }
LogLevel MinLogLevel() { return g_min_level.load(); }

bool ParseLogLevel(std::string_view text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else if (lower == "fatal") {
    *level = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace qec
