#ifndef QEC_COMMON_CRC32_H_
#define QEC_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace qec {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
/// used by zlib/gzip/PNG. Guards the persistent snapshot sections
/// (src/storage/) against bit rot and truncation; see docs/FORMATS.md.
uint32_t Crc32(std::string_view data);

/// Incremental form: feed the previous return value back as `crc` to
/// checksum data arriving in chunks. Start from 0; the final value equals
/// Crc32() over the concatenation.
uint32_t Crc32Update(uint32_t crc, std::string_view data);

}  // namespace qec

#endif  // QEC_COMMON_CRC32_H_
