#ifndef QEC_COMMON_SMALL_VECTOR_H_
#define QEC_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

namespace qec::common {

/// Small-size-optimized vector: the first N elements live inline in the
/// object, so the hot-path containers of the benefit/cost sweeps (sparse
/// TF entries, query keyword lists, conjunction-key scratch) perform zero
/// heap allocations at typical sizes. Growth beyond N falls back to a
/// heap buffer with doubling capacity, exactly like std::vector.
///
/// Relocation (growth, move construction into a spilled buffer) uses
/// memcpy when T is trivially relocatable — approximated here, as in most
/// SmallVector implementations, by std::is_trivially_copyable — and
/// move-construct + destroy otherwise. Moving a SmallVector whose
/// elements still sit inline must copy/move the elements (the inline
/// buffer cannot be stolen); moving a spilled one steals the heap buffer.
template <typename T, size_t N>
class SmallVector {
  static_assert(N > 0, "SmallVector requires at least one inline slot");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) UncheckedEmplaceBack(v);
  }

  SmallVector(const SmallVector& other) { CopyFrom(other); }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      CopyFrom(other);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      FreeStorage();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { FreeStorage(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  /// True while elements still live in the inline buffer (test hook for
  /// the SOO boundary).
  bool is_inline() const { return data_ == InlineData(); }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void clear() {
    DestroyAll();
    size_ = 0;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      Grow(capacity_ * 2 > size_ + 1 ? capacity_ * 2 : size_ + 1);
    }
    return UncheckedEmplaceBack(std::forward<Args>(args)...);
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  void resize(size_t n) {
    if (n < size_) {
      for (size_t i = n; i < size_; ++i) data_[i].~T();
    } else {
      reserve(n);
      for (size_t i = size_; i < n; ++i) ::new (data_ + i) T();
    }
    size_ = n;
  }

  void resize(size_t n, const T& fill) {
    if (n < size_) {
      for (size_t i = n; i < size_; ++i) data_[i].~T();
    } else {
      reserve(n);
      for (size_t i = size_; i < n; ++i) ::new (data_ + i) T(fill);
    }
    size_ = n;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) emplace_back(*first);
  }

  iterator erase(iterator pos) { return erase(pos, pos + 1); }

  iterator erase(iterator first, iterator last) {
    iterator out = std::move(last, end(), first);
    for (iterator it = out; it != end(); ++it) it->~T();
    size_ = static_cast<size_t>(out - data_);
    return first;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_); }
  const T* InlineData() const { return reinterpret_cast<const T*>(inline_); }

  template <typename... Args>
  T& UncheckedEmplaceBack(Args&&... args) {
    T* slot = ::new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  /// Relocates `n` constructed elements from src to raw dst storage:
  /// memcpy on the trivially-relocatable fast path, move + destroy
  /// otherwise.
  static void Relocate(T* dst, T* src, size_t n) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (n != 0) std::memcpy(dst, src, n * sizeof(T));
    } else {
      for (size_t i = 0; i < n; ++i) {
        ::new (dst + i) T(std::move(src[i]));
        src[i].~T();
      }
    }
  }

  void Grow(size_t n) {
    T* fresh = static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(alignof(T))));
    Relocate(fresh, data_, size_);
    if (!is_inline()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = fresh;
    capacity_ = n;
  }

  void CopyFrom(const SmallVector& other) {
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) {
      UncheckedEmplaceBack(other.data_[i]);
    }
  }

  /// Precondition: *this owns no elements (freshly constructed or just
  /// FreeStorage()d).
  void MoveFrom(SmallVector&& other) noexcept {
    if (other.is_inline()) {
      data_ = InlineData();
      capacity_ = N;
      size_ = 0;
      Relocate(data_, other.data_, other.size_);
      size_ = other.size_;
      other.size_ = 0;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.InlineData();
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  void DestroyAll() {
    for (size_t i = 0; i < size_; ++i) data_[i].~T();
  }

  void FreeStorage() {
    DestroyAll();
    if (!is_inline()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = InlineData();
    capacity_ = N;
    size_ = 0;
  }

  T* data_ = InlineData();
  size_t size_ = 0;
  size_t capacity_ = N;
  alignas(T) unsigned char inline_[N * sizeof(T)];
};

}  // namespace qec::common

#endif  // QEC_COMMON_SMALL_VECTOR_H_
