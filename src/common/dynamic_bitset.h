#ifndef QEC_COMMON_DYNAMIC_BITSET_H_
#define QEC_COMMON_DYNAMIC_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qec {

/// Half-open range of 64-bit bitset words [begin, end) — the unit of
/// doc-id-range sharding. Cluster-aware doc-id reordering makes result
/// bitsets dense runs, so a set expression's support collapses to a few
/// words; kernels restricted to such a range skip every all-zero word
/// outside it. Skipped words contribute no terms to a weighted sum, so a
/// range-restricted kernel is bit-identical to the full scan whenever the
/// expression is provably zero outside the range.
struct WordRange {
  size_t begin = 0;
  size_t end = 0;

  size_t word_count() const { return end - begin; }
  bool empty() const { return begin >= end; }

  /// Intersection of two ranges (the canonical empty range when disjoint).
  static WordRange Intersect(const WordRange& a, const WordRange& b) {
    WordRange r{a.begin > b.begin ? a.begin : b.begin,
                a.end < b.end ? a.end : b.end};
    if (r.begin >= r.end) r = WordRange{};
    return r;
  }

  friend bool operator==(const WordRange& a, const WordRange& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// Fixed-capacity bitset sized at runtime. Used for result-set algebra in
/// the expansion algorithms (R(q), C, U, E(k) intersections) where the
/// universe is the result list of the original user query.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `size` bits, all clear (or all set).
  explicit DynamicBitset(size_t size, bool value = false);

  /// Re-initializes to `size` bits, all clear (or all set), reusing the
  /// existing word storage when its capacity suffices. The scratch-reuse
  /// primitive: hot loops re-target one buffer instead of constructing a
  /// fresh bitset per call.
  void Reinitialize(size_t size, bool value = false);

  size_t size() const { return size_; }

  void Set(size_t i);
  void Reset(size_t i);
  bool Test(size_t i) const;

  /// Sets / clears every bit.
  void SetAll();
  void ResetAll();

  /// Number of set bits.
  size_t Count() const;

  /// True if no bit is set. Early-exits on the first nonzero word instead
  /// of popcounting the whole bitset.
  bool None() const;
  bool Any() const { return !None(); }

  /// In-place operators. Operands must have equal size.
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);

  /// this &= ~other (set difference).
  DynamicBitset& AndNot(const DynamicBitset& other);

  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }

  /// Count of bits set in (this & other), without materializing it.
  size_t AndCount(const DynamicBitset& other) const;

  /// Fused single-pass kernels: each evaluates a multi-operand set
  /// expression word by word without materializing any intermediate
  /// bitset — the allocation-free core of the ISKR/PEBC benefit/cost
  /// inner loops.

  /// |this & ~other|.
  size_t AndNotCount(const DynamicBitset& other) const;

  /// |this & ~other| scanning only words in `range` (clamped). Equal to
  /// the full count when this is zero outside `range`.
  size_t AndNotCount(const DynamicBitset& other, const WordRange& range) const;

  /// |this & b & c|.
  size_t AndCount3(const DynamicBitset& b, const DynamicBitset& c) const;

  /// |this & ~b & c|.
  size_t AndNotAndCount(const DynamicBitset& b, const DynamicBitset& c) const;

  /// |this & ~b & c| scanning only words in `range` (clamped). Equal to
  /// the full count when (this & c) is zero outside `range`.
  size_t AndNotAndCount(const DynamicBitset& b, const DynamicBitset& c,
                        const WordRange& range) const;

  /// True if (this & other) has any bit set.
  bool Intersects(const DynamicBitset& other) const;

  /// True if (this & b & c) has any bit set (early-exit three-way AND).
  bool Intersects(const DynamicBitset& b, const DynamicBitset& c) const;

  /// Ranged three-way Intersects: scans only words in `range` (clamped to
  /// the word count). Equal to the full scan when (this & b & c) is zero
  /// outside `range` — e.g. when `range` covers the nonzero words of any
  /// operand.
  bool Intersects(const DynamicBitset& b, const DynamicBitset& c,
                  const WordRange& range) const;

  /// Number of 64-bit words backing the bitset.
  size_t NumWords() const { return words_.size(); }

  /// The whole word space as a range.
  WordRange FullWordRange() const { return WordRange{0, words_.size()}; }

  /// Tight range covering every nonzero word (empty range when no bit is
  /// set). After cluster-aware doc-id reordering, cluster bitsets over a
  /// doc-ordered universe are contiguous runs, so this range is small —
  /// the pruning handle for the sharded benefit/cost sweeps.
  WordRange NonzeroWordRange() const;

  /// True if every set bit of this is also set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Indices of all set bits, ascending.
  std::vector<size_t> ToIndices() const;

  /// Calls `fn(i)` for every set bit `i`, ascending.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Generic fused combinator: calls `fn(word_index, words...)` once per
  /// 64-bit word position with the corresponding word of every operand.
  /// Custom kernels build arbitrary set expressions (e.g. a & ~b & c & ~d)
  /// in one pass with zero temporaries. All operands must share one size.
  /// Bits past size() are zero in every operand, so any monotone
  /// combination of ANDs/AND-NOTs of the words stays tail-clean.
  template <typename Fn, typename... Rest>
  static void ForEachWord(Fn&& fn, const DynamicBitset& first,
                          const Rest&... rest) {
    (CheckSameSize(first, rest), ...);
    for (size_t w = 0; w < first.words_.size(); ++w) {
      fn(w, first.words_[w], rest.words_[w]...);
    }
  }

  /// ForEachWord restricted to `range` (clamped to the word count). Word
  /// indices passed to `fn` are absolute, so kernels indexing auxiliary
  /// arrays by word position work unchanged.
  template <typename Fn, typename... Rest>
  static void ForEachWordInRange(const WordRange& range, Fn&& fn,
                                 const DynamicBitset& first,
                                 const Rest&... rest) {
    (CheckSameSize(first, rest), ...);
    const size_t end =
        range.end < first.words_.size() ? range.end : first.words_.size();
    for (size_t w = range.begin; w < end; ++w) {
      fn(w, first.words_[w], rest.words_[w]...);
    }
  }

 private:
  static void CheckSameSize(const DynamicBitset& a, const DynamicBitset& b);

  void TrimTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace qec

#endif  // QEC_COMMON_DYNAMIC_BITSET_H_
