#ifndef QEC_COMMON_DYNAMIC_BITSET_H_
#define QEC_COMMON_DYNAMIC_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qec {

/// Fixed-capacity bitset sized at runtime. Used for result-set algebra in
/// the expansion algorithms (R(q), C, U, E(k) intersections) where the
/// universe is the result list of the original user query.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `size` bits, all clear (or all set).
  explicit DynamicBitset(size_t size, bool value = false);

  size_t size() const { return size_; }

  void Set(size_t i);
  void Reset(size_t i);
  bool Test(size_t i) const;

  /// Sets / clears every bit.
  void SetAll();
  void ResetAll();

  /// Number of set bits.
  size_t Count() const;

  /// True if no bit is set.
  bool None() const { return Count() == 0; }
  bool Any() const { return !None(); }

  /// In-place operators. Operands must have equal size.
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);

  /// this &= ~other (set difference).
  DynamicBitset& AndNot(const DynamicBitset& other);

  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }

  /// Count of bits set in (this & other), without materializing it.
  size_t AndCount(const DynamicBitset& other) const;

  /// True if (this & other) has any bit set.
  bool Intersects(const DynamicBitset& other) const;

  /// True if every set bit of this is also set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Indices of all set bits, ascending.
  std::vector<size_t> ToIndices() const;

  /// Calls `fn(i)` for every set bit `i`, ascending.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  void TrimTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace qec

#endif  // QEC_COMMON_DYNAMIC_BITSET_H_
