#ifndef QEC_COMMON_THREADING_H_
#define QEC_COMMON_THREADING_H_

#include <cstddef>

namespace qec {

/// Resolves a user-facing thread-count knob to an actual worker count.
/// `requested == 0` means "auto": std::thread::hardware_concurrency(),
/// guarding its unspecified 0 return. The result is clamped to
/// `max_useful` (the number of independent work items, e.g. clusters to
/// expand or pool slots) and is always at least 1. Shared by the
/// QueryExpander per-cluster pool and the qec_server request executor so
/// both interpret the knob identically.
size_t ResolveThreadCount(size_t requested, size_t max_useful);

}  // namespace qec

#endif  // QEC_COMMON_THREADING_H_
