#include "common/interned_strings.h"

#include <cstring>

namespace qec::common {

namespace {
constexpr size_t kChunkSize = 64 * 1024;
}  // namespace

std::string_view StringInterner::Intern(std::string_view s) {
  auto it = set_.find(s);
  if (it != set_.end()) return *it;
  const std::string_view stored = CopyToArena(s);
  set_.insert(stored);
  return stored;
}

std::string_view StringInterner::CopyToArena(std::string_view s) {
  if (chunk_used_ + s.size() > chunk_capacity_) {
    // Oversized strings get a dedicated chunk so the common chunk keeps
    // its remaining space for small terms.
    const size_t cap = s.size() > kChunkSize ? s.size() : kChunkSize;
    chunks_.push_back(std::make_unique<char[]>(cap));
    arena_bytes_ += cap;
    if (cap == kChunkSize || chunks_.size() == 1) {
      chunk_used_ = 0;
      chunk_capacity_ = cap;
    } else {
      // Dedicated oversized chunk: fill it whole, keep the previous chunk
      // as the active one by swapping it back to the tail.
      char* dst = chunks_.back().get();
      std::memcpy(dst, s.data(), s.size());
      if (chunks_.size() >= 2) {
        std::swap(chunks_[chunks_.size() - 1], chunks_[chunks_.size() - 2]);
      }
      return std::string_view(dst, s.size());
    }
  }
  char* dst = chunks_.back().get() + chunk_used_;
  if (!s.empty()) std::memcpy(dst, s.data(), s.size());
  chunk_used_ += s.size();
  return std::string_view(dst, s.size());
}

}  // namespace qec::common
