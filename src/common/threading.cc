#include "common/threading.h"

#include <algorithm>
#include <thread>

namespace qec {

size_t ResolveThreadCount(size_t requested, size_t max_useful) {
  size_t n = requested;
  if (n == 0) {
    // hardware_concurrency() may return 0 when the value is not computable.
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  n = std::min(n, std::max<size_t>(max_useful, 1));
  return n;
}

}  // namespace qec
