#include "common/simd_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define QEC_SIMD_X86 1
#endif

namespace qec::simd {

namespace {

// ------------------------------------------------------------- scalar --

size_t ScalarPopcount(const uint64_t* a, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(a[i]));
  }
  return count;
}

size_t ScalarAndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return count;
}

size_t ScalarAndNotCount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(a[i] & ~b[i]));
  }
  return count;
}

size_t ScalarAndCount3(const uint64_t* a, const uint64_t* b, const uint64_t* c,
                       size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(a[i] & b[i] & c[i]));
  }
  return count;
}

size_t ScalarAndNotAndCount(const uint64_t* a, const uint64_t* b,
                            const uint64_t* c, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(a[i] & ~b[i] & c[i]));
  }
  return count;
}

bool ScalarAny(const uint64_t* a, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != 0) return true;
  }
  return false;
}

bool ScalarIntersects2(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

bool ScalarIntersects3(const uint64_t* a, const uint64_t* b, const uint64_t* c,
                       size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i] & c[i]) != 0) return true;
  }
  return false;
}

bool ScalarAnyAndNot(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return true;
  }
  return false;
}

constexpr KernelOps kScalarOps = {
    ScalarPopcount,    ScalarAndCount,    ScalarAndNotCount,
    ScalarAndCount3,   ScalarAndNotAndCount,
    ScalarAny,         ScalarIntersects2, ScalarIntersects3,
    ScalarAnyAndNot,
};

// --------------------------------------------------------------- AVX2 --
//
// The count kernels combine four words per 256-bit vector and popcount via
// the nibble-lookup (Muła) algorithm: split each byte into nibbles, look
// both up in a 16-entry bit-count table with PSHUFB, then horizontally sum
// bytes into the four 64-bit lanes with PSADBW. The per-lane sums are
// accumulated in a 4x64 vector; one final reduction yields the count, an
// exact integer — bit-identical to the scalar loop. Tails shorter than
// four words fall back to the scalar code. The early-exit predicates test
// four words at a time with PTEST and bail on the first nonzero block.

#if defined(QEC_SIMD_X86)

__attribute__((target("avx2"))) inline __m256i Popcount256(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline size_t ReduceLanes(__m256i acc) {
  return static_cast<size_t>(_mm256_extract_epi64(acc, 0)) +
         static_cast<size_t>(_mm256_extract_epi64(acc, 1)) +
         static_cast<size_t>(_mm256_extract_epi64(acc, 2)) +
         static_cast<size_t>(_mm256_extract_epi64(acc, 3));
}

__attribute__((target("avx2"))) size_t Avx2Popcount(const uint64_t* a,
                                                    size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(acc, Popcount256(va));
  }
  return ReduceLanes(acc) + ScalarPopcount(a + i, n - i);
}

__attribute__((target("avx2"))) size_t Avx2AndCount(const uint64_t* a,
                                                    const uint64_t* b,
                                                    size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(va, vb)));
  }
  return ReduceLanes(acc) + ScalarAndCount(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) size_t Avx2AndNotCount(const uint64_t* a,
                                                       const uint64_t* b,
                                                       size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // andnot(b, a) = a & ~b.
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_andnot_si256(vb, va)));
  }
  return ReduceLanes(acc) + ScalarAndNotCount(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) size_t Avx2AndCount3(const uint64_t* a,
                                                     const uint64_t* b,
                                                     const uint64_t* c,
                                                     size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    acc = _mm256_add_epi64(
        acc, Popcount256(_mm256_and_si256(_mm256_and_si256(va, vb), vc)));
  }
  return ReduceLanes(acc) + ScalarAndCount3(a + i, b + i, c + i, n - i);
}

__attribute__((target("avx2"))) size_t Avx2AndNotAndCount(const uint64_t* a,
                                                          const uint64_t* b,
                                                          const uint64_t* c,
                                                          size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    acc = _mm256_add_epi64(
        acc, Popcount256(_mm256_and_si256(_mm256_andnot_si256(vb, va), vc)));
  }
  return ReduceLanes(acc) + ScalarAndNotAndCount(a + i, b + i, c + i, n - i);
}

__attribute__((target("avx2"))) bool Avx2Any(const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    if (!_mm256_testz_si256(va, va)) return true;
  }
  return ScalarAny(a + i, n - i);
}

__attribute__((target("avx2"))) bool Avx2Intersects2(const uint64_t* a,
                                                     const uint64_t* b,
                                                     size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  return ScalarIntersects2(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) bool Avx2Intersects3(const uint64_t* a,
                                                     const uint64_t* b,
                                                     const uint64_t* c,
                                                     size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    if (!_mm256_testz_si256(_mm256_and_si256(va, vb), vc)) return true;
  }
  return ScalarIntersects3(a + i, b + i, c + i, n - i);
}

__attribute__((target("avx2"))) bool Avx2AnyAndNot(const uint64_t* a,
                                                   const uint64_t* b,
                                                   size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(_mm256_andnot_si256(vb, va),
                            _mm256_andnot_si256(vb, va))) {
      return true;
    }
  }
  return ScalarAnyAndNot(a + i, b + i, n - i);
}

constexpr KernelOps kAvx2Ops = {
    Avx2Popcount,    Avx2AndCount,    Avx2AndNotCount,
    Avx2AndCount3,   Avx2AndNotAndCount,
    Avx2Any,         Avx2Intersects2, Avx2Intersects3,
    Avx2AnyAndNot,
};

#endif  // QEC_SIMD_X86

// ----------------------------------------------------------- dispatch --

std::atomic<const KernelOps*> g_ops{nullptr};
std::atomic<KernelTier> g_tier{KernelTier::kScalar};
const char* g_override = "auto";
std::once_flag g_init_once;

void InitDispatch() {
  KernelTier tier =
      Avx2Supported() ? KernelTier::kAvx2 : KernelTier::kScalar;
  if (const char* env = std::getenv("QEC_KERNEL_DISPATCH")) {
    if (std::strcmp(env, "scalar") == 0) {
      g_override = "scalar";
      tier = KernelTier::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      g_override = "avx2";
      // Fails open to the auto choice when the hardware can't comply:
      // forcing an unsupported tier would SIGILL on the first kernel.
      if (Avx2Supported()) tier = KernelTier::kAvx2;
    } else {
      g_override = "auto";
    }
  }
  SetTier(tier);
}

}  // namespace

bool Avx2Supported() {
#if defined(QEC_SIMD_X86)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool SetTier(KernelTier tier) {
  const KernelOps* ops = &kScalarOps;
  switch (tier) {
    case KernelTier::kScalar:
      ops = &kScalarOps;
      break;
    case KernelTier::kAvx2:
#if defined(QEC_SIMD_X86)
      if (!Avx2Supported()) return false;
      ops = &kAvx2Ops;
      break;
#else
      return false;
#endif
  }
  g_tier.store(tier, std::memory_order_relaxed);
  g_ops.store(ops, std::memory_order_release);
  return true;
}

const KernelOps& Ops() {
  const KernelOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    std::call_once(g_init_once, InitDispatch);
    ops = g_ops.load(std::memory_order_acquire);
  }
  return *ops;
}

KernelTier ActiveTier() {
  Ops();  // ensure initialized
  return g_tier.load(std::memory_order_relaxed);
}

const char* TierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
  }
  return "?";
}

const char* ActiveTierName() { return TierName(ActiveTier()); }

const char* DispatchOverride() {
  Ops();  // ensure the env var has been consulted
  return g_override;
}

}  // namespace qec::simd
