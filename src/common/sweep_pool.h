#ifndef QEC_COMMON_SWEEP_POOL_H_
#define QEC_COMMON_SWEEP_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace qec::common {

/// Process-wide pool of parked sweep workers. The benefit/cost sweeps in
/// ISKR/PEBC/F-measure and the per-cluster fan-out in QueryExpander used
/// to spawn a fresh std::vector<std::thread> per sweep; at steady state a
/// single expansion performs hundreds of sweeps, so thread churn dominated
/// the parallel path. SweepPool parks workers on a condition variable and
/// hands tasks over by queue generation (an epoch: each Run() submission
/// bumps the wake predicate), so steady-state sweeps perform zero thread
/// spawns — mirrored by the spawns/reuses stats counters the same way
/// ScratchArena exposes allocs/reuses.
///
/// Workers are spawned lazily on first demand and only when every existing
/// worker is already claimed (concurrent callers — server requests or
/// per-cluster expansion threads running nested sweeps — simply grow the
/// pool once, then reuse it). The pool joins its workers on destruction,
/// so the function-local Instance() is leak-free under LeakSanitizer.
class SweepPool {
 public:
  struct Stats {
    /// Parallel Run() calls (threads > 1; serial calls run inline).
    uint64_t runs = 0;
    /// Worker threads created — flat after warmup.
    uint64_t spawns = 0;
    /// Parked-worker handoffs: helper starts served without a spawn.
    uint64_t reuses = 0;
  };

  /// The process-wide pool, created on first use.
  static SweepPool& Instance();

  ~SweepPool();
  SweepPool(const SweepPool&) = delete;
  SweepPool& operator=(const SweepPool&) = delete;

  /// Runs `body()` concurrently on `threads` workers: the calling thread
  /// plus threads-1 pool helpers, every one invoking the same body. Work
  /// distribution lives in the closure (the call sites share a
  /// work-stealing index), so the pool needs no per-item plumbing and the
  /// candidate-index-ordered merges the callers perform afterwards stay
  /// byte-identical to serial. Returns once every worker has finished.
  /// `threads <= 1` runs body inline without touching the pool. Safe to
  /// call from multiple threads, including from inside another Run body.
  template <typename Fn>
  void Run(size_t threads, Fn&& body) {
    if (threads <= 1) {
      body();
      return;
    }
    using Body = std::remove_reference_t<Fn>;
    RunImpl(
        threads, [](void* ctx) { (*static_cast<Body*>(ctx))(); }, &body);
  }

  Stats GetStats() const;

 private:
  struct Task;

  SweepPool() = default;
  void RunImpl(size_t threads, void (*fn)(void*), void* ctx);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<Task*> queue_;
  std::vector<std::thread> workers_;
  /// Helper starts handed out but not yet finished; workers_.size() only
  /// grows when this exceeds it (the lazy-spawn rule).
  size_t outstanding_ = 0;
  bool stopping_ = false;
  Stats stats_;
};

}  // namespace qec::common

#endif  // QEC_COMMON_SWEEP_POOL_H_
