#ifndef QEC_COMMON_STRING_UTIL_H_
#define QEC_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace qec {

/// Returns a lowercase (ASCII) copy of `s`.
std::string AsciiLower(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Splits `s` at every occurrence of `sep`; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

}  // namespace qec

#endif  // QEC_COMMON_STRING_UTIL_H_
