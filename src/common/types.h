#ifndef QEC_COMMON_TYPES_H_
#define QEC_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace qec {

/// Identifier of an interned term (word or structured feature) in a
/// `text::Vocabulary`. Dense, starting at 0.
using TermId = uint32_t;

/// Identifier of a document within a `doc::Corpus`. Dense, starting at 0.
using DocId = uint32_t;

/// Sentinel returned by lookups that can fail (e.g. unknown term).
inline constexpr TermId kInvalidTermId = std::numeric_limits<TermId>::max();

/// Sentinel for an invalid/unknown document.
inline constexpr DocId kInvalidDocId = std::numeric_limits<DocId>::max();

}  // namespace qec

#endif  // QEC_COMMON_TYPES_H_
