#ifndef QEC_COMMON_BINARY_IO_H_
#define QEC_COMMON_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace qec {

/// Little-endian append-only writer shared by the binary formats in
/// docs/FORMATS.md (corpus blob, snapshot sections).
class BinaryWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  /// IEEE-754 bits as a U64.
  void F64(double v);

  /// U32 length prefix + raw bytes.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }

  /// Raw bytes, no length prefix.
  void Raw(std::string_view bytes) { out_.append(bytes); }

  size_t size() const { return out_.size(); }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reader; every method reports truncation as
/// Status::Corruption naming `what` and the byte position.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data, std::string_view what = "blob")
      : data_(data), what_(what) {}

  Status U8(uint8_t& v);
  Status U32(uint32_t& v);
  Status U64(uint64_t& v);
  Status F64(double& v);

  /// Reads a U32 length prefix, then that many bytes.
  Status Str(std::string& s);

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Truncated() const;

  std::string_view data_;
  std::string_view what_;
  size_t pos_ = 0;
};

}  // namespace qec

#endif  // QEC_COMMON_BINARY_IO_H_
