#include "common/random.h"

#include <cmath>
#include <numbers>

namespace qec {

namespace {
inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  QEC_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  QEC_CHECK_LE(lo, hi);
  // Span computed in uint64: `hi - lo` in int64 overflows (UB) whenever the
  // range covers >= 2^63 values (e.g. lo = INT64_MIN, hi >= 0).
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (span == UINT64_MAX) {
    // Full 64-bit range: span + 1 would wrap to 0; every value is valid.
    return static_cast<int64_t>(Next());
  }
  return static_cast<int64_t>(static_cast<uint64_t>(lo) +
                              UniformInt(span + 1));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t population, size_t n) {
  std::vector<size_t> all(population);
  for (size_t i = 0; i < population; ++i) all[i] = i;
  Shuffle(all);
  if (n < all.size()) all.resize(n);
  return all;
}

}  // namespace qec
