#include "common/binary_io.h"

#include <cstring>

namespace qec {

void BinaryWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

Status BinaryReader::U8(uint8_t& v) {
  if (pos_ + 1 > data_.size()) return Truncated();
  v = static_cast<uint8_t>(data_[pos_++]);
  return Status::Ok();
}

Status BinaryReader::U32(uint32_t& v) {
  if (pos_ + 4 > data_.size()) return Truncated();
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return Status::Ok();
}

Status BinaryReader::U64(uint64_t& v) {
  if (pos_ + 8 > data_.size()) return Truncated();
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return Status::Ok();
}

Status BinaryReader::F64(double& v) {
  uint64_t bits = 0;
  QEC_RETURN_IF_ERROR(U64(bits));
  std::memcpy(&v, &bits, sizeof(v));
  return Status::Ok();
}

Status BinaryReader::Str(std::string& s) {
  uint32_t len = 0;
  QEC_RETURN_IF_ERROR(U32(len));
  if (pos_ + len > data_.size()) return Truncated();
  s.assign(data_.substr(pos_, len));
  pos_ += len;
  return Status::Ok();
}

Status BinaryReader::Truncated() const {
  return Status::Corruption(std::string(what_) + " truncated at byte " +
                            std::to_string(pos_));
}

}  // namespace qec
