#ifndef QEC_COMMON_LOGGING_H_
#define QEC_COMMON_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

namespace qec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal_logging {

/// Stream-style log sink; emits on destruction. FATAL aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Minimum level that is actually printed. Defaults to kInfo, or to the
/// QEC_LOG_LEVEL environment variable ("debug|info|warning|error|fatal",
/// case-insensitive) when it is set at process start.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// Parses a level name as accepted by QEC_LOG_LEVEL ("warn" == "warning").
/// Returns false (leaving `level` untouched) on unknown names.
bool ParseLogLevel(std::string_view text, LogLevel* level);

}  // namespace qec

#define QEC_LOG(level)                                                   \
  ::qec::internal_logging::LogMessage(::qec::LogLevel::k##level, __FILE__, \
                                      __LINE__)

/// Fatal-on-failure invariant check. Use for programmer errors; use Status
/// for recoverable/runtime errors.
#define QEC_CHECK(cond)                                              \
  if (!(cond))                                                       \
  QEC_LOG(Fatal) << "Check failed: " #cond " "

#define QEC_CHECK_EQ(a, b) QEC_CHECK((a) == (b))
#define QEC_CHECK_NE(a, b) QEC_CHECK((a) != (b))
#define QEC_CHECK_LT(a, b) QEC_CHECK((a) < (b))
#define QEC_CHECK_LE(a, b) QEC_CHECK((a) <= (b))
#define QEC_CHECK_GT(a, b) QEC_CHECK((a) > (b))
#define QEC_CHECK_GE(a, b) QEC_CHECK((a) >= (b))

#endif  // QEC_COMMON_LOGGING_H_
