#include "common/dynamic_bitset.h"

#include "common/logging.h"
#include "common/simd_kernels.h"

namespace qec {

DynamicBitset::DynamicBitset(size_t size, bool value)
    : size_(size), words_((size + 63) / 64, value ? ~0ULL : 0ULL) {
  if (value) TrimTail();
}

void DynamicBitset::Reinitialize(size_t size, bool value) {
  size_ = size;
  // vector::assign reuses the existing allocation when capacity suffices.
  words_.assign((size + 63) / 64, value ? ~0ULL : 0ULL);
  if (value) TrimTail();
}

void DynamicBitset::CheckSameSize(const DynamicBitset& a,
                                  const DynamicBitset& b) {
  QEC_CHECK_EQ(a.size_, b.size_);
}

void DynamicBitset::TrimTail() {
  const size_t tail = size_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

void DynamicBitset::Set(size_t i) {
  QEC_CHECK_LT(i, size_);
  words_[i / 64] |= 1ULL << (i % 64);
}

void DynamicBitset::Reset(size_t i) {
  QEC_CHECK_LT(i, size_);
  words_[i / 64] &= ~(1ULL << (i % 64));
}

bool DynamicBitset::Test(size_t i) const {
  QEC_CHECK_LT(i, size_);
  return (words_[i / 64] >> (i % 64)) & 1;
}

void DynamicBitset::SetAll() {
  for (auto& w : words_) w = ~0ULL;
  TrimTail();
}

void DynamicBitset::ResetAll() {
  for (auto& w : words_) w = 0;
}

size_t DynamicBitset::Count() const {
  return simd::Ops().popcount(words_.data(), words_.size());
}

bool DynamicBitset::None() const {
  return !simd::Ops().any(words_.data(), words_.size());
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  QEC_CHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  QEC_CHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  QEC_CHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::AndNot(const DynamicBitset& other) {
  QEC_CHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

size_t DynamicBitset::AndCount(const DynamicBitset& other) const {
  QEC_CHECK_EQ(size_, other.size_);
  return simd::Ops().and_count(words_.data(), other.words_.data(),
                               words_.size());
}

size_t DynamicBitset::AndNotCount(const DynamicBitset& other) const {
  QEC_CHECK_EQ(size_, other.size_);
  return simd::Ops().and_not_count(words_.data(), other.words_.data(),
                                   words_.size());
}

size_t DynamicBitset::AndNotCount(const DynamicBitset& other,
                                  const WordRange& range) const {
  QEC_CHECK_EQ(size_, other.size_);
  const size_t end = range.end < words_.size() ? range.end : words_.size();
  if (range.begin >= end) return 0;
  return simd::Ops().and_not_count(words_.data() + range.begin,
                                   other.words_.data() + range.begin,
                                   end - range.begin);
}

size_t DynamicBitset::AndCount3(const DynamicBitset& b,
                                const DynamicBitset& c) const {
  QEC_CHECK_EQ(size_, b.size_);
  QEC_CHECK_EQ(size_, c.size_);
  return simd::Ops().and_count3(words_.data(), b.words_.data(),
                                c.words_.data(), words_.size());
}

size_t DynamicBitset::AndNotAndCount(const DynamicBitset& b,
                                     const DynamicBitset& c) const {
  QEC_CHECK_EQ(size_, b.size_);
  QEC_CHECK_EQ(size_, c.size_);
  return simd::Ops().and_not_and_count(words_.data(), b.words_.data(),
                                       c.words_.data(), words_.size());
}

size_t DynamicBitset::AndNotAndCount(const DynamicBitset& b,
                                     const DynamicBitset& c,
                                     const WordRange& range) const {
  QEC_CHECK_EQ(size_, b.size_);
  QEC_CHECK_EQ(size_, c.size_);
  const size_t end = range.end < words_.size() ? range.end : words_.size();
  if (range.begin >= end) return 0;
  return simd::Ops().and_not_and_count(
      words_.data() + range.begin, b.words_.data() + range.begin,
      c.words_.data() + range.begin, end - range.begin);
}

bool DynamicBitset::Intersects(const DynamicBitset& b,
                               const DynamicBitset& c) const {
  QEC_CHECK_EQ(size_, b.size_);
  QEC_CHECK_EQ(size_, c.size_);
  return simd::Ops().intersects3(words_.data(), b.words_.data(),
                                 c.words_.data(), words_.size());
}

bool DynamicBitset::Intersects(const DynamicBitset& b, const DynamicBitset& c,
                               const WordRange& range) const {
  QEC_CHECK_EQ(size_, b.size_);
  QEC_CHECK_EQ(size_, c.size_);
  const size_t end = range.end < words_.size() ? range.end : words_.size();
  if (range.begin >= end) return false;
  return simd::Ops().intersects3(words_.data() + range.begin,
                                 b.words_.data() + range.begin,
                                 c.words_.data() + range.begin,
                                 end - range.begin);
}

WordRange DynamicBitset::NonzeroWordRange() const {
  size_t first = 0;
  while (first < words_.size() && words_[first] == 0) ++first;
  if (first == words_.size()) return WordRange{};
  size_t last = words_.size();
  while (last > first && words_[last - 1] == 0) --last;
  return WordRange{first, last};
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  QEC_CHECK_EQ(size_, other.size_);
  return simd::Ops().intersects2(words_.data(), other.words_.data(),
                                 words_.size());
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  QEC_CHECK_EQ(size_, other.size_);
  return !simd::Ops().any_and_not(words_.data(), other.words_.data(),
                                  words_.size());
}

std::vector<size_t> DynamicBitset::ToIndices() const {
  std::vector<size_t> out;
  out.reserve(Count());
  ForEachSetBit([&](size_t i) { out.push_back(i); });
  return out;
}

}  // namespace qec
