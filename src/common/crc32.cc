#include "common/crc32.h"

#include <array>

namespace qec {

namespace {

/// Slice-by-4 lookup tables, built once. Table 0 is the classic byte-at-a-
/// time table; tables 1..3 fold in the next three bytes so the hot loop
/// processes four bytes per iteration.
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xffu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xffu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xffu];
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  const auto& t = Tables().t;
  crc = ~crc;
  size_t i = 0;
  for (; i + 4 <= data.size(); i += 4) {
    crc ^= static_cast<uint32_t>(static_cast<uint8_t>(data[i])) |
           (static_cast<uint32_t>(static_cast<uint8_t>(data[i + 1])) << 8) |
           (static_cast<uint32_t>(static_cast<uint8_t>(data[i + 2])) << 16) |
           (static_cast<uint32_t>(static_cast<uint8_t>(data[i + 3])) << 24);
    crc = t[3][crc & 0xffu] ^ t[2][(crc >> 8) & 0xffu] ^
          t[1][(crc >> 16) & 0xffu] ^ t[0][crc >> 24];
  }
  for (; i < data.size(); ++i) {
    crc = (crc >> 8) ^ t[0][(crc ^ static_cast<uint8_t>(data[i])) & 0xffu];
  }
  return ~crc;
}

uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

}  // namespace qec
