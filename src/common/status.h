#ifndef QEC_COMMON_STATUS_H_
#define QEC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace qec {

/// Error codes used across the library. Modeled after the canonical codes
/// used by RocksDB/Abseil: a small, closed set that callers can switch on.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kCorruption,
  kUnimplemented,
  /// The service cannot take the request right now (e.g. the admission
  /// queue is full or the server is shutting down); retrying later is
  /// reasonable.
  kUnavailable,
  /// The request's deadline passed before it finished executing.
  kDeadlineExceeded,
  /// The caller cancelled the request before it executed.
  kCancelled,
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// Lightweight status object for fallible operations. Functions that can
/// fail for reasons other than programmer error return `Status` (or
/// `Result<T>`); invariant violations use QEC_CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error `Status` (never both).
/// Analogous to absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status: `return Status::NotFound(..)`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors. Must only be called when `ok()`.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace qec

/// Propagates a non-OK status from an expression to the caller.
#define QEC_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::qec::Status qec_status_tmp_ = (expr);       \
    if (!qec_status_tmp_.ok()) return qec_status_tmp_; \
  } while (false)

#endif  // QEC_COMMON_STATUS_H_
