#ifndef QEC_DATAGEN_PUBLICATIONS_H_
#define QEC_DATAGEN_PUBLICATIONS_H_

#include <cstdint>
#include <vector>

#include "datagen/workload.h"
#include "doc/corpus.h"

namespace qec::datagen {

/// Publications-corpus generator knobs.
struct PublicationsOptions {
  uint64_t seed = 23;
  /// Papers generated per (topic, venue) cell.
  size_t papers_per_cell = 6;
};

/// A third, structured-bibliographic dataset (DBLP-style) that is *not*
/// part of the paper's evaluation — it exists to check that the expansion
/// algorithms generalize beyond the two corpora they were tuned on.
/// Each paper is a structured document with venue, year, author and topic
/// features plus a generated title; ambiguity comes from authors who
/// publish in several topics and from topic words shared across areas.
class PublicationsGenerator {
 public:
  explicit PublicationsGenerator(PublicationsOptions options = {});

  doc::Corpus Generate() const;

  const PublicationsOptions& options() const { return options_; }

 private:
  PublicationsOptions options_;
};

/// Ambiguous queries over the publications corpus (author names spanning
/// topics, topic words spanning venues), ids QP1..QP8.
std::vector<WorkloadQuery> PublicationQueries();

}  // namespace qec::datagen

#endif  // QEC_DATAGEN_PUBLICATIONS_H_
