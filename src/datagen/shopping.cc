#include "datagen/shopping.h"

#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace qec::datagen {

namespace {

using doc::Feature;

/// Category-specific attribute: name plus the pool of values one of which
/// each product draws.
struct AttributeSpec {
  const char* attribute;
  std::vector<const char*> values;
};

/// One (brand, category, name-family) product line.
struct LineSpec {
  const char* brand;          // "canon"
  const char* category;       // "camera"
  const char* entity;         // entity prefix, e.g. "canon products"
  const char* family;         // name family, e.g. "powershot"
  const char* extra_entity;   // optional second entity ("networking products")
  std::vector<AttributeSpec> attributes;
};

std::vector<LineSpec> CatalogSpec() {
  // Attribute pools reused across lines of a category.
  const std::vector<AttributeSpec> camera_attrs = {
      {"image resolution", {"4752 x 3168", "3648 x 2736", "4272 x 2848"}},
      {"shutter speed", {"15 - 1/3200 sec.", "30 - 1/4000 sec."}},
      {"optical zoom", {"4x", "10x", "12x"}},
  };
  const std::vector<AttributeSpec> camcorder_attrs = {
      {"media format", {"flash card", "hard disk", "mini dv"}},
      {"optical zoom", {"20x", "37x", "41x"}},
  };
  const std::vector<AttributeSpec> printer_attrs = {
      {"print method", {"laser", "inkjet"}},
      {"condition", {"new", "refurbished"}},
      {"print resolution", {"4800 x 1200 dpi", "600 x 600 dpi"}},
  };
  const std::vector<AttributeSpec> tv_lcd_attrs = {
      {"display type", {"lcd hdtv"}},
      {"display area", {"26\"", "32\"", "37\""}},
      {"resolution", {"1080p", "720p"}},
  };
  const std::vector<AttributeSpec> tv_plasma_attrs = {
      {"display type", {"plasma hdtv"}},
      {"display area", {"42\"", "50\""}},
      {"resolution", {"1080p", "720p"}},
  };
  const std::vector<AttributeSpec> router_attrs = {
      {"rj-45 ports", {"4", "8"}},
      {"features", {"mac filtering", "wpa encryption", "qos"}},
      {"wireless", {"802.11n", "802.11g"}},
  };
  const std::vector<AttributeSpec> firewall_attrs = {
      {"vlans", {"portshield", "standard"}},
      {"form factor", {"desktop", "rackmount"}},
  };
  const std::vector<AttributeSpec> switch_attrs = {
      {"ports", {"8", "16", "24"}},
      {"speed", {"gigabit", "fast ethernet"}},
  };
  const std::vector<AttributeSpec> harddrive_attrs = {
      {"category", {"harddrive"}},
      {"memory size", {"500gb", "750gb", "1tb"}},
      {"type", {"internal", "external"}},
  };
  const std::vector<AttributeSpec> flash_attrs = {
      {"category", {"flashmemory"}},
      {"memory size", {"4gb", "8gb", "16gb"}},
      {"type", {"internal", "portable"}},
  };
  const std::vector<AttributeSpec> ddr3_attrs = {
      {"category", {"ddr3"}},
      {"memory size", {"2gb", "4gb", "8gb"}},
      {"speed", {"1333mhz", "1600mhz"}},
  };
  const std::vector<AttributeSpec> ddr2_attrs = {
      {"category", {"ddr2"}},
      {"memory size", {"1gb", "2gb", "4gb"}},
      {"speed", {"667mhz", "800mhz"}},
  };
  const std::vector<AttributeSpec> battery_attrs = {
      {"compatible models", {"pavilion dv6", "pavilion dv7", "elitebook"}},
      {"capacity", {"4400mah", "5200mah"}},
  };
  const std::vector<AttributeSpec> laptop_attrs = {
      {"screen size", {"14\"", "15.6\"", "17\""}},
      {"processor", {"core i5", "core i7"}},
  };

  return {
      // Canon (QS1): camcorders, printers, cameras.
      {"canon", "camcorders", "canon products", "vixia", nullptr,
       camcorder_attrs},
      {"canon", "printer", "canon products", "pixma", nullptr, printer_attrs},
      {"canon", "printer", "canon products", "imageclass", nullptr,
       printer_attrs},
      {"canon", "camera", "canon products", "powershot", nullptr,
       camera_attrs},
      {"canon", "camera", "canon products", "eos", nullptr, camera_attrs},
      // Networking (QS2, QS3): routers, firewalls, switches.
      {"cisco", "routers", "cisco products", "integr", "networking products",
       router_attrs},
      {"netgear", "routers", "netgear products", "rangemax",
       "networking products", router_attrs},
      {"linksys", "routers", "linksys products", "linksys",
       "networking products", router_attrs},
      {"d-link", "firewalls", "d-link products", "dir-130",
       "networking products", firewall_attrs},
      {"sonicwall", "firewalls", "sonicwall products", "tz-180",
       "networking products", firewall_attrs},
      {"d-link", "switches", "d-link products", "des-1008",
       "networking products", switch_attrs},
      {"netgear", "switches", "netgear products", "prosafe",
       "networking products", switch_attrs},
      // TVs (QS4, QS5).
      {"toshiba", "tv", "toshiba products", "regza", nullptr, tv_lcd_attrs},
      {"lg", "tv", "lg products", "42lg70", nullptr, tv_lcd_attrs},
      {"samsung", "tv", "samsung products", "touch of color", nullptr,
       tv_lcd_attrs},
      {"panasonic", "tv", "panasonic products", "viera", nullptr,
       tv_plasma_attrs},
      {"samsung", "tv", "samsung products", "pnseries", nullptr,
       tv_plasma_attrs},
      {"lg", "tv", "lg products", "60pg30", nullptr, tv_plasma_attrs},
      // HP (QS6): printer, battery, laptop.
      {"hp", "printer", "hp products", "laserjet", nullptr, printer_attrs},
      {"hp", "printer", "hp products", "deskjet", nullptr, printer_attrs},
      {"hp", "battery", "hp products", "lithium-ion", nullptr, battery_attrs},
      {"hp", "laptop", "hp products", "pavilion", nullptr, laptop_attrs},
      {"hp", "laptop", "hp products", "elitebook", nullptr, laptop_attrs},
      // Memory (QS7, QS8, QS9).
      {"hitachi", "memory", "hitachi products", "deskstar", nullptr,
       harddrive_attrs},
      {"seagate", "memory", "seagate products", "barracuda", nullptr,
       harddrive_attrs},
      {"cavalry", "memory", "cavalry products", "cavalry", nullptr,
       harddrive_attrs},
      {"kingston", "memory", "kingston products", "datatraveler", nullptr,
       flash_attrs},
      {"transcend", "memory", "transcend products", "jetflash", nullptr,
       flash_attrs},
      {"corsair", "memory", "corsair products", "vengeance", nullptr,
       ddr3_attrs},
      {"kingston", "memory", "kingston products", "hyperx", nullptr,
       ddr3_attrs},
      {"corsair", "memory", "corsair products", "xms2", nullptr, ddr2_attrs},
      // Epson printers so QS10 is not all Canon/HP.
      {"epson", "printer", "epson products", "workforce", nullptr,
       printer_attrs},
  };
}

}  // namespace

ShoppingGenerator::ShoppingGenerator(ShoppingOptions options)
    : options_(options) {}

doc::Corpus ShoppingGenerator::Generate() const {
  doc::Corpus corpus;
  Rng rng(options_.seed);
  int model_counter = 100;
  for (const LineSpec& line : CatalogSpec()) {
    for (size_t i = 0; i < options_.products_per_family; ++i) {
      std::string model =
          std::string(line.family) + " " + std::to_string(model_counter++);
      std::vector<Feature> features;
      // Identity features shared by every product.
      features.push_back(Feature{line.entity, "category", line.category});
      if (line.extra_entity != nullptr) {
        features.push_back(
            Feature{line.extra_entity, "category", line.category});
      }
      features.push_back(Feature{line.category, "brand", line.brand});
      features.push_back(Feature{line.category, "name", line.family});
      features.push_back(Feature{line.category, "model", model});
      // Category-specific attributes with randomly drawn values.
      for (const AttributeSpec& attr : line.attributes) {
        const char* value =
            attr.values[rng.UniformInt(attr.values.size())];
        features.push_back(Feature{line.category, attr.attribute, value});
      }
      std::string title = std::string(line.brand) + " " + model + " " +
                          std::string(line.category);
      corpus.AddStructuredDocument(std::move(title), std::move(features));
    }
  }
  return corpus;
}

}  // namespace qec::datagen
