#include "datagen/clustered.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "text/analyzer.h"

namespace qec::datagen {

ClusteredGenerator::ClusteredGenerator(ClusteredOptions options)
    : options_(std::move(options)) {
  QEC_CHECK(options_.num_clusters > 0);
  QEC_CHECK(options_.terms_per_doc > 0);
  QEC_CHECK(options_.topic_terms_per_cluster > 0);
  QEC_CHECK(options_.shared_vocab > 0);
}

doc::Corpus ClusteredGenerator::Generate() const {
  doc::Corpus corpus;
  text::Analyzer& analyzer = corpus.analyzer();
  analyzer.vocabulary().Reserve(
      options_.shared_vocab +
      options_.num_clusters * options_.topic_terms_per_cluster);

  // Vocabulary layout is fixed: background terms first, then each
  // cluster's topic block. Interning order defines TermIds, so the whole
  // corpus is deterministic in TermId space.
  std::vector<TermId> background(options_.shared_vocab);
  for (size_t i = 0; i < options_.shared_vocab; ++i) {
    background[i] = analyzer.InternVerbatim("w" + std::to_string(i));
  }
  std::vector<std::vector<TermId>> topics(options_.num_clusters);
  for (size_t k = 0; k < options_.num_clusters; ++k) {
    topics[k].reserve(options_.topic_terms_per_cluster);
    for (size_t j = 0; j < options_.topic_terms_per_cluster; ++j) {
      topics[k].push_back(analyzer.InternVerbatim(
          "c" + std::to_string(k) + "t" + std::to_string(j)));
    }
  }

  Rng rng(options_.seed);
  std::vector<TermId> terms;
  terms.reserve(options_.terms_per_doc);
  for (size_t i = 0; i < options_.num_docs; ++i) {
    const size_t cluster =
        options_.interleave ? i % options_.num_clusters
                            : i * options_.num_clusters /
                                  std::max<size_t>(options_.num_docs, 1);
    const std::vector<TermId>& topic = topics[cluster];
    terms.clear();
    for (size_t t = 0; t < options_.terms_per_doc; ++t) {
      if (rng.Bernoulli(options_.topic_fraction)) {
        terms.push_back(topic[rng.UniformInt(topic.size())]);
      } else {
        terms.push_back(background[rng.UniformInt(background.size())]);
      }
    }
    corpus.RestoreDocument(doc::DocumentKind::kText,
                           "doc" + std::to_string(i), terms, {});
  }
  QEC_COUNTER_INC("datagen/clustered_corpora");
  QEC_COUNTER_ADD("datagen/clustered_docs", options_.num_docs);
  return corpus;
}

}  // namespace qec::datagen
