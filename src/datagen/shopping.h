#ifndef QEC_DATAGEN_SHOPPING_H_
#define QEC_DATAGEN_SHOPPING_H_

#include <cstdint>

#include "doc/corpus.h"

namespace qec::datagen {

/// Shopping-catalog generator knobs.
struct ShoppingOptions {
  uint64_t seed = 7;
  /// Products generated per (brand, category, name-family) cell.
  size_t products_per_family = 5;
};

/// Synthetic stand-in for the paper's shopping dataset (electronics crawled
/// from circuitcity.com): structured products with a title, category, brand
/// and category-specific feature triplets.
///
/// The catalog is shaped so the paper's observations hold: products of
/// different categories have (near-)disjoint feature vocabularies, so
/// cluster-per-category expanded queries can reach perfect precision and
/// recall (Sec. 5.2.2), and every Table 1 shopping query (QS1-QS10) has a
/// multi-category result set to classify.
class ShoppingGenerator {
 public:
  explicit ShoppingGenerator(ShoppingOptions options = {});

  /// Builds the catalog corpus (structured documents only).
  doc::Corpus Generate() const;

  const ShoppingOptions& options() const { return options_; }

 private:
  ShoppingOptions options_;
};

}  // namespace qec::datagen

#endif  // QEC_DATAGEN_SHOPPING_H_
