#include "datagen/workload.h"

namespace qec::datagen {

std::vector<WorkloadQuery> ShoppingQueries() {
  return {
      {"QS1", "canon products"},
      {"QS2", "networking products"},
      {"QS3", "networking products routers"},
      {"QS4", "tv"},
      {"QS5", "tv plasma"},
      {"QS6", "hp products"},
      {"QS7", "memory"},
      {"QS8", "memory 8gb"},
      {"QS9", "memory internal"},
      {"QS10", "printer"},
  };
}

std::vector<WorkloadQuery> WikipediaQueries() {
  return {
      {"QW1", "san jose"},
      {"QW2", "columbia"},
      {"QW3", "cvs"},
      {"QW4", "domino"},
      {"QW5", "eclipse"},
      {"QW6", "java"},
      {"QW7", "cell"},
      {"QW8", "rockets"},
      {"QW9", "mouse"},
      {"QW10", "sportsman williams"},
  };
}

std::vector<baselines::QueryLogEntry> SyntheticQueryLog() {
  // Counts model popularity in a skewed (approximately Zipfian) way.
  // Roughly two thirds of the suggested extra words exist in the corpora
  // (as the paper's Google suggestions mostly did); the rest (careers,
  // sony, guide, dell...) are deliberately off-corpus — the paper's QS1
  // observation that log-based suggestions can ignore the result corpus.
  return {
      // QW1 san jose
      {"san jose california", 950},
      {"san jose hockey", 720},
      {"san jose costa rica", 510},
      // QW2 columbia
      {"columbia university", 980},
      {"columbia river", 640},
      {"columbia country", 505},
      // QW3 cvs
      {"cvs store", 890},
      {"cvs caremark", 560},
      {"cvs careers", 430},
      // QW4 domino
      {"domino game", 870},
      {"domino pizza", 660},
      {"domino movie", 480},
      // QW5 eclipse
      {"eclipse mitsubishi", 920},
      {"eclipse solar", 700},
      {"eclipse download", 690},
      // QW6 java
      {"java code", 990},
      {"java coffee", 760},
      {"java tutorials", 520},
      // QW7 cell
      {"cell biology", 830},
      {"cell battery", 610},
      {"cell theory", 450},
      // QW8 rockets: every popular suggestion is about space/model rockets
      // (the diversity failure the paper reports for Google: no NBA).
      {"model rockets", 940},
      {"space rockets", 880},
      {"bottle rockets", 590},
      // QW9 mouse
      {"mouse cartoon", 810},
      {"mouse species", 570},
      {"mouse pictures", 410},
      // QW10 sportsman williams
      {"sportsman williams football", 640},
      {"sportsman williams baseball", 520},
      {"sportsman williams news", 330},
      // QS1 canon products
      {"canon products camera", 900},
      {"canon products printer", 750},
      {"sony products", 500},
      // QS2 networking products
      {"networking products routers", 860},
      {"networking products switches", 650},
      {"social networking products", 380},
      // QS3 networking products routers
      {"networking products routers linksys", 700},
      {"networking products wireless routers", 540},
      {"networking products routers wood", 300},
      // QS4 tv
      {"tv plasma", 820},
      {"tv toshiba", 630},
      {"tv guide", 360},
      // QS5 tv plasma
      {"tv plasma panasonic", 780},
      {"tv plasma lcd", 600},
      {"tv plasma bestbuy", 340},
      // QS6 hp products
      {"hp products printer", 840},
      {"hp products laptop", 620},
      {"hp products corporation", 470},
      // QS7 memory
      {"memory harddrive", 930},
      {"memory ddr3", 740},
      {"human memory", 490},
      // QS8 memory 8gb
      {"memory 8gb flashmemory", 710},
      {"memory 8gb kingston", 550},
      {"memory cards 8gb", 420},
      // QS9 memory internal
      {"memory internal harddrive", 680},
      {"dell internal memory", 390},
      // QS10 printer
      {"printer canon", 910},
      {"printer laser", 770},
      {"printer reviews", 430},
  };
}

}  // namespace qec::datagen
