#ifndef QEC_DATAGEN_CLUSTERED_H_
#define QEC_DATAGEN_CLUSTERED_H_

#include <cstdint>

#include "doc/corpus.h"

namespace qec::datagen {

/// Knobs for the synthetic clustered-corpus generator.
struct ClusteredOptions {
  uint64_t seed = 11;
  /// Documents to generate.
  size_t num_docs = 100000;
  /// Topic clusters. Each document belongs to exactly one.
  size_t num_clusters = 64;
  /// Terms per document (with repetition; term frequencies > 1 occur).
  size_t terms_per_doc = 18;
  /// Cluster-exclusive topic terms per cluster.
  size_t topic_terms_per_cluster = 12;
  /// Background vocabulary shared by every cluster.
  size_t shared_vocab = 5000;
  /// Probability that a term draw comes from the document's topic pool
  /// rather than the shared background vocabulary.
  double topic_fraction = 0.6;
  /// When true (the default), documents of different clusters are
  /// interleaved round-robin in doc-id order, so same-cluster documents
  /// sit ~num_clusters apart — the worst case for delta+varbyte posting
  /// gaps, and exactly what `index-build --reorder=cluster` undoes.
  bool interleave = true;
};

/// Fast synthetic corpus with planted cluster structure, built directly in
/// TermId space (no tokenization), so multi-million-doc corpora generate in
/// seconds. Topic terms are cluster-exclusive: a cluster's posting lists
/// touch only its own documents, which makes the cluster-aware doc-id
/// reorder shrink the INDX section measurably. Deterministic for a fixed
/// options struct.
class ClusteredGenerator {
 public:
  explicit ClusteredGenerator(ClusteredOptions options = {});

  doc::Corpus Generate() const;

  const ClusteredOptions& options() const { return options_; }

 private:
  ClusteredOptions options_;
};

}  // namespace qec::datagen

#endif  // QEC_DATAGEN_CLUSTERED_H_
