#include "datagen/publications.h"

#include <string>

#include "common/random.h"

namespace qec::datagen {

namespace {

struct TopicSpec {
  const char* name;
  std::vector<const char*> title_words;
  std::vector<const char*> venues;
  /// Authors publishing in this topic; several appear in multiple topics
  /// (the ambiguity the expansion has to untangle).
  std::vector<const char*> authors;
};

std::vector<TopicSpec> TopicSpecs() {
  return {
      {"keyword-search",
       {"keyword", "search", "ranked", "relational", "candidate", "network",
        "effective", "semantics"},
       {"vldb", "sigmod", "icde"},
       {"chen", "wang", "hristidis", "papakonstantinou"}},
      {"query-expansion",
       {"query", "expansion", "feedback", "relevance", "terms", "pseudo",
        "reformulation", "suggestion"},
       {"sigir", "cikm", "vldb"},
       {"chen", "croft", "robertson", "zhai"}},
      {"clustering",
       {"clustering", "partition", "density", "hierarchical", "centroid",
        "spectral", "scalable", "streams"},
       {"kdd", "icdm", "sigmod"},
       {"wang", "han", "aggarwal", "kumar"}},
      {"indexing",
       {"index", "btree", "compression", "inverted", "cache", "disk",
        "update", "workload"},
       {"vldb", "sigmod", "icde"},
       {"graefe", "lehman", "wang", "lomet"}},
      {"ranking",
       {"ranking", "learning", "pairwise", "features", "evaluation",
        "listwise", "gradient", "judgments"},
       {"sigir", "wsdm", "kdd"},
       {"liu", "burges", "croft", "joachims"}},
  };
}

}  // namespace

PublicationsGenerator::PublicationsGenerator(PublicationsOptions options)
    : options_(options) {}

doc::Corpus PublicationsGenerator::Generate() const {
  doc::Corpus corpus;
  Rng rng(options_.seed);
  int paper_id = 1;
  for (const TopicSpec& topic : TopicSpecs()) {
    for (const char* venue : topic.venues) {
      for (size_t p = 0; p < options_.papers_per_cell; ++p) {
        // Title: 4-6 topic words.
        std::string title;
        const size_t title_len = 4 + rng.UniformInt(3);
        for (size_t w = 0; w < title_len; ++w) {
          if (w > 0) title += ' ';
          title += topic.title_words[rng.UniformInt(
              topic.title_words.size())];
        }
        std::vector<doc::Feature> features;
        features.push_back({"publication", "title", title});
        features.push_back({"publication", "venue", venue});
        features.push_back(
            {"publication", "year",
             std::to_string(1998 + rng.UniformInt(13))});
        features.push_back({"publication", "topic", topic.name});
        // 1-3 authors from the topic's pool.
        const size_t num_authors = 1 + rng.UniformInt(3);
        std::vector<size_t> picks =
            rng.SampleWithoutReplacement(topic.authors.size(), num_authors);
        for (size_t a : picks) {
          features.push_back({"publication", "author", topic.authors[a]});
        }
        corpus.AddStructuredDocument(
            "paper " + std::to_string(paper_id++) + " (" + venue + ")",
            std::move(features));
      }
    }
  }
  return corpus;
}

std::vector<WorkloadQuery> PublicationQueries() {
  return {
      {"QP1", "chen"},        // keyword-search + query-expansion author
      {"QP2", "wang"},        // three-topic author
      {"QP3", "croft"},       // query-expansion + ranking author
      {"QP4", "vldb"},        // venue spanning three topics
      {"QP5", "sigmod"},      // venue spanning three topics
      {"QP6", "sigir"},       // venue spanning two topics
      {"QP7", "query"},       // title word
      {"QP8", "publication"}, // everything: pure exploratory query
  };
}

}  // namespace qec::datagen
