#include "datagen/wikipedia.h"

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "xml/xml.h"

namespace qec::datagen {

namespace {

/// One sense (interpretation) of an ambiguous topic.
struct SenseSpec {
  const char* name;
  /// Appear in every article of the sense — the words a good expanded
  /// query can use to cover the whole cluster.
  std::vector<const char*> core_words;
  /// Appear with probability ~0.4 per sentence.
  std::vector<const char*> flavor_words;
  /// Rank-dominance weight: scales article count and topic-word frequency.
  double dominance;
};

struct TopicSpec {
  const char* id;  // matches the workload id, e.g. "QW6"
  std::vector<const char*> topic_words;
  std::vector<SenseSpec> senses;
};

const std::vector<const char*>& FillerWords() {
  static const std::vector<const char*> kFiller = {
      "history",     "world",    "time",     "people",   "year",
      "work",        "part",     "place",    "group",    "number",
      "national",    "early",    "later",    "known",    "called",
      "major",       "large",    "include",  "area",     "development",
      "information", "site",     "source",   "century",  "local",
      "public",      "term",     "common",   "form",     "found",
      "region",      "several",  "important", "named",   "official",
      "project",     "original", "first",    "second",   "main",
      "became",      "within",   "along",    "community", "center",
      "established", "service",  "event",    "article",  "reference",
  };
  return kFiller;
}

const std::vector<const char*>& BackgroundWords() {
  static const std::vector<const char*> kBackground = {
      "mountain", "railway",  "poetry",   "harvest",  "galaxy",
      "opera",    "bridge",   "treaty",   "dynasty",  "festival",
      "canal",    "cathedral", "glacier", "parliament", "violin",
      "meadow",   "lantern",  "compass",  "voyage",   "harbor",
      "castle",   "legend",   "market",   "temple",   "desert",
      "forest",   "economy",  "election", "painting", "sculpture",
      "physics",  "chemistry", "farming", "textile",  "currency",
      "climate2", "plateau",  "lagoon",   "monastery", "archive",
  };
  return kBackground;
}

std::vector<TopicSpec> Topics() {
  return {
      {"QW1",
       {"san", "jose"},
       {{"city",
         {"california", "city", "downtown"},
         {"silicon", "valley", "county", "population", "location", "mission",
          "neighborhood", "climate", "municipal", "mayor"},
         1.0},
        {"hockey",
         {"player", "hockey", "team"},
         {"sharks", "season", "league", "arena", "playoff", "coach", "game",
          "score", "goal", "scorer"},
         0.8},
        {"arena-football",
         {"player", "football", "sabercat"},
         {"arena", "season", "kick", "touchdown", "quarterback", "league",
          "roster", "game", "field"},
         0.5}}},
      {"QW2",
       {"columbia"},
       {{"university",
         {"university", "college", "research"},
         {"campus", "student", "professor", "faculty", "library", "graduate",
          "school", "academic", "journalism", "manhattan"},
         1.0},
        {"records",
         {"album", "record", "label"},
         {"music", "artist", "release", "studio", "song", "singer", "band",
          "produce", "track", "essential"},
         0.8},
        {"british-columbia",
         {"british", "river", "mountain"},
         {"canada", "vancouver", "province", "basin", "gorge", "salmon",
          "pacific", "northwest", "territory", "highway"},
         0.6}}},
      {"QW3",
       {"cvs"},
       {{"pharmacy",
         {"store", "retail", "household"},
         {"pharmacy", "prescription", "drug", "shop", "prince", "caremark",
          "chain", "customer", "location", "corporation"},
         1.0},
        {"version-control",
         {"code", "repository", "community"},
         {"software", "developer", "commit", "branch", "version", "module",
          "open", "checkout", "merge", "concurrent"},
         0.8},
        {"place",
         {"southwest", "settlement", "township"},
         {"station", "indiana", "webster", "county", "village", "railroad",
          "historic", "creek", "post"},
         0.5}}},
      {"QW4",
       {"domino"},
       {{"pizza",
         {"pizza", "restaurant", "food"},
         {"delivery", "franchise", "menu", "store", "chain", "order",
          "cheese", "outlet", "brand"},
         1.0},
        {"music",
         {"album", "vocal", "produce"},
         {"record", "song", "single", "release", "band", "piano", "fats",
          "studio", "billboard", "queen"},
         0.8},
        {"game",
         {"game", "tile", "player"},
         {"rule", "bone", "set", "play", "match", "point", "spinner",
          "double", "hand", "page"},
         0.6}}},
      {"QW5",
       {"eclipse"},
       {{"software",
         {"model", "software", "plugin"},
         {"ide", "platform", "tool", "develop", "environment", "automate",
          "core", "workspace", "framework", "release"},
         1.0},
        {"astronomy",
         {"solar", "moon", "greek"},
         {"lunar", "sun", "shadow", "ancient", "observe", "astronomer",
          "total", "partial", "orbit", "athenian"},
         0.8},
        {"car",
         {"mitsubishi", "car", "engine"},
         {"coupe", "vehicle", "turbo", "drive", "speed", "motor", "march",
          "model", "sport"},
         0.5}}},
      {"QW6",
       {"java"},
       {{"programming",
         {"server", "code", "web"},
         {"application", "program", "language", "class", "object", "virtual",
          "machine", "software", "develop", "aspectj"},
         1.0},
        {"island",
         {"island", "indonesia", "western"},
         {"south", "volcano", "population", "sea", "rice", "province",
          "capital", "jakarta", "strait", "dense"},
         0.7},
        {"coffee",
         {"coffee", "bean", "roast"},
         {"brew", "drink", "cup", "flavor", "blend", "espresso", "aroma",
          "plantation", "trade"},
         0.5}}},
      {"QW7",
       {"cell"},
       {{"biology",
         {"biological", "membrane", "organism"},
         {"nucleus", "protein", "tissue", "dna", "mitosis", "biology",
          "molecular", "gene", "multicellular", "kinase"},
         1.0},
        {"phone",
         {"express", "data", "mobile"},
         {"phone", "wireless", "network", "signal", "carrier", "tower",
          "subscriber", "coverage", "plan"},
         0.8},
        {"battery",
         {"battery", "voltage", "electrode"},
         {"lithium", "charge", "energy", "power", "chemical", "anode",
          "cathode", "capacity", "cycle"},
         0.6}}},
      {"QW8",
       {"rockets"},
       {{"space",
         {"launch", "space", "orbit"},
         {"nasa", "fuel", "engine", "satellite", "mission", "stage",
          "propellant", "vehicle", "flight", "payload"},
         1.0},
        {"nba",
         {"nba", "houston", "basketball"},
         {"team", "season", "player", "coach", "playoff", "game", "score",
          "maxwell", "draft"},
         0.8},
        {"model",
         {"model", "hobby", "built"},
         {"kit", "bottle", "amateur", "motor", "recovery", "parachute",
          "altitude", "interior", "club"},
         0.5}}},
      {"QW9",
       {"mouse"},
       {{"computer",
         {"technique", "wheel", "interface"},
         {"button", "cursor", "click", "device", "optical", "scroll",
          "pointer", "desktop", "usb"},
         1.0},
        {"animal",
         {"scientific", "species", "rodent"},
         {"laboratory", "gene", "fossil", "habitat", "tail", "mammal",
          "wild", "birch", "hesperian"},
         0.8},
        {"cartoon",
         {"cartoon", "television", "animation"},
         {"character", "disney", "adventure", "show", "episode", "comic",
          "studio", "mystery", "laugh"},
         0.6}}},
      {"QW10",
       {"sportsman", "williams"},
       {{"baseball",
         {"baseball", "smith", "point"},
         {"batter", "league", "season", "hitter", "average", "home", "run",
          "pennant", "boston"},
         1.0},
        {"football",
         {"football", "launch", "fire"},
         {"quarterback", "touchdown", "league", "draft", "team", "field",
          "yard", "tackle"},
         0.8},
        {"snooker",
         {"club", "stuart", "championship"},
         {"tournament", "title", "frame", "cue", "break", "ranking", "final",
          "professional"},
         0.6}}},
  };
}

class ArticleWriter {
 public:
  ArticleWriter(const WikipediaOptions& options, Rng& rng)
      : options_(options), rng_(rng) {}

  /// Sets the topic-associated, sense-agnostic vocabulary for the current
  /// topic. These words appear with high frequency in every sense, so they
  /// top the TF-IDF-rank word list while being useless for classification
  /// — the "too general" Data Clouds trap (Sec. 5.2.1).
  void SetGenericWords(std::vector<std::string> words) {
    generic_words_ = std::move(words);
  }

  /// Renders one article of `sense` (of `topic`) as XML.
  std::string WriteArticle(const TopicSpec& topic, size_t sense_index,
                           size_t article_index) {
    const SenseSpec& sense = topic.senses[sense_index];
    auto article = xml::XmlNode::Element("article");
    article->SetAttribute("id", std::string(topic.id) + "-" +
                                    sense.name + "-" +
                                    std::to_string(article_index));
    std::string title;
    for (const char* w : topic.topic_words) {
      title += w;
      title += ' ';
    }
    title += sense.name;
    title += " article ";
    title += std::to_string(article_index);
    article->AddElementWithText("title", title);

    auto* body = article->AddChild(xml::XmlNode::Element("body"));
    auto* sec = body->AddChild(xml::XmlNode::Element("sec"));
    const size_t num_sentences = 4 + rng_.UniformInt(5);
    for (size_t s = 0; s < num_sentences; ++s) {
      sec->AddElementWithText("p", MakeSentence(topic, sense_index, s == 0));
    }
    if (rng_.UniformDouble() < options_.jargon_probability) {
      // A document-specific technical term, heavily repeated: top-ranked by
      // TF-IDF yet covering exactly one result.
      std::string jargon = MakeJargonWord();
      std::string sentence;
      const size_t reps = 5 + rng_.UniformInt(5);
      for (size_t r = 0; r < reps; ++r) {
        if (r > 0) sentence += ' ';
        sentence += jargon;
      }
      sentence += '.';
      sec->AddElementWithText("p", sentence);
    }
    return xml::WriteNode(*article);
  }

 private:
  std::string MakeJargonWord() {
    static constexpr const char* kSyllables[] = {
        "zor", "vex", "lud", "rix", "ket", "mab", "tha", "qui",
        "pol", "dra", "fen", "gos", "hul", "jin", "wok", "yar",
    };
    std::string word;
    const size_t syllables = 3 + rng_.UniformInt(2);
    for (size_t s = 0; s < syllables; ++s) {
      word += kSyllables[rng_.UniformInt(std::size(kSyllables))];
    }
    return word;
  }

  std::string MakeSentence(const TopicSpec& topic, size_t sense_index,
                           bool lead_sentence) {
    const SenseSpec& sense = topic.senses[sense_index];
    std::vector<std::string> words;
    // Topic words: every article must contain all of them (AND retrieval);
    // dominant senses repeat them more (higher tf -> higher rank).
    if (lead_sentence) {
      size_t reps = 1 + static_cast<size_t>(sense.dominance * 3.0);
      for (size_t r = 0; r < reps; ++r) {
        for (const char* w : topic.topic_words) words.push_back(w);
      }
      // Core sense words present in most articles — but not all, so no
      // single keyword retrieves the entire cluster.
      for (const char* w : sense.core_words) {
        if (rng_.UniformDouble() < options_.core_word_coverage) {
          words.push_back(w);
        }
      }
    }
    const size_t len = 8 + rng_.UniformInt(7);
    while (words.size() < len) {
      double roll = rng_.UniformDouble();
      if (roll < 0.35 && !sense.flavor_words.empty()) {
        words.push_back(
            sense.flavor_words[rng_.UniformInt(sense.flavor_words.size())]);
      } else if (roll < 0.35 + options_.contamination &&
                 topic.senses.size() > 1) {
        // Cross-sense contamination: core and flavor words of other senses
        // leak in, so precision-perfect queries are rare.
        size_t other = rng_.UniformInt(topic.senses.size());
        if (other != sense_index) {
          const auto& o = topic.senses[other];
          if (rng_.UniformDouble() < 0.4 && !o.core_words.empty()) {
            words.push_back(o.core_words[rng_.UniformInt(o.core_words.size())]);
          } else if (!o.flavor_words.empty()) {
            words.push_back(
                o.flavor_words[rng_.UniformInt(o.flavor_words.size())]);
          }
        }
      } else if (roll < 0.45) {
        words.push_back(sense.core_words[rng_.UniformInt(
            sense.core_words.size())]);
      } else if (roll < 0.70 && !generic_words_.empty()) {
        words.push_back(
            generic_words_[rng_.UniformInt(generic_words_.size())]);
      } else {
        words.push_back(
            FillerWords()[rng_.UniformInt(FillerWords().size())]);
      }
    }
    std::string sentence;
    for (size_t i = 0; i < words.size(); ++i) {
      if (i > 0) sentence += ' ';
      sentence += words[i];
    }
    sentence += '.';
    return sentence;
  }

  const WikipediaOptions& options_;
  Rng& rng_;
  std::vector<std::string> generic_words_;
};

}  // namespace

WikipediaGenerator::WikipediaGenerator(WikipediaOptions options)
    : options_(options) {}

std::vector<std::string> WikipediaGenerator::GenerateArticlesXml() const {
  Rng rng(options_.seed);
  ArticleWriter writer(options_, rng);
  std::vector<std::string> articles;
  for (const TopicSpec& topic : Topics()) {
    // Four synthetic topic-generic pseudo-words (sense-agnostic jargon of
    // the topic's domain, like "nabble"/"bit" in the paper's Fig. 8 Data
    // Clouds output).
    static constexpr const char* kSyllables[] = {
        "bel", "cor", "dun", "fam", "gri", "hob", "lim", "nar",
        "ost", "pra", "sil", "tur", "urm", "vin", "wel", "xan",
    };
    std::vector<std::string> generic;
    for (int g = 0; g < 4; ++g) {
      std::string w;
      for (int s = 0; s < 3; ++s) {
        w += kSyllables[rng.UniformInt(std::size(kSyllables))];
      }
      generic.push_back(std::move(w));
    }
    writer.SetGenericWords(std::move(generic));
    for (size_t s = 0; s < topic.senses.size(); ++s) {
      const size_t count = std::max<size_t>(
          2, static_cast<size_t>(static_cast<double>(options_.docs_per_sense) *
                                 topic.senses[s].dominance));
      for (size_t a = 0; a < count; ++a) {
        articles.push_back(writer.WriteArticle(topic, s, a));
      }
    }
  }
  // Background articles: filler + background vocabulary, no topic words.
  for (size_t b = 0; b < options_.background_docs; ++b) {
    auto article = xml::XmlNode::Element("article");
    article->SetAttribute("id", "background-" + std::to_string(b));
    article->AddElementWithText("title",
                                "background article " + std::to_string(b));
    auto* body = article->AddChild(xml::XmlNode::Element("body"));
    auto* sec = body->AddChild(xml::XmlNode::Element("sec"));
    const size_t num_sentences = 3 + rng.UniformInt(4);
    for (size_t s = 0; s < num_sentences; ++s) {
      std::string sentence;
      const size_t len = 8 + rng.UniformInt(7);
      for (size_t i = 0; i < len; ++i) {
        if (i > 0) sentence += ' ';
        if (rng.UniformDouble() < 0.4) {
          sentence += BackgroundWords()[rng.UniformInt(
              BackgroundWords().size())];
        } else {
          sentence += FillerWords()[rng.UniformInt(FillerWords().size())];
        }
      }
      sentence += '.';
      sec->AddElementWithText("p", sentence);
    }
    articles.push_back(xml::WriteNode(*article));
  }
  return articles;
}

doc::Corpus WikipediaGenerator::Generate() const {
  doc::Corpus corpus;
  for (const std::string& xml_text : GenerateArticlesXml()) {
    Result<xml::XmlDocument> parsed = xml::Parse(xml_text);
    QEC_CHECK(parsed.ok()) << parsed.status().ToString();
    const xml::XmlNode& root = *parsed->root;
    const xml::XmlNode* title = root.FindChild("title");
    corpus.AddTextDocument(
        title != nullptr ? title->InnerText() : std::string(root.Attribute("id")),
        root.InnerText());
  }
  return corpus;
}

}  // namespace qec::datagen
