#ifndef QEC_DATAGEN_WORKLOAD_H_
#define QEC_DATAGEN_WORKLOAD_H_

#include <string>
#include <vector>

#include "baselines/query_log.h"

namespace qec::datagen {

/// One Table 1 test query.
struct WorkloadQuery {
  std::string id;    // "QS1".."QS10" / "QW1".."QW10"
  std::string text;  // the keyword query
};

/// The ten shopping queries of Table 1 (QS1-QS10).
std::vector<WorkloadQuery> ShoppingQueries();

/// The ten Wikipedia queries of Table 1 (QW1-QW10).
std::vector<WorkloadQuery> WikipediaQueries();

/// A synthetic search-engine query log covering the Table 1 queries —
/// the substitution for the paper's Google baseline (suggestions mined from
/// a real query log). Popularity is deliberately skewed: e.g. every popular
/// "rockets" query is about space rockets (the paper's diversity failure),
/// and some suggestions use off-corpus words ("sony products" for QS1).
std::vector<baselines::QueryLogEntry> SyntheticQueryLog();

}  // namespace qec::datagen

#endif  // QEC_DATAGEN_WORKLOAD_H_
