#ifndef QEC_DATAGEN_WIKIPEDIA_H_
#define QEC_DATAGEN_WIKIPEDIA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "doc/corpus.h"

namespace qec::datagen {

/// Wikipedia-corpus generator knobs.
struct WikipediaOptions {
  uint64_t seed = 11;
  /// Articles generated per sense of each ambiguous topic (scaled by the
  /// sense's dominance weight, so senses are rank-imbalanced like the
  /// paper's "apple" example).
  size_t docs_per_sense = 12;
  /// Unrelated background articles (vocabulary ballast for IDF).
  size_t background_docs = 80;
  /// Probability that a sense-specific word leaks into an article of a
  /// different sense of the same topic (cross-contamination makes perfect
  /// expansion impossible, as on the paper's Wikipedia data).
  double contamination = 0.12;
  /// Probability that each core sense word actually appears in an article
  /// of its sense. Below 1.0, no single keyword covers a whole cluster, so
  /// perfect recall is usually impossible — matching the paper's Wikipedia
  /// scores staying below the shopping ones.
  double core_word_coverage = 0.8;
  /// Probability that an article carries a document-specific "jargon" word
  /// repeated many times (like "multicellular" in the paper's QW7 example).
  /// Such words have top TF-IDF-rank scores yet cover a single result —
  /// the trap that makes Data Clouds / CS pick over-specific expansions.
  double jargon_probability = 0.8;
};

/// Synthetic stand-in for the INEX 2009 document-centric Wikipedia XML
/// collection: for each ambiguous Table 1 topic (QW1-QW10) it writes XML
/// articles for every sense of the topic, with long sentence-like word
/// mixtures over a shared filler vocabulary. Articles are rendered to XML,
/// re-parsed with qec::xml (exercising the real ingestion path), and
/// indexed as text documents.
class WikipediaGenerator {
 public:
  explicit WikipediaGenerator(WikipediaOptions options = {});

  /// Builds the corpus (parses every generated XML article).
  doc::Corpus Generate() const;

  /// The raw XML articles (same content Generate() indexes).
  std::vector<std::string> GenerateArticlesXml() const;

  const WikipediaOptions& options() const { return options_; }

 private:
  WikipediaOptions options_;
};

}  // namespace qec::datagen

#endif  // QEC_DATAGEN_WIKIPEDIA_H_
