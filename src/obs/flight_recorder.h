#ifndef QEC_OBS_FLIGHT_RECORDER_H_
#define QEC_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace qec::obs {

/// Everything worth keeping about one completed request: identity, where
/// the time went, and what the expander did. Plain integers rather than the
/// core stats structs so qec_obs stays dependency-free.
struct RequestRecord {
  /// Request trace id (16-hex-digit rendering in JSON); 0 = unknown.
  uint64_t trace_id = 0;
  /// Wall-clock completion time, milliseconds since the Unix epoch.
  uint64_t unix_ms = 0;
  std::string query;
  std::string algo;    // "ISKR" / "PEBC" / "F-measure"
  std::string status;  // StatusCodeName: "Ok", "DeadlineExceeded", ...
  bool from_cache = false;

  /// Per-stage latency breakdown (see server/request_context.h).
  uint64_t queue_wait_ns = 0;
  uint64_t cache_lookup_ns = 0;
  uint64_t expansion_ns = 0;
  uint64_t serialize_ns = 0;
  uint64_t total_ns = 0;

  /// Expander accounting, summed over clusters (ExpansionOutcome stats).
  uint64_t iskr_steps = 0;
  uint64_t iskr_candidates_evaluated = 0;
  uint64_t pebc_samples_drawn = 0;
  uint64_t pebc_candidates_evaluated = 0;

  /// Expansion quality (Eq. 1 set score); negative = not recorded (errors,
  /// non-expansion records). Serialized only when >= 0.
  double set_score = -1.0;
  /// True when the shadow A/B sampler enqueued a shadow run for this
  /// request.
  bool shadow_sampled = false;
  /// Shadow comparison fields; empty/negative/zero until a shadow run
  /// completed and was scored (they ride the comparison record, not the
  /// original request's). Serialized only when shadow_algo is non-empty.
  std::string shadow_algo;
  double shadow_set_score = -1.0;
  std::string ab_winner;  // "primary" / "shadow" / "tie"
  uint64_t shadow_expansion_ns = 0;

  /// One-line JSON object (also the JSONL dump format).
  std::string ToJsonLine() const;
};

/// Parses one ToJsonLine() line back into a record (unknown keys are
/// ignored; missing keys keep their defaults).
Result<RequestRecord> RequestRecordFromJson(std::string_view line);

/// Fixed-size ring buffer of recently completed request records, plus an
/// optional JSONL dump file for records worth keeping forever (errors and
/// slow requests — the caller decides and calls Dump()).
///
/// Record() takes one short mutex-guarded critical section (a handful of
/// string moves into a preallocated slot); it is cheap enough to stay on
/// for every request, which is the point of a flight recorder: when a
/// request goes wrong you already have its black box.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 256);

  void Record(RequestRecord record);

  /// Up to `max` most recent records, newest first.
  std::vector<RequestRecord> Recent(size_t max) const;

  /// Total records ever passed to Record() (ring overwrites don't forget).
  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }
  void Clear();

  /// Configures the JSONL dump file ("" disables). Opened in append mode
  /// per Dump() call — the dump path is the cold path.
  void SetDumpPath(std::string path);
  const std::string& dump_path() const { return dump_path_; }

  /// Appends one JSONL line to the dump file. No-op (returns true) when no
  /// dump path is configured; false on I/O failure.
  bool Dump(const RequestRecord& record);

  /// Records successfully written by Dump().
  uint64_t dumped() const { return dumped_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;

  mutable std::mutex mu_;
  std::vector<RequestRecord> ring_;
  uint64_t total_ = 0;  // next slot is total_ % capacity_

  std::mutex dump_mu_;
  std::string dump_path_;
  std::atomic<uint64_t> dumped_{0};
};

}  // namespace qec::obs

#endif  // QEC_OBS_FLIGHT_RECORDER_H_
