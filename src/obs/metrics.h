#ifndef QEC_OBS_METRICS_H_
#define QEC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qec::obs {

/// Monotonic event counter. All operations are lock-free relaxed atomics:
/// safe to increment from any thread inside hot loops.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins double gauge (Add uses a CAS loop).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// One exemplar: the most recent traced observation that landed in a
/// histogram bucket — the exact recorded value, the request's trace id, and
/// the wall-clock time. Exposed on `_bucket` lines in OpenMetrics format so
/// a slow bucket links straight to its flight-recorder record.
struct Exemplar {
  uint64_t trace_id = 0;  // 0 = no exemplar recorded
  uint64_t value = 0;
  uint64_t unix_ms = 0;
};

/// Fixed-bucket histogram over non-negative integer samples (typically
/// nanoseconds). Buckets are base-2 exponential: bucket 0 holds the value
/// 0 and bucket i (i >= 1) holds [2^(i-1), 2^i - 1], so Record() is a
/// bit_width plus two relaxed increments. Percentiles interpolate linearly
/// inside the containing bucket.
class Histogram {
 public:
  /// bit_width(uint64) ranges over [0, 64].
  static constexpr size_t kNumBuckets = 65;

  void Record(uint64_t value);

  /// Record() plus a bucket exemplar: the trace id (0 = skip the exemplar)
  /// and value are stored on the containing bucket, last-writer-wins. The
  /// exemplar store takes a mutex — this is for once-per-request latency
  /// sites, not inner loops (Record() stays lock-free).
  void Record(uint64_t value, uint64_t exemplar_trace_id);

  /// The most recent exemplar of bucket i (trace_id 0 when none).
  Exemplar BucketExemplar(size_t i) const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t min() const;
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i.
  static uint64_t BucketUpperBound(size_t i);

  /// Estimated q-th percentile (q in [0, 100]); 0 when empty.
  double Percentile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  /// Guards exemplars_ so a snapshot never sees a torn (trace, value) pair;
  /// only the traced Record overload and BucketExemplar touch it.
  mutable std::mutex exemplar_mu_;
  Exemplar exemplars_[kNumBuckets] = {};
};

struct HistogramSnapshot {
  /// One bucket's exemplar keyed by the bucket's inclusive upper bound
  /// (matching the `buckets` entries).
  struct BucketExemplar {
    uint64_t upper = 0;
    Exemplar exemplar;
  };

  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// (inclusive upper bound, count) for non-empty buckets only.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
  /// Exemplars of the non-empty buckets that have one, in bucket order.
  std::vector<BucketExemplar> exemplars;
};

/// Aggregated timings of one span name (see trace.h).
struct SpanStats {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  /// Time not attributed to nested child spans.
  uint64_t self_ns = 0;
};

/// Point-in-time copy of every metric, exportable to JSON. Span stats are
/// filled by CaptureMetrics() in trace.h; MetricsRegistry::Snapshot() alone
/// leaves them empty.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<SpanStats> spans;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...},
  ///  "spans": {...}} — see docs/OBSERVABILITY.md for the schema.
  std::string ToJson() const;
};

/// Process-wide registry of named metrics. Lookup takes a mutex — resolve
/// handles once (the QEC_COUNTER_ADD family caches them in function-local
/// statics) and use the returned pointer in hot code. Handles stay valid
/// for the process lifetime; ResetAll() zeroes values without invalidating
/// them.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Counters/gauges/histograms sorted by name. Spans are not included
  /// here (use CaptureMetrics() from trace.h for the full picture).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (handles remain valid). Intended for tests and
  /// for benches isolating a measured region.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace qec::obs

#define QEC_OBS_CONCAT_IMPL_(a, b) a##b
#define QEC_OBS_CONCAT_(a, b) QEC_OBS_CONCAT_IMPL_(a, b)

// Hot-path instrumentation macros. `name` must be a per-call-site constant:
// the registry handle is resolved once and cached in a function-local
// static. Define QEC_DISABLE_METRICS (or QEC_DISABLE_TRACING, which implies
// it) to compile them out entirely.
#if !defined(QEC_DISABLE_METRICS) && !defined(QEC_DISABLE_TRACING)

#define QEC_COUNTER_ADD(name, delta)                            \
  do {                                                          \
    static ::qec::obs::Counter* const qec_obs_counter_ =        \
        ::qec::obs::MetricsRegistry::Global().GetCounter(name); \
    qec_obs_counter_->Add(delta);                               \
  } while (0)

#define QEC_GAUGE_SET(name, v)                                \
  do {                                                        \
    static ::qec::obs::Gauge* const qec_obs_gauge_ =          \
        ::qec::obs::MetricsRegistry::Global().GetGauge(name); \
    qec_obs_gauge_->Set(v);                                   \
  } while (0)

#define QEC_HISTOGRAM_RECORD(name, v)                             \
  do {                                                            \
    static ::qec::obs::Histogram* const qec_obs_hist_ =           \
        ::qec::obs::MetricsRegistry::Global().GetHistogram(name); \
    qec_obs_hist_->Record(v);                                     \
  } while (0)

// Record plus a bucket exemplar carrying the request's trace id, so the
// Prometheus exposition can link a latency bucket to its flight-recorder
// record. Use only at once-per-request sites (the exemplar store locks).
#define QEC_HISTOGRAM_RECORD_TRACED(name, v, trace_id)            \
  do {                                                            \
    static ::qec::obs::Histogram* const qec_obs_hist_ =           \
        ::qec::obs::MetricsRegistry::Global().GetHistogram(name); \
    qec_obs_hist_->Record(v, trace_id);                           \
  } while (0)

#else

// (void)sizeof keeps the argument "used" without evaluating it, so call
// sites compile warning-free with instrumentation disabled.
#define QEC_COUNTER_ADD(name, delta) \
  do {                               \
    (void)sizeof(delta);             \
  } while (0)
#define QEC_GAUGE_SET(name, v) \
  do {                         \
    (void)sizeof(v);           \
  } while (0)
#define QEC_HISTOGRAM_RECORD(name, v) \
  do {                                \
    (void)sizeof(v);                  \
  } while (0)
#define QEC_HISTOGRAM_RECORD_TRACED(name, v, trace_id) \
  do {                                                 \
    (void)sizeof(v);                                   \
    (void)sizeof(trace_id);                            \
  } while (0)

#endif  // QEC_DISABLE_METRICS / QEC_DISABLE_TRACING

#define QEC_COUNTER_INC(name) QEC_COUNTER_ADD(name, 1)

#endif  // QEC_OBS_METRICS_H_
