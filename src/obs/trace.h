#ifndef QEC_OBS_TRACE_H_
#define QEC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace qec::obs {

/// Per-name aggregation node for one span name. Obtain via GetSpanSite()
/// (one mutex-guarded lookup; cache the reference — QEC_TRACE_SPAN does).
/// Durations also feed the "span/<name>" histogram in the global
/// MetricsRegistry, which is where p50/p95/p99 come from.
class SpanSite {
 public:
  explicit SpanSite(std::string name);

  const std::string& name() const { return name_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  uint64_t self_ns() const { return self_ns_.load(std::memory_order_relaxed); }

 private:
  friend class ScopedSpan;
  friend void ResetSpans();

  std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> self_ns_{0};
  Histogram* duration_hist_;  // "span/<name>" in the global registry
};

/// The process-wide site for `name`, created on first use. Never freed.
SpanSite& GetSpanSite(std::string_view name);

/// RAII timing scope. Spans nest per thread: a parent's self time excludes
/// the wall time of spans opened inside it. Use via QEC_TRACE_SPAN.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite& site);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanSite* site_;
  uint64_t start_ns_;
};

/// Aggregated stats of every span name, sorted by total time descending.
std::vector<SpanStats> SnapshotSpans();

/// Zeroes all span aggregates and drops recorded trace events. Open spans
/// finish against the zeroed aggregates; sites stay valid.
void ResetSpans();

/// Global metrics + span aggregates in one snapshot (the full export).
MetricsSnapshot CaptureMetrics();

/// Aligned text profile of SnapshotSpans(): count, total/self/avg ms.
std::string SpanFlatProfile();

/// When enabled, every completed span also appends one event to a bounded
/// in-memory buffer (default 65536 events; older events are kept, new ones
/// dropped once full). Off by default — aggregation is always on.
void SetTraceEventRecording(bool enabled);
bool TraceEventRecordingEnabled();

/// chrome://tracing / Perfetto-loadable JSON of the recorded events. Span
/// events carry the real OS thread/process ids (CurrentOsThreadId below),
/// so worker-pool spans land on their own tracks instead of misnesting
/// under the main thread.
std::string TraceEventsJson();
void ClearTraceEvents();

/// The calling thread's OS thread id (gettid on Linux; a hash of
/// std::thread::id elsewhere). Stable for the thread's lifetime.
uint32_t CurrentOsThreadId();

/// The process id (1 when the platform offers none).
uint32_t CurrentOsProcessId();

}  // namespace qec::obs

// Opens a scoped span named `name` (a per-call-site constant). Expands to
// two declarations: place it at block scope as a statement. Compiles out
// entirely under QEC_DISABLE_TRACING.
#ifndef QEC_DISABLE_TRACING
#define QEC_TRACE_SPAN(name)                                               \
  static ::qec::obs::SpanSite& QEC_OBS_CONCAT_(qec_obs_span_site_,         \
                                               __LINE__) =                 \
      ::qec::obs::GetSpanSite(name);                                       \
  ::qec::obs::ScopedSpan QEC_OBS_CONCAT_(qec_obs_span_, __LINE__)(         \
      QEC_OBS_CONCAT_(qec_obs_span_site_, __LINE__))
#else
#define QEC_TRACE_SPAN(name) \
  do {                       \
  } while (0)
#endif

#endif  // QEC_OBS_TRACE_H_
