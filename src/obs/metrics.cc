#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

#include "obs/json.h"

namespace qec::obs {

void Gauge::Add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Histogram::Record(uint64_t value) {
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void Histogram::Record(uint64_t value, uint64_t exemplar_trace_id) {
  Record(value);
  if (exemplar_trace_id == 0) return;
  const uint64_t now_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  exemplars_[std::bit_width(value)] = {exemplar_trace_id, value, now_ms};
}

Exemplar Histogram::BucketExemplar(size_t i) const {
  if (i >= kNumBuckets) return {};
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  return exemplars_[i];
}

uint64_t Histogram::min() const {
  uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

double Histogram::Percentile(double q) const {
  // Work from a consistent local copy (concurrent Record()s may land
  // between loads; percentiles are estimates either way).
  uint64_t buckets[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += buckets[i];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const double target = q / 100.0 * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (next >= target) {
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(BucketUpperBound(i - 1)) + 1.0;
      const double upper = static_cast<double>(BucketUpperBound(i));
      const double frac =
          std::clamp((target - cumulative) / static_cast<double>(buckets[i]),
                     0.0, 1.0);
      return lower + frac * (upper - lower);
    }
    cumulative = next;
  }
  return static_cast<double>(max());
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  for (auto& e : exemplars_) e = {};
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so handles cached in static locals outlive any destructor order.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    hs.p50 = h->Percentile(50.0);
    hs.p95 = h->Percentile(95.0);
    hs.p99 = h->Percentile(99.0);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t n = h->BucketCount(i);
      if (n == 0) continue;
      hs.buckets.emplace_back(Histogram::BucketUpperBound(i), n);
      Exemplar ex = h->BucketExemplar(i);
      if (ex.trace_id != 0) {
        hs.exemplars.push_back({Histogram::BucketUpperBound(i), ex});
      }
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + json::Quote(counters[i].first) + ": " +
           std::to_string(counters[i].second);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + json::Quote(gauges[i].first) + ": " +
           json::NumberToString(gauges[i].second);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    " + json::Quote(h.name) + ": {";
    out += "\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum);
    out += ", \"min\": " + std::to_string(h.min);
    out += ", \"max\": " + std::to_string(h.max);
    out += ", \"p50\": " + json::NumberToString(h.p50);
    out += ", \"p95\": " + json::NumberToString(h.p95);
    out += ", \"p99\": " + json::NumberToString(h.p99);
    out += ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "[" + std::to_string(h.buckets[b].first) + ", " +
             std::to_string(h.buckets[b].second) + "]";
    }
    out += "]}";
  }
  out += histograms.empty() ? "},\n" : "\n  },\n";

  out += "  \"spans\": {";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanStats& s = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    " + json::Quote(s.name) + ": {";
    out += "\"count\": " + std::to_string(s.count);
    out += ", \"total_ns\": " + std::to_string(s.total_ns);
    out += ", \"self_ns\": " + std::to_string(s.self_ns);
    out += "}";
  }
  out += spans.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace qec::obs
