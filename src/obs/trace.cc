#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "obs/json.h"

namespace qec::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One live span on a thread's stack: accumulated child wall time lets the
/// parent compute self time on close.
struct Frame {
  SpanSite* site;
  uint64_t start_ns;
  uint64_t child_ns = 0;
};

thread_local std::vector<Frame> tls_span_stack;

struct TraceEvent {
  const std::string* name;  // points at the (leaked) SpanSite name
  uint32_t tid;
  uint32_t depth;
  uint64_t start_ns;
  uint64_t dur_ns;
};

constexpr size_t kMaxTraceEvents = 65536;
std::atomic<bool> g_record_events{false};

std::mutex& SiteMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::map<std::string, SpanSite*, std::less<>>& Sites() {
  static auto* sites = new std::map<std::string, SpanSite*, std::less<>>();
  return *sites;
}

std::mutex& EventMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<TraceEvent>& Events() {
  static auto* events = new std::vector<TraceEvent>();
  return *events;
}

}  // namespace

SpanSite::SpanSite(std::string name)
    : name_(std::move(name)),
      duration_hist_(
          MetricsRegistry::Global().GetHistogram("span/" + name_)) {}

SpanSite& GetSpanSite(std::string_view name) {
  std::lock_guard<std::mutex> lock(SiteMutex());
  auto& sites = Sites();
  auto it = sites.find(name);
  if (it == sites.end()) {
    it = sites.emplace(std::string(name), new SpanSite(std::string(name)))
             .first;
  }
  return *it->second;
}

ScopedSpan::ScopedSpan(SpanSite& site) : site_(&site), start_ns_(NowNs()) {
  tls_span_stack.push_back(Frame{site_, start_ns_});
}

ScopedSpan::~ScopedSpan() {
  const uint64_t end_ns = NowNs();
  const uint64_t dur = end_ns - start_ns_;
  // RAII guarantees strict nesting per thread, so the top frame is ours.
  const Frame frame = tls_span_stack.back();
  tls_span_stack.pop_back();
  const uint64_t self = dur > frame.child_ns ? dur - frame.child_ns : 0;
  if (!tls_span_stack.empty()) tls_span_stack.back().child_ns += dur;

  site_->count_.fetch_add(1, std::memory_order_relaxed);
  site_->total_ns_.fetch_add(dur, std::memory_order_relaxed);
  site_->self_ns_.fetch_add(self, std::memory_order_relaxed);
  site_->duration_hist_->Record(dur);

  if (g_record_events.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(EventMutex());
    auto& events = Events();
    if (events.size() < kMaxTraceEvents) {
      events.push_back(TraceEvent{
          &site_->name(), CurrentOsThreadId(),
          static_cast<uint32_t>(tls_span_stack.size()), start_ns_, dur});
    }
  }
}

std::vector<SpanStats> SnapshotSpans() {
  std::vector<SpanStats> out;
  {
    std::lock_guard<std::mutex> lock(SiteMutex());
    out.reserve(Sites().size());
    for (const auto& [name, site] : Sites()) {
      SpanStats s;
      s.name = name;
      s.count = site->count();
      s.total_ns = site->total_ns();
      s.self_ns = site->self_ns();
      if (s.count > 0) out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    return a.name < b.name;
  });
  return out;
}

void ResetSpans() {
  {
    std::lock_guard<std::mutex> lock(SiteMutex());
    for (auto& [name, site] : Sites()) {
      site->count_.store(0, std::memory_order_relaxed);
      site->total_ns_.store(0, std::memory_order_relaxed);
      site->self_ns_.store(0, std::memory_order_relaxed);
    }
  }
  ClearTraceEvents();
}

MetricsSnapshot CaptureMetrics() {
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  snap.spans = SnapshotSpans();
  return snap;
}

std::string SpanFlatProfile() {
  const std::vector<SpanStats> spans = SnapshotSpans();
  size_t width = 4;  // "span"
  for (const auto& s : spans) width = std::max(width, s.name.size());
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s %10s %12s %12s %12s\n",
                static_cast<int>(width), "span", "count", "total_ms",
                "self_ms", "avg_ms");
  std::string out = line;
  for (const auto& s : spans) {
    std::snprintf(line, sizeof(line), "%-*s %10llu %12.3f %12.3f %12.3f\n",
                  static_cast<int>(width), s.name.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<double>(s.total_ns) / 1e6,
                  static_cast<double>(s.self_ns) / 1e6,
                  s.count > 0 ? static_cast<double>(s.total_ns) / 1e6 /
                                    static_cast<double>(s.count)
                              : 0.0);
    out += line;
  }
  return out;
}

void SetTraceEventRecording(bool enabled) {
  g_record_events.store(enabled, std::memory_order_relaxed);
}

bool TraceEventRecordingEnabled() {
  return g_record_events.load(std::memory_order_relaxed);
}

uint32_t CurrentOsThreadId() {
#if defined(__linux__)
  thread_local const uint32_t tid =
      static_cast<uint32_t>(::syscall(SYS_gettid));
#else
  thread_local const uint32_t tid = static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
#endif
  return tid;
}

uint32_t CurrentOsProcessId() {
#if defined(__linux__)
  static const uint32_t pid = static_cast<uint32_t>(::getpid());
  return pid;
#else
  return 1;
#endif
}

std::string TraceEventsJson() {
  std::lock_guard<std::mutex> lock(EventMutex());
  std::string out = "{\"traceEvents\": [";
  const auto& events = Events();
  const uint32_t pid = CurrentOsProcessId();
  char buf[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    // "X" complete events; timestamps/durations in microseconds.
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": %s, \"cat\": \"qec\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %u, \"tid\": %u}",
                  i == 0 ? "" : ",",
                  json::Quote(*e.name).c_str(),
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, pid, e.tid);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

void ClearTraceEvents() {
  std::lock_guard<std::mutex> lock(EventMutex());
  Events().clear();
}

}  // namespace qec::obs
