#ifndef QEC_OBS_PROFILER_H_
#define QEC_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include <signal.h>
#include <sys/time.h>

#include "common/status.h"

namespace qec::obs {

/// In-process sampling CPU profiler: a SIGPROF timer (ITIMER_PROF, so
/// samples land on whichever thread is burning CPU) whose handler appends
/// raw backtrace PCs to a preallocated flat buffer — the handler does no
/// allocation, locking, or symbolization. Stop() symbolizes offline
/// (dladdr + demangle; link with ENABLE_EXPORTS/-rdynamic so main-binary
/// frames resolve) and folds identical stacks into flamegraph-ready
/// `frame;frame;frame count` lines, root first.
///
/// One profile at a time per process (SIGPROF is process-global): Start()
/// while running fails, which the admin /pprof/profile route surfaces as
/// 409. Sampling costs one signal + one backtrace per tick on the running
/// thread; at the default 99 Hz the foreground overhead is well under 1%.
class CpuProfiler {
 public:
  static CpuProfiler& Global();

  /// Begins sampling at `hz` (clamped to [1, 1000]). Fails if a profile
  /// is already running.
  Status Start(int hz);

  /// Disarms the timer, waits out in-flight handlers, and returns the
  /// folded-stack text ("" when never started). Idempotent per Start().
  std::string StopFolded();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint64_t sample_count() const {
    return samples_.load(std::memory_order_relaxed);
  }
  /// Samples discarded because the PC buffer filled (profile ran too long
  /// or too deep); nonzero means the folded output undercounts.
  uint64_t dropped_samples() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  CpuProfiler() = default;

  static void Handler(int signo);
  std::string RenderFolded() const;

  /// 8 MiB of PC words ≈ 100k samples at typical depth — minutes of
  /// profiling at 99 Hz.
  static constexpr uint64_t kCapacityWords = uint64_t{1} << 20;
  static constexpr int kMaxDepth = 64;

  std::atomic<bool> running_{false};
  /// Next free word; records are [depth, pc...] reserved by fetch_add.
  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> dropped_{0};
  std::unique_ptr<uint64_t[]> buf_;
  struct sigaction old_action_ = {};
  /// Serializes Start/Stop (the handler never takes it).
  std::mutex mu_;
};

/// Blocking convenience used by the admin route, bench, and CLI: profile
/// this process for `seconds` at `hz` and return the folded-stack text.
/// Fails (Unavailable) when a profile is already running.
Result<std::string> CollectCpuProfile(int hz, double seconds);

/// One pretty-printed table from folded-stack text: per-frame inclusive
/// and self sample counts, heaviest first, top `limit` frames. The
/// `qec_cli profile` subcommand's renderer, separated for testing.
std::string SummarizeFoldedStacks(std::string_view folded, size_t limit);

}  // namespace qec::obs

#endif  // QEC_OBS_PROFILER_H_
