#include "obs/process_collector.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "obs/json.h"

namespace qec::obs {

ProcessStats SampleProcessStats() {
  ProcessStats stats;
  std::FILE* f = std::fopen("/proc/self/stat", "rb");
  if (f == nullptr) return stats;
  char buf[4096];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';

  // Field 2 (comm) is parenthesized and may itself contain spaces or
  // parentheses, so field scanning starts after the LAST ')'.
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return stats;
  ++p;
  // 1-based field numbers over the whole line: utime=14, stime=15 (both in
  // _SC_CLK_TCK ticks), vsize=23 (bytes), rss=24 (pages). %*s skips are
  // immune to the width/signedness of the intervening fields.
  unsigned long long utime = 0, stime = 0, vsize = 0, rss_pages = 0;
  if (std::sscanf(p,
                  " %*s %*s %*s %*s %*s %*s %*s %*s %*s %*s %*s %llu %llu"
                  " %*s %*s %*s %*s %*s %*s %*s %llu %llu",
                  &utime, &stime, &vsize, &rss_pages) != 4) {
    return stats;
  }
  const long ticks_per_sec = ::sysconf(_SC_CLK_TCK);
  stats.cpu_seconds =
      ticks_per_sec > 0
          ? static_cast<double>(utime + stime) / static_cast<double>(ticks_per_sec)
          : 0.0;
  stats.virtual_bytes = vsize;
  const long page = ::sysconf(_SC_PAGESIZE);
  stats.resident_bytes = rss_pages * static_cast<uint64_t>(page > 0 ? page : 4096);

  if (DIR* dir = ::opendir("/proc/self/fd")) {
    uint64_t entries = 0;
    while (::readdir(dir) != nullptr) ++entries;
    ::closedir(dir);
    // Drop ".", "..", and the fd opendir itself holds.
    stats.open_fds = entries > 3 ? entries - 3 : 0;
  }
  stats.valid = true;
  return stats;
}

std::string PrometheusProcess() {
  const ProcessStats s = SampleProcessStats();
  if (!s.valid) return {};
  std::string out = "# TYPE qec_process_cpu_seconds_total counter\n";
  out += "qec_process_cpu_seconds_total " + json::NumberToString(s.cpu_seconds) +
         "\n";
  out += "# TYPE qec_process_resident_memory_bytes gauge\n";
  out += "qec_process_resident_memory_bytes " +
         std::to_string(s.resident_bytes) + "\n";
  out += "# TYPE qec_process_virtual_memory_bytes gauge\n";
  out += "qec_process_virtual_memory_bytes " + std::to_string(s.virtual_bytes) +
         "\n";
  out += "# TYPE qec_process_open_fds gauge\n";
  out += "qec_process_open_fds " + std::to_string(s.open_fds) + "\n";
  return out;
}

}  // namespace qec::obs
