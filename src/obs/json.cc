#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace qec::obs::json {

const Value* Value::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string NumberToString(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers (the common case: counters, nanosecond totals) print exactly.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    Value v;
    QEC_RETURN_IF_ERROR(ParseValue(&v));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(Where("trailing characters"));
    }
    return v;
  }

 private:
  std::string Where(const char* what) const {
    return std::string("json: ") + what + " at offset " +
           std::to_string(pos_);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out) {
    if (++depth_ > kMaxDepth) return Status::InvalidArgument("json: too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument(Where("unexpected end of input"));
    }
    Status s;
    switch (text_[pos_]) {
      case '{':
        s = ParseObject(out);
        break;
      case '[':
        s = ParseArray(out);
        break;
      case '"':
        out->type = Value::Type::kString;
        s = ParseString(&out->string);
        break;
      case 't':
        if (!ConsumeLiteral("true")) return Status::InvalidArgument(Where("bad literal"));
        out->type = Value::Type::kBool;
        out->boolean = true;
        break;
      case 'f':
        if (!ConsumeLiteral("false")) return Status::InvalidArgument(Where("bad literal"));
        out->type = Value::Type::kBool;
        out->boolean = false;
        break;
      case 'n':
        if (!ConsumeLiteral("null")) return Status::InvalidArgument(Where("bad literal"));
        out->type = Value::Type::kNull;
        break;
      default:
        s = ParseNumber(out);
    }
    --depth_;
    return s;
  }

  Status ParseObject(Value* out) {
    out->type = Value::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::InvalidArgument(Where("expected object key"));
      }
      std::string key;
      QEC_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Status::InvalidArgument(Where("expected ':'"));
      Value v;
      QEC_RETURN_IF_ERROR(ParseValue(&v));
      out->object.emplace_back(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Status::InvalidArgument(Where("expected ','"));
    }
  }

  Status ParseArray(Value* out) {
    out->type = Value::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      Value v;
      QEC_RETURN_IF_ERROR(ParseValue(&v));
      out->array.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Status::InvalidArgument(Where("expected ','"));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument(Where("truncated \\u escape"));
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument(Where("bad \\u escape"));
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // metric names are ASCII).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::InvalidArgument(Where("bad escape"));
      }
    }
    return Status::InvalidArgument(Where("unterminated string"));
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument(Where("expected value"));
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument(Where("bad number"));
    }
    out->type = Value::Type::kNumber;
    out->number = v;
    return Status::Ok();
  }

  static constexpr int kMaxDepth = 128;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace qec::obs::json
