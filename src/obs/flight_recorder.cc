#include "obs/flight_recorder.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/json.h"

namespace qec::obs {

namespace {

std::string TraceIdHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

uint64_t ReadU64(const json::Value& object, std::string_view key) {
  const json::Value* v = object.Find(key);
  return v != nullptr && v->is_number() && v->number >= 0.0
             ? static_cast<uint64_t>(v->number)
             : 0;
}

std::string ReadString(const json::Value& object, std::string_view key) {
  const json::Value* v = object.Find(key);
  return v != nullptr && v->is_string() ? v->string : std::string();
}

double ReadDouble(const json::Value& object, std::string_view key,
                  double fallback) {
  const json::Value* v = object.Find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

}  // namespace

std::string RequestRecord::ToJsonLine() const {
  std::string out = "{\"trace_id\":";
  out += json::Quote(TraceIdHex(trace_id));
  out += ",\"unix_ms\":" + std::to_string(unix_ms);
  out += ",\"query\":" + json::Quote(query);
  out += ",\"algo\":" + json::Quote(algo);
  out += ",\"status\":" + json::Quote(status);
  out += ",\"from_cache\":";
  out += from_cache ? "true" : "false";
  out += ",\"queue_wait_ns\":" + std::to_string(queue_wait_ns);
  out += ",\"cache_lookup_ns\":" + std::to_string(cache_lookup_ns);
  out += ",\"expansion_ns\":" + std::to_string(expansion_ns);
  out += ",\"serialize_ns\":" + std::to_string(serialize_ns);
  out += ",\"total_ns\":" + std::to_string(total_ns);
  out += ",\"iskr_steps\":" + std::to_string(iskr_steps);
  out += ",\"iskr_candidates_evaluated\":" +
         std::to_string(iskr_candidates_evaluated);
  out += ",\"pebc_samples_drawn\":" + std::to_string(pebc_samples_drawn);
  out += ",\"pebc_candidates_evaluated\":" +
         std::to_string(pebc_candidates_evaluated);
  if (set_score >= 0.0) {
    out += ",\"set_score\":" + json::NumberToString(set_score);
  }
  if (shadow_sampled) out += ",\"shadow_sampled\":true";
  if (!shadow_algo.empty()) {
    out += ",\"shadow_algo\":" + json::Quote(shadow_algo);
    out += ",\"shadow_set_score\":" + json::NumberToString(shadow_set_score);
    out += ",\"ab_winner\":" + json::Quote(ab_winner);
    out += ",\"shadow_expansion_ns\":" + std::to_string(shadow_expansion_ns);
  }
  out += "}";
  return out;
}

Result<RequestRecord> RequestRecordFromJson(std::string_view line) {
  auto doc = json::Parse(line);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return Status::InvalidArgument("request record must be a JSON object");
  }
  RequestRecord r;
  const std::string trace_hex = ReadString(*doc, "trace_id");
  if (!trace_hex.empty()) {
    r.trace_id = std::strtoull(trace_hex.c_str(), nullptr, 16);
  }
  r.unix_ms = ReadU64(*doc, "unix_ms");
  r.query = ReadString(*doc, "query");
  r.algo = ReadString(*doc, "algo");
  r.status = ReadString(*doc, "status");
  const json::Value* cached = doc->Find("from_cache");
  r.from_cache = cached != nullptr && cached->boolean;
  r.queue_wait_ns = ReadU64(*doc, "queue_wait_ns");
  r.cache_lookup_ns = ReadU64(*doc, "cache_lookup_ns");
  r.expansion_ns = ReadU64(*doc, "expansion_ns");
  r.serialize_ns = ReadU64(*doc, "serialize_ns");
  r.total_ns = ReadU64(*doc, "total_ns");
  r.iskr_steps = ReadU64(*doc, "iskr_steps");
  r.iskr_candidates_evaluated = ReadU64(*doc, "iskr_candidates_evaluated");
  r.pebc_samples_drawn = ReadU64(*doc, "pebc_samples_drawn");
  r.pebc_candidates_evaluated = ReadU64(*doc, "pebc_candidates_evaluated");
  r.set_score = ReadDouble(*doc, "set_score", -1.0);
  const json::Value* sampled = doc->Find("shadow_sampled");
  r.shadow_sampled = sampled != nullptr && sampled->boolean;
  r.shadow_algo = ReadString(*doc, "shadow_algo");
  r.shadow_set_score = ReadDouble(*doc, "shadow_set_score", -1.0);
  r.ab_winner = ReadString(*doc, "ab_winner");
  r.shadow_expansion_ns = ReadU64(*doc, "shadow_expansion_ns");
  return r;
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void FlightRecorder::Record(RequestRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[total_ % capacity_] = std::move(record);
  ++total_;
}

std::vector<RequestRecord> FlightRecorder::Recent(size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t available =
      total_ < capacity_ ? total_ : static_cast<uint64_t>(capacity_);
  const uint64_t n = max < available ? max : available;
  std::vector<RequestRecord> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    out.push_back(ring_[(total_ - 1 - i) % capacity_]);
  }
  return out;
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& r : ring_) r = RequestRecord();
  total_ = 0;
}

void FlightRecorder::SetDumpPath(std::string path) {
  std::lock_guard<std::mutex> lock(dump_mu_);
  dump_path_ = std::move(path);
}

bool FlightRecorder::Dump(const RequestRecord& record) {
  std::lock_guard<std::mutex> lock(dump_mu_);
  if (dump_path_.empty()) return true;
  std::FILE* f = std::fopen(dump_path_.c_str(), "ab");
  if (f == nullptr) return false;
  const std::string line = record.ToJsonLine() + "\n";
  const bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  if (std::fclose(f) != 0 || !ok) return false;
  dumped_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace qec::obs
