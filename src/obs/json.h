#ifndef QEC_OBS_JSON_H_
#define QEC_OBS_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace qec::obs::json {

/// Minimal JSON document model: enough for metrics snapshots and trace
/// dumps (objects, arrays, strings, doubles, bools, null). Object members
/// preserve insertion order; duplicate keys keep the first occurrence on
/// lookup.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, Value>> object;
  std::vector<Value> array;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;
};

/// Parses a complete JSON document (trailing garbage is an error).
Result<Value> Parse(std::string_view text);

/// `s` as a quoted JSON string literal with the mandatory escapes applied.
std::string Quote(std::string_view s);

/// Shortest round-trippable rendering of a double ("1e99"-style for
/// non-finite inputs is invalid JSON, so they render as null).
std::string NumberToString(double v);

}  // namespace qec::obs::json

#endif  // QEC_OBS_JSON_H_
