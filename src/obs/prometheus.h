#ifndef QEC_OBS_PROMETHEUS_H_
#define QEC_OBS_PROMETHEUS_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace qec::obs {

/// `name` mapped to a legal Prometheus metric name: "qec_" prefix, every
/// character outside [a-zA-Z0-9_] replaced by '_'. "server/queue_wait_ns"
/// becomes "qec_server_queue_wait_ns". (Two registry names that differ only
/// in separators collide; keep registry names unambiguous.)
std::string PrometheusName(std::string_view name);

/// Build metadata as structured fields (the label values of
/// `qec_build_info`), for JSON surfaces like the admin /statusz route.
struct BuildInfo {
  std::string version;
  std::string git;
  bool popcount = false;
  bool tracing = false;
  /// Runtime-dispatched bitset-kernel tier ("scalar" or "avx2").
  std::string kernel_tier;
};

BuildInfo GetBuildInfo();

/// The `qec_build_info` gauge (its `# TYPE` line plus one sample of value
/// 1) carrying build metadata as labels: library version, `git describe`
/// output when the build tree had git available, the popcount/tracing
/// compile flags, and the runtime-dispatched bitset-kernel tier
/// (`kernel="scalar"|"avx2"`). Emitted at the top of every WritePrometheus
/// exposition so dashboards can correlate a regression with the build that
/// shipped it.
std::string PrometheusBuildInfo();

/// Persistent sweep-pool counters (`qec_sweep_pool_{runs,spawns,reuses}_total`)
/// in exposition format. Steady state is reuses climbing while spawns stay
/// flat — a growing spawn rate means sweeps keep outsizing the pool.
std::string PrometheusSweepPool();

/// Renders a snapshot in Prometheus text exposition format:
///   - counters as `<name>_total` with a `# TYPE ... counter` line,
///   - gauges with `# TYPE ... gauge`,
///   - histograms as cumulative `_bucket{le="..."}` series (always ending
///     in `le="+Inf"`) plus `_sum` and `_count`, `# TYPE ... histogram`.
/// Buckets whose histogram recorded a traced observation carry an
/// OpenMetrics exemplar: ` # {trace_id="<16-hex>"} <value> <unix seconds>`
/// appended to the `_bucket` line, linking the bucket to its
/// flight-recorder record. Span aggregates are not emitted separately —
/// every span already feeds its `span/<name>` histogram. The output ends
/// with a `# EOF` line so stream consumers (the METRICS protocol verb and
/// the admin /metrics route) can find the end.
std::string WritePrometheus(const MetricsSnapshot& snapshot);

/// WritePrometheus over the full live registry + span aggregates
/// (CaptureMetrics() in trace.h), plus the `qec_process_*` families
/// sampled live from /proc (see process_collector.h).
std::string PrometheusSnapshot();

/// One parsed sample line: `name{labels} value [# {exemplar} value [ts]]`.
struct PrometheusSample {
  std::string name;
  /// Label pairs in source order (empty when the sample has no label set).
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;

  /// OpenMetrics exemplar parsed from the ` # {...} value [timestamp]`
  /// tail, when present (timestamp 0 when the exemplar carried none).
  bool has_exemplar = false;
  std::vector<std::pair<std::string, std::string>> exemplar_labels;
  double exemplar_value = 0.0;
  double exemplar_timestamp = 0.0;

  /// Value of label `key`, or "" when absent.
  std::string_view Label(std::string_view key) const;
  /// Value of exemplar label `key`, or "" when absent.
  std::string_view ExemplarLabel(std::string_view key) const;
};

/// One metric family: a `# TYPE` line and the samples grouped under it.
struct PrometheusFamily {
  std::string name;
  std::string type;  // "counter", "gauge", "histogram", ...
  std::vector<PrometheusSample> samples;
};

/// Parses Prometheus text exposition format. Every sample must belong to
/// the most recent `# TYPE` family (exact name match, or the family name
/// plus a `_bucket`/`_sum`/`_count`/`_total` suffix); anything else is an
/// InvalidArgument. `# HELP`, other comments, and `# EOF` are skipped.
Result<std::vector<PrometheusFamily>> ParsePrometheusText(
    std::string_view text);

/// Validates the histogram invariants of a parsed exposition: each
/// histogram family has monotonically non-decreasing cumulative buckets,
/// a final `le="+Inf"` bucket, `_count` equal to that bucket, and every
/// bucket exemplar's value within its bucket's `le` bound.
Status ValidatePrometheusHistograms(
    const std::vector<PrometheusFamily>& families);

/// Naming-convention lint over a parsed exposition (the `qec_cli
/// metrics-lint` subcommand): counter families end `_total` and their
/// samples match the family name exactly; histogram families carry no
/// reserved suffix and emit at least one `_bucket` (each with an `le`
/// label), `_sum`, and `_count`; gauge families don't end `_total`; all
/// family names are legal metric names. Returns the first violation.
Status LintPrometheusNaming(const std::vector<PrometheusFamily>& families);

/// Background thread that periodically writes PrometheusSnapshot() to a
/// file (atomically: temp file + rename), so external scrapers and CI can
/// consume the exposition without speaking the line protocol. Started by
/// the constructor; the destructor (or Stop()) joins the thread after one
/// final flush.
class MetricsFlusher {
 public:
  MetricsFlusher(std::string path, std::chrono::milliseconds interval);
  ~MetricsFlusher();

  MetricsFlusher(const MetricsFlusher&) = delete;
  MetricsFlusher& operator=(const MetricsFlusher&) = delete;

  /// Writes one snapshot immediately. Returns false on I/O failure.
  bool FlushNow();

  /// Stops the periodic thread after a final flush. Idempotent.
  void Stop();

  uint64_t flush_count() const {
    return flush_count_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return path_; }

 private:
  void Loop();

  std::string path_;
  std::chrono::milliseconds interval_;
  std::atomic<uint64_t> flush_count_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace qec::obs

#endif  // QEC_OBS_PROMETHEUS_H_
