#include "obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/simd_kernels.h"
#include "common/sweep_pool.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace qec::obs {

namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Counters are exported with the conventional `_total` suffix.
std::string CounterName(std::string_view name) {
  std::string out = PrometheusName(name);
  const std::string_view suffix = "_total";
  if (out.size() < suffix.size() ||
      out.compare(out.size() - suffix.size(), suffix.size(), suffix) != 0) {
    out += suffix;
  }
  return out;
}

void AppendSample(std::string& out, const std::string& name,
                  std::string_view label_key, const std::string& label_value,
                  const std::string& value) {
  out += name;
  if (!label_key.empty()) {
    out += '{';
    out += label_key;
    out += "=\"";
    out += label_value;
    out += "\"}";
  }
  out += ' ';
  out += value;
  out += '\n';
}

}  // namespace

// Build metadata injected by src/obs/CMakeLists.txt; the fallbacks cover
// builds that bypass CMake (e.g. direct compiler invocations in tooling).
#ifndef QEC_VERSION
#define QEC_VERSION "unknown"
#endif
#ifndef QEC_GIT_DESCRIBE
#define QEC_GIT_DESCRIBE "unknown"
#endif

std::string PrometheusBuildInfo() {
  std::string out = "# TYPE qec_build_info gauge\n";
  out += "qec_build_info{version=\"" QEC_VERSION "\",git=\"" QEC_GIT_DESCRIBE
         "\",popcount=\"";
#if defined(__POPCNT__)
  out += "on";
#else
  out += "off";
#endif
  out += "\",tracing=\"";
#ifdef QEC_DISABLE_TRACING
  out += "off";
#else
  out += "on";
#endif
  // The bitset-kernel tier the runtime dispatcher selected (cpuid +
  // QEC_KERNEL_DISPATCH override) — scalar and avx2 are exact-equal, so
  // this label is for performance triage, not correctness.
  out += "\",kernel=\"";
  out += simd::ActiveTierName();
  out += "\"} 1\n";
  return out;
}

std::string PrometheusSweepPool() {
  const common::SweepPool::Stats s = common::SweepPool::Instance().GetStats();
  std::string out = "# TYPE qec_sweep_pool_runs_total counter\n";
  out += "qec_sweep_pool_runs_total " + std::to_string(s.runs) + "\n";
  out += "# TYPE qec_sweep_pool_spawns_total counter\n";
  out += "qec_sweep_pool_spawns_total " + std::to_string(s.spawns) + "\n";
  out += "# TYPE qec_sweep_pool_reuses_total counter\n";
  out += "qec_sweep_pool_reuses_total " + std::to_string(s.reuses) + "\n";
  return out;
}

std::string PrometheusName(std::string_view name) {
  std::string out = "qec_";
  out.reserve(out.size() + name.size());
  for (char c : name) out.push_back(IsNameChar(c) ? c : '_');
  return out;
}

std::string WritePrometheus(const MetricsSnapshot& snapshot) {
  std::string out = PrometheusBuildInfo();
  out += PrometheusSweepPool();
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = CounterName(name);
    out += "# TYPE " + prom + " counter\n";
    AppendSample(out, prom, "", "", std::to_string(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    AppendSample(out, prom, "", "", json::NumberToString(value));
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string prom = PrometheusName(h.name);
    out += "# TYPE " + prom + " histogram\n";
    // Registry buckets are (inclusive upper bound, count) for non-empty
    // buckets only; cumulating them yields exact `le` counts because the
    // bounds are inclusive.
    uint64_t cumulative = 0;
    for (const auto& [upper, count] : h.buckets) {
      cumulative += count;
      AppendSample(out, prom + "_bucket", "le", std::to_string(upper),
                   std::to_string(cumulative));
    }
    AppendSample(out, prom + "_bucket", "le", "+Inf",
                 std::to_string(h.count));
    AppendSample(out, prom + "_sum", "", "", std::to_string(h.sum));
    AppendSample(out, prom + "_count", "", "", std::to_string(h.count));
  }
  out += "# EOF\n";
  return out;
}

std::string PrometheusSnapshot() { return WritePrometheus(CaptureMetrics()); }

std::string_view PrometheusSample::Label(std::string_view key) const {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return {};
}

namespace {

/// True when `sample` belongs to the family `family`: exact match or a
/// recognized suffix.
bool BelongsTo(std::string_view sample, std::string_view family) {
  if (sample == family) return true;
  if (sample.size() <= family.size() ||
      sample.compare(0, family.size(), family) != 0) {
    return false;
  }
  const std::string_view suffix = sample.substr(family.size());
  return suffix == "_bucket" || suffix == "_sum" || suffix == "_count" ||
         suffix == "_total";
}

Status BadLine(size_t line_no, const std::string& why) {
  return Status::InvalidArgument("prometheus text line " +
                                 std::to_string(line_no) + ": " + why);
}

}  // namespace

Result<std::vector<PrometheusFamily>> ParsePrometheusText(
    std::string_view text) {
  std::vector<PrometheusFamily> families;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    // Trim trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# TYPE <name> <type>" starts a family; all other comments
      // (# HELP, # EOF, free-form) are skipped.
      std::string_view rest = line.substr(1);
      while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
      if (rest.compare(0, 5, "TYPE ") != 0) continue;
      rest.remove_prefix(5);
      const size_t space = rest.find(' ');
      if (space == std::string_view::npos || space == 0) {
        return BadLine(line_no, "malformed # TYPE");
      }
      PrometheusFamily family;
      family.name = std::string(rest.substr(0, space));
      family.type = std::string(rest.substr(space + 1));
      if (family.type.empty()) return BadLine(line_no, "missing type");
      families.push_back(std::move(family));
      continue;
    }

    // Sample line: name[{labels}] value [timestamp].
    size_t i = 0;
    while (i < line.size() && IsNameChar(line[i])) ++i;
    if (i == 0) return BadLine(line_no, "expected metric name");
    PrometheusSample sample;
    sample.name = std::string(line.substr(0, i));

    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        size_t key_start = i;
        while (i < line.size() && IsNameChar(line[i])) ++i;
        if (i == key_start || i >= line.size() || line[i] != '=') {
          return BadLine(line_no, "malformed label");
        }
        std::string key(line.substr(key_start, i - key_start));
        ++i;  // '='
        if (i >= line.size() || line[i] != '"') {
          return BadLine(line_no, "label value must be quoted");
        }
        ++i;  // opening quote
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            ++i;
            if (i >= line.size()) break;
            switch (line[i]) {
              case 'n':
                value.push_back('\n');
                break;
              case '\\':
                value.push_back('\\');
                break;
              case '"':
                value.push_back('"');
                break;
              default:
                return BadLine(line_no, "bad label escape");
            }
            ++i;
          } else {
            value.push_back(line[i]);
            ++i;
          }
        }
        if (i >= line.size()) return BadLine(line_no, "unterminated label");
        ++i;  // closing quote
        sample.labels.emplace_back(std::move(key), std::move(value));
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) return BadLine(line_no, "unterminated label set");
      ++i;  // '}'
    }

    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) return BadLine(line_no, "missing sample value");
    const std::string value_text(line.substr(i, line.find(' ', i) - i));
    if (value_text == "+Inf") {
      sample.value = HUGE_VAL;
    } else if (value_text == "-Inf") {
      sample.value = -HUGE_VAL;
    } else {
      char* parse_end = nullptr;
      sample.value = std::strtod(value_text.c_str(), &parse_end);
      if (parse_end != value_text.c_str() + value_text.size()) {
        return BadLine(line_no, "bad sample value '" + value_text + "'");
      }
    }

    if (families.empty() || !BelongsTo(sample.name, families.back().name)) {
      return BadLine(line_no,
                     "sample '" + sample.name + "' has no preceding # TYPE");
    }
    families.back().samples.push_back(std::move(sample));
  }
  return families;
}

Status ValidatePrometheusHistograms(
    const std::vector<PrometheusFamily>& families) {
  for (const PrometheusFamily& family : families) {
    if (family.type != "histogram") continue;
    double last_bucket = -1.0;
    bool saw_inf = false;
    double inf_count = -1.0;
    double count = -1.0;
    for (const PrometheusSample& sample : family.samples) {
      if (sample.name == family.name + "_bucket") {
        if (saw_inf) {
          return Status::InvalidArgument(family.name +
                                         ": bucket after le=\"+Inf\"");
        }
        if (sample.value < last_bucket) {
          return Status::InvalidArgument(
              family.name + ": cumulative buckets must be non-decreasing");
        }
        last_bucket = sample.value;
        if (sample.Label("le") == "+Inf") {
          saw_inf = true;
          inf_count = sample.value;
        }
      } else if (sample.name == family.name + "_count") {
        count = sample.value;
      }
    }
    if (!saw_inf) {
      return Status::InvalidArgument(family.name +
                                     ": histogram missing le=\"+Inf\" bucket");
    }
    if (count != inf_count) {
      return Status::InvalidArgument(family.name +
                                     ": _count != le=\"+Inf\" bucket");
    }
  }
  return Status::Ok();
}

MetricsFlusher::MetricsFlusher(std::string path,
                               std::chrono::milliseconds interval)
    : path_(std::move(path)), interval_(interval) {
  thread_ = std::thread([this] { Loop(); });
}

MetricsFlusher::~MetricsFlusher() { Stop(); }

bool MetricsFlusher::FlushNow() {
  const std::string text = PrometheusSnapshot();
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  flush_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MetricsFlusher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  FlushNow();  // Final flush so short-lived processes still leave a file.
}

void MetricsFlusher::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) return;
    lock.unlock();
    FlushNow();
    lock.lock();
  }
}

}  // namespace qec::obs
