#include "obs/prometheus.h"

#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/simd_kernels.h"
#include "common/sweep_pool.h"
#include "obs/json.h"
#include "obs/process_collector.h"
#include "obs/trace.h"

namespace qec::obs {

namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Counters are exported with the conventional `_total` suffix.
std::string CounterName(std::string_view name) {
  std::string out = PrometheusName(name);
  const std::string_view suffix = "_total";
  if (out.size() < suffix.size() ||
      out.compare(out.size() - suffix.size(), suffix.size(), suffix) != 0) {
    out += suffix;
  }
  return out;
}

void AppendSample(std::string& out, const std::string& name,
                  std::string_view label_key, const std::string& label_value,
                  const std::string& value) {
  out += name;
  if (!label_key.empty()) {
    out += '{';
    out += label_key;
    out += "=\"";
    out += label_value;
    out += "\"}";
  }
  out += ' ';
  out += value;
  out += '\n';
}

/// 16 lowercase hex digits, matching the server layer's trace-id rendering
/// (obs can't depend on server, so the formatter is duplicated here).
std::string TraceIdHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

/// Milliseconds since the epoch as OpenMetrics seconds ("1754700000.123").
std::string UnixMsToSeconds(uint64_t unix_ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(unix_ms / 1000),
                static_cast<unsigned long long>(unix_ms % 1000));
  return std::string(buf);
}

/// One `_bucket{le="..."}` line, with the OpenMetrics exemplar tail when
/// the bucket has a traced observation.
void AppendBucket(std::string& out, const std::string& family,
                  const std::string& le, uint64_t cumulative,
                  const Exemplar* exemplar) {
  out += family;
  out += "_bucket{le=\"";
  out += le;
  out += "\"} ";
  out += std::to_string(cumulative);
  if (exemplar != nullptr && exemplar->trace_id != 0) {
    out += " # {trace_id=\"";
    out += TraceIdHex(exemplar->trace_id);
    out += "\"} ";
    out += std::to_string(exemplar->value);
    out += ' ';
    out += UnixMsToSeconds(exemplar->unix_ms);
  }
  out += '\n';
}

}  // namespace

// Build metadata injected by src/obs/CMakeLists.txt; the fallbacks cover
// builds that bypass CMake (e.g. direct compiler invocations in tooling).
#ifndef QEC_VERSION
#define QEC_VERSION "unknown"
#endif
#ifndef QEC_GIT_DESCRIBE
#define QEC_GIT_DESCRIBE "unknown"
#endif

BuildInfo GetBuildInfo() {
  BuildInfo info;
  info.version = QEC_VERSION;
  info.git = QEC_GIT_DESCRIBE;
#if defined(__POPCNT__)
  info.popcount = true;
#endif
#ifndef QEC_DISABLE_TRACING
  info.tracing = true;
#endif
  // The bitset-kernel tier the runtime dispatcher selected (cpuid +
  // QEC_KERNEL_DISPATCH override) — scalar and avx2 are exact-equal, so
  // this is for performance triage, not correctness.
  info.kernel_tier = simd::ActiveTierName();
  return info;
}

std::string PrometheusBuildInfo() {
  const BuildInfo info = GetBuildInfo();
  std::string out = "# TYPE qec_build_info gauge\n";
  out += "qec_build_info{version=\"" + info.version + "\",git=\"" + info.git +
         "\",popcount=\"";
  out += info.popcount ? "on" : "off";
  out += "\",tracing=\"";
  out += info.tracing ? "on" : "off";
  out += "\",kernel=\"";
  out += info.kernel_tier;
  out += "\"} 1\n";
  return out;
}

std::string PrometheusSweepPool() {
  const common::SweepPool::Stats s = common::SweepPool::Instance().GetStats();
  std::string out = "# TYPE qec_sweep_pool_runs_total counter\n";
  out += "qec_sweep_pool_runs_total " + std::to_string(s.runs) + "\n";
  out += "# TYPE qec_sweep_pool_spawns_total counter\n";
  out += "qec_sweep_pool_spawns_total " + std::to_string(s.spawns) + "\n";
  out += "# TYPE qec_sweep_pool_reuses_total counter\n";
  out += "qec_sweep_pool_reuses_total " + std::to_string(s.reuses) + "\n";
  return out;
}

std::string PrometheusName(std::string_view name) {
  std::string out = "qec_";
  out.reserve(out.size() + name.size());
  for (char c : name) out.push_back(IsNameChar(c) ? c : '_');
  return out;
}

std::string WritePrometheus(const MetricsSnapshot& snapshot) {
  std::string out = PrometheusBuildInfo();
  out += PrometheusSweepPool();
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = CounterName(name);
    out += "# TYPE " + prom + " counter\n";
    AppendSample(out, prom, "", "", std::to_string(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    AppendSample(out, prom, "", "", json::NumberToString(value));
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string prom = PrometheusName(h.name);
    out += "# TYPE " + prom + " histogram\n";
    // Registry buckets are (inclusive upper bound, count) for non-empty
    // buckets only; cumulating them yields exact `le` counts because the
    // bounds are inclusive. Exemplars arrive sorted by the same upper
    // bounds, so one forward cursor pairs them up.
    uint64_t cumulative = 0;
    size_t ex_i = 0;
    for (const auto& [upper, count] : h.buckets) {
      cumulative += count;
      while (ex_i < h.exemplars.size() && h.exemplars[ex_i].upper < upper) {
        ++ex_i;
      }
      const Exemplar* exemplar =
          ex_i < h.exemplars.size() && h.exemplars[ex_i].upper == upper
              ? &h.exemplars[ex_i].exemplar
              : nullptr;
      AppendBucket(out, prom, std::to_string(upper), cumulative, exemplar);
    }
    AppendBucket(out, prom, "+Inf", h.count, nullptr);
    AppendSample(out, prom + "_sum", "", "", std::to_string(h.sum));
    AppendSample(out, prom + "_count", "", "", std::to_string(h.count));
  }
  out += "# EOF\n";
  return out;
}

std::string PrometheusSnapshot() {
  std::string out = WritePrometheus(CaptureMetrics());
  // Splice the live qec_process_* families in before the trailing # EOF so
  // the admin /metrics route (and the flusher file) expose process health
  // without WritePrometheus — a pure snapshot renderer — touching /proc.
  const std::string_view eof = "# EOF\n";
  if (out.size() >= eof.size() &&
      out.compare(out.size() - eof.size(), eof.size(), eof) == 0) {
    out.resize(out.size() - eof.size());
  }
  out += PrometheusProcess();
  out += "# EOF\n";
  return out;
}

std::string_view PrometheusSample::Label(std::string_view key) const {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return {};
}

std::string_view PrometheusSample::ExemplarLabel(std::string_view key) const {
  for (const auto& [k, v] : exemplar_labels) {
    if (k == key) return v;
  }
  return {};
}

namespace {

/// True when `sample` belongs to the family `family`: exact match or a
/// recognized suffix.
bool BelongsTo(std::string_view sample, std::string_view family) {
  if (sample == family) return true;
  if (sample.size() <= family.size() ||
      sample.compare(0, family.size(), family) != 0) {
    return false;
  }
  const std::string_view suffix = sample.substr(family.size());
  return suffix == "_bucket" || suffix == "_sum" || suffix == "_count" ||
         suffix == "_total";
}

Status BadLine(size_t line_no, const std::string& why) {
  return Status::InvalidArgument("prometheus text line " +
                                 std::to_string(line_no) + ": " + why);
}

/// Parses a `{key="value",...}` label set starting at the '{' at `i`,
/// leaving `i` one past the closing '}'. Shared by the sample label set
/// and the exemplar label set.
Status ParseLabelSet(std::string_view line, size_t& i, size_t line_no,
                     std::vector<std::pair<std::string, std::string>>* out) {
  ++i;  // '{'
  while (i < line.size() && line[i] != '}') {
    size_t key_start = i;
    while (i < line.size() && IsNameChar(line[i])) ++i;
    if (i == key_start || i >= line.size() || line[i] != '=') {
      return BadLine(line_no, "malformed label");
    }
    std::string key(line.substr(key_start, i - key_start));
    ++i;  // '='
    if (i >= line.size() || line[i] != '"') {
      return BadLine(line_no, "label value must be quoted");
    }
    ++i;  // opening quote
    std::string value;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        ++i;
        if (i >= line.size()) break;
        switch (line[i]) {
          case 'n':
            value.push_back('\n');
            break;
          case '\\':
            value.push_back('\\');
            break;
          case '"':
            value.push_back('"');
            break;
          default:
            return BadLine(line_no, "bad label escape");
        }
        ++i;
      } else {
        value.push_back(line[i]);
        ++i;
      }
    }
    if (i >= line.size()) return BadLine(line_no, "unterminated label");
    ++i;  // closing quote
    out->emplace_back(std::move(key), std::move(value));
    if (i < line.size() && line[i] == ',') ++i;
  }
  if (i >= line.size()) return BadLine(line_no, "unterminated label set");
  ++i;  // '}'
  return Status::Ok();
}

/// Parses a sample value token ("+Inf"/"-Inf"/decimal) starting at `i`,
/// leaving `i` one past the token.
Status ParseValueToken(std::string_view line, size_t& i, size_t line_no,
                       double* out) {
  size_t end = line.find(' ', i);
  if (end == std::string_view::npos) end = line.size();
  const std::string text(line.substr(i, end - i));
  if (text.empty()) return BadLine(line_no, "missing sample value");
  if (text == "+Inf") {
    *out = HUGE_VAL;
  } else if (text == "-Inf") {
    *out = -HUGE_VAL;
  } else {
    char* parse_end = nullptr;
    *out = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size()) {
      return BadLine(line_no, "bad sample value '" + text + "'");
    }
  }
  i = end;
  return Status::Ok();
}

}  // namespace

Result<std::vector<PrometheusFamily>> ParsePrometheusText(
    std::string_view text) {
  std::vector<PrometheusFamily> families;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    // Trim trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# TYPE <name> <type>" starts a family; all other comments
      // (# HELP, # EOF, free-form) are skipped.
      std::string_view rest = line.substr(1);
      while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
      if (rest.compare(0, 5, "TYPE ") != 0) continue;
      rest.remove_prefix(5);
      const size_t space = rest.find(' ');
      if (space == std::string_view::npos || space == 0) {
        return BadLine(line_no, "malformed # TYPE");
      }
      PrometheusFamily family;
      family.name = std::string(rest.substr(0, space));
      family.type = std::string(rest.substr(space + 1));
      if (family.type.empty()) return BadLine(line_no, "missing type");
      families.push_back(std::move(family));
      continue;
    }

    // Sample line: name[{labels}] value [timestamp].
    size_t i = 0;
    while (i < line.size() && IsNameChar(line[i])) ++i;
    if (i == 0) return BadLine(line_no, "expected metric name");
    PrometheusSample sample;
    sample.name = std::string(line.substr(0, i));

    if (i < line.size() && line[i] == '{') {
      Status st = ParseLabelSet(line, i, line_no, &sample.labels);
      if (!st.ok()) return st;
    }

    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) return BadLine(line_no, "missing sample value");
    {
      Status st = ParseValueToken(line, i, line_no, &sample.value);
      if (!st.ok()) return st;
    }

    // Optional tail: a plain timestamp token, then an OpenMetrics
    // exemplar `# {labels} value [timestamp]`.
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] != '#') {
      // Sample timestamp: accepted and ignored (we never emit one).
      while (i < line.size() && line[i] != ' ') ++i;
      while (i < line.size() && line[i] == ' ') ++i;
    }
    if (i < line.size() && line[i] == '#') {
      ++i;  // '#'
      while (i < line.size() && line[i] == ' ') ++i;
      if (i >= line.size() || line[i] != '{') {
        return BadLine(line_no, "exemplar must start with a label set");
      }
      Status st = ParseLabelSet(line, i, line_no, &sample.exemplar_labels);
      if (!st.ok()) return st;
      while (i < line.size() && line[i] == ' ') ++i;
      if (i >= line.size()) return BadLine(line_no, "missing exemplar value");
      st = ParseValueToken(line, i, line_no, &sample.exemplar_value);
      if (!st.ok()) return st;
      while (i < line.size() && line[i] == ' ') ++i;
      if (i < line.size()) {
        st = ParseValueToken(line, i, line_no, &sample.exemplar_timestamp);
        if (!st.ok()) return st;
      }
      sample.has_exemplar = true;
    }

    if (families.empty() || !BelongsTo(sample.name, families.back().name)) {
      return BadLine(line_no,
                     "sample '" + sample.name + "' has no preceding # TYPE");
    }
    families.back().samples.push_back(std::move(sample));
  }
  return families;
}

Status ValidatePrometheusHistograms(
    const std::vector<PrometheusFamily>& families) {
  for (const PrometheusFamily& family : families) {
    if (family.type != "histogram") continue;
    double last_bucket = -1.0;
    bool saw_inf = false;
    double inf_count = -1.0;
    double count = -1.0;
    for (const PrometheusSample& sample : family.samples) {
      if (sample.name == family.name + "_bucket") {
        if (saw_inf) {
          return Status::InvalidArgument(family.name +
                                         ": bucket after le=\"+Inf\"");
        }
        if (sample.value < last_bucket) {
          return Status::InvalidArgument(
              family.name + ": cumulative buckets must be non-decreasing");
        }
        last_bucket = sample.value;
        const std::string_view le = sample.Label("le");
        if (le == "+Inf") {
          saw_inf = true;
          inf_count = sample.value;
        }
        if (sample.has_exemplar && le != "+Inf") {
          const double bound = std::strtod(std::string(le).c_str(), nullptr);
          if (sample.exemplar_value > bound) {
            return Status::InvalidArgument(
                family.name + ": exemplar value above its bucket's le bound");
          }
        }
      } else if (sample.name == family.name + "_count") {
        count = sample.value;
      }
    }
    if (!saw_inf) {
      return Status::InvalidArgument(family.name +
                                     ": histogram missing le=\"+Inf\" bucket");
    }
    if (count != inf_count) {
      return Status::InvalidArgument(family.name +
                                     ": _count != le=\"+Inf\" bucket");
    }
  }
  return Status::Ok();
}

namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsLegalMetricName(std::string_view name) {
  if (name.empty()) return false;
  if (name[0] >= '0' && name[0] <= '9') return false;
  for (char c : name) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

}  // namespace

Status LintPrometheusNaming(const std::vector<PrometheusFamily>& families) {
  for (const PrometheusFamily& family : families) {
    if (!IsLegalMetricName(family.name)) {
      return Status::InvalidArgument("family '" + family.name +
                                     "': illegal metric name");
    }
    if (family.type == "counter") {
      if (!EndsWith(family.name, "_total")) {
        return Status::InvalidArgument(
            "counter '" + family.name + "': name must end in _total");
      }
      for (const PrometheusSample& sample : family.samples) {
        if (sample.name != family.name) {
          return Status::InvalidArgument("counter '" + family.name +
                                         "': sample '" + sample.name +
                                         "' must match the family name");
        }
      }
    } else if (family.type == "histogram") {
      for (const std::string_view reserved :
           {"_total", "_bucket", "_sum", "_count"}) {
        if (EndsWith(family.name, reserved)) {
          return Status::InvalidArgument(
              "histogram '" + family.name + "': family name carries the "
              "reserved suffix '" + std::string(reserved) + "'");
        }
      }
      bool saw_bucket = false, saw_sum = false, saw_count = false;
      for (const PrometheusSample& sample : family.samples) {
        if (sample.name == family.name + "_bucket") {
          saw_bucket = true;
          if (sample.Label("le").empty()) {
            return Status::InvalidArgument(
                "histogram '" + family.name + "': _bucket without le label");
          }
        } else if (sample.name == family.name + "_sum") {
          saw_sum = true;
        } else if (sample.name == family.name + "_count") {
          saw_count = true;
        } else {
          return Status::InvalidArgument(
              "histogram '" + family.name + "': unexpected sample '" +
              sample.name + "'");
        }
      }
      if (!saw_bucket || !saw_sum || !saw_count) {
        return Status::InvalidArgument(
            "histogram '" + family.name +
            "': must emit _bucket, _sum, and _count");
      }
    } else if (family.type == "gauge") {
      if (EndsWith(family.name, "_total")) {
        return Status::InvalidArgument(
            "gauge '" + family.name + "': _total suffix is reserved for "
            "counters");
      }
    }
  }
  return Status::Ok();
}

MetricsFlusher::MetricsFlusher(std::string path,
                               std::chrono::milliseconds interval)
    : path_(std::move(path)), interval_(interval) {
  thread_ = std::thread([this] { Loop(); });
}

MetricsFlusher::~MetricsFlusher() { Stop(); }

bool MetricsFlusher::FlushNow() {
  const std::string text = PrometheusSnapshot();
  // Pid-unique temp name so two processes flushing to the same path never
  // clobber each other's in-progress write; fsync before the rename so the
  // atomic swap never publishes an empty or torn file after a crash.
  const std::string tmp =
      path_ + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool flushed = wrote && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !flushed || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  flush_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MetricsFlusher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  FlushNow();  // Final flush so short-lived processes still leave a file.
}

void MetricsFlusher::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) return;
    lock.unlock();
    FlushNow();
    lock.lock();
  }
}

}  // namespace qec::obs
