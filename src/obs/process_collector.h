#ifndef QEC_OBS_PROCESS_COLLECTOR_H_
#define QEC_OBS_PROCESS_COLLECTOR_H_

#include <cstdint>
#include <string>

namespace qec::obs {

/// Point-in-time resource usage of this process, sampled from /proc/self.
/// `valid` is false when /proc was unreadable (non-Linux or locked-down
/// container) — the collector degrades to emitting nothing rather than
/// lying with zeros.
struct ProcessStats {
  bool valid = false;
  /// User + system CPU consumed since process start, in seconds.
  double cpu_seconds = 0.0;
  uint64_t resident_bytes = 0;
  uint64_t virtual_bytes = 0;
  uint64_t open_fds = 0;
};

/// One fresh sample (two /proc reads; cheap enough for every scrape).
ProcessStats SampleProcessStats();

/// The standard process families in Prometheus exposition format:
/// `qec_process_cpu_seconds_total`, `qec_process_resident_memory_bytes`,
/// `qec_process_virtual_memory_bytes`, `qec_process_open_fds`. Empty
/// string when /proc is unavailable. Appended to PrometheusSnapshot() so
/// every scrape carries live process health.
std::string PrometheusProcess();

}  // namespace qec::obs

#endif  // QEC_OBS_PROCESS_COLLECTOR_H_
