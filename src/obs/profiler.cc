#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <errno.h>
#include <execinfo.h>

#include <cstring>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>
#include <unordered_map>
#include <vector>

namespace qec::obs {

namespace {

/// backtrace() returns return addresses; dladdr the byte before so the
/// lookup lands inside the call instruction's function, not the next one.
std::string SymbolizePc(uint64_t pc) {
  Dl_info info;
  if (::dladdr(reinterpret_cast<void*>(pc - 1), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // ';' is the folded-stack frame separator; make frames separator-clean.
    for (char& c : name) {
      if (c == ';' || c == '\n') c = ':';
    }
    return name;
  }
  char hex[32];
  std::snprintf(hex, sizeof(hex), "0x%llx",
                static_cast<unsigned long long>(pc));
  return hex;
}

}  // namespace

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* profiler = new CpuProfiler();
  return *profiler;
}

void CpuProfiler::Handler(int /*signo*/) {
  // Async-signal-safe path: save errno, capture PCs into a stack array,
  // reserve buffer space with one fetch_add, copy, restore errno. No
  // locks, no allocation (backtrace itself was primed in Start()).
  const int saved_errno = errno;
  CpuProfiler& p = Global();
  if (p.running_.load(std::memory_order_relaxed)) {
    void* pcs[kMaxDepth];
    int depth = ::backtrace(pcs, kMaxDepth);
    // Drop the handler + signal-trampoline frames.
    constexpr int kSkip = 2;
    if (depth > kSkip) {
      depth -= kSkip;
      const uint64_t need = static_cast<uint64_t>(depth) + 1;
      const uint64_t start =
          p.cursor_.fetch_add(need, std::memory_order_relaxed);
      if (start + need <= kCapacityWords) {
        // Frames first, depth word last: RenderFolded treats a zero depth
        // word as end-of-data, so a half-written record is never read.
        for (int i = 0; i < depth; ++i) {
          p.buf_[start + 1 + i] =
              reinterpret_cast<uint64_t>(pcs[i + kSkip]);
        }
        std::atomic_ref<uint64_t>(p.buf_[start])
            .store(static_cast<uint64_t>(depth), std::memory_order_release);
        p.samples_.fetch_add(1, std::memory_order_relaxed);
      } else {
        p.dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  errno = saved_errno;
}

Status CpuProfiler::Start(int hz) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("cpu profile already running");
  }
  hz = std::clamp(hz, 1, 1000);
  if (buf_ == nullptr) buf_ = std::make_unique<uint64_t[]>(kCapacityWords);
  std::fill_n(buf_.get(), kCapacityWords, uint64_t{0});
  // backtrace()'s first call dlopens libgcc (malloc + loader locks) —
  // force that now, outside any signal handler.
  void* prime[2];
  ::backtrace(prime, 2);

  cursor_.store(0, std::memory_order_relaxed);
  samples_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &CpuProfiler::Handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (::sigaction(SIGPROF, &sa, &old_action_) != 0) {
    running_.store(false, std::memory_order_release);
    return Status::Internal("sigaction(SIGPROF) failed");
  }
  struct itimerval timer;
  timer.it_interval.tv_sec = hz == 1 ? 1 : 0;
  timer.it_interval.tv_usec = hz == 1 ? 0 : 1000000 / hz;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    ::sigaction(SIGPROF, &old_action_, nullptr);
    running_.store(false, std::memory_order_release);
    return Status::Internal("setitimer(ITIMER_PROF) failed");
  }
  return Status::Ok();
}

std::string CpuProfiler::StopFolded() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_.load(std::memory_order_relaxed)) return "";
  struct itimerval zero;
  std::memset(&zero, 0, sizeof(zero));
  ::setitimer(ITIMER_PROF, &zero, nullptr);
  ::sigaction(SIGPROF, &old_action_, nullptr);
  running_.store(false, std::memory_order_release);
  // A handler that fired on another thread just before the disarm may
  // still be copying its frames; the depth-word-last discipline keeps the
  // read safe, and this settle keeps the last record from being lost.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  return RenderFolded();
}

std::string CpuProfiler::RenderFolded() const {
  const uint64_t end =
      std::min(cursor_.load(std::memory_order_acquire), kCapacityWords);
  std::unordered_map<uint64_t, std::string> symbol_cache;
  std::map<std::string, uint64_t> folded;
  uint64_t pos = 0;
  while (pos < end) {
    const uint64_t depth =
        std::atomic_ref<uint64_t>(buf_[pos]).load(std::memory_order_acquire);
    if (depth == 0 || pos + 1 + depth > end) break;
    std::string stack;
    // Stored leaf-first; folded format wants root-first.
    for (uint64_t i = depth; i > 0; --i) {
      const uint64_t pc = buf_[pos + i];
      auto it = symbol_cache.find(pc);
      if (it == symbol_cache.end()) {
        it = symbol_cache.emplace(pc, SymbolizePc(pc)).first;
      }
      if (!stack.empty()) stack += ';';
      stack += it->second;
    }
    folded[stack] += 1;
    pos += 1 + depth;
  }
  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

Result<std::string> CollectCpuProfile(int hz, double seconds) {
  seconds = std::clamp(seconds, 0.1, 300.0);
  CpuProfiler& profiler = CpuProfiler::Global();
  Status st = profiler.Start(hz);
  if (!st.ok()) return st;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000.0)));
  return profiler.StopFolded();
}

std::string SummarizeFoldedStacks(std::string_view folded, size_t limit) {
  struct FrameStat {
    uint64_t inclusive = 0;
    uint64_t self = 0;
  };
  std::map<std::string, FrameStat> frames;
  uint64_t total = 0;
  size_t pos = 0;
  while (pos < folded.size()) {
    size_t end = folded.find('\n', pos);
    if (end == std::string_view::npos) end = folded.size();
    std::string_view line = folded.substr(pos, end - pos);
    pos = end + 1;
    const size_t space = line.rfind(' ');
    if (space == std::string_view::npos) continue;
    uint64_t count = 0;
    for (char c : line.substr(space + 1)) {
      if (c < '0' || c > '9') {
        count = 0;
        break;
      }
      count = count * 10 + static_cast<uint64_t>(c - '0');
    }
    if (count == 0) continue;
    total += count;
    std::string_view stack = line.substr(0, space);
    // Inclusive: each distinct frame on the stack once; self: the leaf.
    std::vector<std::string_view> parts;
    size_t fp = 0;
    while (fp <= stack.size()) {
      size_t fe = stack.find(';', fp);
      if (fe == std::string_view::npos) fe = stack.size();
      if (fe > fp) parts.push_back(stack.substr(fp, fe - fp));
      fp = fe + 1;
    }
    for (size_t i = 0; i < parts.size(); ++i) {
      bool seen_before = false;
      for (size_t j = 0; j < i; ++j) {
        if (parts[j] == parts[i]) {
          seen_before = true;
          break;
        }
      }
      if (!seen_before) frames[std::string(parts[i])].inclusive += count;
    }
    if (!parts.empty()) frames[std::string(parts.back())].self += count;
  }

  std::vector<std::pair<std::string, FrameStat>> ranked(frames.begin(),
                                                        frames.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.self != b.second.self) return a.second.self > b.second.self;
    if (a.second.inclusive != b.second.inclusive) {
      return a.second.inclusive > b.second.inclusive;
    }
    return a.first < b.first;
  });
  if (ranked.size() > limit) ranked.resize(limit);

  std::string out = "total samples: " + std::to_string(total) + "\n";
  out += "   self    incl  frame\n";
  for (const auto& [name, stat] : ranked) {
    char row[64];
    std::snprintf(row, sizeof(row), "%7llu %7llu  ",
                  static_cast<unsigned long long>(stat.self),
                  static_cast<unsigned long long>(stat.inclusive));
    out += row;
    out += name;
    out += '\n';
  }
  return out;
}

}  // namespace qec::obs
