#include "baselines/data_clouds.h"

#include <algorithm>
#include <unordered_set>

namespace qec::baselines {

DataClouds::DataClouds(DataCloudsOptions options) : options_(options) {}

std::vector<SuggestedQuery> DataClouds::Suggest(
    const core::ResultUniverse& universe, const index::InvertedIndex& index,
    const std::vector<TermId>& user_terms) const {
  std::unordered_set<TermId> excluded(user_terms.begin(), user_terms.end());

  struct Scored {
    TermId term;
    double score;
  };
  std::vector<Scored> scored;
  for (TermId t : universe.DistinctTerms()) {
    if (excluded.count(t) != 0) continue;
    // Σ over results containing t of tf(t, d) · rank(d), rank-weighted.
    double weighted_tf = 0.0;
    universe.DocsWithTerm(t).ForEachSetBit([&](size_t i) {
      const doc::Document& d = universe.corpus().Get(universe.doc_at(i));
      weighted_tf +=
          static_cast<double>(d.TermFrequency(t)) * universe.weight(i);
    });
    scored.push_back(Scored{t, weighted_tf * index.Idf(t)});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.term < b.term;
  });

  const auto& vocab = index.corpus().analyzer().vocabulary();
  std::vector<SuggestedQuery> out;
  for (size_t i = 0; i < scored.size() && out.size() < options_.num_queries;
       ++i) {
    SuggestedQuery q;
    q.terms = user_terms;
    q.terms.push_back(scored[i].term);
    for (TermId t : q.terms) q.keywords.emplace_back(vocab.TermString(t));
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace qec::baselines
