#ifndef QEC_BASELINES_SUGGESTION_H_
#define QEC_BASELINES_SUGGESTION_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace qec::baselines {

/// An expanded query suggested by any method, in renderable form. `terms`
/// holds the corpus TermIds of the keywords that exist in the corpus
/// vocabulary; query-log methods can suggest off-corpus words, which appear
/// in `keywords` only (the paper observes Google doing exactly this).
struct SuggestedQuery {
  std::vector<std::string> keywords;
  std::vector<TermId> terms;
  /// Popularity evidence in [0, 1] for query-log suggestions (normalized
  /// log count); 0 for corpus-driven methods. Raters treat popularity as a
  /// helpfulness signal even when the suggestion retrieves nothing locally
  /// (the paper's Google results: "generally very popular with the
  /// users").
  double popularity = 0.0;
};

}  // namespace qec::baselines

#endif  // QEC_BASELINES_SUGGESTION_H_
