#include "baselines/query_log.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace qec::baselines {

QueryLogSuggester::QueryLogSuggester(std::vector<QueryLogEntry> log)
    : log_(std::move(log)) {
  std::sort(log_.begin(), log_.end(),
            [](const QueryLogEntry& a, const QueryLogEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.query < b.query;
            });
  max_count_ = log_.empty() ? 1 : std::max<uint64_t>(1, log_.front().count);
}

std::vector<SuggestedQuery> QueryLogSuggester::Suggest(
    std::string_view user_query, const text::Analyzer& analyzer,
    size_t num_queries) const {
  text::Tokenizer tokenizer;
  std::vector<std::string> needed = tokenizer.Tokenize(user_query);

  std::vector<SuggestedQuery> out;
  std::unordered_set<std::string> seen;
  for (const QueryLogEntry& entry : log_) {
    if (out.size() >= num_queries) break;
    std::vector<std::string> words = tokenizer.Tokenize(entry.query);
    // The logged query must extend the user query: contain all its words
    // plus at least one more.
    bool contains_all = true;
    for (const auto& w : needed) {
      if (std::find(words.begin(), words.end(), w) == words.end()) {
        contains_all = false;
        break;
      }
    }
    if (!contains_all || words.size() <= needed.size()) continue;
    std::string key = Join(words, " ");
    if (!seen.insert(key).second) continue;

    SuggestedQuery q;
    q.keywords = std::move(words);
    for (const auto& w : q.keywords) {
      TermId t = analyzer.vocabulary().Lookup(w);
      if (t != kInvalidTermId) q.terms.push_back(t);
    }
    q.popularity = static_cast<double>(entry.count) /
                   static_cast<double>(max_count_);
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace qec::baselines
