#include "baselines/cluster_summarization.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "core/metrics.h"

namespace qec::baselines {

ClusterSummarization::ClusterSummarization(ClusterSummarizationOptions options)
    : options_(options) {}

std::vector<SuggestedQuery> ClusterSummarization::Suggest(
    const core::ResultUniverse& universe, const index::InvertedIndex& index,
    const std::vector<TermId>& user_terms,
    const cluster::Clustering& clustering) const {
  QEC_CHECK_EQ(clustering.assignment.size(), universe.size());
  std::unordered_set<TermId> excluded(user_terms.begin(), user_terms.end());
  const size_t k = clustering.num_clusters;

  // Per-cluster term frequencies and cluster frequency of each term.
  std::vector<std::unordered_map<TermId, double>> cluster_tf(k);
  std::unordered_map<TermId, size_t> cluster_freq;
  const auto members = clustering.Members();
  for (size_t c = 0; c < k; ++c) {
    for (size_t i : members[c]) {
      const doc::Document& d = universe.corpus().Get(universe.doc_at(i));
      for (TermId t : d.term_set()) {
        cluster_tf[c][t] += static_cast<double>(d.TermFrequency(t));
      }
    }
    for (const auto& [t, tf] : cluster_tf[c]) cluster_freq[t]++;
  }

  const auto& vocab = index.corpus().analyzer().vocabulary();
  std::vector<SuggestedQuery> out;
  for (size_t c = 0; c < k; ++c) {
    struct Scored {
      TermId term;
      double score;
    };
    std::vector<Scored> scored;
    for (const auto& [t, tf] : cluster_tf[c]) {
      if (excluded.count(t) != 0) continue;
      // TFICF: tf within the cluster × log-scaled inverse cluster frequency.
      double icf = std::log(1.0 + static_cast<double>(k) /
                                      static_cast<double>(cluster_freq[t]));
      scored.push_back(Scored{t, tf * icf});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.term < b.term;
              });
    SuggestedQuery q;
    q.terms = user_terms;
    for (size_t i = 0; i < scored.size() && i < options_.label_size; ++i) {
      q.terms.push_back(scored[i].term);
    }
    for (TermId t : q.terms) q.keywords.emplace_back(vocab.TermString(t));
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<core::QueryQuality> ClusterSummarization::Evaluate(
    const core::ResultUniverse& universe,
    const std::vector<SuggestedQuery>& suggestions,
    const cluster::Clustering& clustering) const {
  const auto members = clustering.Members();
  QEC_CHECK_EQ(suggestions.size(), members.size());
  std::vector<core::QueryQuality> out;
  for (size_t c = 0; c < suggestions.size(); ++c) {
    DynamicBitset cluster_bits = universe.EmptySet();
    for (size_t i : members[c]) cluster_bits.Set(i);
    DynamicBitset retrieved = universe.Retrieve(suggestions[c].terms);
    out.push_back(core::EvaluateQuery(universe, retrieved, cluster_bits));
  }
  return out;
}

}  // namespace qec::baselines
