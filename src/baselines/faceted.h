#ifndef QEC_BASELINES_FACETED_H_
#define QEC_BASELINES_FACETED_H_

#include <string>
#include <vector>

#include "core/result_universe.h"

namespace qec::baselines {

/// One extracted facet: an (entity, attribute) pair with its value
/// distribution over the result set.
struct Facet {
  std::string entity;
  std::string attribute;
  /// (value, #results carrying it), descending by count.
  std::vector<std::pair<std::string, size_t>> values;
  /// Fraction of the results that have this facet at all.
  double coverage = 0.0;
};

/// Facet-extraction configuration.
struct FacetedOptions {
  /// Facets below this result coverage are dropped.
  double min_coverage = 0.3;
  /// Maximum facets returned.
  size_t max_facets = 8;
  /// Facets whose dominant value covers more than this fraction of the
  /// carrying results are useless for navigation (no discrimination).
  double max_dominant_value_fraction = 0.95;
};

/// The faceted-search comparison point of the paper's related work
/// (Chakrabarti et al. SIGMOD'04 / FACeTOR / Facetedpedia, simplified):
/// automatic facet construction over a query's result set. The paper
/// argues facets work when results share typed features (the shopping
/// catalog) and break down on text results and ambiguous queries, where
/// "different results may have completely different facets" — measured by
/// the coverage numbers this extractor reports.
class FacetedNavigator {
 public:
  explicit FacetedNavigator(FacetedOptions options = {});

  /// Extracts facets from the structured results in `universe`, ranked by
  /// coverage × value entropy (facets that both apply widely and split the
  /// results evenly navigate best). Text results contribute nothing — the
  /// paper's first failure case.
  std::vector<Facet> ExtractFacets(const core::ResultUniverse& universe) const;

  /// Fraction of universe results that carry at least one returned facet —
  /// 0.0 on pure text corpora.
  static double FacetableFraction(const core::ResultUniverse& universe,
                                  const std::vector<Facet>& facets);

  const FacetedOptions& options() const { return options_; }

 private:
  FacetedOptions options_;
};

}  // namespace qec::baselines

#endif  // QEC_BASELINES_FACETED_H_
