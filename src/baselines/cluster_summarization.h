#ifndef QEC_BASELINES_CLUSTER_SUMMARIZATION_H_
#define QEC_BASELINES_CLUSTER_SUMMARIZATION_H_

#include <vector>

#include "baselines/suggestion.h"
#include "cluster/kmeans.h"
#include "core/expansion_context.h"
#include "core/result_universe.h"
#include "index/inverted_index.h"

namespace qec::baselines {

/// Cluster Summarization configuration.
struct ClusterSummarizationOptions {
  /// Keywords per cluster label (the paper's CS examples show 3-4 words
  /// appended to the user query).
  size_t label_size = 3;
};

/// CS [Carmel et al., SIGIR'09 style]: clusters the results, then labels
/// each cluster with its top-TFICF terms (term frequency in the cluster ×
/// inverse cluster frequency), and uses the label as the expanded query.
/// Because keyword *interaction* is ignored, high-TFICF words may rarely
/// co-occur, so the label used as an AND query often has low recall — the
/// failure mode the paper's Sec. 5 highlights.
class ClusterSummarization {
 public:
  explicit ClusterSummarization(ClusterSummarizationOptions options = {});

  /// One suggested query per cluster: user query + top-TFICF label terms.
  std::vector<SuggestedQuery> Suggest(
      const core::ResultUniverse& universe, const index::InvertedIndex& index,
      const std::vector<TermId>& user_terms,
      const cluster::Clustering& clustering) const;

  /// Per-cluster quality of the CS queries, so Eq. 1 can be computed for
  /// CS (Fig. 5 includes CS).
  std::vector<core::QueryQuality> Evaluate(
      const core::ResultUniverse& universe,
      const std::vector<SuggestedQuery>& suggestions,
      const cluster::Clustering& clustering) const;

  const ClusterSummarizationOptions& options() const { return options_; }

 private:
  ClusterSummarizationOptions options_;
};

}  // namespace qec::baselines

#endif  // QEC_BASELINES_CLUSTER_SUMMARIZATION_H_
