#ifndef QEC_BASELINES_DATA_CLOUDS_H_
#define QEC_BASELINES_DATA_CLOUDS_H_

#include <vector>

#include "baselines/suggestion.h"
#include "core/result_universe.h"
#include "index/inverted_index.h"

namespace qec::baselines {

/// Data Clouds configuration.
struct DataCloudsOptions {
  /// Number of expanded queries (top words) returned.
  size_t num_queries = 3;
};

/// Data Clouds [Koutrika et al., EDBT'09]: summarizes a ranked result list
/// by its top-k important words, where importance combines term frequency,
/// inverse document frequency, and the ranking score of the results the
/// word appears in. No clustering: word w scores
///   score(w) = idf(w) * Σ_{d ∈ results, w ∈ d} tf(w, d) · rank(d).
/// Each top word w yields the expanded query {user query, w}.
class DataClouds {
 public:
  explicit DataClouds(DataCloudsOptions options = {});

  std::vector<SuggestedQuery> Suggest(
      const core::ResultUniverse& universe, const index::InvertedIndex& index,
      const std::vector<TermId>& user_terms) const;

  const DataCloudsOptions& options() const { return options_; }

 private:
  DataCloudsOptions options_;
};

}  // namespace qec::baselines

#endif  // QEC_BASELINES_DATA_CLOUDS_H_
