#ifndef QEC_BASELINES_QUERY_LOG_H_
#define QEC_BASELINES_QUERY_LOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "baselines/suggestion.h"
#include "text/analyzer.h"

namespace qec::baselines {

/// One logged query with its popularity count.
struct QueryLogEntry {
  std::string query;
  uint64_t count = 1;
};

/// Query-log-driven suggester — the stand-in for the paper's "Google"
/// baseline (related queries mined from a search engine's query log).
/// Suggestions are logged queries that extend the user query, ranked by
/// popularity. Exhibits the behaviours the paper attributes to Google:
/// popular but possibly off-corpus keywords, and popularity bias that can
/// leave rare senses uncovered (QW8 "rockets": all suggestions were space
/// rockets, none the NBA team).
class QueryLogSuggester {
 public:
  explicit QueryLogSuggester(std::vector<QueryLogEntry> log);

  /// Top `num_queries` logged queries containing every word of
  /// `user_query` (case-insensitive), by descending popularity. Keywords
  /// that exist in `analyzer`'s vocabulary also get TermIds; off-corpus
  /// keywords appear as strings only.
  std::vector<SuggestedQuery> Suggest(std::string_view user_query,
                                      const text::Analyzer& analyzer,
                                      size_t num_queries = 3) const;

  size_t log_size() const { return log_.size(); }

 private:
  std::vector<QueryLogEntry> log_;
  uint64_t max_count_ = 1;
};

}  // namespace qec::baselines

#endif  // QEC_BASELINES_QUERY_LOG_H_
