#include "baselines/faceted.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace qec::baselines {

FacetedNavigator::FacetedNavigator(FacetedOptions options)
    : options_(options) {}

std::vector<Facet> FacetedNavigator::ExtractFacets(
    const core::ResultUniverse& universe) const {
  const size_t n = universe.size();
  if (n == 0) return {};

  // (entity, attribute) -> value -> set of result positions (a result may
  // repeat a feature; count each result once).
  std::map<std::pair<std::string, std::string>,
           std::map<std::string, std::vector<size_t>>>
      groups;
  for (size_t i = 0; i < n; ++i) {
    const doc::Document& d = universe.corpus().Get(universe.doc_at(i));
    for (const doc::Feature& f : d.features()) {
      auto& per_value = groups[{f.entity, f.attribute}][f.value];
      if (per_value.empty() || per_value.back() != i) per_value.push_back(i);
    }
  }

  struct Scored {
    Facet facet;
    double score;
  };
  std::vector<Scored> scored;
  for (auto& [key, value_map] : groups) {
    Facet facet;
    facet.entity = key.first;
    facet.attribute = key.second;
    std::vector<bool> carrying(n, false);
    for (auto& [value, members] : value_map) {
      size_t count = 0;
      for (size_t i : members) {
        if (!carrying[i]) ++count;
        carrying[i] = true;
      }
      facet.values.emplace_back(value, members.size());
    }
    size_t carriers = 0;
    for (bool c : carrying) carriers += c ? 1 : 0;
    facet.coverage = static_cast<double>(carriers) / static_cast<double>(n);
    if (facet.coverage < options_.min_coverage) continue;

    std::sort(facet.values.begin(), facet.values.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    const double dominant =
        static_cast<double>(facet.values.front().second) /
        static_cast<double>(carriers);
    if (dominant > options_.max_dominant_value_fraction) continue;

    // Value entropy: how evenly the facet splits its carriers.
    double entropy = 0.0;
    for (const auto& [value, count] : facet.values) {
      double p = static_cast<double>(count) / static_cast<double>(carriers);
      if (p > 0.0) entropy -= p * std::log2(p);
    }
    const double score = facet.coverage * entropy;
    scored.push_back(Scored{std::move(facet), score});
  }

  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.facet.entity != b.facet.entity) return a.facet.entity < b.facet.entity;
    return a.facet.attribute < b.facet.attribute;
  });

  std::vector<Facet> out;
  for (auto& s : scored) {
    if (out.size() >= options_.max_facets) break;
    out.push_back(std::move(s.facet));
  }
  return out;
}

double FacetedNavigator::FacetableFraction(
    const core::ResultUniverse& universe, const std::vector<Facet>& facets) {
  const size_t n = universe.size();
  if (n == 0 || facets.empty()) return 0.0;
  std::vector<bool> covered(n, false);
  for (size_t i = 0; i < n; ++i) {
    const doc::Document& d = universe.corpus().Get(universe.doc_at(i));
    for (const doc::Feature& f : d.features()) {
      for (const Facet& facet : facets) {
        if (f.entity == facet.entity && f.attribute == facet.attribute) {
          covered[i] = true;
          break;
        }
      }
      if (covered[i]) break;
    }
  }
  size_t count = 0;
  for (bool c : covered) count += c ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(n);
}

}  // namespace qec::baselines
