#ifndef QEC_TEXT_VOCABULARY_H_
#define QEC_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace qec::text {

/// Bidirectional string interner: term string <-> dense TermId. All corpus
/// processing works on TermIds; strings only reappear when presenting
/// expanded queries to the user.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Interns `term`, returning its id (existing or fresh).
  TermId Intern(std::string_view term);

  /// Id of `term`, or kInvalidTermId if it was never interned.
  TermId Lookup(std::string_view term) const;

  /// String of an interned id. `id` must be valid.
  const std::string& TermString(TermId id) const;

  /// Number of distinct interned terms.
  size_t size() const { return terms_.size(); }

  /// Pre-sizes the intern tables for `n` terms; deserializers call this
  /// before bulk re-interning a stored vocabulary.
  void Reserve(size_t n) {
    ids_.reserve(n);
    terms_.reserve(n);
  }

 private:
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> terms_;
};

}  // namespace qec::text

#endif  // QEC_TEXT_VOCABULARY_H_
