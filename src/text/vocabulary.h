#ifndef QEC_TEXT_VOCABULARY_H_
#define QEC_TEXT_VOCABULARY_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interned_strings.h"
#include "common/types.h"

namespace qec::text {

/// Bidirectional string interner: term string <-> dense TermId. All corpus
/// processing works on TermIds; strings only reappear when presenting
/// expanded queries to the user. Term bytes live in a StringInterner arena,
/// so both the id map keys and the id->string table are views into stable
/// storage — Intern/Lookup never allocate a temporary std::string for the
/// probe, and TermString hands out a view with vocabulary lifetime.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Interns `term`, returning its id (existing or fresh).
  TermId Intern(std::string_view term);

  /// Id of `term`, or kInvalidTermId if it was never interned.
  TermId Lookup(std::string_view term) const;

  /// String of an interned id. `id` must be valid. The view stays valid for
  /// the lifetime of the vocabulary (arena storage is never reallocated).
  std::string_view TermString(TermId id) const;

  /// Number of distinct interned terms.
  size_t size() const { return terms_.size(); }

  /// Bytes held by the term arena (observability).
  size_t arena_bytes() const { return arena_.arena_bytes(); }

  /// Pre-sizes the intern tables for `n` terms; deserializers call this
  /// before bulk re-interning a stored vocabulary.
  void Reserve(size_t n) {
    ids_.reserve(n);
    terms_.reserve(n);
  }

 private:
  struct ViewHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  common::StringInterner arena_;
  std::unordered_map<std::string_view, TermId, ViewHash, std::equal_to<>> ids_;
  std::vector<std::string_view> terms_;
};

}  // namespace qec::text

#endif  // QEC_TEXT_VOCABULARY_H_
