#include "text/analyzer.h"

namespace qec::text {

Analyzer::Analyzer(AnalyzerOptions options)
    : options_(std::move(options)),
      tokenizer_(options_.tokenizer),
      stopwords_(options_.remove_stopwords ? StopwordList::DefaultEnglish()
                                           : StopwordList()) {}

std::vector<std::string> Analyzer::Normalize(std::string_view input) const {
  std::vector<std::string> tokens = tokenizer_.Tokenize(input);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (auto& tok : tokens) {
    if (options_.remove_stopwords && stopwords_.IsStopword(tok)) continue;
    out.push_back(options_.stem ? stemmer_.Stem(tok) : std::move(tok));
  }
  return out;
}

std::vector<TermId> Analyzer::Analyze(std::string_view input) {
  std::vector<TermId> ids;
  for (const auto& tok : Normalize(input)) ids.push_back(vocab_.Intern(tok));
  return ids;
}

std::vector<TermId> Analyzer::AnalyzeReadOnly(std::string_view input) const {
  std::vector<TermId> ids;
  for (const auto& tok : Normalize(input)) {
    TermId id = vocab_.Lookup(tok);
    if (id != kInvalidTermId) ids.push_back(id);
  }
  return ids;
}

TermId Analyzer::InternVerbatim(std::string_view token) {
  return vocab_.Intern(token);
}

}  // namespace qec::text
