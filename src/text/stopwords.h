#ifndef QEC_TEXT_STOPWORDS_H_
#define QEC_TEXT_STOPWORDS_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace qec::text {

/// A set of words excluded from indexing and from expansion candidates.
class StopwordList {
 public:
  /// Empty list (nothing is a stopword).
  StopwordList() = default;

  /// List containing exactly `words` (expected lowercase).
  explicit StopwordList(const std::vector<std::string>& words);

  /// The default English stopword list (a superset of the classic SMART
  /// short list; lowercase).
  static StopwordList DefaultEnglish();

  bool IsStopword(std::string_view word) const;

  size_t size() const { return words_.size(); }

  void Add(std::string_view word);

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace qec::text

#endif  // QEC_TEXT_STOPWORDS_H_
