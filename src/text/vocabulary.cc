#include "text/vocabulary.h"

#include "common/logging.h"

namespace qec::text {

TermId Vocabulary::Intern(std::string_view term) {
  auto it = ids_.find(term);
  if (it != ids_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  std::string_view stored = arena_.Intern(term);
  terms_.push_back(stored);
  ids_.emplace(stored, id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = ids_.find(term);
  return it == ids_.end() ? kInvalidTermId : it->second;
}

std::string_view Vocabulary::TermString(TermId id) const {
  QEC_CHECK_LT(id, terms_.size());
  return terms_[id];
}

}  // namespace qec::text
