#include "text/vocabulary.h"

#include "common/logging.h"

namespace qec::text {

TermId Vocabulary::Intern(std::string_view term) {
  auto it = ids_.find(std::string(term));
  if (it != ids_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  ids_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = ids_.find(std::string(term));
  return it == ids_.end() ? kInvalidTermId : it->second;
}

const std::string& Vocabulary::TermString(TermId id) const {
  QEC_CHECK_LT(id, terms_.size());
  return terms_[id];
}

}  // namespace qec::text
