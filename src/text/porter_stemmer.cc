#include "text/porter_stemmer.h"

#include <cctype>

namespace qec::text {

namespace {

// Working buffer view over the word being stemmed. `end` is the index one
// past the last character of the current stem candidate.
struct Buf {
  std::string s;
  size_t end;  // stem length under consideration

  char at(size_t i) const { return s[i]; }
};

bool IsVowelAt(const Buf& b, size_t i) {
  switch (b.at(i)) {
    case 'a':
    case 'e':
    case 'i':
    case 'o':
    case 'u':
      return true;
    case 'y':
      // 'y' is a vowel if preceded by a consonant.
      return i > 0 && !IsVowelAt(b, i - 1);
    default:
      return false;
  }
}

// Measure m of the stem s[0..end): number of VC sequences.
int Measure(const Buf& b, size_t end) {
  int m = 0;
  size_t i = 0;
  // Skip initial consonants.
  while (i < end && !IsVowelAt(b, i)) ++i;
  while (i < end) {
    // In vowel run.
    while (i < end && IsVowelAt(b, i)) ++i;
    if (i >= end) break;
    ++m;  // saw VC
    while (i < end && !IsVowelAt(b, i)) ++i;
  }
  return m;
}

bool EndsWith(const Buf& b, std::string_view suffix) {
  if (b.end < suffix.size()) return false;
  return std::string_view(b.s).substr(b.end - suffix.size(), suffix.size()) ==
         suffix;
}

// Stem part preceding `suffix` (call only after EndsWith succeeded).
size_t StemEnd(const Buf& b, std::string_view suffix) {
  return b.end - suffix.size();
}

bool ContainsVowel(const Buf& b, size_t end) {
  for (size_t i = 0; i < end; ++i) {
    if (IsVowelAt(b, i)) return true;
  }
  return false;
}

bool DoubleConsonant(const Buf& b, size_t end) {
  if (end < 2) return false;
  if (b.at(end - 1) != b.at(end - 2)) return false;
  return !IsVowelAt(b, end - 1);
}

// *o: stem ends cvc where the final c is not w, x or y.
bool CvcEnding(const Buf& b, size_t end) {
  if (end < 3) return false;
  if (IsVowelAt(b, end - 1) || !IsVowelAt(b, end - 2) || IsVowelAt(b, end - 3)) {
    return false;
  }
  char c = b.at(end - 1);
  return c != 'w' && c != 'x' && c != 'y';
}

void SetSuffix(Buf& b, size_t stem_end, std::string_view replacement) {
  b.s.resize(stem_end);
  b.s += replacement;
  b.end = b.s.size();
}

// Step 1a: plurals.
void Step1a(Buf& b) {
  if (EndsWith(b, "sses")) {
    SetSuffix(b, StemEnd(b, "sses"), "ss");
  } else if (EndsWith(b, "ies")) {
    SetSuffix(b, StemEnd(b, "ies"), "i");
  } else if (EndsWith(b, "ss")) {
    // no-op
  } else if (EndsWith(b, "s")) {
    SetSuffix(b, StemEnd(b, "s"), "");
  }
}

// Step 1b: -ed / -ing.
void Step1b(Buf& b) {
  bool second = false;
  if (EndsWith(b, "eed")) {
    size_t stem = StemEnd(b, "eed");
    if (Measure(b, stem) > 0) SetSuffix(b, stem, "ee");
  } else if (EndsWith(b, "ed")) {
    size_t stem = StemEnd(b, "ed");
    if (ContainsVowel(b, stem)) {
      SetSuffix(b, stem, "");
      second = true;
    }
  } else if (EndsWith(b, "ing")) {
    size_t stem = StemEnd(b, "ing");
    if (ContainsVowel(b, stem)) {
      SetSuffix(b, stem, "");
      second = true;
    }
  }
  if (second) {
    if (EndsWith(b, "at")) {
      SetSuffix(b, StemEnd(b, "at"), "ate");
    } else if (EndsWith(b, "bl")) {
      SetSuffix(b, StemEnd(b, "bl"), "ble");
    } else if (EndsWith(b, "iz")) {
      SetSuffix(b, StemEnd(b, "iz"), "ize");
    } else if (DoubleConsonant(b, b.end)) {
      char c = b.at(b.end - 1);
      if (c != 'l' && c != 's' && c != 'z') {
        SetSuffix(b, b.end - 1, "");
      }
    } else if (Measure(b, b.end) == 1 && CvcEnding(b, b.end)) {
      SetSuffix(b, b.end, "e");
    }
  }
}

// Step 1c: y -> i when there is another vowel in the stem.
void Step1c(Buf& b) {
  if (EndsWith(b, "y") && ContainsVowel(b, b.end - 1)) {
    SetSuffix(b, b.end - 1, "i");
  }
}

struct Rule {
  std::string_view suffix;
  std::string_view replacement;
};

// Applies the first matching rule whose stem has measure > threshold.
void ApplyRules(Buf& b, const Rule* rules, size_t n, int min_measure) {
  for (size_t i = 0; i < n; ++i) {
    if (EndsWith(b, rules[i].suffix)) {
      size_t stem = StemEnd(b, rules[i].suffix);
      if (Measure(b, stem) > min_measure) {
        SetSuffix(b, stem, rules[i].replacement);
      }
      return;  // longest match semantics: only the first matching rule fires
    }
  }
}

void Step2(Buf& b) {
  static constexpr Rule kRules[] = {
      {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
      {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
      {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
      {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
      {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
      {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
      {"iviti", "ive"},   {"biliti", "ble"},
  };
  ApplyRules(b, kRules, std::size(kRules), 0);
}

void Step3(Buf& b) {
  static constexpr Rule kRules[] = {
      {"icate", "ic"}, {"ative", ""},  {"alize", "al"}, {"iciti", "ic"},
      {"ical", "ic"},  {"ful", ""},    {"ness", ""},
  };
  ApplyRules(b, kRules, std::size(kRules), 0);
}

void Step4(Buf& b) {
  static constexpr Rule kRules[] = {
      {"al", ""},    {"ance", ""}, {"ence", ""}, {"er", ""},   {"ic", ""},
      {"able", ""},  {"ible", ""}, {"ant", ""},  {"ement", ""}, {"ment", ""},
      {"ent", ""},   {"ou", ""},   {"ism", ""},  {"ate", ""},  {"iti", ""},
      {"ous", ""},   {"ive", ""},  {"ize", ""},
  };
  // -ion requires preceding s or t.
  if (EndsWith(b, "ion")) {
    size_t stem = StemEnd(b, "ion");
    if (stem > 0 && (b.at(stem - 1) == 's' || b.at(stem - 1) == 't') &&
        Measure(b, stem) > 1) {
      SetSuffix(b, stem, "");
    }
    return;
  }
  // Match longest suffix first: sort by trying longer before shorter where
  // they overlap ("ement" before "ment" before "ent").
  ApplyRules(b, kRules, std::size(kRules), 1);
}

void Step5a(Buf& b) {
  if (EndsWith(b, "e")) {
    size_t stem = b.end - 1;
    int m = Measure(b, stem);
    if (m > 1 || (m == 1 && !CvcEnding(b, stem))) {
      SetSuffix(b, stem, "");
    }
  }
}

void Step5b(Buf& b) {
  if (b.end > 1 && b.at(b.end - 1) == 'l' && DoubleConsonant(b, b.end) &&
      Measure(b, b.end) > 1) {
    SetSuffix(b, b.end - 1, "");
  }
}

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) const {
  if (word.size() <= 2) return std::string(word);
  for (char c : word) {
    if (!std::islower(static_cast<unsigned char>(c))) return std::string(word);
  }
  Buf b{std::string(word), word.size()};
  Step1a(b);
  Step1b(b);
  Step1c(b);
  Step2(b);
  Step3(b);
  Step4(b);
  Step5a(b);
  Step5b(b);
  b.s.resize(b.end);
  return b.s;
}

}  // namespace qec::text
