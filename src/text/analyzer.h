#ifndef QEC_TEXT_ANALYZER_H_
#define QEC_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace qec::text {

/// Analyzer pipeline knobs.
struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  /// Drop stopwords (using the default English list unless replaced).
  bool remove_stopwords = true;
  /// Apply the Porter stemmer to word tokens.
  bool stem = false;
};

/// Full text-analysis pipeline: tokenize -> stopword filter -> (stem) ->
/// intern. Owns the vocabulary into which terms are interned.
///
/// The same analyzer instance must be used for documents and queries so that
/// their TermIds agree.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {});

  /// Analyzes free text into interned term ids (duplicates preserved,
  /// order preserved).
  std::vector<TermId> Analyze(std::string_view input);

  /// Analyzes free text without interning new terms; unknown terms are
  /// dropped. Use for queries against an already-built corpus.
  std::vector<TermId> AnalyzeReadOnly(std::string_view input) const;

  /// Interns a single pre-formed token verbatim (no tokenization); used for
  /// structured feature terms like "tv:brand:toshiba".
  TermId InternVerbatim(std::string_view token);

  Vocabulary& vocabulary() { return vocab_; }
  const Vocabulary& vocabulary() const { return vocab_; }

  const AnalyzerOptions& options() const { return options_; }

 private:
  std::vector<std::string> Normalize(std::string_view input) const;

  AnalyzerOptions options_;
  Tokenizer tokenizer_;
  StopwordList stopwords_;
  PorterStemmer stemmer_;
  Vocabulary vocab_;
};

}  // namespace qec::text

#endif  // QEC_TEXT_ANALYZER_H_
