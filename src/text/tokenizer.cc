#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace qec::text {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(std::move(options)) {}

bool Tokenizer::IsTokenChar(char c) const {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  return options_.intra_token_chars.find(c) != std::string::npos;
}

void Tokenizer::Tokenize(std::string_view input,
                         std::vector<std::string>& out) const {
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    while (i < n && !IsTokenChar(input[i])) ++i;
    size_t start = i;
    while (i < n && IsTokenChar(input[i])) ++i;
    if (start == i) continue;
    std::string_view raw = input.substr(start, i - start);
    // Strip non-alphanumeric characters from the edges ("-foo-" -> "foo").
    while (!raw.empty() &&
           !std::isalnum(static_cast<unsigned char>(raw.front()))) {
      raw.remove_prefix(1);
    }
    while (!raw.empty() &&
           !std::isalnum(static_cast<unsigned char>(raw.back()))) {
      raw.remove_suffix(1);
    }
    if (raw.size() < options_.min_token_length) continue;
    if (!options_.keep_numbers) {
      bool all_digits = true;
      for (char c : raw) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          all_digits = false;
          break;
        }
      }
      if (all_digits) continue;
    }
    out.push_back(options_.lowercase ? AsciiLower(raw) : std::string(raw));
  }
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view input) const {
  std::vector<std::string> out;
  Tokenize(input, out);
  return out;
}

}  // namespace qec::text
