#include "text/stopwords.h"

namespace qec::text {

namespace {
// Classic English function words. Kept intentionally compact: aggressive
// stopword removal would delete legitimate expansion keywords.
constexpr const char* kDefaultEnglish[] = {
    "a",     "about", "above", "after",  "again",  "all",   "also",  "am",
    "an",    "and",   "any",   "are",    "as",     "at",    "be",    "because",
    "been",  "before", "being", "below", "between", "both", "but",   "by",
    "can",   "could", "did",   "do",     "does",   "doing", "down",  "during",
    "each",  "few",   "for",   "from",   "further", "had",  "has",   "have",
    "having", "he",   "her",   "here",   "hers",   "him",   "his",   "how",
    "i",     "if",    "in",    "into",   "is",     "it",    "its",   "itself",
    "just",  "me",    "more",  "most",   "my",     "no",    "nor",   "not",
    "now",   "of",    "off",   "on",     "once",   "only",  "or",    "other",
    "our",   "ours",  "out",   "over",   "own",    "same",  "she",   "should",
    "so",    "some",  "such",  "than",   "that",   "the",   "their", "theirs",
    "them",  "then",  "there", "these",  "they",   "this",  "those", "through",
    "to",    "too",   "under", "until",  "up",     "very",  "was",   "we",
    "were",  "what",  "when",  "where",  "which",  "while", "who",   "whom",
    "why",   "will",  "with",  "would",  "you",    "your",  "yours",
};
}  // namespace

StopwordList::StopwordList(const std::vector<std::string>& words)
    : words_(words.begin(), words.end()) {}

StopwordList StopwordList::DefaultEnglish() {
  StopwordList list;
  for (const char* w : kDefaultEnglish) list.words_.insert(w);
  return list;
}

bool StopwordList::IsStopword(std::string_view word) const {
  return words_.find(std::string(word)) != words_.end();
}

void StopwordList::Add(std::string_view word) {
  words_.insert(std::string(word));
}

}  // namespace qec::text
