#ifndef QEC_TEXT_PORTER_STEMMER_H_
#define QEC_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace qec::text {

/// Classic Porter (1980) suffix-stripping stemmer. Stateless; operates on
/// lowercase ASCII words. Words containing non-alphabetic characters are
/// returned unchanged (e.g. "8gb", "wp-dc26" — structured-data feature
/// values should not be mangled).
class PorterStemmer {
 public:
  /// Returns the stem of `word`.
  std::string Stem(std::string_view word) const;
};

}  // namespace qec::text

#endif  // QEC_TEXT_PORTER_STEMMER_H_
