#ifndef QEC_TEXT_TOKENIZER_H_
#define QEC_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace qec::text {

/// Tokenization knobs.
struct TokenizerOptions {
  /// Lowercase all tokens (ASCII).
  bool lowercase = true;
  /// Keep tokens made purely of digits ("8gb" is always kept since it mixes).
  bool keep_numbers = true;
  /// Minimum token length; shorter tokens are dropped.
  size_t min_token_length = 1;
  /// Characters (besides alphanumerics) allowed inside a token. Hyphen keeps
  /// product names like "wp-dc26" together.
  std::string intra_token_chars = "-";
};

/// Splits text into word tokens. A token is a maximal run of alphanumeric
/// characters and `intra_token_chars`; leading/trailing intra-token chars
/// are stripped ("-foo-" tokenizes to "foo").
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Tokenizes `input` and appends tokens to `out`.
  void Tokenize(std::string_view input, std::vector<std::string>& out) const;

  /// Convenience: returns the tokens of `input`.
  std::vector<std::string> Tokenize(std::string_view input) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  bool IsTokenChar(char c) const;

  TokenizerOptions options_;
};

}  // namespace qec::text

#endif  // QEC_TEXT_TOKENIZER_H_
