#include "core/query_minimizer.h"

#include <algorithm>

#include "common/logging.h"

namespace qec::core {

std::vector<TermId> MinimizeQuery(const ResultUniverse& universe,
                                  const std::vector<TermId>& query,
                                  size_t protected_prefix) {
  QEC_CHECK_LE(protected_prefix, query.size());
  std::vector<TermId> current = query;
  const DynamicBitset target = universe.Retrieve(query);

  // Try dropping keywords from the back (later additions first): the
  // earliest keywords are usually the load-bearing ones.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = current.size(); i-- > protected_prefix;) {
      std::vector<TermId> without;
      without.reserve(current.size() - 1);
      for (size_t j = 0; j < current.size(); ++j) {
        if (j != i) without.push_back(current[j]);
      }
      if (universe.Retrieve(without) == target) {
        current = std::move(without);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace qec::core
