#ifndef QEC_CORE_PEBC_H_
#define QEC_CORE_PEBC_H_

#include <cstdint>
#include <vector>

#include "core/expansion_context.h"
#include "core/sweep_options.h"

namespace qec::core {

/// How PEBC picks keywords when generating a sample query that eliminates
/// ~x% of U (Sec. 4.1-4.3).
enum class PebcStrategy {
  /// Sec. 4.1: always take the globally best benefit/cost keyword. The
  /// keyword order is fixed, so only prefixes of one sequence are
  /// reachable — the paper shows this cannot hit most targets.
  kFixedOrder,
  /// Sec. 4.2: randomly select a subset of U totalling ~x% of its weight,
  /// then greedily cover that subset (weighted-set-cover style).
  kRandomSubset,
  /// Sec. 4.3 (the paper's choice): repeatedly pick one random
  /// un-eliminated result of U and the best benefit/cost keyword that
  /// eliminates it, tie-breaking toward the keyword eliminating fewest
  /// results.
  kRandomSingleResult,
};

/// PEBC configuration. The paper empirically uses 3 sample points per
/// iteration and 3 iterations (Appendix C); Algorithm 2's listing uses 5.
struct PebcOptions {
  /// Segments the current interval is split into; segments + 1 boundary
  /// points are tested per iteration.
  size_t num_segments = 2;
  /// Zoom-in iterations.
  size_t num_iterations = 3;
  PebcStrategy strategy = PebcStrategy::kRandomSingleResult;
  uint64_t seed = 42;
};

/// One tested sample point (for tracing / the ablation bench).
struct PebcSample {
  double target_percent = 0.0;    // x: requested elimination percentage
  double achieved_percent = 0.0;  // actual eliminated weight fraction of U
  double f_measure = 0.0;
  std::vector<TermId> query;
};

/// Partial Elimination Based Convergence (Sec. 4, Algorithm 2).
///
/// Treats F-measure as an unknown function of the elimination percentage x,
/// samples queries that eliminate ~x% of U while retrieving as much of C as
/// possible, and zooms into the adjacent sample pair with the highest
/// average F-measure. Returns the best sample query seen.
class PebcExpander {
 public:
  /// `sweep` configures the per-candidate sweep fan-out inside each sample
  /// build (shared SweepOptions contract; default serial).
  explicit PebcExpander(PebcOptions options = {}, SweepOptions sweep = {});

  ExpansionResult Expand(const ExpansionContext& context) const;

  /// Like Expand but also records every tested sample.
  ExpansionResult ExpandWithTrace(const ExpansionContext& context,
                                  std::vector<PebcSample>* trace) const;

  const PebcOptions& options() const { return options_; }
  const SweepOptions& sweep_options() const { return sweep_; }

 private:
  PebcOptions options_;
  SweepOptions sweep_;
};

}  // namespace qec::core

#endif  // QEC_CORE_PEBC_H_
