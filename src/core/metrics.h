#ifndef QEC_CORE_METRICS_H_
#define QEC_CORE_METRICS_H_

#include <vector>

#include "common/dynamic_bitset.h"
#include "core/result_universe.h"

namespace qec::core {

/// Quality of one expanded query against its cluster (Sec. 2):
///   precision = S(R(q) ∩ C) / S(R(q))
///   recall    = S(R(q) ∩ C) / S(C)
///   F         = 2PR / (P + R)
/// All rank-weighted through S(.). Degenerate cases: empty R(q) has
/// precision 0; empty C has recall 0; F is 0 whenever P + R is 0.
struct QueryQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
};

/// Evaluates `retrieved` = R(q) against ground truth `cluster` = C, both as
/// bitsets over `universe`.
QueryQuality EvaluateQuery(const ResultUniverse& universe,
                           const DynamicBitset& retrieved,
                           const DynamicBitset& cluster);

/// Harmonic mean of `values` (Eq. 1 aggregates per-cluster F-measures this
/// way). Returns 0 when any value is 0 or the list is empty.
double HarmonicMean(const std::vector<double>& values);

/// Eq. 1: score of a set of expanded queries = harmonic mean of their
/// F-measures.
double SetScore(const std::vector<QueryQuality>& qualities);

}  // namespace qec::core

#endif  // QEC_CORE_METRICS_H_
