#ifndef QEC_CORE_FMEASURE_EXPANDER_H_
#define QEC_CORE_FMEASURE_EXPANDER_H_

#include <cstddef>

#include "core/expansion_context.h"

namespace qec::core {

/// Configuration for the delta-F-measure refinement variant.
struct FMeasureOptions {
  size_t max_iterations = 200;
  bool allow_removal = true;
  /// Threads for the per-iteration candidate sweep (every candidate's
  /// delta-F is an independent full evaluation). Same scatter-gather
  /// contract as IskrOptions::sweep_threads: per-candidate values merge in
  /// candidate-index order, so any thread count is byte-identical to the
  /// serial sweep. 1 = serial, 0 = auto.
  size_t sweep_threads = 1;
};

/// The "F-measure" comparison method of Sec. 5: the ISKR refinement loop,
/// but the value of a keyword is the exact change in F-measure from
/// adding/removing it. More accurate per step than benefit/cost — and much
/// slower, because every keyword's value must be recomputed after every
/// refinement (each recomputation evaluates a full query). The experiments
/// (Fig. 6) show it at 30+ seconds on some queries versus sub-second ISKR.
class FMeasureExpander {
 public:
  explicit FMeasureExpander(FMeasureOptions options = {});

  ExpansionResult Expand(const ExpansionContext& context) const;

  const FMeasureOptions& options() const { return options_; }

 private:
  FMeasureOptions options_;
};

}  // namespace qec::core

#endif  // QEC_CORE_FMEASURE_EXPANDER_H_
