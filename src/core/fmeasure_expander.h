#ifndef QEC_CORE_FMEASURE_EXPANDER_H_
#define QEC_CORE_FMEASURE_EXPANDER_H_

#include <cstddef>

#include "core/expansion_context.h"
#include "core/sweep_options.h"

namespace qec::core {

/// Configuration for the delta-F-measure refinement variant.
struct FMeasureOptions {
  size_t max_iterations = 200;
  bool allow_removal = true;
};

/// The "F-measure" comparison method of Sec. 5: the ISKR refinement loop,
/// but the value of a keyword is the exact change in F-measure from
/// adding/removing it. More accurate per step than benefit/cost — and much
/// slower, because every keyword's value must be recomputed after every
/// refinement (each recomputation evaluates a full query). The experiments
/// (Fig. 6) show it at 30+ seconds on some queries versus sub-second ISKR.
class FMeasureExpander {
 public:
  /// `sweep` configures the per-iteration candidate sweep fan-out (shared
  /// SweepOptions contract; default serial).
  explicit FMeasureExpander(FMeasureOptions options = {},
                            SweepOptions sweep = {});

  ExpansionResult Expand(const ExpansionContext& context) const;

  const FMeasureOptions& options() const { return options_; }
  const SweepOptions& sweep_options() const { return sweep_; }

 private:
  FMeasureOptions options_;
  SweepOptions sweep_;
};

}  // namespace qec::core

#endif  // QEC_CORE_FMEASURE_EXPANDER_H_
