#include "core/or_expander.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace qec::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double ValueOf(double benefit, double cost) {
  if (cost > 0.0) return benefit / cost;
  return benefit > 0.0 ? kInf : 0.0;
}

/// Mutable OR-refinement state. Maintains per-result coverage counts so
/// the "uniquely covered by k" delta of a removal is O(|docs_with(k)|).
class OrState {
 public:
  OrState(const ExpansionContext& ctx, const OrIskrOptions& options)
      : ctx_(ctx),
        options_(options),
        covered_(ctx.universe->EmptySet()),
        coverage_count_(ctx.universe->size(), 0) {}

  ExpansionResult Run() {
    while (iterations_ < options_.max_iterations) {
      auto [term, is_removal, value] = BestMove();
      if (value <= 1.0) break;
      ++iterations_;
      if (is_removal) {
        ApplyRemoval(term);
      } else {
        ApplyAddition(term);
      }
    }
    ExpansionResult result;
    result.query = query_;
    result.quality = EvaluateQuery(*ctx_.universe, covered_, ctx_.cluster);
    result.iterations = iterations_;
    result.value_recomputations = recomputations_;
    return result;
  }

 private:
  bool InQuery(TermId k) const {
    return std::find(query_.begin(), query_.end(), k) != query_.end();
  }

  // Addition delta: results newly covered by k.
  DynamicBitset AddDelta(TermId k) const {
    DynamicBitset delta = ctx_.universe->DocsWithTerm(k);
    delta.AndNot(covered_);
    return delta;
  }

  // Removal delta: results covered by k and by no other query keyword.
  DynamicBitset RemoveDelta(TermId k) const {
    DynamicBitset delta = ctx_.universe->EmptySet();
    ctx_.universe->DocsWithTerm(k).ForEachSetBit([&](size_t i) {
      if (coverage_count_[i] == 1) delta.Set(i);
    });
    return delta;
  }

  std::tuple<TermId, bool, double> BestMove() {
    TermId best = kInvalidTermId;
    bool best_removal = false;
    double best_value = 0.0;
    for (TermId k : ctx_.candidates) {
      if (InQuery(k)) continue;
      ++recomputations_;
      DynamicBitset delta = AddDelta(k);
      DynamicBitset in_c = delta;
      in_c &= ctx_.cluster;
      DynamicBitset in_u = delta;
      in_u &= ctx_.others;
      double v = ValueOf(ctx_.universe->TotalWeight(in_c),
                         ctx_.universe->TotalWeight(in_u));
      if (v > best_value || (v == best_value && best != kInvalidTermId &&
                             !best_removal && k < best)) {
        best_value = v;
        best = k;
        best_removal = false;
      }
    }
    if (options_.allow_removal) {
      for (TermId k : query_) {
        ++recomputations_;
        DynamicBitset delta = RemoveDelta(k);
        DynamicBitset in_u = delta;
        in_u &= ctx_.others;
        DynamicBitset in_c = delta;
        in_c &= ctx_.cluster;
        double v = ValueOf(ctx_.universe->TotalWeight(in_u),
                           ctx_.universe->TotalWeight(in_c));
        if (v > best_value) {
          best_value = v;
          best = k;
          best_removal = true;
        }
      }
    }
    return {best, best_removal, best_value};
  }

  void ApplyAddition(TermId k) {
    query_.push_back(k);
    ctx_.universe->DocsWithTerm(k).ForEachSetBit([&](size_t i) {
      coverage_count_[i]++;
      covered_.Set(i);
    });
  }

  void ApplyRemoval(TermId k) {
    query_.erase(std::find(query_.begin(), query_.end(), k));
    ctx_.universe->DocsWithTerm(k).ForEachSetBit([&](size_t i) {
      if (--coverage_count_[i] == 0) covered_.Reset(i);
    });
  }

  const ExpansionContext& ctx_;
  const OrIskrOptions& options_;
  std::vector<TermId> query_;
  DynamicBitset covered_;
  std::vector<int> coverage_count_;
  size_t iterations_ = 0;
  size_t recomputations_ = 0;
};

}  // namespace

OrIskrExpander::OrIskrExpander(OrIskrOptions options) : options_(options) {}

ExpansionResult OrIskrExpander::Expand(const ExpansionContext& context) const {
  QEC_CHECK(context.universe != nullptr);
  OrState state(context, options_);
  return state.Run();
}

}  // namespace qec::core
