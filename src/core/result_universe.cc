#include "core/result_universe.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "common/logging.h"
#include "common/small_vector.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qec::core {

namespace {
constexpr double kMinWeight = 1e-9;

/// Order-independent memo key for an AND conjunction: the sorted TermIds
/// viewed as raw bytes. The sort buffer is a thread-local SmallVector
/// (inline up to 16 terms — every memoizable query, since kMaxMemoArity
/// is 4), so steady-state lookups touch no heap at all; the returned view
/// aliases the buffer and the map only materializes an owning string on a
/// miss (heterogeneous lookup below).
std::string_view ConjunctionKey(std::span<const TermId> query) {
  thread_local common::SmallVector<TermId, 16> sorted;
  sorted.assign(query.begin(), query.end());
  std::sort(sorted.begin(), sorted.end());
  return std::string_view(reinterpret_cast<const char*>(sorted.data()),
                          sorted.size() * sizeof(TermId));
}

/// Transparent hash so the conjunction memo probes with the borrowed
/// string_view key and only allocates a std::string when inserting.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
}  // namespace

struct ResultUniverse::SetAlgebraCache {
  std::shared_mutex mu;
  std::unordered_map<TermId, DynamicBitset> complements;
  std::unordered_map<std::string, DynamicBitset, TransparentStringHash,
                     std::equal_to<>>
      conjunctions;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
};

/// Pool of universe-sized bitset buffers. Returned buffers keep their word
/// storage, so a lease after warm-up is a pop + Reinitialize (no heap
/// traffic). Guarded by a plain mutex: leases happen per expansion state /
/// per sample build, never per set operation.
struct ResultUniverse::ScratchArena {
  std::mutex mu;
  std::vector<DynamicBitset> pool;
  std::atomic<uint64_t> reuses{0};
  std::atomic<uint64_t> allocs{0};
};

ResultUniverse::ScratchBitset::ScratchBitset(
    std::shared_ptr<ScratchArena> arena, DynamicBitset bits)
    : arena_(std::move(arena)), bits_(std::move(bits)) {}

ResultUniverse::ScratchBitset::ScratchBitset(ScratchBitset&& other) noexcept
    : arena_(std::move(other.arena_)), bits_(std::move(other.bits_)) {}

ResultUniverse::ScratchBitset::~ScratchBitset() {
  if (arena_ == nullptr) return;  // moved-from
  std::lock_guard<std::mutex> lock(arena_->mu);
  arena_->pool.push_back(std::move(bits_));
}

ResultUniverse::ScratchBitset ResultUniverse::AcquireScratch(
    bool all_set) const {
  DynamicBitset bits;
  bool reused = false;
  {
    std::lock_guard<std::mutex> lock(scratch_->mu);
    if (!scratch_->pool.empty()) {
      bits = std::move(scratch_->pool.back());
      scratch_->pool.pop_back();
      reused = true;
    }
  }
  if (reused) {
    scratch_->reuses.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("universe/scratch_reuses");
  } else {
    scratch_->allocs.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("universe/scratch_allocs");
  }
  bits.Reinitialize(size(), all_set);
  return ScratchBitset(scratch_, std::move(bits));
}

ScratchArenaStats ResultUniverse::scratch_arena_stats() const {
  ScratchArenaStats stats;
  stats.reuses = scratch_->reuses.load(std::memory_order_relaxed);
  stats.allocs = scratch_->allocs.load(std::memory_order_relaxed);
  return stats;
}

void ResultUniverse::EnableSetAlgebraCache() {
  if (set_cache_ == nullptr) set_cache_ = std::make_shared<SetAlgebraCache>();
}

SetAlgebraCacheStats ResultUniverse::set_algebra_cache_stats() const {
  SetAlgebraCacheStats stats;
  if (set_cache_ != nullptr) {
    stats.hits = set_cache_->hits.load(std::memory_order_relaxed);
    stats.misses = set_cache_->misses.load(std::memory_order_relaxed);
  }
  return stats;
}

ResultUniverse::ResultUniverse(const doc::Corpus& corpus,
                               const std::vector<index::RankedResult>& results)
    : corpus_(&corpus), scratch_(std::make_shared<ScratchArena>()) {
  docs_.reserve(results.size());
  weights_.reserve(results.size());
  for (const auto& r : results) {
    docs_.push_back(r.doc);
    weights_.push_back(r.score > kMinWeight ? r.score : kMinWeight);
  }
  BuildTermMap();
}

ResultUniverse::ResultUniverse(const doc::Corpus& corpus,
                               const std::vector<DocId>& results)
    : corpus_(&corpus), scratch_(std::make_shared<ScratchArena>()) {
  docs_ = results;
  weights_.assign(results.size(), 1.0);
  BuildTermMap();
}

void ResultUniverse::BuildTermMap() {
  QEC_TRACE_SPAN("universe/build");
  QEC_COUNTER_INC("universe/builds");
  total_weight_ = 0.0;
  for (double w : weights_) total_weight_ += w;
  unit_weights_ =
      std::all_of(weights_.begin(), weights_.end(),
                  [](double w) { return w == 1.0; });
  empty_ = DynamicBitset(docs_.size());
  for (size_t i = 0; i < docs_.size(); ++i) {
    const doc::Document& d = corpus_->Get(docs_[i]);
    for (TermId t : d.term_set()) {
      auto [it, inserted] = term_docs_.try_emplace(t, docs_.size());
      it->second.Set(i);
      term_tf_[t] += d.TermFrequency(t);
    }
  }
  distinct_terms_.reserve(term_docs_.size());
  for (const auto& [t, bits] : term_docs_) distinct_terms_.push_back(t);
  std::sort(distinct_terms_.begin(), distinct_terms_.end());
}

// Deliberately uncounted: TotalWeight runs once per benefit/cost
// evaluation and a per-call counter here costs as much as the sum itself
// (the expanders' */benefit_cost_evals counters cover the call count).
double ResultUniverse::TotalWeight(const DynamicBitset& set) const {
  QEC_CHECK_EQ(set.size(), docs_.size());
  if (unit_weights_) return static_cast<double>(set.Count());
  double sum = 0.0;
  set.ForEachSetBit([&](size_t i) { sum += weights_[i]; });
  return sum;
}

// The unit-weight branches below route S(.) through the SIMD count
// kernels (simd::Ops() via DynamicBitset): with every weight exactly 1.0
// the weighted fold sums k in-order ones, which is exactly k, so the
// count is bit-identical to the scalar double accumulation. The ranked
// path keeps the scalar fold — vectorizing it would reorder the
// floating-point additions.

double ResultUniverse::WeightOfAnd(const DynamicBitset& a,
                                   const DynamicBitset& b) const {
  if (unit_weights_) {
    QEC_COUNTER_INC("universe/fused_evals");
    return static_cast<double>(a.AndCount(b));
  }
  return WeightWhere([](uint64_t x, uint64_t y) { return x & y; }, a, b);
}

double ResultUniverse::WeightOfAndNot(const DynamicBitset& a,
                                      const DynamicBitset& b) const {
  if (unit_weights_) {
    QEC_COUNTER_INC("universe/fused_evals");
    return static_cast<double>(a.AndNotCount(b));
  }
  return WeightWhere([](uint64_t x, uint64_t y) { return x & ~y; }, a, b);
}

double ResultUniverse::WeightOfAndNotAnd(const DynamicBitset& a,
                                         const DynamicBitset& b,
                                         const DynamicBitset& c) const {
  if (unit_weights_) {
    QEC_COUNTER_INC("universe/fused_evals");
    return static_cast<double>(a.AndNotAndCount(b, c));
  }
  return WeightWhere(
      [](uint64_t x, uint64_t y, uint64_t z) { return x & ~y & z; }, a, b, c);
}

double ResultUniverse::WeightOfAndNotAnd(const DynamicBitset& a,
                                         const DynamicBitset& b,
                                         const DynamicBitset& c,
                                         const WordRange& range) const {
  if (unit_weights_) {
    QEC_COUNTER_INC("universe/fused_evals");
    return static_cast<double>(a.AndNotAndCount(b, c, range));
  }
  return WeightWhereInRange(
      range, [](uint64_t x, uint64_t y, uint64_t z) { return x & ~y & z; }, a,
      b, c);
}

std::vector<WordRange> ResultUniverse::ShardByDocRange(
    size_t target_shards) const {
  const size_t words = empty_.NumWords();
  std::vector<WordRange> shards;
  if (words == 0) return shards;
  if (target_shards == 0) target_shards = 1;
  if (target_shards > words) target_shards = words;
  shards.reserve(target_shards);
  const size_t base = words / target_shards;
  const size_t extra = words % target_shards;
  size_t begin = 0;
  for (size_t s = 0; s < target_shards; ++s) {
    const size_t width = base + (s < extra ? 1 : 0);
    shards.push_back(WordRange{begin, begin + width});
    begin += width;
  }
  return shards;
}

const DynamicBitset& ResultUniverse::FindDocs(TermId term) const {
  auto it = term_docs_.find(term);
  if (it == term_docs_.end()) return empty_;
  return it->second;
}

const DynamicBitset& ResultUniverse::DocsWithTerm(TermId term) const {
  QEC_COUNTER_INC("universe/term_lookups");
  return FindDocs(term);
}

DynamicBitset ResultUniverse::DocsWithoutTerm(TermId term) const {
  QEC_COUNTER_INC("universe/term_lookups");
  if (set_cache_ != nullptr) {
    {
      std::shared_lock lock(set_cache_->mu);
      auto it = set_cache_->complements.find(term);
      if (it != set_cache_->complements.end()) {
        set_cache_->hits.fetch_add(1, std::memory_order_relaxed);
        QEC_COUNTER_INC("universe/set_cache_hits");
        return it->second;
      }
    }
    DynamicBitset out = FullSet();
    out.AndNot(FindDocs(term));
    set_cache_->misses.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("universe/set_cache_misses");
    std::unique_lock lock(set_cache_->mu);
    return set_cache_->complements.try_emplace(term, std::move(out))
        .first->second;
  }
  DynamicBitset out = FullSet();
  out.AndNot(FindDocs(term));
  return out;
}

void ResultUniverse::RetrieveInto(std::span<const TermId> query,
                                  DynamicBitset* out) const {
  QEC_COUNTER_ADD("universe/term_intersections", query.size());
  out->Reinitialize(size(), /*value=*/true);
  for (TermId t : query) *out &= FindDocs(t);
}

void ResultUniverse::RetrieveWithoutInto(std::span<const TermId> query,
                                         TermId excluded,
                                         DynamicBitset* out) const {
  QEC_COUNTER_ADD("universe/term_intersections", query.size());
  out->Reinitialize(size(), /*value=*/true);
  for (TermId t : query) {
    if (t != excluded) *out &= FindDocs(t);
  }
}

DynamicBitset ResultUniverse::Retrieve(std::span<const TermId> query) const {
  if (set_cache_ != nullptr && query.size() >= 2 &&
      query.size() <= kMaxMemoArity) {
    const std::string_view key = ConjunctionKey(query);
    {
      std::shared_lock lock(set_cache_->mu);
      auto it = set_cache_->conjunctions.find(key);
      if (it != set_cache_->conjunctions.end()) {
        set_cache_->hits.fetch_add(1, std::memory_order_relaxed);
        QEC_COUNTER_INC("universe/set_cache_hits");
        return it->second;
      }
    }
    QEC_COUNTER_ADD("universe/term_intersections", query.size());
    DynamicBitset out = FullSet();
    for (TermId t : query) out &= FindDocs(t);
    set_cache_->misses.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("universe/set_cache_misses");
    std::unique_lock lock(set_cache_->mu);
    return set_cache_->conjunctions
        .try_emplace(std::string(key), std::move(out))
        .first->second;
  }
  // One batched add per call: Retrieve sits inside every benefit/cost
  // evaluation, so per-term counting here would dominate the work itself.
  QEC_COUNTER_ADD("universe/term_intersections", query.size());
  DynamicBitset out = FullSet();
  for (TermId t : query) out &= FindDocs(t);
  return out;
}

DynamicBitset ResultUniverse::RetrieveOr(std::span<const TermId> query) const {
  QEC_COUNTER_ADD("universe/term_intersections", query.size());
  DynamicBitset out = EmptySet();
  for (TermId t : query) out |= FindDocs(t);
  return out;
}

int ResultUniverse::TotalTermFrequency(TermId term) const {
  auto it = term_tf_.find(term);
  return it == term_tf_.end() ? 0 : it->second;
}

}  // namespace qec::core
