#include "core/expansion_context.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace qec::core {

ExpansionContext MakeContext(const ResultUniverse& universe,
                             std::vector<TermId> user_query,
                             DynamicBitset cluster,
                             std::vector<TermId> candidates) {
  QEC_CHECK_EQ(cluster.size(), universe.size());
  ExpansionContext ctx;
  ctx.universe = &universe;
  ctx.user_query = std::move(user_query);
  ctx.others = universe.FullSet();
  ctx.others.AndNot(cluster);
  ctx.cluster = std::move(cluster);
  ctx.candidates = std::move(candidates);
  return ctx;
}

std::vector<TermExplain> ExplainAddedTerms(
    const ExpansionContext& context, const std::vector<TermId>& final_query) {
  const ResultUniverse& universe = *context.universe;
  std::vector<TermExplain> out;
  ResultUniverse::ScratchBitset retrieved = universe.AcquireScratch();
  universe.RetrieveInto(context.user_query, &*retrieved);
  for (TermId k : final_query) {
    if (std::find(context.user_query.begin(), context.user_query.end(), k) !=
        context.user_query.end()) {
      continue;
    }
    const DynamicBitset& docs_k = universe.DocsWithTerm(k);
    TermExplain row;
    row.term = k;
    row.benefit =
        universe.WeightOfAndNotAnd(*retrieved, docs_k, context.others);
    row.cost = universe.WeightOfAndNotAnd(*retrieved, docs_k, context.cluster);
    if (row.cost > 0.0) {
      row.value = row.benefit / row.cost;
    } else {
      row.value =
          row.benefit > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
    }
    out.push_back(row);
    // Apply the addition so the next term is scored against R(prefix + k).
    *retrieved &= docs_k;
  }
  return out;
}

QueryQuality EvaluateAgainstCluster(const ExpansionContext& context,
                                    const std::vector<TermId>& query) {
  DynamicBitset retrieved = context.universe->Retrieve(query);
  return EvaluateQuery(*context.universe, retrieved, context.cluster);
}

}  // namespace qec::core
