#include "core/expansion_context.h"

#include "common/logging.h"

namespace qec::core {

ExpansionContext MakeContext(const ResultUniverse& universe,
                             std::vector<TermId> user_query,
                             DynamicBitset cluster,
                             std::vector<TermId> candidates) {
  QEC_CHECK_EQ(cluster.size(), universe.size());
  ExpansionContext ctx;
  ctx.universe = &universe;
  ctx.user_query = std::move(user_query);
  ctx.others = universe.FullSet();
  ctx.others.AndNot(cluster);
  ctx.cluster = std::move(cluster);
  ctx.candidates = std::move(candidates);
  return ctx;
}

QueryQuality EvaluateAgainstCluster(const ExpansionContext& context,
                                    const std::vector<TermId>& query) {
  DynamicBitset retrieved = context.universe->Retrieve(query);
  return EvaluateQuery(*context.universe, retrieved, context.cluster);
}

}  // namespace qec::core
