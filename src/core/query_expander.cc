#include "core/query_expander.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/sweep_pool.h"
#include "common/threading.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "cluster/hac.h"
#include "core/expansion_context.h"
#include "core/interleaved.h"
#include "core/query_minimizer.h"

namespace qec::core {

std::string_view AlgorithmName(ExpansionAlgorithm algorithm) {
  switch (algorithm) {
    case ExpansionAlgorithm::kIskr:
      return "ISKR";
    case ExpansionAlgorithm::kPebc:
      return "PEBC";
    case ExpansionAlgorithm::kFMeasure:
      return "F-measure";
  }
  return "?";
}

QueryExpander::QueryExpander(const index::InvertedIndex& index,
                             QueryExpanderOptions options)
    : index_(&index), options_(std::move(options)) {}

Result<ExpansionOutcome> QueryExpander::ExpandText(
    std::string_view user_query) const {
  std::vector<TermId> terms =
      index_->corpus().analyzer().AnalyzeReadOnly(user_query);
  if (terms.empty()) {
    return Status::InvalidArgument("query '" + std::string(user_query) +
                                   "' contains no known terms");
  }
  std::vector<index::RankedResult> results;
  switch (options_.retrieval) {
    case RetrievalModel::kTfIdfAnd:
      results = index_->Search(terms, options_.top_k_results);
      break;
    case RetrievalModel::kVsm:
      results = index_->SearchVsm(terms, options_.top_k_results);
      break;
    case RetrievalModel::kBm25:
      results = index_->SearchBm25(terms, options_.top_k_results);
      break;
  }
  return Expand(terms, results);
}

Result<ExpansionOutcome> QueryExpander::Expand(
    const std::vector<TermId>& user_terms,
    const std::vector<index::RankedResult>& results) const {
  if (results.empty()) {
    return Status::NotFound("user query retrieved no results");
  }
  std::vector<index::RankedResult> used = results;
  if (options_.top_k_results > 0 && used.size() > options_.top_k_results) {
    used.resize(options_.top_k_results);
  }
  if (!options_.use_ranking_weights) {
    for (auto& r : used) r.score = 1.0;
  }

  ResultUniverse universe(index_->corpus(), used);
  if (options_.memoize_set_algebra) universe.EnableSetAlgebraCache();

  Stopwatch cluster_watch;
  cluster::Clustering clustering;
  {
    QEC_TRACE_SPAN("engine/cluster");
    std::vector<cluster::SparseVector> vectors;
    vectors.reserve(universe.size());
    for (size_t i = 0; i < universe.size(); ++i) {
      vectors.push_back(cluster::SparseVector::FromDocument(
          index_->corpus().Get(universe.doc_at(i))));
    }
    switch (options_.clustering) {
      case ClusteringAlgorithm::kKMeans: {
        cluster::KMeansOptions kmeans_options = options_.kmeans;
        kmeans_options.k = options_.max_clusters;
        clustering = cluster::KMeans(kmeans_options).Cluster(vectors);
        break;
      }
      case ClusteringAlgorithm::kHac: {
        cluster::HacOptions hac_options;
        hac_options.k = options_.max_clusters;
        hac_options.auto_k = options_.kmeans.auto_k;
        clustering = cluster::Hac(hac_options).Cluster(vectors);
        break;
      }
      case ClusteringAlgorithm::kDynamic:
        clustering = cluster::SelectBestClustering(
            vectors, options_.max_clusters, options_.kmeans.seed);
        break;
    }
  }
  double clustering_seconds = cluster_watch.ElapsedSeconds();

  ExpansionOutcome outcome =
      ExpandClustered(user_terms, universe, clustering);
  outcome.clustering_seconds = clustering_seconds;
  return outcome;
}

ExpansionOutcome QueryExpander::ExpandClustered(
    const std::vector<TermId>& user_terms, const ResultUniverse& universe,
    const cluster::Clustering& clustering) const {
  QEC_CHECK_EQ(clustering.assignment.size(), universe.size());
  QEC_TRACE_SPAN("engine/expand");
  QEC_COUNTER_INC("engine/expansions");
  ExpansionOutcome outcome;
  outcome.num_results_used = universe.size();

  std::vector<TermId> candidates = SelectCandidates(
      universe, *index_, user_terms, options_.candidates);
  const auto& vocab = index_->corpus().analyzer().vocabulary();

  Stopwatch watch;

  auto assemble = [&](const cluster::Clustering& final_clustering,
                      std::vector<ExpansionResult> results) {
    const auto members = final_clustering.Members();
    std::vector<QueryQuality> qualities;
    for (size_t c = 0; c < results.size(); ++c) {
      ExpandedQuery eq;
      if (options_.minimize_queries) {
        results[c].query =
            MinimizeQuery(universe, results[c].query, user_terms.size());
      }
      eq.terms = std::move(results[c].query);
      eq.keywords.reserve(eq.terms.size());
      for (TermId t : eq.terms) eq.keywords.emplace_back(vocab.TermString(t));
      eq.quality = results[c].quality;
      eq.cluster_index = c;
      eq.cluster_size = c < members.size() ? members[c].size() : 0;
      eq.iterations = results[c].iterations;
      eq.value_recomputations = results[c].value_recomputations;
      eq.term_details = std::move(results[c].term_details);
      const IskrStats& is = results[c].iskr_stats;
      outcome.iskr_stats.steps += is.steps;
      outcome.iskr_stats.additions += is.additions;
      outcome.iskr_stats.removals += is.removals;
      outcome.iskr_stats.candidates_evaluated += is.candidates_evaluated;
      const PebcStats& ps = results[c].pebc_stats;
      outcome.pebc_stats.samples_drawn += ps.samples_drawn;
      outcome.pebc_stats.rounds += ps.rounds;
      outcome.pebc_stats.intervals_zoomed += ps.intervals_zoomed;
      outcome.pebc_stats.candidates_evaluated += ps.candidates_evaluated;
      outcome.pebc_stats.best_target_percent = std::max(
          outcome.pebc_stats.best_target_percent, ps.best_target_percent);
      qualities.push_back(eq.quality);
      outcome.queries.push_back(std::move(eq));
    }
    outcome.num_clusters = final_clustering.num_clusters;
    outcome.expansion_seconds = watch.ElapsedSeconds();
    outcome.set_score = SetScore(qualities);
  };

  // Interleaved clustering/expansion path (Sec. 7 prototype; ISKR only —
  // the reassignment loop is defined in terms of ISKR expansions).
  if (options_.interleave_rounds > 0 &&
      options_.algorithm == ExpansionAlgorithm::kIskr) {
    InterleavedOptions interleaved_options;
    interleaved_options.max_rounds = options_.interleave_rounds;
    interleaved_options.iskr = options_.iskr;
    interleaved_options.sweep = options_.sweep;
    InterleavedOutcome io = InterleavedExpander(interleaved_options)
                                .Run(universe, user_terms, clustering,
                                     candidates);
    assemble(io.clustering, std::move(io.expansions));
    return outcome;
  }

  const auto members = clustering.Members();
  std::vector<ExpansionResult> results(members.size());
  auto expand_one = [&](size_t c) {
    DynamicBitset cluster_bits = universe.EmptySet();
    for (size_t i : members[c]) cluster_bits.Set(i);
    ExpansionContext context =
        MakeContext(universe, user_terms, std::move(cluster_bits), candidates);
    results[c] = RunAlgorithm(context);
  };

  const size_t threads =
      ResolveThreadCount(options_.num_threads, members.size());
  if (threads <= 1) {
    for (size_t c = 0; c < members.size(); ++c) expand_one(c);
  } else {
    // Clusters are expanded independently (Sec. 2), so a simple work-
    // stealing counter suffices and results are identical to serial. The
    // workers come from the persistent SweepPool — nested benefit/cost
    // sweeps inside expand_one reuse the same pool without deadlock (the
    // pool grows by demand, then parks the workers).
    std::atomic<size_t> next{0};
    common::SweepPool::Instance().Run(threads, [&] {
      for (size_t c = next.fetch_add(1); c < members.size();
           c = next.fetch_add(1)) {
        expand_one(c);
      }
    });
  }
  assemble(clustering, std::move(results));
  return outcome;
}

ExpansionResult QueryExpander::RunAlgorithm(
    const ExpansionContext& context) const {
  switch (options_.algorithm) {
    case ExpansionAlgorithm::kIskr: {
      if (!options_.explain_terms) {
        return IskrExpander(options_.iskr, options_.sweep).Expand(context);
      }
      // ISKR's refinement trace already carries the benefit/cost each step
      // was chosen at — use it verbatim rather than re-deriving post hoc.
      std::vector<IskrStep> steps;
      ExpansionResult result =
          IskrExpander(options_.iskr, options_.sweep)
              .ExpandWithTrace(context, &steps);
      result.term_details.reserve(steps.size());
      for (const IskrStep& step : steps) {
        TermExplain row;
        row.term = step.keyword;
        row.is_removal = step.is_removal;
        row.benefit = step.benefit;
        row.cost = step.cost;
        row.value = step.value;
        result.term_details.push_back(row);
      }
      return result;
    }
    case ExpansionAlgorithm::kPebc: {
      ExpansionResult result =
          PebcExpander(options_.pebc, options_.sweep).Expand(context);
      if (options_.explain_terms) {
        result.term_details = ExplainAddedTerms(context, result.query);
      }
      return result;
    }
    case ExpansionAlgorithm::kFMeasure: {
      ExpansionResult result =
          FMeasureExpander(options_.fmeasure, options_.sweep).Expand(context);
      if (options_.explain_terms) {
        result.term_details = ExplainAddedTerms(context, result.query);
      }
      return result;
    }
  }
  QEC_LOG(Fatal) << "unknown expansion algorithm";
  return {};
}

}  // namespace qec::core
