#include "core/exact.h"

#include <vector>

#include "common/logging.h"

namespace qec::core {

ExactExpander::ExactExpander(ExactOptions options) : options_(options) {}

ExpansionResult ExactExpander::Expand(const ExpansionContext& context) const {
  QEC_CHECK(context.universe != nullptr);
  QEC_CHECK_LE(context.candidates.size(), options_.max_candidates)
      << "exact search is exponential; reduce the candidate set";
  const ResultUniverse& universe = *context.universe;
  const size_t n = context.candidates.size();

  // Precompute each candidate's containment bitset once.
  std::vector<const DynamicBitset*> docs_with(n);
  for (size_t i = 0; i < n; ++i) {
    docs_with[i] = &universe.DocsWithTerm(context.candidates[i]);
  }
  DynamicBitset base = universe.Retrieve(context.user_query);

  uint64_t best_mask = 0;
  QueryQuality best_quality =
      EvaluateQuery(universe, base, context.cluster);
  size_t evaluated = 1;

  const uint64_t limit = 1ULL << n;
  for (uint64_t mask = 1; mask < limit; ++mask) {
    DynamicBitset r = base;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) r &= *docs_with[i];
    }
    QueryQuality q = EvaluateQuery(universe, r, context.cluster);
    ++evaluated;
    if (q.f_measure > best_quality.f_measure) {
      best_quality = q;
      best_mask = mask;
    }
  }

  ExpansionResult result;
  result.query = context.user_query;
  for (size_t i = 0; i < n; ++i) {
    if ((best_mask >> i) & 1) result.query.push_back(context.candidates[i]);
  }
  result.quality = best_quality;
  result.iterations = evaluated;
  result.value_recomputations = evaluated;
  return result;
}

}  // namespace qec::core
