#ifndef QEC_CORE_QUERY_EXPANDER_H_
#define QEC_CORE_QUERY_EXPANDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "cluster/kmeans.h"
#include "common/status.h"
#include "core/candidates.h"
#include "core/exact.h"
#include "core/fmeasure_expander.h"
#include "core/iskr.h"
#include "core/metrics.h"
#include "core/pebc.h"
#include "core/result_universe.h"
#include "core/sweep_options.h"
#include "index/inverted_index.h"

namespace qec::core {

/// Which per-cluster expansion algorithm the engine runs.
enum class ExpansionAlgorithm { kIskr, kPebc, kFMeasure };

std::string_view AlgorithmName(ExpansionAlgorithm algorithm);

/// How the engine retrieves and ranks the user query's results.
enum class RetrievalModel {
  /// AND semantics ranked by TF-IDF — the paper's setting (Sec. 2).
  kTfIdfAnd,
  /// Vector-space cosine over OR candidates (Sec. 7 future work).
  kVsm,
  /// Okapi BM25 over OR candidates.
  kBm25,
};

/// How the engine clusters the results.
enum class ClusteringAlgorithm {
  kKMeans,
  kHac,
  /// Silhouette-based choice between k-means and HAC (Sec. 7 future work:
  /// "choosing the best clustering method dynamically").
  kDynamic,
};

/// End-to-end engine configuration.
struct QueryExpanderOptions {
  /// Expanded queries are generated from the top-K results of the user
  /// query (0 = use all results). The paper uses the top 30 on Wikipedia.
  size_t top_k_results = 30;
  /// Upper bound on clusters == maximum number of expanded queries
  /// (the paper caps both at 5).
  size_t max_clusters = 5;
  /// Use TF-IDF ranking scores as result weights in S(.); when false all
  /// results weigh 1 (the unranked setting of Sec. 2).
  bool use_ranking_weights = true;
  ExpansionAlgorithm algorithm = ExpansionAlgorithm::kIskr;
  RetrievalModel retrieval = RetrievalModel::kTfIdfAnd;
  ClusteringAlgorithm clustering = ClusteringAlgorithm::kKMeans;
  /// Interleaved clustering/expansion rounds after the initial expansion
  /// (Sec. 7 future work; applies to the ISKR algorithm only).
  size_t interleave_rounds = 0;
  /// Threads used to expand clusters concurrently (clusters are
  /// independent — Sec. 2 notes each query can be generated independently).
  /// 1 = serial, 0 = auto (hardware concurrency); explicit values are
  /// clamped to the cluster count. Results are byte-identical regardless
  /// (see ResolveThreadCount in common/threading.h for the shared
  /// semantics with the qec_server pool).
  size_t num_threads = 1;
  /// Memoize DocsWithoutTerm complements and small-arity Retrieve
  /// conjunctions on the per-request universe
  /// (ResultUniverse::EnableSetAlgebraCache). Identical results; the
  /// serving layer enables it by default.
  bool memoize_set_algebra = false;
  /// Drop keywords whose removal leaves the expanded query's result set
  /// unchanged (query_minimizer.h): same precision/recall, shorter
  /// suggestion.
  bool minimize_queries = false;
  /// Fill ExpandedQuery::term_details with per-term benefit/cost rows
  /// (EXPLAIN support). For ISKR these are the actual refinement steps;
  /// for PEBC/F-measure a post-hoc attribution pass. Does not change the
  /// produced queries, so it is excluded from the serving-layer options
  /// fingerprint — but explain requests bypass the expansion cache, which
  /// stores outcomes without the rows.
  bool explain_terms = false;
  CandidateOptions candidates;
  IskrOptions iskr;
  PebcOptions pebc;
  FMeasureOptions fmeasure;
  /// Shared benefit/cost sweep fan-out for whichever algorithm runs (the
  /// formerly triplicated sweep_threads knob; see core/sweep_options.h).
  SweepOptions sweep;
  /// Clustering knobs; .k is overridden by max_clusters. auto_k defaults
  /// on: max_clusters is the paper's upper bound, not an exact count.
  cluster::KMeansOptions kmeans = {
      .k = 5, .max_iterations = 50, .seed = 42, .auto_k = true};
};

/// One expanded query produced for one cluster.
struct ExpandedQuery {
  /// The query's terms (user query first, then added keywords).
  std::vector<TermId> terms;
  /// The same terms rendered as strings.
  std::vector<std::string> keywords;
  /// Quality against the cluster the query was generated for.
  QueryQuality quality;
  size_t cluster_index = 0;
  size_t cluster_size = 0;
  size_t iterations = 0;
  size_t value_recomputations = 0;
  /// Per-term benefit/cost rows; empty unless
  /// QueryExpanderOptions::explain_terms.
  std::vector<TermExplain> term_details;
};

/// Result of expanding one user query.
struct ExpansionOutcome {
  std::vector<ExpandedQuery> queries;
  /// Eq. 1: harmonic mean of the per-cluster F-measures.
  double set_score = 0.0;
  size_t num_results_used = 0;
  size_t num_clusters = 0;
  double clustering_seconds = 0.0;
  double expansion_seconds = 0.0;
  /// Algorithm accounting aggregated over all clusters: counters are
  /// summed, PebcStats::best_target_percent is the max. Only the stats of
  /// the algorithm that actually ran are non-zero.
  IskrStats iskr_stats;
  PebcStats pebc_stats;
};

/// The QEC engine: retrieve the user query's (top-K) results, cluster them
/// with k-means over TF vectors and cosine similarity, and generate one
/// expanded query per cluster with the configured algorithm (Sec. 1-2).
class QueryExpander {
 public:
  QueryExpander(const index::InvertedIndex& index,
                QueryExpanderOptions options = {});

  /// Full pipeline from a query string. Fails with InvalidArgument when the
  /// query analyzes to no terms and NotFound when it retrieves nothing.
  Result<ExpansionOutcome> ExpandText(std::string_view user_query) const;

  /// Pipeline from pre-analyzed terms and pre-retrieved ranked results.
  Result<ExpansionOutcome> Expand(
      const std::vector<TermId>& user_terms,
      const std::vector<index::RankedResult>& results) const;

  /// Expansion only, over an existing universe and clustering (no timing of
  /// clustering; expansion_seconds still measured).
  ExpansionOutcome ExpandClustered(const std::vector<TermId>& user_terms,
                                   const ResultUniverse& universe,
                                   const cluster::Clustering& clustering) const;

  const QueryExpanderOptions& options() const { return options_; }

 private:
  ExpansionResult RunAlgorithm(const ExpansionContext& context) const;

  const index::InvertedIndex* index_;
  QueryExpanderOptions options_;
};

}  // namespace qec::core

#endif  // QEC_CORE_QUERY_EXPANDER_H_
