#ifndef QEC_CORE_EXPANSION_CONTEXT_H_
#define QEC_CORE_EXPANSION_CONTEXT_H_

#include <vector>

#include "common/dynamic_bitset.h"
#include "common/types.h"
#include "core/metrics.h"
#include "core/result_universe.h"

namespace qec::core {

/// Input to a per-cluster expansion algorithm (Definition 2.2): the user
/// query, one cluster C (the ground truth), the results U in all other
/// clusters, and the candidate keywords the expanded query may add.
struct ExpansionContext {
  const ResultUniverse* universe = nullptr;
  /// The original user query terms. Every universe result contains them.
  std::vector<TermId> user_query;
  /// C: the target cluster, as a bitset over the universe.
  DynamicBitset cluster;
  /// U: results not in C (typically the complement of `cluster` within the
  /// universe, but callers may restrict it).
  DynamicBitset others;
  /// Keywords the algorithms may add to the query.
  std::vector<TermId> candidates;
};

/// Builds a context where U is the complement of C in the universe.
ExpansionContext MakeContext(const ResultUniverse& universe,
                             std::vector<TermId> user_query,
                             DynamicBitset cluster,
                             std::vector<TermId> candidates);

/// Per-run ISKR accounting (Sec. 3): what the incremental maintenance
/// actually did. Mirrors the "iskr/*" counters in the global
/// obs::MetricsRegistry; this copy is scoped to one Expand() call.
struct IskrStats {
  /// Refinement steps applied (additions + removals).
  size_t steps = 0;
  size_t additions = 0;
  size_t removals = 0;
  /// Benefit/cost entry (re)computations, including the initial pass over
  /// all candidates — the maintenance cost Sec. 5.3's speed claim hinges on.
  size_t candidates_evaluated = 0;
};

/// Per-run PEBC accounting (Sec. 4). Mirrors the "pebc/*" counters.
struct PebcStats {
  /// Sample queries built and evaluated.
  size_t samples_drawn = 0;
  /// Zoom-in rounds executed.
  size_t rounds = 0;
  /// Interval halvings (the zoom into the best adjacent sample pair).
  size_t intervals_zoomed = 0;
  /// Keyword benefit/cost evaluations across all samples.
  size_t candidates_evaluated = 0;
  /// Elimination target (percent of U's weight) of the winning sample.
  double best_target_percent = 0.0;
};

/// One per-term accounting row of an expansion, for EXPLAIN-style
/// diagnostics (opt-in via QueryExpanderOptions::explain_terms). For ISKR
/// the rows are the actual refinement steps (one per addition/removal, in
/// order, with the benefit/cost the step was chosen at); for PEBC and the
/// F-measure variant they are a post-hoc attribution: each added keyword's
/// benefit/cost evaluated in final-query order against the shrinking
/// retrieved set (ExplainAddedTerms).
struct TermExplain {
  TermId term = kInvalidTermId;
  /// True when the row removed the term from the query (ISKR only).
  bool is_removal = false;
  /// Weight eliminated from the other clusters (S(R ∩ U ∩ E(k))).
  double benefit = 0.0;
  /// Weight eliminated from the target cluster (S(R ∩ C ∩ E(k))).
  double cost = 0.0;
  /// benefit / cost; +inf when cost is 0 with positive benefit.
  double value = 0.0;
};

/// Post-hoc per-term benefit/cost attribution: walks `final_query`'s added
/// keywords (those not in the context's user query) in order, scoring each
/// against the retrieved set of the preceding prefix — exactly the sequence
/// of ISKR addition entries had the terms been added in that order.
std::vector<TermExplain> ExplainAddedTerms(const ExpansionContext& context,
                                           const std::vector<TermId>& final_query);

/// Output of a per-cluster expansion algorithm.
struct ExpansionResult {
  /// The expanded query: the user query terms plus any added keywords.
  std::vector<TermId> query;
  /// Quality of `query` against the cluster.
  QueryQuality quality;
  /// Refinement iterations performed (algorithm-specific meaning).
  size_t iterations = 0;
  /// Number of keyword benefit/cost (or delta-F) recomputations — the
  /// maintenance cost the paper's efficiency comparison hinges on.
  size_t value_recomputations = 0;
  /// Filled by IskrExpander runs; zero otherwise.
  IskrStats iskr_stats;
  /// Filled by PebcExpander runs; zero otherwise.
  PebcStats pebc_stats;
  /// Per-term benefit/cost rows; empty unless the caller opted in
  /// (QueryExpanderOptions::explain_terms).
  std::vector<TermExplain> term_details;
};

/// Evaluates an arbitrary query against the context's cluster.
QueryQuality EvaluateAgainstCluster(const ExpansionContext& context,
                                    const std::vector<TermId>& query);

}  // namespace qec::core

#endif  // QEC_CORE_EXPANSION_CONTEXT_H_
