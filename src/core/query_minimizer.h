#ifndef QEC_CORE_QUERY_MINIMIZER_H_
#define QEC_CORE_QUERY_MINIMIZER_H_

#include <vector>

#include "common/types.h"
#include "core/result_universe.h"

namespace qec::core {

/// Removes redundant keywords from a conjunctive query: any keyword whose
/// removal leaves R(q) (within the universe) unchanged is dropped, longest
/// queries first, protecting the first `protected_prefix` terms (the user
/// query). The result retrieves exactly the same universe results with the
/// fewest keywords — shorter suggestions read better and are cheaper to
/// evaluate, without touching precision/recall.
///
/// Greedy single-pass: after each drop the remaining keywords are
/// re-checked, so no removable keyword survives (the result is minimal,
/// though not necessarily minimum — choosing the smallest equivalent
/// subset is set-cover-hard).
std::vector<TermId> MinimizeQuery(const ResultUniverse& universe,
                                  const std::vector<TermId>& query,
                                  size_t protected_prefix = 0);

}  // namespace qec::core

#endif  // QEC_CORE_QUERY_MINIMIZER_H_
