#include "core/candidates.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace qec::core {

std::vector<TermId> SelectCandidates(const ResultUniverse& universe,
                                     const index::InvertedIndex& index,
                                     const std::vector<TermId>& user_query,
                                     const CandidateOptions& options) {
  std::unordered_set<TermId> excluded(user_query.begin(), user_query.end());
  struct Scored {
    TermId term;
    double score;
  };
  std::vector<Scored> scored;
  const size_t n = universe.size();
  for (TermId t : universe.DistinctTerms()) {
    if (excluded.count(t) != 0) continue;
    if (options.drop_universal_terms && universe.DocsWithTerm(t).Count() == n) {
      continue;
    }
    double tfidf =
        static_cast<double>(universe.TotalTermFrequency(t)) * index.Idf(t);
    scored.push_back(Scored{t, tfidf});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.term < b.term;
  });

  size_t keep = static_cast<size_t>(
      std::ceil(options.fraction * static_cast<double>(scored.size())));
  keep = std::min(keep, scored.size());
  if (options.max_candidates > 0) keep = std::min(keep, options.max_candidates);

  std::vector<TermId> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.push_back(scored[i].term);
  return out;
}

}  // namespace qec::core
