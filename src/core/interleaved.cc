#include "core/interleaved.h"

#include <vector>

#include "common/logging.h"
#include "core/metrics.h"

namespace qec::core {

InterleavedExpander::InterleavedExpander(InterleavedOptions options)
    : options_(options) {}

namespace {

/// Expands every cluster of `clustering`, returning the expansions and the
/// Eq. 1 score.
std::vector<ExpansionResult> ExpandAll(const ResultUniverse& universe,
                                       const std::vector<TermId>& user_terms,
                                       const cluster::Clustering& clustering,
                                       const std::vector<TermId>& candidates,
                                       const IskrOptions& iskr_options,
                                       const SweepOptions& sweep_options,
                                       double* set_score) {
  std::vector<ExpansionResult> expansions;
  std::vector<QueryQuality> qualities;
  const auto members = clustering.Members();
  for (const auto& cluster_members : members) {
    DynamicBitset bits = universe.EmptySet();
    for (size_t i : cluster_members) bits.Set(i);
    ExpansionContext ctx =
        MakeContext(universe, user_terms, std::move(bits), candidates);
    ExpansionResult r = IskrExpander(iskr_options, sweep_options).Expand(ctx);
    qualities.push_back(r.quality);
    expansions.push_back(std::move(r));
  }
  *set_score = SetScore(qualities);
  return expansions;
}

/// Reassigns each result to the expanded query retrieving it; returns true
/// if any assignment changed. Results retrieved by no query stay put.
bool Reassign(const ResultUniverse& universe,
              const std::vector<ExpansionResult>& expansions,
              cluster::Clustering& clustering) {
  std::vector<DynamicBitset> retrieved;
  retrieved.reserve(expansions.size());
  for (const auto& e : expansions) {
    retrieved.push_back(universe.Retrieve(e.query));
  }
  bool changed = false;
  for (size_t i = 0; i < universe.size(); ++i) {
    int best = -1;
    double best_f = -1.0;
    for (size_t j = 0; j < retrieved.size(); ++j) {
      if (!retrieved[j].Test(i)) continue;
      if (expansions[j].quality.f_measure > best_f) {
        best_f = expansions[j].quality.f_measure;
        best = static_cast<int>(j);
      }
    }
    if (best >= 0 && clustering.assignment[i] != best) {
      clustering.assignment[i] = best;
      changed = true;
    }
  }
  if (!changed) return false;
  // Compact labels (a cluster may have lost all members).
  std::vector<int> remap(clustering.num_clusters, -1);
  int next = 0;
  for (int& a : clustering.assignment) {
    if (remap[static_cast<size_t>(a)] == -1) {
      remap[static_cast<size_t>(a)] = next++;
    }
    a = remap[static_cast<size_t>(a)];
  }
  clustering.num_clusters = static_cast<size_t>(next);
  return true;
}

}  // namespace

InterleavedOutcome InterleavedExpander::Run(
    const ResultUniverse& universe, const std::vector<TermId>& user_terms,
    const cluster::Clustering& initial,
    const std::vector<TermId>& candidates) const {
  QEC_CHECK_EQ(initial.assignment.size(), universe.size());
  InterleavedOutcome outcome;
  outcome.clustering = initial;
  outcome.expansions =
      ExpandAll(universe, user_terms, outcome.clustering, candidates,
                options_.iskr, options_.sweep, &outcome.set_score);

  for (size_t round = 0; round < options_.max_rounds; ++round) {
    cluster::Clustering refined = outcome.clustering;
    if (!Reassign(universe, outcome.expansions, refined)) break;
    double refined_score = 0.0;
    std::vector<ExpansionResult> refined_expansions =
        ExpandAll(universe, user_terms, refined, candidates, options_.iskr,
                  options_.sweep, &refined_score);
    if (refined_score <= outcome.set_score + 1e-12) break;
    outcome.clustering = std::move(refined);
    outcome.expansions = std::move(refined_expansions);
    outcome.set_score = refined_score;
    outcome.rounds = round + 1;
  }
  return outcome;
}

}  // namespace qec::core
