#include "core/metrics.h"

namespace qec::core {

QueryQuality EvaluateQuery(const ResultUniverse& universe,
                           const DynamicBitset& retrieved,
                           const DynamicBitset& cluster) {
  QueryQuality q;
  // S(R ∩ C) in one fused pass — no materialized intersection.
  const double s_hit = universe.WeightOfAnd(retrieved, cluster);
  const double s_retrieved = universe.TotalWeight(retrieved);
  const double s_cluster = universe.TotalWeight(cluster);
  q.precision = s_retrieved > 0.0 ? s_hit / s_retrieved : 0.0;
  q.recall = s_cluster > 0.0 ? s_hit / s_cluster : 0.0;
  const double denom = q.precision + q.recall;
  q.f_measure = denom > 0.0 ? 2.0 * q.precision * q.recall / denom : 0.0;
  return q;
}

double HarmonicMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double inv_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    inv_sum += 1.0 / v;
  }
  return static_cast<double>(values.size()) / inv_sum;
}

double SetScore(const std::vector<QueryQuality>& qualities) {
  std::vector<double> fs;
  fs.reserve(qualities.size());
  for (const auto& q : qualities) fs.push_back(q.f_measure);
  return HarmonicMean(fs);
}

}  // namespace qec::core
