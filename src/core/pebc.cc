#include "core/pebc.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/small_vector.h"
#include "common/sweep_pool.h"
#include "common/threading.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qec::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double ValueOf(double benefit, double cost) {
  if (cost > 0.0) return benefit / cost;
  return benefit > 0.0 ? kInf : 0.0;
}

/// Builds one sample query for a given elimination target. Every per-
/// candidate benefit/cost evaluation runs on the fused weighted kernels
/// (zero allocations, no intermediate bitsets); the handful of long-lived
/// buffers are leased once from the universe scratch arena and reused
/// across all Build() calls of the builder.
class SampleBuilder {
 public:
  SampleBuilder(const ExpansionContext& ctx, Rng& rng,
                const SweepOptions& sweep, size_t* recomputations)
      : ctx_(ctx),
        rng_(rng),
        sweep_(sweep),
        recomputations_(recomputations),
        retrieved_(ctx.universe->AcquireScratch()),
        saved_(ctx.universe->AcquireScratch()),
        selected_(ctx.universe->AcquireScratch()),
        blocked_(ctx.universe->AcquireScratch()),
        cluster_range_(ctx.cluster.NonzeroWordRange()),
        others_range_(ctx.others.NonzeroWordRange()) {
    total_u_weight_ = ctx_.universe->TotalWeight(ctx_.others);
  }

  /// Generates a query eliminating roughly `target_percent`% of U's weight
  /// while maximizing retained C, using `strategy`.
  PebcSample Build(double target_percent, PebcStrategy strategy) {
    QEC_TRACE_SPAN("pebc/build_sample");
    query_.assign(ctx_.user_query.begin(), ctx_.user_query.end());
    in_query_.clear();
    in_query_.insert(query_.begin(), query_.end());
    ctx_.universe->RetrieveInto(query_, &*retrieved_);
    SyncRetrievedDerived();
    const double target =
        total_u_weight_ * std::clamp(target_percent, 0.0, 100.0) / 100.0;
    switch (strategy) {
      case PebcStrategy::kFixedOrder:
        BuildFixedOrder(target);
        break;
      case PebcStrategy::kRandomSubset:
        BuildRandomSubset(target);
        break;
      case PebcStrategy::kRandomSingleResult:
        BuildRandomSingleResult(target);
        break;
    }
    PebcSample sample;
    sample.target_percent = target_percent;
    sample.achieved_percent =
        total_u_weight_ > 0.0
            ? 100.0 * EliminatedWeight() / total_u_weight_
            : 0.0;
    sample.f_measure =
        EvaluateQuery(*ctx_.universe, *retrieved_, ctx_.cluster).f_measure;
    sample.query.assign(query_.begin(), query_.end());
    return sample;
  }

 private:
  // Quantities derived from retrieved_ that are loop-invariant across a
  // whole candidate sweep: hoisted here and refreshed only when retrieved_
  // changes (one fused pass instead of one per EliminatedWeight() /
  // KillsCluster() call).
  void SyncRetrievedDerived() {
    live_u_weight_ = ctx_.universe->WeightOfAnd(*retrieved_, ctx_.others);
    retrieved_c_any_ = retrieved_->Intersects(ctx_.cluster);
    // Kernel scan ranges: every per-candidate expression positively ANDs
    // R and one of C/U, so restricting the scan to the intersection of
    // their nonzero-word ranges skips provably all-zero shards while
    // preserving the exact addition sequence (byte-identical results).
    retrieved_range_ = retrieved_->NonzeroWordRange();
    cluster_scan_ = WordRange::Intersect(retrieved_range_, cluster_range_);
    others_scan_ = WordRange::Intersect(retrieved_range_, others_range_);
  }

  double EliminatedWeight() const { return total_u_weight_ - live_u_weight_; }

  // benefit = S(R ∩ U ∩ E(k)), cost = S(R ∩ C ∩ E(k)). Thread-safe: reads
  // only; callers account the evaluation in their CandidateEntry.
  std::pair<double, double> BenefitCost(TermId k) const {
    const DynamicBitset& docs_k = ctx_.universe->DocsWithTerm(k);
    return {ctx_.universe->WeightOfAndNotAnd(*retrieved_, docs_k, ctx_.others,
                                             others_scan_),
            ctx_.universe->WeightOfAndNotAnd(*retrieved_, docs_k, ctx_.cluster,
                                             cluster_scan_)};
  }

  // True when adding k would eliminate every cluster result still
  // retrieved. Sample queries maximize retained C for a given elimination
  // level, so such keywords are never selected (recall would hit 0).
  bool KillsCluster(TermId k) const {
    if (!retrieved_c_any_) return false;
    return !retrieved_->Intersects(ctx_.universe->DocsWithTerm(k),
                                   ctx_.cluster, cluster_scan_);
  }

  size_t NumEliminatedBy(TermId k) const {
    return retrieved_->AndNotCount(ctx_.universe->DocsWithTerm(k),
                                   retrieved_range_);
  }

  // One candidate's sweep outcome. `eligible` is false for candidates a
  // strategy filter skipped; `evals` carries the benefit/cost evaluation
  // count into the serial merge (so the recomputations tally is identical
  // to the serial sweep's).
  struct CandidateEntry {
    double value = -1.0;
    size_t eliminated = 0;
    uint32_t evals = 0;
    bool eligible = false;
  };
  /// Scatter target of a sweep; inline up to 64 candidates.
  using EntryBuffer = common::SmallVector<CandidateEntry, 64>;

  // Scatter-gather over the candidate list: evaluates `eval` (a pure
  // function of one candidate) on work-stealing SweepPool workers and
  // merges the entries in candidate-index order — the shared SweepOptions
  // machinery, so any thread count is byte-identical to the serial loop.
  template <typename Eval>
  void SweepCandidates(const Eval& eval, EntryBuffer* out) {
    const size_t n = ctx_.candidates.size();
    out->clear();
    out->resize(n, CandidateEntry{});
    const size_t threads = ResolveThreadCount(sweep_.threads, n);
    if (threads <= 1) {
      for (size_t i = 0; i < n; ++i) (*out)[i] = eval(ctx_.candidates[i]);
    } else {
      QEC_COUNTER_INC("pebc/parallel_sweeps");
      CandidateEntry* entries = out->data();
      std::atomic<size_t> next{0};
      common::SweepPool::Instance().Run(threads, [&] {
        for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          entries[i] = eval(ctx_.candidates[i]);
        }
      });
    }
    for (const CandidateEntry& e : *out) *recomputations_ += e.evals;
  }

  void ApplyKeyword(TermId k) {
    query_.push_back(k);
    *retrieved_ &= ctx_.universe->DocsWithTerm(k);
    in_query_.insert(k);
    SyncRetrievedDerived();
  }

  void UndoLastKeyword() {
    in_query_.erase(query_.back());
    query_.pop_back();
    *retrieved_ = *saved_;
    SyncRetrievedDerived();
  }

  // Stops the elimination loop once the target is crossed, keeping the
  // nearer of {with last keyword, without last keyword} (Sec. 4.3's
  // closeness rule, applied to every strategy). The pre-apply retrieved
  // set is parked in saved_ by the caller. Returns true if the loop
  // should stop.
  bool SettleAroundTarget(double target, double before_weight) {
    const double after_weight = EliminatedWeight();
    if (after_weight < target) return false;
    if (std::abs(before_weight - target) < std::abs(after_weight - target)) {
      UndoLastKeyword();
    }
    return true;
  }

  // Serial argmax over swept entries in candidate-index order, with the
  // value-then-fewest-eliminated tiebreak shared by the fixed-order and
  // single-result strategies.
  TermId SelectBestByValueThenElim(const EntryBuffer& entries) const {
    TermId best = kInvalidTermId;
    double best_value = -1.0;
    size_t best_elim = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      const CandidateEntry& e = entries[i];
      if (!e.eligible) continue;
      if (e.value > best_value ||
          (e.value == best_value && e.eliminated < best_elim)) {
        best_value = e.value;
        best = ctx_.candidates[i];
        best_elim = e.eliminated;
      }
    }
    return best;
  }

  void BuildFixedOrder(double target) {
    if (EliminatedWeight() >= target) return;
    for (;;) {
      SweepCandidates(
          [&](TermId k) {
            CandidateEntry e;
            if (in_query_.count(k) != 0) return e;
            auto [b, c] = BenefitCost(k);
            e.evals = 1;
            if (b <= 0.0) return e;  // must eliminate something in U
            if (KillsCluster(k)) return e;
            e.value = ValueOf(b, c);
            e.eliminated = NumEliminatedBy(k);
            e.eligible = true;
            return e;
          },
          &entries_buf_);
      TermId best = SelectBestByValueThenElim(entries_buf_);
      if (best == kInvalidTermId) return;
      const double before_weight = EliminatedWeight();
      *saved_ = *retrieved_;
      ApplyKeyword(best);
      if (SettleAroundTarget(target, before_weight)) return;
    }
  }

  void BuildRandomSubset(double target) {
    if (EliminatedWeight() >= target) return;
    // Randomly select results of U totalling ~target weight.
    indices_buf_.clear();
    ctx_.others.ForEachSetBit([&](size_t i) { indices_buf_.push_back(i); });
    rng_.Shuffle(indices_buf_);
    selected_->Reinitialize(ctx_.universe->size());
    double selected_weight = 0.0;
    for (size_t i : indices_buf_) {
      if (selected_weight >= target) break;
      double w = ctx_.universe->weight(i);
      // Closeness rule at the selection stage too.
      if (selected_weight + w - target > target - selected_weight &&
          selected_weight > 0.0) {
        break;
      }
      selected_->Set(i);
      selected_weight += w;
    }
    // Greedy weighted cover of the selected subset: maximize weight of
    // selected results eliminated per unit cost, where eliminating
    // non-selected results of U counts as cost (Example 4.3).
    const WordRange sel_range = selected_->NonzeroWordRange();
    for (;;) {
      if (EliminatedWeight() >= target) return;
      const WordRange sel_scan =
          WordRange::Intersect(retrieved_range_, sel_range);
      SweepCandidates(
          [&](TermId k) {
            CandidateEntry e;
            if (in_query_.count(k) != 0) return e;
            e.evals = 1;
            const DynamicBitset& docs_k = ctx_.universe->DocsWithTerm(k);
            // Eliminated results E = R ∩ ~docs_k, split three ways in
            // fused passes: selected (benefit), cluster and unselected-U
            // (cost).
            double b = ctx_.universe->WeightOfAndNotAnd(*retrieved_, docs_k,
                                                        *selected_, sel_scan);
            if (b <= 0.0) return e;
            if (KillsCluster(k)) return e;
            double c = ctx_.universe->WeightOfAndNotAnd(
                           *retrieved_, docs_k, ctx_.cluster, cluster_scan_) +
                       ctx_.universe->WeightWhereInRange(
                           others_scan_,
                           [](uint64_t r, uint64_t dk, uint64_t u,
                              uint64_t sel) { return r & ~dk & u & ~sel; },
                           *retrieved_, docs_k, ctx_.others, *selected_);
            e.value = ValueOf(b, c);
            e.eligible = true;
            return e;
          },
          &entries_buf_);
      // Value-only tiebreak (first candidate in index order wins ties),
      // exactly the serial loop's rule.
      TermId best = kInvalidTermId;
      double best_value = -1.0;
      for (size_t i = 0; i < entries_buf_.size(); ++i) {
        if (!entries_buf_[i].eligible) continue;
        if (entries_buf_[i].value > best_value) {
          best_value = entries_buf_[i].value;
          best = ctx_.candidates[i];
        }
      }
      if (best == kInvalidTermId) return;
      const double before_weight = EliminatedWeight();
      *saved_ = *retrieved_;
      ApplyKeyword(best);
      if (SettleAroundTarget(target, before_weight)) return;
    }
  }

  void BuildRandomSingleResult(double target) {
    if (EliminatedWeight() >= target) return;
    // Results for which no candidate keyword works; never re-pick them.
    blocked_->Reinitialize(ctx_.universe->size());
    for (;;) {
      // Un-eliminated results of U that are not blocked.
      indices_buf_.clear();
      DynamicBitset::ForEachWord(
          [&](size_t w, uint64_t r, uint64_t u, uint64_t bl) {
            uint64_t word = r & u & ~bl;
            while (word != 0) {
              int bit = __builtin_ctzll(word);
              indices_buf_.push_back(w * 64 + static_cast<size_t>(bit));
              word &= word - 1;
            }
          },
          *retrieved_, ctx_.others, *blocked_);
      if (indices_buf_.empty()) return;
      size_t r = indices_buf_[rng_.UniformInt(indices_buf_.size())];
      const doc::Document& rdoc =
          ctx_.universe->corpus().Get(ctx_.universe->doc_at(r));
      // Best benefit/cost keyword that eliminates r (i.e., r lacks k);
      // ties go to the keyword eliminating fewest results.
      SweepCandidates(
          [&](TermId k) {
            CandidateEntry e;
            if (in_query_.count(k) != 0) return e;
            if (rdoc.Contains(k)) return e;  // cannot eliminate r
            if (KillsCluster(k)) return e;
            auto [b, c] = BenefitCost(k);
            e.evals = 1;
            e.value = ValueOf(b, c);
            e.eliminated = NumEliminatedBy(k);
            e.eligible = true;
            return e;
          },
          &entries_buf_);
      TermId best = SelectBestByValueThenElim(entries_buf_);
      if (best == kInvalidTermId) {
        blocked_->Set(r);
        continue;
      }
      const double before_weight = EliminatedWeight();
      *saved_ = *retrieved_;
      ApplyKeyword(best);
      if (SettleAroundTarget(target, before_weight)) return;
    }
  }

  const ExpansionContext& ctx_;
  Rng& rng_;
  const SweepOptions& sweep_;
  size_t* recomputations_;
  double total_u_weight_ = 0.0;
  common::SmallVector<TermId, 16> query_;
  /// Current R(q) plus strategy scratches, leased from the universe arena:
  /// saved_ holds the pre-apply set for the closeness-rule undo, selected_
  /// the random-subset targets, blocked_ the dead ends of the single-
  /// result strategy.
  ResultUniverse::ScratchBitset retrieved_;
  ResultUniverse::ScratchBitset saved_;
  ResultUniverse::ScratchBitset selected_;
  ResultUniverse::ScratchBitset blocked_;
  /// Nonzero-word ranges of C and U (fixed per context) plus the hoisted
  /// derivatives of retrieved_ (see SyncRetrievedDerived).
  WordRange cluster_range_;
  WordRange others_range_;
  WordRange retrieved_range_;
  WordRange cluster_scan_;
  WordRange others_scan_;
  double live_u_weight_ = 0.0;
  bool retrieved_c_any_ = false;
  /// Reused index buffer (random-subset shuffle, single-result pool) and
  /// swept-entry buffer (scatter-gather merge target).
  std::vector<size_t> indices_buf_;
  EntryBuffer entries_buf_;
  std::unordered_set<TermId> in_query_;
};

}  // namespace

PebcExpander::PebcExpander(PebcOptions options, SweepOptions sweep)
    : options_(options), sweep_(sweep) {}

ExpansionResult PebcExpander::Expand(const ExpansionContext& context) const {
  return ExpandWithTrace(context, nullptr);
}

ExpansionResult PebcExpander::ExpandWithTrace(
    const ExpansionContext& context, std::vector<PebcSample>* trace) const {
  QEC_CHECK(context.universe != nullptr);
  QEC_TRACE_SPAN("pebc/expand");
  Rng rng(options_.seed);
  size_t recomputations = 0;
  SampleBuilder builder(context, rng, sweep_, &recomputations);

  const size_t nseg = std::max<size_t>(1, options_.num_segments);
  double left = 0.0, right = 100.0;
  PebcSample best;
  best.f_measure = -1.0;
  size_t samples_tested = 0;
  size_t rounds = 0;
  size_t zooms = 0;

  for (size_t it = 0; it < options_.num_iterations; ++it) {
    ++rounds;
    std::vector<PebcSample> round;
    const double step = (right - left) / static_cast<double>(nseg);
    for (size_t i = 0; i <= nseg; ++i) {
      double x = left + step * static_cast<double>(i);
      PebcSample s = builder.Build(x, options_.strategy);
      ++samples_tested;
      if (s.f_measure > best.f_measure) best = s;
      if (trace != nullptr) trace->push_back(s);
      round.push_back(std::move(s));
    }
    // Zoom into the adjacent pair with the highest average F-measure.
    size_t best_pair = 0;
    double best_avg = -1.0;
    for (size_t i = 0; i + 1 < round.size(); ++i) {
      double avg = (round[i].f_measure + round[i + 1].f_measure) / 2.0;
      if (avg > best_avg) {
        best_avg = avg;
        best_pair = i;
      }
    }
    left = round[best_pair].target_percent;
    right = round[best_pair + 1].target_percent;
    ++zooms;
  }

  ExpansionResult result;
  result.query = best.query.empty() ? context.user_query : best.query;
  result.quality = EvaluateAgainstCluster(context, result.query);
  result.iterations = samples_tested;
  result.value_recomputations = recomputations;
  result.pebc_stats.samples_drawn = samples_tested;
  result.pebc_stats.rounds = rounds;
  result.pebc_stats.intervals_zoomed = zooms;
  result.pebc_stats.candidates_evaluated = recomputations;
  result.pebc_stats.best_target_percent = best.target_percent;
  QEC_COUNTER_INC("pebc/runs");
  QEC_COUNTER_ADD("pebc/samples_drawn", samples_tested);
  QEC_COUNTER_ADD("pebc/rounds", rounds);
  QEC_COUNTER_ADD("pebc/intervals_zoomed", zooms);
  QEC_COUNTER_ADD("pebc/benefit_cost_evals", recomputations);
  return result;
}

}  // namespace qec::core
