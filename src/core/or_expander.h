#ifndef QEC_CORE_OR_EXPANDER_H_
#define QEC_CORE_OR_EXPANDER_H_

#include <cstddef>

#include "core/expansion_context.h"

namespace qec::core {

/// Configuration for OR-semantics expansion.
struct OrIskrOptions {
  size_t max_iterations = 200;
  /// Allow backing keywords out of the disjunction.
  bool allow_removal = true;
};

/// ISKR dualized to OR semantics (the paper's appendix: "handling OR
/// semantics is essentially the identical problem").
///
/// Under OR semantics a query retrieves every result containing at least
/// one of its keywords, so the roles of precision and recall swap relative
/// to the AND case: adding a keyword can only grow R(q) (helping recall,
/// risking precision) and removing one can only shrink it. The greedy
/// refinement therefore values
///   addition: benefit = S(newly covered ∩ C), cost = S(newly covered ∩ U)
///   removal:  benefit = S(uniquely covered ∩ U),
///             cost    = S(uniquely covered ∩ C)
/// where "uniquely covered" are results covered by no other query keyword.
/// Refinement stops when no move has a benefit/cost value > 1.
///
/// The returned query is the keyword disjunction only — the original user
/// query terms are NOT included, since under OR semantics they would
/// retrieve the entire universe (every result contains them).
class OrIskrExpander {
 public:
  explicit OrIskrExpander(OrIskrOptions options = {});

  ExpansionResult Expand(const ExpansionContext& context) const;

  const OrIskrOptions& options() const { return options_; }

 private:
  OrIskrOptions options_;
};

}  // namespace qec::core

#endif  // QEC_CORE_OR_EXPANDER_H_
