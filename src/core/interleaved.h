#ifndef QEC_CORE_INTERLEAVED_H_
#define QEC_CORE_INTERLEAVED_H_

#include <vector>

#include "cluster/kmeans.h"
#include "core/expansion_context.h"
#include "core/iskr.h"
#include "core/sweep_options.h"

namespace qec::core {

/// Configuration for interleaved clustering/expansion.
struct InterleavedOptions {
  /// Maximum refine rounds after the initial expansion.
  size_t max_rounds = 3;
  IskrOptions iskr;
  /// Sweep fan-out forwarded to the per-cluster ISKR expansions.
  SweepOptions sweep;
};

/// Outcome of the interleaved process.
struct InterleavedOutcome {
  /// Final clustering (possibly refined from the input one).
  cluster::Clustering clustering;
  /// One expansion per final cluster.
  std::vector<ExpansionResult> expansions;
  /// Eq. 1 score of the final expansions.
  double set_score = 0.0;
  /// Rounds actually executed (0 = the initial expansion already stable).
  size_t rounds = 0;
};

/// Prototype of the paper's future-work idea (Sec. 7): "the possibility of
/// interweaving the clustering and query expansion process".
///
/// Round trip: expand each cluster with ISKR, then *reassign* every result
/// to the expanded query that retrieves it (ties to the query with higher
/// F-measure; results no query retrieves keep their cluster), and expand
/// again on the refined clustering. Rounds continue while the Eq. 1 set
/// score strictly improves, up to `max_rounds`. Because expanded queries
/// are sharper cluster descriptions than raw centroids, reassignment can
/// fix borderline k-means placements that block a clean expansion.
class InterleavedExpander {
 public:
  explicit InterleavedExpander(InterleavedOptions options = {});

  InterleavedOutcome Run(const ResultUniverse& universe,
                         const std::vector<TermId>& user_terms,
                         const cluster::Clustering& initial,
                         const std::vector<TermId>& candidates) const;

  const InterleavedOptions& options() const { return options_; }

 private:
  InterleavedOptions options_;
};

}  // namespace qec::core

#endif  // QEC_CORE_INTERLEAVED_H_
