#ifndef QEC_CORE_EXACT_H_
#define QEC_CORE_EXACT_H_

#include <cstddef>

#include "core/expansion_context.h"

namespace qec::core {

/// Configuration for the exhaustive solver.
struct ExactOptions {
  /// Hard cap on the number of candidate keywords enumerated (the search is
  /// 2^candidates; QEC is APX-hard so this cannot scale).
  size_t max_candidates = 20;
};

/// Exhaustive optimal solver for Definition 2.2: enumerates every subset of
/// the candidate keywords, evaluates `user_query ∪ subset`, and returns the
/// F-measure-optimal query. Exponential — usable only on small instances.
/// Exists to validate the heuristics (ISKR achieves local optimality, PEBC
/// converges toward this optimum when it zooms into the right interval).
class ExactExpander {
 public:
  explicit ExactExpander(ExactOptions options = {});

  /// Returns the optimal expanded query. Checks that the context has at
  /// most `max_candidates` candidates.
  ExpansionResult Expand(const ExpansionContext& context) const;

  const ExactOptions& options() const { return options_; }

 private:
  ExactOptions options_;
};

}  // namespace qec::core

#endif  // QEC_CORE_EXACT_H_
