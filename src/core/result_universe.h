#ifndef QEC_CORE_RESULT_UNIVERSE_H_
#define QEC_CORE_RESULT_UNIVERSE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/dynamic_bitset.h"
#include "common/logging.h"
#include "common/types.h"
#include "doc/corpus.h"
#include "index/inverted_index.h"
#include "obs/metrics.h"

namespace qec::core {

/// Hit/miss totals of the opt-in set-algebra memo (EnableSetAlgebraCache).
struct SetAlgebraCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// Reuse/alloc totals of the per-universe scratch arena (AcquireScratch).
/// In the steady state every acquisition is a reuse: the benefit/cost
/// inner loops allocate nothing per evaluation.
struct ScratchArenaStats {
  uint64_t reuses = 0;
  uint64_t allocs = 0;
};

/// The universe of results of the original user query, over which expanded
/// queries are generated and evaluated. All expansion algorithms work
/// relative to this fixed set (the paper expands based on the clustered
/// results, typically the top-K of the original query).
///
/// Results get dense local ids 0..size()-1; set algebra uses DynamicBitset
/// over local ids. Each result carries a ranking weight: the paper's S(.)
/// is the sum of weights of a set of results (weight 1.0 when unranked).
class ResultUniverse {
  struct ScratchArena;  // defined in result_universe.cc

 public:
  /// Builds from ranked results of the user query. Weights are the ranking
  /// scores; non-positive scores are clamped to a small epsilon so S(.)
  /// stays a valid measure.
  ResultUniverse(const doc::Corpus& corpus,
                 const std::vector<index::RankedResult>& results);

  /// Builds an unranked universe (all weights 1.0).
  ResultUniverse(const doc::Corpus& corpus, const std::vector<DocId>& results);

  size_t size() const { return docs_.size(); }

  DocId doc_at(size_t local) const { return docs_[local]; }
  double weight(size_t local) const { return weights_[local]; }

  const doc::Corpus& corpus() const { return *corpus_; }

  /// S(set): total ranking weight of the results in `set`.
  double TotalWeight(const DynamicBitset& set) const;

  /// Fused weighted kernels: S(.) of a multi-operand set expression in one
  /// pass, never materializing the intermediate set. Summation order is
  /// ascending local id — bit-identical to composing the sets and calling
  /// TotalWeight. Each call bumps the universe/fused_evals counter.

  /// S(a ∩ b).
  double WeightOfAnd(const DynamicBitset& a, const DynamicBitset& b) const;

  /// S(a \ b).
  double WeightOfAndNot(const DynamicBitset& a, const DynamicBitset& b) const;

  /// S((a \ b) ∩ c).
  double WeightOfAndNotAnd(const DynamicBitset& a, const DynamicBitset& b,
                           const DynamicBitset& c) const;

  /// S((a \ b) ∩ c) scanning only words in `range`. Bit-identical to the
  /// full kernel when (a ∩ c) is zero outside `range` — the caller passes
  /// the intersection of the nonzero-word ranges of `a` and `c`, and the
  /// skipped all-zero words contribute no terms to the sum, so the exact
  /// floating-point addition sequence is preserved. With cluster-reordered
  /// doc ids the positively-ANDed operands are dense runs, so the scan
  /// collapses to the few shards the clusters live in.
  double WeightOfAndNotAnd(const DynamicBitset& a, const DynamicBitset& b,
                           const DynamicBitset& c, const WordRange& range)
      const;

  /// Generic fused weighted fold: `combine(words...)` receives one 64-bit
  /// word per operand and returns the word of the combined set; the
  /// weights of its set bits are summed. The combined word must be 0 for
  /// bits past size() (any expression that ANDs at least one operand
  /// positively is safe).
  template <typename Combine, typename... Sets>
  double WeightWhere(Combine&& combine, const Sets&... sets) const;

  /// WeightWhere restricted to `range`: bit-identical to the full fold
  /// whenever `combine` yields 0 for every word outside the range (any
  /// expression that positively ANDs an operand whose nonzero words lie
  /// inside `range` qualifies).
  template <typename Combine, typename... Sets>
  double WeightWhereInRange(const WordRange& range, Combine&& combine,
                            const Sets&... sets) const;

  /// Shards the universe's local-id space into up to `target_shards`
  /// contiguous word-aligned doc-id ranges of near-equal width. Universes
  /// built over cluster-reordered corpora keep each cluster inside one run
  /// of ids, so clusters stay shard-local and per-shard pruning (via
  /// NonzeroWordRange) skips whole shards. Never returns an empty
  /// partition for a non-empty universe; `target_shards` is clamped to the
  /// word count.
  std::vector<WordRange> ShardByDocRange(size_t target_shards) const;

  /// S(universe).
  double total_weight() const { return total_weight_; }

  /// Bitset of results containing `term` (all-zero for unknown terms).
  const DynamicBitset& DocsWithTerm(TermId term) const;

  /// E(k): results NOT containing `term` — the results any query containing
  /// `term` can never retrieve (Sec. 3).
  DynamicBitset DocsWithoutTerm(TermId term) const;

  /// R(q) within the universe under AND semantics: results containing every
  /// term of `query`. The empty query retrieves the whole universe. Takes
  /// a span so callers may keep their query in any contiguous buffer
  /// (std::vector, common::SmallVector, a C array).
  DynamicBitset Retrieve(std::span<const TermId> query) const;

  /// R(q) into `out`, reusing its word storage (no allocation once the
  /// buffer is warm). Bypasses the set-algebra memo: meant for hot loops
  /// that own a scratch buffer (typically leased via AcquireScratch).
  void RetrieveInto(std::span<const TermId> query, DynamicBitset* out) const;

  /// R(q \ {excluded}) into `out`; every occurrence of `excluded` in
  /// `query` is skipped. The allocation-free core of ISKR's removal probe.
  void RetrieveWithoutInto(std::span<const TermId> query, TermId excluded,
                           DynamicBitset* out) const;

  /// R(q) within the universe under OR semantics: results containing at
  /// least one term of `query`. The empty query retrieves nothing.
  DynamicBitset RetrieveOr(std::span<const TermId> query) const;

  /// Braced-list conveniences forwarding to the span overloads (a braced
  /// initializer does not deduce to std::span; std::vector and
  /// common::SmallVector convert via span's range constructor).
  DynamicBitset Retrieve(std::initializer_list<TermId> query) const {
    return Retrieve(std::span<const TermId>(query.begin(), query.size()));
  }
  void RetrieveInto(std::initializer_list<TermId> query,
                    DynamicBitset* out) const {
    RetrieveInto(std::span<const TermId>(query.begin(), query.size()), out);
  }
  void RetrieveWithoutInto(std::initializer_list<TermId> query,
                           TermId excluded, DynamicBitset* out) const {
    RetrieveWithoutInto(std::span<const TermId>(query.begin(), query.size()),
                        excluded, out);
  }
  DynamicBitset RetrieveOr(std::initializer_list<TermId> query) const {
    return RetrieveOr(std::span<const TermId>(query.begin(), query.size()));
  }

  /// All distinct terms that appear in at least one result.
  const std::vector<TermId>& DistinctTerms() const { return distinct_terms_; }

  /// Total term frequency of `term` across the universe's results.
  int TotalTermFrequency(TermId term) const;

  /// A bitset of the right size, all clear.
  DynamicBitset EmptySet() const { return DynamicBitset(size()); }

  /// A bitset of the right size, all set.
  DynamicBitset FullSet() const { return DynamicBitset(size(), true); }

  /// RAII lease on a universe-sized scratch bitset (see AcquireScratch).
  /// Returns the buffer — capacity intact — to the arena on destruction.
  class ScratchBitset {
   public:
    ScratchBitset(ScratchBitset&& other) noexcept;
    ScratchBitset& operator=(ScratchBitset&&) = delete;
    ScratchBitset(const ScratchBitset&) = delete;
    ScratchBitset& operator=(const ScratchBitset&) = delete;
    ~ScratchBitset();

    DynamicBitset& operator*() { return bits_; }
    const DynamicBitset& operator*() const { return bits_; }
    DynamicBitset* operator->() { return &bits_; }
    const DynamicBitset* operator->() const { return &bits_; }

   private:
    friend class ResultUniverse;
    ScratchBitset(std::shared_ptr<ScratchArena> arena, DynamicBitset bits);

    /// Keeps the arena alive even if the lease outlives the universe.
    std::shared_ptr<ScratchArena> arena_;
    DynamicBitset bits_;
  };

  /// Leases a universe-sized bitset (all clear, or all set) from the
  /// per-universe scratch arena. Buffers keep their word storage across
  /// leases, so expansion states constructed over the same universe —
  /// per-cluster threads, PEBC's per-sample rebuilds, repeated serving
  /// requests against a cached universe — stop allocating once the arena
  /// is warm (ScratchArenaStats counts reuses vs allocs). Thread-safe; the
  /// arena mutex is touched per lease, never per set operation.
  ScratchBitset AcquireScratch(bool all_set = false) const;
  ScratchArenaStats scratch_arena_stats() const;

  /// Turns on memoization of DocsWithoutTerm complements and small-arity
  /// Retrieve conjunctions (up to kMaxMemoArity terms). Memoized calls
  /// return bit-identical results; repeated calls copy the cached bitset
  /// instead of re-running the AND/AND-NOT loops ISKR's and PEBC's
  /// benefit/cost inner loops otherwise pay per evaluation. Thread-safe:
  /// concurrent per-cluster expansion threads share the memo. The memo is
  /// bounded by the universe's distinct terms / distinct queries evaluated,
  /// both small for a per-request universe.
  void EnableSetAlgebraCache();
  bool set_algebra_cache_enabled() const { return set_cache_ != nullptr; }
  SetAlgebraCacheStats set_algebra_cache_stats() const;

  /// Conjunctions of more than this many terms bypass the memo (the key
  /// grows and hit rates drop with arity; small queries dominate).
  static constexpr size_t kMaxMemoArity = 4;

 private:
  void BuildTermMap();

  /// DocsWithTerm without the universe/term_lookups counter, for internal
  /// callers whose own batched counters already account for the lookup.
  const DynamicBitset& FindDocs(TermId term) const;

  const doc::Corpus* corpus_;
  std::vector<DocId> docs_;
  std::vector<double> weights_;
  /// True when every result weighs exactly 1.0 (the unranked setting).
  /// S(.) of a set expression is then its cardinality, so the weighted
  /// kernels shortcut to the SIMD count kernels — bit-identical, because
  /// summing k in-order 1.0s yields exactly k.
  bool unit_weights_ = false;
  double total_weight_ = 0.0;
  std::unordered_map<TermId, DynamicBitset> term_docs_;
  std::unordered_map<TermId, int> term_tf_;
  std::vector<TermId> distinct_terms_;
  DynamicBitset empty_;
  /// shared_ptr keeps the universe copyable; copies share the memo, which
  /// stays correct because they also share identical term/doc contents.
  struct SetAlgebraCache;
  std::shared_ptr<SetAlgebraCache> set_cache_;
  /// Always non-null. shared_ptr for the same copyability reason; copies
  /// share the arena (identical universe size, so buffers interchange).
  std::shared_ptr<ScratchArena> scratch_;
};

template <typename Combine, typename... Sets>
double ResultUniverse::WeightWhere(Combine&& combine,
                                   const Sets&... sets) const {
  QEC_COUNTER_INC("universe/fused_evals");
  auto check_size = [this](const DynamicBitset& s) {
    QEC_CHECK_EQ(s.size(), docs_.size());
  };
  (check_size(sets), ...);
  double sum = 0.0;
  const double* weights = weights_.data();
  DynamicBitset::ForEachWord(
      [&](size_t w, auto... words) {
        uint64_t word = combine(words...);
        while (word != 0) {
          int bit = __builtin_ctzll(word);
          sum += weights[w * 64 + static_cast<size_t>(bit)];
          word &= word - 1;
        }
      },
      sets...);
  return sum;
}

template <typename Combine, typename... Sets>
double ResultUniverse::WeightWhereInRange(const WordRange& range,
                                          Combine&& combine,
                                          const Sets&... sets) const {
  QEC_COUNTER_INC("universe/fused_evals");
  auto check_size = [this](const DynamicBitset& s) {
    QEC_CHECK_EQ(s.size(), docs_.size());
  };
  (check_size(sets), ...);
  double sum = 0.0;
  const double* weights = weights_.data();
  DynamicBitset::ForEachWordInRange(
      range,
      [&](size_t w, auto... words) {
        uint64_t word = combine(words...);
        while (word != 0) {
          int bit = __builtin_ctzll(word);
          sum += weights[w * 64 + static_cast<size_t>(bit)];
          word &= word - 1;
        }
      },
      sets...);
  return sum;
}

}  // namespace qec::core

#endif  // QEC_CORE_RESULT_UNIVERSE_H_
