#ifndef QEC_CORE_RESULT_UNIVERSE_H_
#define QEC_CORE_RESULT_UNIVERSE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/dynamic_bitset.h"
#include "common/types.h"
#include "doc/corpus.h"
#include "index/inverted_index.h"

namespace qec::core {

/// Hit/miss totals of the opt-in set-algebra memo (EnableSetAlgebraCache).
struct SetAlgebraCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// The universe of results of the original user query, over which expanded
/// queries are generated and evaluated. All expansion algorithms work
/// relative to this fixed set (the paper expands based on the clustered
/// results, typically the top-K of the original query).
///
/// Results get dense local ids 0..size()-1; set algebra uses DynamicBitset
/// over local ids. Each result carries a ranking weight: the paper's S(.)
/// is the sum of weights of a set of results (weight 1.0 when unranked).
class ResultUniverse {
 public:
  /// Builds from ranked results of the user query. Weights are the ranking
  /// scores; non-positive scores are clamped to a small epsilon so S(.)
  /// stays a valid measure.
  ResultUniverse(const doc::Corpus& corpus,
                 const std::vector<index::RankedResult>& results);

  /// Builds an unranked universe (all weights 1.0).
  ResultUniverse(const doc::Corpus& corpus, const std::vector<DocId>& results);

  size_t size() const { return docs_.size(); }

  DocId doc_at(size_t local) const { return docs_[local]; }
  double weight(size_t local) const { return weights_[local]; }

  const doc::Corpus& corpus() const { return *corpus_; }

  /// S(set): total ranking weight of the results in `set`.
  double TotalWeight(const DynamicBitset& set) const;

  /// S(universe).
  double total_weight() const { return total_weight_; }

  /// Bitset of results containing `term` (all-zero for unknown terms).
  const DynamicBitset& DocsWithTerm(TermId term) const;

  /// E(k): results NOT containing `term` — the results any query containing
  /// `term` can never retrieve (Sec. 3).
  DynamicBitset DocsWithoutTerm(TermId term) const;

  /// R(q) within the universe under AND semantics: results containing every
  /// term of `query`. The empty query retrieves the whole universe.
  DynamicBitset Retrieve(const std::vector<TermId>& query) const;

  /// R(q) within the universe under OR semantics: results containing at
  /// least one term of `query`. The empty query retrieves nothing.
  DynamicBitset RetrieveOr(const std::vector<TermId>& query) const;

  /// All distinct terms that appear in at least one result.
  const std::vector<TermId>& DistinctTerms() const { return distinct_terms_; }

  /// Total term frequency of `term` across the universe's results.
  int TotalTermFrequency(TermId term) const;

  /// A bitset of the right size, all clear.
  DynamicBitset EmptySet() const { return DynamicBitset(size()); }

  /// A bitset of the right size, all set.
  DynamicBitset FullSet() const { return DynamicBitset(size(), true); }

  /// Turns on memoization of DocsWithoutTerm complements and small-arity
  /// Retrieve conjunctions (up to kMaxMemoArity terms). Memoized calls
  /// return bit-identical results; repeated calls copy the cached bitset
  /// instead of re-running the AND/AND-NOT loops ISKR's and PEBC's
  /// benefit/cost inner loops otherwise pay per evaluation. Thread-safe:
  /// concurrent per-cluster expansion threads share the memo. The memo is
  /// bounded by the universe's distinct terms / distinct queries evaluated,
  /// both small for a per-request universe.
  void EnableSetAlgebraCache();
  bool set_algebra_cache_enabled() const { return set_cache_ != nullptr; }
  SetAlgebraCacheStats set_algebra_cache_stats() const;

  /// Conjunctions of more than this many terms bypass the memo (the key
  /// grows and hit rates drop with arity; small queries dominate).
  static constexpr size_t kMaxMemoArity = 4;

 private:
  void BuildTermMap();

  /// DocsWithTerm without the universe/term_lookups counter, for internal
  /// callers whose own batched counters already account for the lookup.
  const DynamicBitset& FindDocs(TermId term) const;

  const doc::Corpus* corpus_;
  std::vector<DocId> docs_;
  std::vector<double> weights_;
  double total_weight_ = 0.0;
  std::unordered_map<TermId, DynamicBitset> term_docs_;
  std::unordered_map<TermId, int> term_tf_;
  std::vector<TermId> distinct_terms_;
  DynamicBitset empty_;
  /// shared_ptr keeps the universe copyable; copies share the memo, which
  /// stays correct because they also share identical term/doc contents.
  struct SetAlgebraCache;
  std::shared_ptr<SetAlgebraCache> set_cache_;
};

}  // namespace qec::core

#endif  // QEC_CORE_RESULT_UNIVERSE_H_
