#include "core/iskr.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/small_vector.h"
#include "common/sweep_pool.h"
#include "common/threading.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qec::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Entry {
  double benefit = 0.0;
  double cost = 0.0;
  // True for an addition that would eliminate every cluster result still
  // retrieved: the benefit/cost ratio may exceed 1, but recall — and hence
  // F-measure — would drop to exactly 0, so the move can never help.
  bool kills_cluster = false;

  double value() const {
    if (kills_cluster) return 0.0;
    if (cost > 0.0) return benefit / cost;
    return benefit > 0.0 ? kInf : 0.0;
  }
};

/// Mutable ISKR state over one expansion context. All per-evaluation set
/// algebra runs on the fused ResultUniverse/DynamicBitset kernels: a
/// benefit/cost (re)computation performs zero heap allocations, and the
/// few long-lived buffers are leased from the universe's scratch arena so
/// repeated expansions over one universe stop allocating entirely.
class IskrState {
 public:
  IskrState(const ExpansionContext& ctx, const IskrOptions& options,
            const SweepOptions& sweep, std::vector<IskrStep>* trace)
      : ctx_(ctx),
        options_(options),
        sweep_(sweep),
        trace_(trace),
        retrieved_(ctx.universe->AcquireScratch()),
        delta_(ctx.universe->AcquireScratch()),
        without_(ctx.universe->AcquireScratch()),
        cluster_range_(ctx.cluster.NonzeroWordRange()),
        others_range_(ctx.others.NonzeroWordRange()) {
    query_.assign(ctx.user_query.begin(), ctx.user_query.end());
    ctx_.universe->RetrieveInto(query_, &*retrieved_);
    RefreshScanRanges();
    SweepCandidates();
  }

  ExpansionResult Run() {
    while (iterations_ < options_.max_iterations) {
      QEC_TRACE_SPAN("iskr/refine_step");
      auto [term, is_removal, value] = BestMove();
      if (value <= 1.0) break;
      ++iterations_;
      IskrStep step;
      step.keyword = term;
      step.is_removal = is_removal;
      step.value = value;
      const Entry& entry =
          is_removal ? remove_entries_.at(term) : add_entries_.at(term);
      step.benefit = entry.benefit;
      step.cost = entry.cost;
      if (is_removal) {
        ++removals_;
        ApplyRemoval(term);
      } else {
        ++additions_;
        ApplyAddition(term);
      }
      if (trace_ != nullptr) {
        step.f_measure_after =
            EvaluateQuery(*ctx_.universe, *retrieved_, ctx_.cluster).f_measure;
        trace_->push_back(step);
      }
    }
    ExpansionResult result;
    result.query.assign(query_.begin(), query_.end());
    result.quality = EvaluateQuery(*ctx_.universe, *retrieved_, ctx_.cluster);
    result.iterations = iterations_;
    result.value_recomputations = recomputations_;
    result.iskr_stats.steps = iterations_;
    result.iskr_stats.additions = additions_;
    result.iskr_stats.removals = removals_;
    result.iskr_stats.candidates_evaluated = recomputations_;
    QEC_COUNTER_INC("iskr/runs");
    QEC_COUNTER_ADD("iskr/steps", iterations_);
    QEC_COUNTER_ADD("iskr/additions", additions_);
    QEC_COUNTER_ADD("iskr/removals", removals_);
    QEC_COUNTER_ADD("iskr/benefit_cost_evals", recomputations_);
    return result;
  }

 private:
  // Initial benefit/cost evaluation of every candidate. Candidates are
  // independent, so the sweep fans out over SweepOptions::threads pool
  // workers; each entry is computed whole by one thread and merged in
  // candidate-index order, keeping results byte-identical to the serial
  // sweep.
  void SweepCandidates() {
    const size_t n = ctx_.candidates.size();
    const size_t threads = ResolveThreadCount(sweep_.threads, n);
    if (threads <= 1) {
      for (TermId k : ctx_.candidates) {
        add_entries_.emplace(k, ComputeAddEntry(k));
      }
    } else {
      QEC_TRACE_SPAN("iskr/parallel_sweep");
      QEC_COUNTER_INC("iskr/parallel_sweeps");
      entry_scratch_.resize(n);
      Entry* entries = entry_scratch_.data();
      std::atomic<size_t> next{0};
      common::SweepPool::Instance().Run(threads, [&] {
        for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          entries[i] = ComputeAddEntry(ctx_.candidates[i]);
        }
      });
      for (size_t i = 0; i < n; ++i) {
        add_entries_.emplace(ctx_.candidates[i], entries[i]);
      }
    }
    recomputations_ += n;
  }

  // Kernel scan ranges, refreshed whenever R(q) changes: every benefit/
  // cost expression positively ANDs R(q) and one of C/U, so scanning only
  // the intersection of their nonzero-word ranges skips provably all-zero
  // shards while preserving the exact floating-point addition sequence
  // (byte-identical to the full scan). On cluster-reordered corpora C and
  // the refined R(q) are dense runs, so whole shards drop out.
  void RefreshScanRanges() {
    const WordRange retrieved_range = retrieved_->NonzeroWordRange();
    cluster_scan_ = WordRange::Intersect(retrieved_range, cluster_range_);
    others_scan_ = WordRange::Intersect(retrieved_range, others_range_);
  }

  // Addition: benefit = S(R(q) ∩ U ∩ E(k)), cost = S(R(q) ∩ C ∩ E(k)).
  // One fused pass per weight, no intermediate bitsets; the old
  // loop-invariant |R(q) ∩ C| comparison is subsumed by the early-exit
  // three-way Intersects (the addition kills the cluster exactly when
  // R(q) ∩ C ∩ D(k) is empty with positive cost). Thread-safe: reads only.
  Entry ComputeAddEntry(TermId k) const {
    const DynamicBitset& docs_k = ctx_.universe->DocsWithTerm(k);
    Entry e{ctx_.universe->WeightOfAndNotAnd(*retrieved_, docs_k, ctx_.others,
                                             others_scan_),
            ctx_.universe->WeightOfAndNotAnd(*retrieved_, docs_k, ctx_.cluster,
                                             cluster_scan_)};
    if (e.cost > 0.0) {
      e.kills_cluster =
          !retrieved_->Intersects(docs_k, ctx_.cluster, cluster_scan_);
    }
    return e;
  }

  // Removal: D(k) = R(q\k) \ R(q); benefit = S(C ∩ D), cost = S(U ∩ D).
  // The delta lies outside R(q), so only the positively-ANDed C/U operand
  // bounds the scan here.
  Entry ComputeRemoveEntry(TermId k) {
    ctx_.universe->RetrieveWithoutInto(query_, k, &*without_);
    return Entry{
        ctx_.universe->WeightOfAndNotAnd(*without_, *retrieved_, ctx_.cluster,
                                         cluster_range_),
        ctx_.universe->WeightOfAndNotAnd(*without_, *retrieved_, ctx_.others,
                                         others_range_)};
  }

  // (term, is_removal, value) of the best refinement step.
  std::tuple<TermId, bool, double> BestMove() const {
    TermId best_term = kInvalidTermId;
    bool best_removal = false;
    double best_value = 0.0;
    auto consider = [&](TermId term, bool removal, const Entry& e) {
      double v = e.value();
      if (v > best_value ||
          (v == best_value && best_term != kInvalidTermId &&
           term < best_term)) {
        best_value = v;
        best_term = term;
        best_removal = removal;
      }
    };
    for (const auto& [k, e] : add_entries_) consider(k, false, e);
    if (options_.allow_removal) {
      for (const auto& [k, e] : remove_entries_) consider(k, true, e);
    }
    return {best_term, best_removal, best_value};
  }

  void ApplyAddition(TermId k) {
    // Delta results: eliminated from R(q) by adding k.
    const DynamicBitset& docs_k = ctx_.universe->DocsWithTerm(k);
    *delta_ = *retrieved_;
    delta_->AndNot(docs_k);
    retrieved_->AndNot(*delta_);
    RefreshScanRanges();
    query_.push_back(k);
    add_entries_.erase(k);
    RefreshAffected(*delta_);
    // The new member's removal entry is always fresh.
    remove_entries_[k] = ComputeRemoveEntry(k);
    ++recomputations_;
  }

  void ApplyRemoval(TermId k) {
    ctx_.universe->RetrieveWithoutInto(query_, k, &*without_);
    *delta_ = *without_;
    delta_->AndNot(*retrieved_);
    *retrieved_ = *without_;
    RefreshScanRanges();
    query_.erase(std::find(query_.begin(), query_.end(), k));
    remove_entries_.erase(k);
    RefreshAffected(*delta_);
    add_entries_[k] = ComputeAddEntry(k);
    ++recomputations_;
  }

  // Recomputes exactly the addition keywords that do not appear in all
  // delta results: for every other keyword the delta results change
  // nothing (Sec. 3, "Identifying Keywords with Affected Values"). The
  // rule is exact for additions only — a removal entry's delta results
  // D(k) = R(q\k) \ R(q) lie *outside* R(q), so refining q can change them
  // even when k appears in every delta result (e.g. the walkthrough's
  // removal of "job" after adding store and location). Removal entries are
  // few (|q| keywords), so they are simply recomputed every step.
  //
  // The addition refresh fans out over the sweep pool like the initial
  // sweep: ComputeAddEntry only reads shared state and every affected
  // entry is overwritten whole, so the refreshed values — and the
  // recomputation count, a plain sum — are byte-identical to the serial
  // loop. The removal refresh shares the without_ scratch and therefore
  // stays serial; it touches at most |q| entries anyway.
  void RefreshAffected(const DynamicBitset& delta) {
    if (!delta.None()) {
      const size_t threads =
          ResolveThreadCount(sweep_.threads, add_entries_.size());
      if (threads <= 1) {
        for (auto& [k, e] : add_entries_) {
          if (!delta.IsSubsetOf(ctx_.universe->DocsWithTerm(k))) {
            e = ComputeAddEntry(k);
            ++recomputations_;
          }
        }
      } else {
        slot_scratch_.clear();
        slot_scratch_.reserve(add_entries_.size());
        for (auto& [k, e] : add_entries_) slot_scratch_.emplace_back(k, &e);
        auto& slots = slot_scratch_;
        std::atomic<size_t> next{0};
        std::atomic<size_t> refreshed{0};
        common::SweepPool::Instance().Run(threads, [&] {
          size_t local = 0;
          for (size_t i = next.fetch_add(1); i < slots.size();
               i = next.fetch_add(1)) {
            const TermId k = slots[i].first;
            if (!delta.IsSubsetOf(ctx_.universe->DocsWithTerm(k))) {
              *slots[i].second = ComputeAddEntry(k);
              ++local;
            }
          }
          refreshed.fetch_add(local);
        });
        recomputations_ += refreshed.load();
      }
    }
    for (auto& [k, e] : remove_entries_) {
      e = ComputeRemoveEntry(k);
      ++recomputations_;
    }
  }

  const ExpansionContext& ctx_;
  const IskrOptions& options_;
  const SweepOptions& sweep_;
  std::vector<IskrStep>* trace_;
  common::SmallVector<TermId, 16> query_;
  /// Current R(q), plus two step-scoped scratches (delta results and
  /// R(q\k)), all leased from the universe arena.
  ResultUniverse::ScratchBitset retrieved_;
  ResultUniverse::ScratchBitset delta_;
  ResultUniverse::ScratchBitset without_;
  /// Nonzero-word ranges of C and U (fixed per context) and their current
  /// intersections with R(q)'s range (see RefreshScanRanges).
  WordRange cluster_range_;
  WordRange others_range_;
  WordRange cluster_scan_;
  WordRange others_scan_;
  std::unordered_map<TermId, Entry> add_entries_;
  std::unordered_map<TermId, Entry> remove_entries_;
  /// Per-sweep merge scratch, reused across sweeps of one expansion: the
  /// scatter target of the initial sweep and the slot list of the
  /// incremental refresh. Inline up to 64 entries, so small candidate
  /// sets never touch the heap.
  common::SmallVector<Entry, 64> entry_scratch_;
  common::SmallVector<std::pair<TermId, Entry*>, 64> slot_scratch_;
  size_t iterations_ = 0;
  size_t recomputations_ = 0;
  size_t additions_ = 0;
  size_t removals_ = 0;
};

}  // namespace

IskrExpander::IskrExpander(IskrOptions options, SweepOptions sweep)
    : options_(options), sweep_(sweep) {}

ExpansionResult IskrExpander::Expand(const ExpansionContext& context) const {
  return ExpandWithTrace(context, nullptr);
}

ExpansionResult IskrExpander::ExpandWithTrace(
    const ExpansionContext& context, std::vector<IskrStep>* trace) const {
  QEC_CHECK(context.universe != nullptr);
  QEC_TRACE_SPAN("iskr/expand");
  IskrState state(context, options_, sweep_, trace);
  return state.Run();
}

}  // namespace qec::core
