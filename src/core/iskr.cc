#include "core/iskr.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qec::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Entry {
  double benefit = 0.0;
  double cost = 0.0;
  // True for an addition that would eliminate every cluster result still
  // retrieved: the benefit/cost ratio may exceed 1, but recall — and hence
  // F-measure — would drop to exactly 0, so the move can never help.
  bool kills_cluster = false;

  double value() const {
    if (kills_cluster) return 0.0;
    if (cost > 0.0) return benefit / cost;
    return benefit > 0.0 ? kInf : 0.0;
  }
};

/// Mutable ISKR state over one expansion context.
class IskrState {
 public:
  IskrState(const ExpansionContext& ctx, const IskrOptions& options,
            std::vector<IskrStep>* trace)
      : ctx_(ctx), options_(options), trace_(trace) {
    query_ = ctx.user_query;
    retrieved_ = ctx.universe->Retrieve(query_);
    for (TermId k : ctx.candidates) {
      add_entries_.emplace(k, ComputeAddEntry(k));
      ++recomputations_;
    }
  }

  ExpansionResult Run() {
    while (iterations_ < options_.max_iterations) {
      QEC_TRACE_SPAN("iskr/refine_step");
      auto [term, is_removal, value] = BestMove();
      if (value <= 1.0) break;
      ++iterations_;
      IskrStep step;
      step.keyword = term;
      step.is_removal = is_removal;
      step.value = value;
      const Entry& entry =
          is_removal ? remove_entries_.at(term) : add_entries_.at(term);
      step.benefit = entry.benefit;
      step.cost = entry.cost;
      if (is_removal) {
        ++removals_;
        ApplyRemoval(term);
      } else {
        ++additions_;
        ApplyAddition(term);
      }
      if (trace_ != nullptr) {
        step.f_measure_after =
            EvaluateQuery(*ctx_.universe, retrieved_, ctx_.cluster).f_measure;
        trace_->push_back(step);
      }
    }
    ExpansionResult result;
    result.query = query_;
    result.quality = EvaluateQuery(*ctx_.universe, retrieved_, ctx_.cluster);
    result.iterations = iterations_;
    result.value_recomputations = recomputations_;
    result.iskr_stats.steps = iterations_;
    result.iskr_stats.additions = additions_;
    result.iskr_stats.removals = removals_;
    result.iskr_stats.candidates_evaluated = recomputations_;
    QEC_COUNTER_INC("iskr/runs");
    QEC_COUNTER_ADD("iskr/steps", iterations_);
    QEC_COUNTER_ADD("iskr/additions", additions_);
    QEC_COUNTER_ADD("iskr/removals", removals_);
    QEC_COUNTER_ADD("iskr/benefit_cost_evals", recomputations_);
    return result;
  }

 private:
  // Addition: benefit = S(R(q) ∩ U ∩ E(k)), cost = S(R(q) ∩ C ∩ E(k)).
  Entry ComputeAddEntry(TermId k) const {
    DynamicBitset eliminated = retrieved_;
    eliminated.AndNot(ctx_.universe->DocsWithTerm(k));  // R(q) ∩ E(k)
    DynamicBitset in_u = eliminated;
    in_u &= ctx_.others;
    DynamicBitset in_c = eliminated;
    in_c &= ctx_.cluster;
    Entry e{ctx_.universe->TotalWeight(in_u),
            ctx_.universe->TotalWeight(in_c)};
    if (e.cost > 0.0) {
      DynamicBitset retrieved_c = retrieved_;
      retrieved_c &= ctx_.cluster;
      e.kills_cluster = in_c.Count() == retrieved_c.Count();
    }
    return e;
  }

  // Removal: D(k) = R(q\k) \ R(q); benefit = S(C ∩ D), cost = S(U ∩ D).
  Entry ComputeRemoveEntry(TermId k) const {
    DynamicBitset delta = RetrieveWithout(k);
    delta.AndNot(retrieved_);
    DynamicBitset in_c = delta;
    in_c &= ctx_.cluster;
    DynamicBitset in_u = delta;
    in_u &= ctx_.others;
    return Entry{ctx_.universe->TotalWeight(in_c),
                 ctx_.universe->TotalWeight(in_u)};
  }

  DynamicBitset RetrieveWithout(TermId k) const {
    DynamicBitset out = ctx_.universe->FullSet();
    for (TermId t : query_) {
      if (t != k) out &= ctx_.universe->DocsWithTerm(t);
    }
    return out;
  }

  // (term, is_removal, value) of the best refinement step.
  std::tuple<TermId, bool, double> BestMove() const {
    TermId best_term = kInvalidTermId;
    bool best_removal = false;
    double best_value = 0.0;
    auto consider = [&](TermId term, bool removal, const Entry& e) {
      double v = e.value();
      if (v > best_value ||
          (v == best_value && best_term != kInvalidTermId &&
           term < best_term)) {
        best_value = v;
        best_term = term;
        best_removal = removal;
      }
    };
    for (const auto& [k, e] : add_entries_) consider(k, false, e);
    if (options_.allow_removal) {
      for (const auto& [k, e] : remove_entries_) consider(k, true, e);
    }
    return {best_term, best_removal, best_value};
  }

  void ApplyAddition(TermId k) {
    // Delta results: eliminated from R(q) by adding k.
    DynamicBitset delta = retrieved_;
    delta.AndNot(ctx_.universe->DocsWithTerm(k));
    retrieved_.AndNot(delta);
    query_.push_back(k);
    add_entries_.erase(k);
    RefreshAffected(delta);
    // The new member's removal entry is always fresh.
    remove_entries_[k] = ComputeRemoveEntry(k);
    ++recomputations_;
  }

  void ApplyRemoval(TermId k) {
    DynamicBitset new_retrieved = RetrieveWithout(k);
    DynamicBitset delta = new_retrieved;
    delta.AndNot(retrieved_);
    retrieved_ = std::move(new_retrieved);
    query_.erase(std::find(query_.begin(), query_.end(), k));
    remove_entries_.erase(k);
    RefreshAffected(delta);
    add_entries_[k] = ComputeAddEntry(k);
    ++recomputations_;
  }

  // Recomputes exactly the addition keywords that do not appear in all
  // delta results: for every other keyword the delta results change
  // nothing (Sec. 3, "Identifying Keywords with Affected Values"). The
  // rule is exact for additions only — a removal entry's delta results
  // D(k) = R(q\k) \ R(q) lie *outside* R(q), so refining q can change them
  // even when k appears in every delta result (e.g. the walkthrough's
  // removal of "job" after adding store and location). Removal entries are
  // few (|q| keywords), so they are simply recomputed every step.
  void RefreshAffected(const DynamicBitset& delta) {
    if (!delta.None()) {
      for (auto& [k, e] : add_entries_) {
        if (!delta.IsSubsetOf(ctx_.universe->DocsWithTerm(k))) {
          e = ComputeAddEntry(k);
          ++recomputations_;
        }
      }
    }
    for (auto& [k, e] : remove_entries_) {
      e = ComputeRemoveEntry(k);
      ++recomputations_;
    }
  }

  const ExpansionContext& ctx_;
  const IskrOptions& options_;
  std::vector<IskrStep>* trace_;
  std::vector<TermId> query_;
  DynamicBitset retrieved_;
  std::unordered_map<TermId, Entry> add_entries_;
  std::unordered_map<TermId, Entry> remove_entries_;
  size_t iterations_ = 0;
  size_t recomputations_ = 0;
  size_t additions_ = 0;
  size_t removals_ = 0;
};

}  // namespace

IskrExpander::IskrExpander(IskrOptions options) : options_(options) {}

ExpansionResult IskrExpander::Expand(const ExpansionContext& context) const {
  return ExpandWithTrace(context, nullptr);
}

ExpansionResult IskrExpander::ExpandWithTrace(
    const ExpansionContext& context, std::vector<IskrStep>* trace) const {
  QEC_CHECK(context.universe != nullptr);
  QEC_TRACE_SPAN("iskr/expand");
  IskrState state(context, options_, trace);
  return state.Run();
}

}  // namespace qec::core
