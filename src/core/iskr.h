#ifndef QEC_CORE_ISKR_H_
#define QEC_CORE_ISKR_H_

#include <cstddef>

#include "core/expansion_context.h"
#include "core/sweep_options.h"

namespace qec::core {

/// ISKR configuration.
struct IskrOptions {
  /// Safety cap on add/remove refinement steps (the benefit/cost heuristic
  /// can in principle cycle; the paper's stop rule alone does not bound it).
  size_t max_iterations = 200;
  /// Allow the removal step (Example 3.2). Disabling it yields the
  /// "add-only" ablation.
  bool allow_removal = true;
};

/// Iterative Single-Keyword Refinement (Sec. 3, Algorithm 1).
///
/// Starting from the user query, repeatedly applies the single best
/// keyword addition or removal, where the value of a keyword is its
/// benefit/cost ratio:
///   addition: benefit = S(R(q) ∩ U ∩ E(k)), cost = S(R(q) ∩ C ∩ E(k))
///   removal:  benefit = S(C ∩ D(k)),        cost = S(U ∩ D(k))
/// with E(k) the results lacking k and D(k) the delta results of removing
/// k. cost = 0 with positive benefit means a free improvement (value +∞);
/// benefit = cost = 0 means value 0. Stops when no keyword has value > 1.
///
/// One refinement step in an ISKR trace: the chosen keyword with the
/// benefit/cost/value it was chosen at (the rows of the paper's Example
/// 3.1 tables).
struct IskrStep {
  TermId keyword = kInvalidTermId;
  bool is_removal = false;
  double benefit = 0.0;
  double cost = 0.0;
  double value = 0.0;
  /// F-measure after applying the step.
  double f_measure_after = 0.0;
};

/// After each refinement only the keywords missing from at least one delta
/// result are recomputed — the incremental-maintenance property that makes
/// ISKR much faster than the delta-F-measure variant (Sec. 5.3).
class IskrExpander {
 public:
  /// `sweep` configures the candidate-sweep fan-out (SweepOptions is the
  /// shared knob across all three algorithms; default is serial).
  explicit IskrExpander(IskrOptions options = {}, SweepOptions sweep = {});

  /// Generates the expanded query for `context`'s cluster.
  ExpansionResult Expand(const ExpansionContext& context) const;

  /// Like Expand, but records every refinement step — the "explain" output
  /// used for debugging and for validating the paper's worked example.
  ExpansionResult ExpandWithTrace(const ExpansionContext& context,
                                  std::vector<IskrStep>* trace) const;

  const IskrOptions& options() const { return options_; }
  const SweepOptions& sweep_options() const { return sweep_; }

 private:
  IskrOptions options_;
  SweepOptions sweep_;
};

}  // namespace qec::core

#endif  // QEC_CORE_ISKR_H_
