#ifndef QEC_CORE_SWEEP_OPTIONS_H_
#define QEC_CORE_SWEEP_OPTIONS_H_

#include <cstddef>

namespace qec::core {

/// Shared configuration of the scatter-gather benefit/cost sweeps. All
/// three expansion algorithms (ISKR, PEBC, F-measure) fan their
/// per-candidate sweeps out over the same persistent common::SweepPool
/// under the same contract: each candidate's value is computed whole by
/// one work-stealing worker and merged in candidate-index order, so any
/// thread count is byte-identical to the serial sweep. One struct — set
/// once by the CLI/server wiring — replaces the formerly triplicated
/// IskrOptions/PebcOptions/FMeasureOptions::sweep_threads knobs.
struct SweepOptions {
  /// Workers per sweep: 1 = serial (never touches the pool), 0 = auto;
  /// values are clamped to the candidate count (ResolveThreadCount
  /// semantics, like QueryExpanderOptions::num_threads).
  size_t threads = 1;
};

}  // namespace qec::core

#endif  // QEC_CORE_SWEEP_OPTIONS_H_
