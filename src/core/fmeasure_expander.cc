#include "core/fmeasure_expander.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/small_vector.h"
#include "common/sweep_pool.h"
#include "common/threading.h"

namespace qec::core {

FMeasureExpander::FMeasureExpander(FMeasureOptions options, SweepOptions sweep)
    : options_(options), sweep_(sweep) {}

ExpansionResult FMeasureExpander::Expand(
    const ExpansionContext& context) const {
  QEC_CHECK(context.universe != nullptr);
  const ResultUniverse& universe = *context.universe;

  common::SmallVector<TermId, 16> query;
  query.assign(context.user_query.begin(), context.user_query.end());
  std::unordered_set<TermId> user_terms(context.user_query.begin(),
                                        context.user_query.end());
  // All working sets are arena leases: repeated expansions over one
  // universe run allocation-free once the arena is warm.
  auto retrieved = universe.AcquireScratch();
  auto best_retrieved = universe.AcquireScratch();
  auto base = universe.AcquireScratch();
  auto r = universe.AcquireScratch();
  universe.RetrieveInto(query, &*retrieved);
  double current_f =
      EvaluateQuery(universe, *retrieved, context.cluster).f_measure;

  size_t iterations = 0;
  size_t recomputations = 0;
  // Per-candidate sweep buffers, reused across iterations. uint8_t (not
  // vector<bool>) so concurrent workers can write distinct elements.
  std::vector<double> candidate_f;
  std::vector<uint8_t> evaluated;

  while (iterations < options_.max_iterations) {
    TermId best = kInvalidTermId;
    bool best_is_removal = false;
    double best_f = current_f;
    *best_retrieved = *retrieved;

    // Additions: every candidate not yet in the query. Each value is a
    // full evaluation of q ∪ {k} — the naive recomputation the paper
    // charges this method with (Sec. 3: "the value of every keyword needs
    // to be dynamically computed, and updated after every change to q"),
    // and the reason it is orders of magnitude slower than ISKR's
    // incremental maintenance (Fig. 6). R(q) is loop-invariant across the
    // candidate sweep, so it is retrieved once and each candidate costs a
    // single AND.
    universe.RetrieveInto(query, &*base);
    std::unordered_set<TermId> in_query(query.begin(), query.end());
    const size_t n = context.candidates.size();
    candidate_f.assign(n, -1.0);
    evaluated.assign(n, 0);
    const size_t threads = ResolveThreadCount(sweep_.threads, n);
    if (threads <= 1) {
      for (size_t i = 0; i < n; ++i) {
        TermId k = context.candidates[i];
        if (in_query.count(k) != 0) continue;
        evaluated[i] = 1;
        *r = *base;
        *r &= universe.DocsWithTerm(k);
        candidate_f[i] =
            EvaluateQuery(universe, *r, context.cluster).f_measure;
      }
    } else {
      // Scatter-gather: each candidate's delta-F is computed whole by one
      // work-stealing SweepPool worker (own scratch lease per worker),
      // then merged below in candidate-index order — byte-identical to
      // the serial sweep.
      std::atomic<size_t> next{0};
      common::SweepPool::Instance().Run(threads, [&] {
        auto rt = universe.AcquireScratch();
        for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          TermId k = context.candidates[i];
          if (in_query.count(k) != 0) continue;
          evaluated[i] = 1;
          *rt = *base;
          *rt &= universe.DocsWithTerm(k);
          candidate_f[i] =
              EvaluateQuery(universe, *rt, context.cluster).f_measure;
        }
      });
    }
    for (size_t i = 0; i < n; ++i) {
      if (evaluated[i] == 0) continue;
      ++recomputations;
      TermId k = context.candidates[i];
      double f = candidate_f[i];
      if (f > best_f || (f == best_f && best != kInvalidTermId && k < best &&
                         !best_is_removal)) {
        best_f = f;
        best = k;
        best_is_removal = false;
      }
    }
    if (best != kInvalidTermId && !best_is_removal) {
      *best_retrieved = *base;
      *best_retrieved &= universe.DocsWithTerm(best);
    }
    if (options_.allow_removal) {
      // Removals: every previously added keyword.
      for (TermId k : query) {
        if (user_terms.count(k) != 0) continue;
        ++recomputations;
        universe.RetrieveWithoutInto(query, k, &*r);
        double f = EvaluateQuery(universe, *r, context.cluster).f_measure;
        if (f > best_f) {
          best_f = f;
          best = k;
          best_is_removal = true;
          *best_retrieved = *r;
        }
      }
    }

    if (best == kInvalidTermId || best_f <= current_f) break;
    ++iterations;
    current_f = best_f;
    *retrieved = *best_retrieved;
    if (best_is_removal) {
      query.erase(std::find(query.begin(), query.end(), best));
    } else {
      query.push_back(best);
    }
  }

  ExpansionResult result;
  result.query.assign(query.begin(), query.end());
  result.quality = EvaluateQuery(universe, *retrieved, context.cluster);
  result.iterations = iterations;
  result.value_recomputations = recomputations;
  return result;
}

}  // namespace qec::core
