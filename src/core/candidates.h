#ifndef QEC_CORE_CANDIDATES_H_
#define QEC_CORE_CANDIDATES_H_

#include <vector>

#include "common/types.h"
#include "core/result_universe.h"
#include "index/inverted_index.h"

namespace qec::core {

/// Candidate-keyword selection knobs (Appendix C: "we consider the
/// top-20% words in the results in terms of tfidf for query expansion").
struct CandidateOptions {
  /// Fraction of the universe's distinct terms kept, by TF-IDF.
  double fraction = 0.2;
  /// Hard cap on the number of candidates (0 = no cap).
  size_t max_candidates = 0;
  /// Drop terms contained in every universe result: they can never
  /// eliminate anything, so they are dead weight for the algorithms.
  bool drop_universal_terms = true;
};

/// Selects expansion candidates from the universe's distinct terms, scored
/// by total term frequency within the results times global IDF, excluding
/// the user-query terms. Returned sorted by descending score.
std::vector<TermId> SelectCandidates(const ResultUniverse& universe,
                                     const index::InvertedIndex& index,
                                     const std::vector<TermId>& user_query,
                                     const CandidateOptions& options = {});

}  // namespace qec::core

#endif  // QEC_CORE_CANDIDATES_H_
