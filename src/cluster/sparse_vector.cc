#include "cluster/sparse_vector.h"

#include <algorithm>
#include <cmath>

namespace qec::cluster {

SparseVector::SparseVector(std::vector<std::pair<TermId, double>> entries) {
  entries_.assign(entries.begin(), entries.end());
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Merge duplicates and drop explicit zeros.
  size_t out = 0;
  for (size_t i = 0; i < entries_.size();) {
    TermId t = entries_[i].first;
    double sum = 0.0;
    while (i < entries_.size() && entries_[i].first == t) {
      sum += entries_[i].second;
      ++i;
    }
    if (sum != 0.0) entries_[out++] = {t, sum};
  }
  entries_.resize(out);
}

SparseVector SparseVector::FromDocument(const doc::Document& document) {
  SparseVector v;
  v.entries_.reserve(document.term_set().size());
  for (TermId t : document.term_set()) {
    // term_set() is sorted & unique, so entries_ stays sorted.
    v.entries_.emplace_back(t, static_cast<double>(document.TermFrequency(t)));
  }
  return v;
}

double SparseVector::Get(TermId term) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const auto& e, TermId t) { return e.first < t; });
  if (it == entries_.end() || it->first != term) return 0.0;
  return it->second;
}

double SparseVector::Dot(const SparseVector& other) const {
  double sum = 0.0;
  size_t a = 0, b = 0;
  while (a < entries_.size() && b < other.entries_.size()) {
    if (entries_[a].first < other.entries_[b].first) {
      ++a;
    } else if (other.entries_[b].first < entries_[a].first) {
      ++b;
    } else {
      sum += entries_[a].second * other.entries_[b].second;
      ++a;
      ++b;
    }
  }
  return sum;
}

double SparseVector::Norm() const {
  double sq = 0.0;
  for (const auto& [t, w] : entries_) sq += w * w;
  return std::sqrt(sq);
}

double SparseVector::Cosine(const SparseVector& other) const {
  double na = Norm();
  double nb = other.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(other) / (na * nb);
}

void SparseVector::AddScaled(const SparseVector& other, double scale) {
  EntryList merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t a = 0, b = 0;
  while (a < entries_.size() || b < other.entries_.size()) {
    if (b >= other.entries_.size() ||
        (a < entries_.size() && entries_[a].first < other.entries_[b].first)) {
      merged.push_back(entries_[a++]);
    } else if (a >= entries_.size() ||
               other.entries_[b].first < entries_[a].first) {
      merged.emplace_back(other.entries_[b].first,
                          scale * other.entries_[b].second);
      ++b;
    } else {
      double w = entries_[a].second + scale * other.entries_[b].second;
      if (w != 0.0) merged.emplace_back(entries_[a].first, w);
      ++a;
      ++b;
    }
  }
  entries_ = std::move(merged);
}

void SparseVector::Scale(double scale) {
  for (auto& [t, w] : entries_) w *= scale;
}

void SparseVector::Normalize() {
  double n = Norm();
  if (n > 0.0) Scale(1.0 / n);
}

}  // namespace qec::cluster
