#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qec::cluster {

std::vector<std::vector<size_t>> Clustering::Members() const {
  std::vector<std::vector<size_t>> members(num_clusters);
  for (size_t i = 0; i < assignment.size(); ++i) {
    QEC_CHECK_GE(assignment[i], 0);
    QEC_CHECK_LT(static_cast<size_t>(assignment[i]), num_clusters);
    members[static_cast<size_t>(assignment[i])].push_back(i);
  }
  return members;
}

KMeans::KMeans(KMeansOptions options) : options_(options) {}

namespace {

double CosineDistance(const SparseVector& a, const SparseVector& b) {
  return 1.0 - a.Cosine(b);
}

// k-means++ seeding: first centroid uniform, subsequent proportional to
// squared distance to the nearest chosen centroid.
std::vector<size_t> SeedPlusPlus(const std::vector<SparseVector>& points,
                                 size_t k, Rng& rng) {
  std::vector<size_t> seeds;
  seeds.push_back(static_cast<size_t>(rng.UniformInt(points.size())));
  std::vector<double> best_dist(points.size(),
                                std::numeric_limits<double>::infinity());
  while (seeds.size() < k) {
    const SparseVector& last = points[seeds.back()];
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      double d = CosineDistance(points[i], last);
      best_dist[i] = std::min(best_dist[i], d * d);
      total += best_dist[i];
    }
    if (total <= 0.0) {
      // All points coincide with some centroid; pick any unused point.
      size_t next = seeds.size() % points.size();
      seeds.push_back(next);
      continue;
    }
    double target = rng.UniformDouble() * total;
    size_t chosen = points.size() - 1;
    double acc = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      acc += best_dist[i];
      if (acc >= target) {
        chosen = i;
        break;
      }
    }
    seeds.push_back(chosen);
  }
  return seeds;
}

}  // namespace

Clustering KMeans::Cluster(const std::vector<SparseVector>& points) const {
  QEC_TRACE_SPAN("cluster/kmeans");
  QEC_COUNTER_INC("cluster/kmeans_runs");
  const size_t n = points.size();
  const size_t k_max = std::min(options_.k == 0 ? size_t{1} : options_.k, n);
  if (!options_.auto_k || n <= 2 || k_max <= 1) {
    return ClusterWithK(points, k_max);
  }
  // Try every k up to the bound and keep the best mean silhouette. Ties and
  // the all-neutral case prefer the smaller k.
  Clustering best = ClusterWithK(points, 1);
  double best_score = 0.0;  // k = 1 is the neutral baseline
  for (size_t k = 2; k <= k_max; ++k) {
    Clustering candidate = ClusterWithK(points, k);
    if (candidate.num_clusters < 2) continue;
    double score = MeanSilhouette(points, candidate);
    if (score > best_score + 1e-12) {
      best_score = score;
      best = std::move(candidate);
    }
  }
  return best;
}

Clustering KMeans::ClusterWithK(const std::vector<SparseVector>& points,
                                size_t k_arg) const {
  Clustering result;
  const size_t n = points.size();
  result.assignment.assign(n, 0);
  if (n == 0) return result;

  const size_t k = std::min(k_arg == 0 ? size_t{1} : k_arg, n);
  if (k == 1) {
    result.num_clusters = 1;
    return result;
  }
  if (k == n) {
    for (size_t i = 0; i < n; ++i) result.assignment[i] = static_cast<int>(i);
    result.num_clusters = n;
    return result;
  }

  Rng rng(options_.seed);
  std::vector<size_t> seeds = SeedPlusPlus(points, k, rng);
  std::vector<SparseVector> centroids;
  centroids.reserve(k);
  for (size_t s : seeds) {
    SparseVector c = points[s];
    c.Normalize();
    centroids.push_back(std::move(c));
  }

  std::vector<int> assignment(n, -1);
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    QEC_COUNTER_INC("cluster/kmeans_iterations");
    bool changed = false;
    // Assignment step.
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < centroids.size(); ++c) {
        double d = CosineDistance(points[i], centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update step: centroid = normalized sum of members.
    std::vector<SparseVector> next(centroids.size());
    std::vector<size_t> counts(centroids.size(), 0);
    for (size_t i = 0; i < n; ++i) {
      size_t c = static_cast<size_t>(assignment[i]);
      next[c].AddScaled(points[i], 1.0);
      counts[c]++;
    }
    for (size_t c = 0; c < next.size(); ++c) {
      if (counts[c] == 0) {
        next[c] = centroids[c];  // keep empty centroid; compacted later
      } else {
        next[c].Normalize();
      }
    }
    centroids = std::move(next);
  }

  // Compact away empty clusters so labels are dense.
  std::vector<int> remap(centroids.size(), -1);
  int next_label = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(assignment[i]);
    if (remap[c] == -1) remap[c] = next_label++;
  }
  for (size_t i = 0; i < n; ++i) {
    result.assignment[i] = remap[static_cast<size_t>(assignment[i])];
  }
  result.num_clusters = static_cast<size_t>(next_label);
  return result;
}

double MeanSilhouette(const std::vector<SparseVector>& points,
                      const Clustering& clustering) {
  const size_t n = points.size();
  if (n == 0 || clustering.num_clusters < 2) return 0.0;
  const size_t k = clustering.num_clusters;

  std::vector<size_t> cluster_size(k, 0);
  for (int a : clustering.assignment) {
    cluster_size[static_cast<size_t>(a)]++;
  }

  double total = 0.0;
  // For each point, mean distance to every cluster (own cluster excludes
  // the point itself).
  for (size_t i = 0; i < n; ++i) {
    const size_t own = static_cast<size_t>(clustering.assignment[i]);
    if (cluster_size[own] <= 1) continue;  // singleton scores 0
    std::vector<double> dist_sum(k, 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dist_sum[static_cast<size_t>(clustering.assignment[j])] +=
          CosineDistance(points[i], points[j]);
    }
    const double a =
        dist_sum[own] / static_cast<double>(cluster_size[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      if (c == own || cluster_size[c] == 0) continue;
      b = std::min(b, dist_sum[c] / static_cast<double>(cluster_size[c]));
    }
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

}  // namespace qec::cluster
