#ifndef QEC_CLUSTER_KMEANS_H_
#define QEC_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "cluster/sparse_vector.h"
#include "common/types.h"

namespace qec::cluster {

/// k-means configuration. `k` is an *upper bound* on the number of
/// clusters (the paper's user-specified granularity): empty clusters are
/// dropped, so the output may have fewer.
struct KMeansOptions {
  /// Maximum number of clusters.
  size_t k = 5;
  /// Iteration cap for the assign/update loop.
  size_t max_iterations = 50;
  /// PRNG seed for k-means++ seeding.
  uint64_t seed = 42;
  /// When true, cluster for every k in [1, k] and keep the k with the best
  /// mean silhouette score (k=1 scores a neutral 0, chosen only when no
  /// multi-cluster split beats it). This honours the paper's reading of k
  /// as a user-specified *upper bound* on granularity: 25 canon products in
  /// 4 natural groups should yield 4 clusters, not a forced 5-way split.
  bool auto_k = false;
};

/// Result of clustering `n` points into `num_clusters` groups.
struct Clustering {
  /// assignment[i] in [0, num_clusters) for each input point i.
  std::vector<int> assignment;
  size_t num_clusters = 0;

  /// Indices of the points in each cluster.
  std::vector<std::vector<size_t>> Members() const;
};

/// Spherical k-means over cosine distance (1 - cosine similarity), with
/// k-means++ seeding. This is the result-clustering substrate the paper
/// prescribes ("we adopt k-means for result clustering", Appendix C).
class KMeans {
 public:
  explicit KMeans(KMeansOptions options = {});

  /// Clusters `points`. Deterministic for a fixed seed. Handles k >= n by
  /// putting each point in its own cluster. Empty clusters are compacted
  /// away so cluster labels are dense.
  Clustering Cluster(const std::vector<SparseVector>& points) const;

  const KMeansOptions& options() const { return options_; }

 private:
  Clustering ClusterWithK(const std::vector<SparseVector>& points,
                          size_t k) const;

  KMeansOptions options_;
};

/// Mean silhouette coefficient of `clustering` over `points` under cosine
/// distance, in [-1, 1]. Points in singleton clusters score 0; a
/// single-cluster clustering scores 0 (neutral).
double MeanSilhouette(const std::vector<SparseVector>& points,
                      const Clustering& clustering);

}  // namespace qec::cluster

#endif  // QEC_CLUSTER_KMEANS_H_
