#include "cluster/hac.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qec::cluster {

Hac::Hac(HacOptions options) : options_(options) {}

namespace {

/// Dense average-link agglomeration state over an n x n dissimilarity
/// matrix, with Lance-Williams updates:
///   d(A∪B, C) = (|A| d(A,C) + |B| d(B,C)) / (|A| + |B|).
class Agglomerator {
 public:
  explicit Agglomerator(const std::vector<SparseVector>& points)
      : n_(points.size()),
        active_(n_, true),
        active_count_(n_),
        size_(n_, 1),
        dist_(n_ * n_, 0.0) {
    for (size_t i = 0; i < n_; ++i) {
      for (size_t j = i + 1; j < n_; ++j) {
        double d = 1.0 - points[i].Cosine(points[j]);
        dist_[i * n_ + j] = d;
        dist_[j * n_ + i] = d;
      }
    }
    // members_[c] = point indices currently in cluster c.
    members_.resize(n_);
    for (size_t i = 0; i < n_; ++i) members_[i] = {i};
  }

  size_t num_active() const { return active_count_; }

  /// Merges the closest active pair. Returns false when fewer than two
  /// clusters remain.
  bool MergeClosest() {
    if (active_count_ < 2) return false;
    QEC_COUNTER_INC("cluster/hac_merges");
    size_t best_a = 0, best_b = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < n_; ++a) {
      if (!active_[a]) continue;
      for (size_t b = a + 1; b < n_; ++b) {
        if (!active_[b]) continue;
        double d = dist_[a * n_ + b];
        if (d < best_d) {
          best_d = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    // Merge best_b into best_a.
    const double wa = static_cast<double>(size_[best_a]);
    const double wb = static_cast<double>(size_[best_b]);
    for (size_t c = 0; c < n_; ++c) {
      if (!active_[c] || c == best_a || c == best_b) continue;
      double d = (wa * dist_[best_a * n_ + c] + wb * dist_[best_b * n_ + c]) /
                 (wa + wb);
      dist_[best_a * n_ + c] = d;
      dist_[c * n_ + best_a] = d;
    }
    size_[best_a] += size_[best_b];
    active_[best_b] = false;
    --active_count_;
    members_[best_a].insert(members_[best_a].end(), members_[best_b].begin(),
                            members_[best_b].end());
    members_[best_b].clear();
    return true;
  }

  /// Current assignment with dense labels.
  Clustering Snapshot() const {
    Clustering out;
    out.assignment.assign(n_, 0);
    int next = 0;
    for (size_t c = 0; c < n_; ++c) {
      if (!active_[c]) continue;
      for (size_t i : members_[c]) out.assignment[i] = next;
      ++next;
    }
    out.num_clusters = static_cast<size_t>(next);
    return out;
  }

 private:
  size_t n_;
  std::vector<bool> active_;
  size_t active_count_;
  std::vector<size_t> size_;
  std::vector<double> dist_;
  std::vector<std::vector<size_t>> members_;
};

}  // namespace

Clustering Hac::CutAt(const std::vector<SparseVector>& points,
                      size_t k) const {
  Clustering result;
  const size_t n = points.size();
  if (n == 0) {
    return result;
  }
  Agglomerator agg(points);
  while (agg.num_active() > std::max<size_t>(1, k)) {
    if (!agg.MergeClosest()) break;
  }
  return agg.Snapshot();
}

Clustering Hac::Cluster(const std::vector<SparseVector>& points) const {
  QEC_TRACE_SPAN("cluster/hac");
  QEC_COUNTER_INC("cluster/hac_runs");
  const size_t n = points.size();
  const size_t k_max = std::min(options_.k == 0 ? size_t{1} : options_.k,
                                std::max<size_t>(n, 1));
  if (!options_.auto_k || n <= 2 || k_max <= 1) {
    return CutAt(points, k_max);
  }
  // One agglomeration pass, evaluating the silhouette at every cut ≤ k_max.
  Agglomerator agg(points);
  while (agg.num_active() > k_max) {
    if (!agg.MergeClosest()) break;
  }
  Clustering best = agg.Snapshot();
  double best_score = best.num_clusters >= 2 ? MeanSilhouette(points, best)
                                             : 0.0;
  while (agg.num_active() > 2) {
    if (!agg.MergeClosest()) break;
    Clustering cut = agg.Snapshot();
    double score = MeanSilhouette(points, cut);
    if (score > best_score + 1e-12) {
      best_score = score;
      best = std::move(cut);
    }
  }
  // The single-cluster cut is the neutral baseline.
  if (best_score <= 0.0) {
    Clustering one;
    one.assignment.assign(n, 0);
    one.num_clusters = 1;
    return one;
  }
  return best;
}

Clustering SelectBestClustering(const std::vector<SparseVector>& points,
                                size_t k_max, uint64_t seed,
                                ClusteringMethod* chosen) {
  KMeansOptions kopts;
  kopts.k = k_max;
  kopts.seed = seed;
  kopts.auto_k = true;
  Clustering kmeans = KMeans(kopts).Cluster(points);

  HacOptions hopts;
  hopts.k = k_max;
  hopts.auto_k = true;
  Clustering hac = Hac(hopts).Cluster(points);

  const double kmeans_score =
      kmeans.num_clusters >= 2 ? MeanSilhouette(points, kmeans) : 0.0;
  const double hac_score =
      hac.num_clusters >= 2 ? MeanSilhouette(points, hac) : 0.0;
  if (hac_score > kmeans_score) {
    if (chosen != nullptr) *chosen = ClusteringMethod::kHac;
    return hac;
  }
  if (chosen != nullptr) *chosen = ClusteringMethod::kKMeans;
  return kmeans;
}

}  // namespace qec::cluster
