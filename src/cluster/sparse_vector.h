#ifndef QEC_CLUSTER_SPARSE_VECTOR_H_
#define QEC_CLUSTER_SPARSE_VECTOR_H_

#include <utility>
#include <vector>

#include "common/small_vector.h"
#include "common/types.h"
#include "doc/document.h"

namespace qec::cluster {

/// Sparse feature vector over TermIds, kept sorted by term. Used as the
/// vector-space representation of query results for clustering: per the
/// paper (Appendix C) each result is a vector whose components are the
/// result's features weighted by term frequency, compared by cosine
/// similarity.
class SparseVector {
 public:
  /// Sparse TF entries, sorted by term. Small-size-optimized: short
  /// documents and centroid deltas (the common case in per-request
  /// clustering) keep their entries inline instead of heap-allocating a
  /// vector per result.
  using EntryList = common::SmallVector<std::pair<TermId, double>, 8>;

  SparseVector() = default;

  /// Builds from unsorted (term, weight) pairs; duplicate terms are summed.
  explicit SparseVector(std::vector<std::pair<TermId, double>> entries);

  /// TF vector of a document (weight = term frequency).
  static SparseVector FromDocument(const doc::Document& document);

  const EntryList& entries() const { return entries_; }

  size_t NumNonZero() const { return entries_.size(); }
  bool IsZero() const { return entries_.empty(); }

  /// Weight of `term` (0 when absent).
  double Get(TermId term) const;

  /// Dot product with another sparse vector.
  double Dot(const SparseVector& other) const;

  /// Euclidean (L2) norm.
  double Norm() const;

  /// Cosine similarity in [0, 1] for non-negative vectors; 0 when either
  /// vector is zero.
  double Cosine(const SparseVector& other) const;

  /// this += scale * other.
  void AddScaled(const SparseVector& other, double scale);

  /// Multiplies every weight by `scale`.
  void Scale(double scale);

  /// Scales to unit norm (no-op for the zero vector).
  void Normalize();

 private:
  EntryList entries_;  // sorted by TermId
};

}  // namespace qec::cluster

#endif  // QEC_CLUSTER_SPARSE_VECTOR_H_
