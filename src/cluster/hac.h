#ifndef QEC_CLUSTER_HAC_H_
#define QEC_CLUSTER_HAC_H_

#include <cstddef>

#include "cluster/kmeans.h"
#include "cluster/sparse_vector.h"

namespace qec::cluster {

/// HAC configuration. Like k-means, `k` is an upper bound when `auto_k`
/// is set: the dendrogram cut is chosen by mean silhouette.
struct HacOptions {
  size_t k = 5;
  bool auto_k = false;
};

/// Average-link hierarchical agglomerative clustering under cosine
/// distance (Lance-Williams updates on a dense dissimilarity matrix,
/// O(n^2) memory — intended for result-list-sized inputs). One of the
/// alternative clustering methods the paper's future work asks about
/// ("investigate how different clustering methods affect the expanded
/// queries").
class Hac {
 public:
  explicit Hac(HacOptions options = {});

  /// Clusters `points` by merging the closest pair until `k` clusters
  /// remain (or, with auto_k, cutting at the silhouette-best level ≤ k).
  Clustering Cluster(const std::vector<SparseVector>& points) const;

  const HacOptions& options() const { return options_; }

 private:
  Clustering CutAt(const std::vector<SparseVector>& points, size_t k) const;

  HacOptions options_;
};

/// The clustering methods the engine can choose among.
enum class ClusteringMethod { kKMeans, kHac };

/// Future-work prototype (Sec. 7: "design techniques for choosing the best
/// clustering method dynamically"): runs every method with `k_max` as the
/// bound and returns the clustering with the highest mean silhouette.
/// `chosen` (optional out) reports which method won.
Clustering SelectBestClustering(const std::vector<SparseVector>& points,
                                size_t k_max, uint64_t seed,
                                ClusteringMethod* chosen = nullptr);

}  // namespace qec::cluster

#endif  // QEC_CLUSTER_HAC_H_
