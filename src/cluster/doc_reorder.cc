#include "cluster/doc_reorder.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qec::cluster {

namespace {

/// Dominant term of a document: highest TF, ties toward the smallest
/// TermId. kInvalidTermId for empty documents.
TermId DominantTerm(const doc::Document& d) {
  TermId best = kInvalidTermId;
  int best_tf = 0;
  for (TermId t : d.term_set()) {
    int tf = d.TermFrequency(t);
    if (tf > best_tf || (tf == best_tf && best != kInvalidTermId && t < best)) {
      best_tf = tf;
      best = t;
    }
  }
  return best;
}

}  // namespace

std::vector<DocId> ComputeClusterOrder(const doc::Corpus& corpus,
                                       const DocReorderOptions& options) {
  QEC_TRACE_SPAN("cluster/doc_reorder");
  const size_t n = corpus.NumDocs();
  std::vector<TermId> signature(n, kInvalidTermId);
  std::unordered_map<TermId, size_t> bucket_docs;
  for (DocId d = 0; d < n; ++d) {
    TermId s = DominantTerm(corpus.Get(d));
    signature[d] = s;
    if (s != kInvalidTermId) ++bucket_docs[s];
  }

  // Docs in real buckets sort by (signature, original id); singleton-ish
  // buckets and empty docs keep their relative input order at the end.
  std::vector<DocId> order(n);
  for (DocId d = 0; d < n; ++d) order[d] = d;
  auto bucketed = [&](DocId d) {
    TermId s = signature[d];
    if (s == kInvalidTermId) return false;
    return bucket_docs[s] >= options.min_bucket_docs;
  };
  std::sort(order.begin(), order.end(), [&](DocId a, DocId b) {
    const bool ba = bucketed(a);
    const bool bb = bucketed(b);
    if (ba != bb) return ba;
    if (ba && signature[a] != signature[b]) return signature[a] < signature[b];
    return a < b;
  });
  QEC_COUNTER_INC("cluster/reorder_runs");
  return order;
}

doc::Corpus ReorderCorpus(const doc::Corpus& corpus,
                          const std::vector<DocId>& order) {
  QEC_TRACE_SPAN("cluster/reorder_corpus");
  const size_t n = corpus.NumDocs();
  QEC_CHECK_EQ(order.size(), n);
  std::vector<uint8_t> seen(n, 0);
  for (DocId d : order) {
    QEC_CHECK_LT(d, n);
    QEC_CHECK(seen[d] == 0);
    seen[d] = 1;
  }

  doc::Corpus out(corpus.analyzer().options());
  const text::Vocabulary& vocab = corpus.analyzer().vocabulary();
  out.analyzer().vocabulary().Reserve(vocab.size());
  // Re-intern in id order: TermIds in the reordered corpus are identical
  // to the input corpus's, which is what keeps expansion over a reordered
  // snapshot byte-identical to the unpermuted path.
  for (TermId t = 0; t < vocab.size(); ++t) {
    TermId got = out.analyzer().InternVerbatim(vocab.TermString(t));
    QEC_CHECK_EQ(got, t);
  }
  for (DocId src : order) {
    const doc::Document& d = corpus.Get(src);
    out.RestoreDocument(d.kind(), d.title(), d.terms(), d.features());
  }
  return out;
}

bool IsIdentityOrder(const std::vector<DocId>& order) {
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i) return false;
  }
  return true;
}

}  // namespace qec::cluster
