#ifndef QEC_CLUSTER_DOC_REORDER_H_
#define QEC_CLUSTER_DOC_REORDER_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "doc/corpus.h"

namespace qec::cluster {

/// Cluster-aware doc-id reordering ("Faster Exact Search using Document
/// Clustering", Dimond & Sanders): permute doc ids so same-cluster
/// documents get contiguous ids. Posting lists then compress better under
/// the delta + varbyte codec (small gaps inside a cluster's id run) and
/// result bitsets become dense runs that the fused popcount kernels and
/// the sharded benefit/cost sweeps skip over wholesale.
///
/// The permutation is purely an internal renumbering: the reordered corpus
/// holds the same documents with identical TermIds, and snapshots persist
/// the mapping (QECSNAP `PERM` section) so external doc ids map back.
struct DocReorderOptions {
  /// Documents are bucketed by a content signature — the dominant
  /// (highest-TF, ties toward the smallest TermId) term of each document.
  /// Documents sharing a topic share a dominant term, so topical clusters
  /// land in contiguous id runs without a full clustering pass; the cost
  /// is one scan over the corpus plus a sort, which scales to tens of
  /// millions of documents.
  ///
  /// Documents whose dominant term's document frequency is at or below
  /// this floor keep their relative input order at the end instead of
  /// forming singleton buckets (no compression to win there).
  size_t min_bucket_docs = 2;
};

/// Computes a cluster-aware ordering of `corpus`: order[i] is the current
/// doc id that should get the new internal id i. The result is always a
/// valid permutation of [0, NumDocs).
std::vector<DocId> ComputeClusterOrder(const doc::Corpus& corpus,
                                       const DocReorderOptions& options = {});

/// Materializes a corpus whose document i is `corpus`'s document order[i].
/// The vocabulary is re-interned in id order, so every TermId — and hence
/// every analyzed query, candidate selection, and tie-break on term ids —
/// is identical to the input corpus's. `order` must be a permutation of
/// [0, NumDocs).
doc::Corpus ReorderCorpus(const doc::Corpus& corpus,
                          const std::vector<DocId>& order);

/// True when `order` is the identity permutation.
bool IsIdentityOrder(const std::vector<DocId>& order);

}  // namespace qec::cluster

#endif  // QEC_CLUSTER_DOC_REORDER_H_
