#include "storage/snapshot.h"

#include <cstdio>
#include <utility>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "index/posting_codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qec::storage {

namespace {

constexpr size_t kHeaderSize = 12;  // magic (8) + version u32
constexpr size_t kFooterSize = 20;  // toc_offset u64 + toc_crc u32 + magic

uint64_t ElapsedNs(const Stopwatch& watch) {
  return static_cast<uint64_t>(watch.ElapsedSeconds() * 1e9);
}

// ------------------------------------------------------- section payloads

std::string EncodeMetaSection(const doc::Corpus& corpus) {
  const text::AnalyzerOptions& a = corpus.analyzer().options();
  BinaryWriter w;
  w.U8(a.tokenizer.lowercase ? 1 : 0);
  w.U8(a.tokenizer.keep_numbers ? 1 : 0);
  w.U32(static_cast<uint32_t>(a.tokenizer.min_token_length));
  w.Str(a.tokenizer.intra_token_chars);
  w.U8(a.remove_stopwords ? 1 : 0);
  w.U8(a.stem ? 1 : 0);
  return w.Take();
}

std::string EncodeVocabSection(const doc::Corpus& corpus) {
  const text::Vocabulary& vocab = corpus.analyzer().vocabulary();
  BinaryWriter w;
  w.U32(static_cast<uint32_t>(vocab.size()));
  // Id order, so re-interning on load restores identical TermIds.
  for (TermId t = 0; t < vocab.size(); ++t) w.Str(vocab.TermString(t));
  return w.Take();
}

std::string EncodeDocsSection(const doc::Corpus& corpus) {
  BinaryWriter w;
  w.U32(static_cast<uint32_t>(corpus.NumDocs()));
  for (DocId d = 0; d < corpus.NumDocs(); ++d) {
    const doc::Document& document = corpus.Get(d);
    w.U8(document.kind() == doc::DocumentKind::kStructured ? 1 : 0);
    w.Str(document.title());
    w.U32(static_cast<uint32_t>(document.terms().size()));
    for (TermId t : document.terms()) w.U32(t);
    w.U32(static_cast<uint32_t>(document.features().size()));
    for (const doc::Feature& f : document.features()) {
      w.Str(f.entity);
      w.Str(f.attribute);
      w.Str(f.value);
    }
  }
  return w.Take();
}

std::string EncodePermSection(const std::vector<DocId>& external_ids) {
  BinaryWriter w;
  w.U32(static_cast<uint32_t>(external_ids.size()));
  for (DocId d : external_ids) w.U32(d);
  return w.Take();
}

std::string EncodeStatsSection(const doc::CorpusStats& stats) {
  BinaryWriter w;
  w.U64(stats.num_docs);
  w.U64(stats.num_distinct_terms);
  w.U64(stats.total_term_occurrences);
  w.F64(stats.avg_doc_length);
  return w.Take();
}

std::string EncodeIndexSection(const index::InvertedIndex& index) {
  // Same body as index::SerializeIndex sans magic: the delta + varbyte
  // posting codec is the storage format for posting lists.
  std::string out;
  const size_t num_terms = index.corpus().analyzer().vocabulary().size();
  index::AppendVarint(num_terms, out);
  for (TermId t = 0; t < num_terms; ++t) {
    std::string blob = index::EncodePostings(index.Postings(t));
    index::AppendVarint(blob.size(), out);
    out += blob;
  }
  return out;
}

Result<text::AnalyzerOptions> DecodeMetaSection(std::string_view payload) {
  BinaryReader r(payload, "snapshot META section");
  text::AnalyzerOptions options;
  uint8_t flag = 0;
  uint32_t u = 0;
  QEC_RETURN_IF_ERROR(r.U8(flag));
  options.tokenizer.lowercase = flag != 0;
  QEC_RETURN_IF_ERROR(r.U8(flag));
  options.tokenizer.keep_numbers = flag != 0;
  QEC_RETURN_IF_ERROR(r.U32(u));
  options.tokenizer.min_token_length = u;
  QEC_RETURN_IF_ERROR(r.Str(options.tokenizer.intra_token_chars));
  QEC_RETURN_IF_ERROR(r.U8(flag));
  options.remove_stopwords = flag != 0;
  QEC_RETURN_IF_ERROR(r.U8(flag));
  options.stem = flag != 0;
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in snapshot META section");
  }
  return options;
}

}  // namespace

// ----------------------------------------------------------------- write

std::string SerializeSnapshot(const index::InvertedIndex& index) {
  return SerializeSnapshot(index, {});
}

std::string SerializeSnapshot(const index::InvertedIndex& index,
                              const std::vector<DocId>& external_ids) {
  QEC_TRACE_SPAN("storage/serialize_snapshot");
  Stopwatch watch;
  const doc::Corpus& corpus = index.corpus();

  std::vector<std::pair<std::string_view, std::string>> payloads;
  payloads.emplace_back(kSectionMeta, EncodeMetaSection(corpus));
  payloads.emplace_back(kSectionVocab, EncodeVocabSection(corpus));
  payloads.emplace_back(kSectionDocs, EncodeDocsSection(corpus));
  payloads.emplace_back(kSectionStats, EncodeStatsSection(corpus.Stats()));
  payloads.emplace_back(kSectionIndex, EncodeIndexSection(index));
  if (!external_ids.empty()) {
    QEC_CHECK_EQ(external_ids.size(), corpus.NumDocs());
    payloads.emplace_back(kSectionPerm, EncodePermSection(external_ids));
  }

  BinaryWriter w;
  w.Raw(kSnapshotMagic);
  w.U32(kSnapshotFormatVersion);

  std::vector<SectionInfo> toc;
  for (const auto& [id, payload] : payloads) {
    SectionInfo info;
    info.id = id;
    info.offset = w.size();
    info.length = payload.size();
    info.crc32 = Crc32(payload);
    toc.push_back(std::move(info));
    w.Raw(payload);
  }

  const uint64_t toc_offset = w.size();
  BinaryWriter toc_writer;
  toc_writer.U32(static_cast<uint32_t>(toc.size()));
  for (const SectionInfo& info : toc) {
    toc_writer.Raw(info.id);
    toc_writer.U64(info.offset);
    toc_writer.U64(info.length);
    toc_writer.U32(info.crc32);
  }
  std::string toc_bytes = toc_writer.Take();
  w.Raw(toc_bytes);
  w.U64(toc_offset);
  w.U32(Crc32(toc_bytes));
  w.Raw(kSnapshotFooterMagic);

  std::string blob = w.Take();
  QEC_COUNTER_INC("storage/snapshot_writes");
  QEC_COUNTER_ADD("storage/snapshot_write_bytes", blob.size());
  QEC_HISTOGRAM_RECORD("storage/snapshot_write_ns", ElapsedNs(watch));
  return blob;
}

Status WriteSnapshot(const index::InvertedIndex& index,
                     const std::string& path) {
  return WriteSnapshot(index, {}, path);
}

Status WriteSnapshot(const index::InvertedIndex& index,
                     const std::vector<DocId>& external_ids,
                     const std::string& path) {
  std::string blob = SerializeSnapshot(index, external_ids);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  if (std::fwrite(blob.data(), 1, blob.size(), f.get()) != blob.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::Ok();
}

// ------------------------------------------------------------------ open

Result<SnapshotReader> SnapshotReader::Open(std::string_view data) {
  if (data.size() < kHeaderSize + kFooterSize) {
    return Status::Corruption("snapshot smaller than header + footer");
  }
  if (data.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return Status::Corruption("bad snapshot magic");
  }
  if (data.substr(data.size() - kSnapshotFooterMagic.size()) !=
      kSnapshotFooterMagic) {
    return Status::Corruption("bad snapshot footer magic");
  }

  SnapshotReader reader(data);
  {
    BinaryReader header(data.substr(kSnapshotMagic.size(), 4),
                        "snapshot header");
    QEC_RETURN_IF_ERROR(header.U32(reader.version_));
  }
  if (reader.version_ != kSnapshotFormatVersion) {
    return Status::Corruption(
        "unsupported snapshot format version " +
        std::to_string(reader.version_) + " (reader supports version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }

  const size_t footer_start = data.size() - kFooterSize;
  BinaryReader footer(data.substr(footer_start, 12), "snapshot footer");
  uint64_t toc_offset = 0;
  uint32_t toc_crc = 0;
  QEC_RETURN_IF_ERROR(footer.U64(toc_offset));
  QEC_RETURN_IF_ERROR(footer.U32(toc_crc));
  if (toc_offset < kHeaderSize || toc_offset > footer_start) {
    return Status::Corruption("snapshot TOC offset out of bounds");
  }
  std::string_view toc_bytes =
      data.substr(toc_offset, footer_start - toc_offset);
  if (Crc32(toc_bytes) != toc_crc) {
    return Status::Corruption("snapshot TOC checksum mismatch");
  }

  BinaryReader toc(toc_bytes, "snapshot TOC");
  uint32_t count = 0;
  QEC_RETURN_IF_ERROR(toc.U32(count));
  if (count > toc_bytes.size()) {
    return Status::Corruption("implausible snapshot section count");
  }
  for (uint32_t i = 0; i < count; ++i) {
    SectionInfo info;
    for (int c = 0; c < 4; ++c) {
      uint8_t byte = 0;
      QEC_RETURN_IF_ERROR(toc.U8(byte));
      info.id.push_back(static_cast<char>(byte));
    }
    QEC_RETURN_IF_ERROR(toc.U64(info.offset));
    QEC_RETURN_IF_ERROR(toc.U64(info.length));
    QEC_RETURN_IF_ERROR(toc.U32(info.crc32));
    if (info.offset < kHeaderSize || info.offset > toc_offset ||
        info.length > toc_offset - info.offset) {
      return Status::Corruption("snapshot section '" + info.id +
                                "' out of bounds");
    }
    if (reader.HasSection(info.id)) {
      return Status::Corruption("duplicate snapshot section '" + info.id +
                                "'");
    }
    reader.sections_.push_back(std::move(info));
  }
  if (!toc.AtEnd()) {
    return Status::Corruption("trailing bytes in snapshot TOC");
  }
  return reader;
}

bool SnapshotReader::HasSection(std::string_view id) const {
  for (const SectionInfo& s : sections_) {
    if (s.id == id) return true;
  }
  return false;
}

Result<std::string_view> SnapshotReader::Section(std::string_view id) const {
  for (const SectionInfo& s : sections_) {
    if (s.id != id) continue;
    std::string_view payload = data_.substr(s.offset, s.length);
    if (Crc32(payload) != s.crc32) {
      return Status::Corruption("snapshot section '" + s.id +
                                "' checksum mismatch");
    }
    return payload;
  }
  return Status::NotFound("snapshot has no '" + std::string(id) +
                          "' section");
}

// ------------------------------------------------------------------ load

Result<doc::CorpusStats> SnapshotReader::ReadStats() const {
  auto payload = Section(kSectionStats);
  if (!payload.ok()) return payload.status();
  BinaryReader r(*payload, "snapshot STAT section");
  doc::CorpusStats stats;
  uint64_t u = 0;
  QEC_RETURN_IF_ERROR(r.U64(u));
  stats.num_docs = u;
  QEC_RETURN_IF_ERROR(r.U64(u));
  stats.num_distinct_terms = u;
  QEC_RETURN_IF_ERROR(r.U64(u));
  stats.total_term_occurrences = u;
  QEC_RETURN_IF_ERROR(r.F64(stats.avg_doc_length));
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in snapshot STAT section");
  }
  return stats;
}

Result<std::vector<DocId>> SnapshotReader::ReadPermutation() const {
  auto payload = Section(kSectionPerm);
  if (!payload.ok()) return payload.status();
  auto stats = ReadStats();
  if (!stats.ok()) return stats.status();
  BinaryReader r(*payload, "snapshot PERM section");
  uint32_t count = 0;
  QEC_RETURN_IF_ERROR(r.U32(count));
  if (count != stats->num_docs) {
    return Status::Corruption(
        "snapshot PERM section has " + std::to_string(count) +
        " entries but the snapshot holds " + std::to_string(stats->num_docs) +
        " documents");
  }
  std::vector<DocId> external_ids;
  external_ids.reserve(count);
  std::vector<uint8_t> seen(count, 0);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t d = 0;
    QEC_RETURN_IF_ERROR(r.U32(d));
    if (d >= count) {
      return Status::Corruption("snapshot PERM entry " + std::to_string(d) +
                                " out of range");
    }
    if (seen[d] != 0) {
      return Status::Corruption("snapshot PERM is not a permutation (doc " +
                                std::to_string(d) + " repeats)");
    }
    seen[d] = 1;
    external_ids.push_back(d);
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in snapshot PERM section");
  }
  return external_ids;
}

Result<doc::Corpus> SnapshotReader::LoadCorpus() const {
  auto meta = Section(kSectionMeta);
  if (!meta.ok()) return meta.status();
  auto options = DecodeMetaSection(*meta);
  if (!options.ok()) return options.status();
  doc::Corpus corpus(*options);

  auto voca = Section(kSectionVocab);
  if (!voca.ok()) return voca.status();
  BinaryReader vr(*voca, "snapshot VOCA section");
  uint32_t vocab_size = 0;
  QEC_RETURN_IF_ERROR(vr.U32(vocab_size));
  if (vocab_size > voca->size()) {
    return Status::Corruption("implausible snapshot vocabulary size");
  }
  corpus.analyzer().vocabulary().Reserve(vocab_size);
  std::string term;
  for (uint32_t i = 0; i < vocab_size; ++i) {
    QEC_RETURN_IF_ERROR(vr.Str(term));
    if (corpus.analyzer().InternVerbatim(term) != i) {
      return Status::Corruption("duplicate snapshot vocabulary entry '" +
                                term + "'");
    }
  }
  if (!vr.AtEnd()) {
    return Status::Corruption("trailing bytes in snapshot VOCA section");
  }

  auto docs = Section(kSectionDocs);
  if (!docs.ok()) return docs.status();
  BinaryReader dr(*docs, "snapshot DOCS section");
  uint32_t num_docs = 0;
  QEC_RETURN_IF_ERROR(dr.U32(num_docs));
  for (uint32_t d = 0; d < num_docs; ++d) {
    uint8_t kind_flag = 0;
    QEC_RETURN_IF_ERROR(dr.U8(kind_flag));
    std::string title;
    QEC_RETURN_IF_ERROR(dr.Str(title));
    uint32_t num_terms = 0;
    QEC_RETURN_IF_ERROR(dr.U32(num_terms));
    if (num_terms > dr.remaining() / 4) {
      return Status::Corruption("implausible snapshot document term count");
    }
    std::vector<TermId> terms;
    terms.reserve(num_terms);
    for (uint32_t i = 0; i < num_terms; ++i) {
      uint32_t t = 0;
      QEC_RETURN_IF_ERROR(dr.U32(t));
      if (t >= vocab_size) {
        return Status::Corruption("snapshot term id " + std::to_string(t) +
                                  " out of range");
      }
      terms.push_back(t);
    }
    uint32_t num_features = 0;
    QEC_RETURN_IF_ERROR(dr.U32(num_features));
    if (num_features > dr.remaining()) {
      return Status::Corruption("implausible snapshot feature count");
    }
    std::vector<doc::Feature> features;
    features.reserve(num_features);
    for (uint32_t i = 0; i < num_features; ++i) {
      doc::Feature f;
      QEC_RETURN_IF_ERROR(dr.Str(f.entity));
      QEC_RETURN_IF_ERROR(dr.Str(f.attribute));
      QEC_RETURN_IF_ERROR(dr.Str(f.value));
      features.push_back(std::move(f));
    }
    corpus.RestoreDocument(kind_flag != 0 ? doc::DocumentKind::kStructured
                                          : doc::DocumentKind::kText,
                           std::move(title), std::move(terms),
                           std::move(features));
  }
  if (!dr.AtEnd()) {
    return Status::Corruption("trailing bytes in snapshot DOCS section");
  }

  // Cross-check the stored statistics against the restored corpus: a CRC
  // collision or writer bug must not go unnoticed.
  auto stored = ReadStats();
  if (!stored.ok()) return stored.status();
  doc::CorpusStats actual = corpus.Stats();
  if (stored->num_docs != actual.num_docs ||
      stored->num_distinct_terms != actual.num_distinct_terms ||
      stored->total_term_occurrences != actual.total_term_occurrences ||
      stored->avg_doc_length != actual.avg_doc_length) {
    return Status::Corruption(
        "snapshot STAT section disagrees with restored corpus");
  }
  return corpus;
}

Result<index::InvertedIndex> SnapshotReader::LoadIndex(
    const doc::Corpus& corpus) const {
  auto indx = Section(kSectionIndex);
  if (!indx.ok()) return indx.status();
  std::string_view data = *indx;
  size_t pos = 0;
  auto num_terms = index::ReadVarint(data, &pos);
  if (!num_terms.ok()) return num_terms.status();
  if (*num_terms != corpus.analyzer().vocabulary().size()) {
    return Status::Corruption(
        "snapshot index has " + std::to_string(*num_terms) +
        " terms but the corpus vocabulary has " +
        std::to_string(corpus.analyzer().vocabulary().size()));
  }
  std::vector<std::vector<index::Posting>> postings(*num_terms);
  for (uint64_t t = 0; t < *num_terms; ++t) {
    auto len = index::ReadVarint(data, &pos);
    if (!len.ok()) return len.status();
    if (*len > data.size() - pos) {
      return Status::Corruption("snapshot posting blob truncated");
    }
    auto list = index::DecodePostings(data.substr(pos, *len));
    if (!list.ok()) return list.status();
    pos += *len;
    for (const index::Posting& p : *list) {
      if (p.doc >= corpus.NumDocs()) {
        return Status::Corruption(
            "snapshot posting references unknown document " +
            std::to_string(p.doc));
      }
    }
    postings[t] = std::move(*list);
  }
  if (pos != data.size()) {
    return Status::Corruption("trailing bytes in snapshot INDX section");
  }
  return index::InvertedIndex::FromPostings(corpus, std::move(postings));
}

Result<Snapshot> SnapshotReader::Load() const {
  QEC_TRACE_SPAN("storage/load_snapshot");
  Stopwatch watch;
  auto corpus = LoadCorpus();
  if (!corpus.ok()) return corpus.status();
  Snapshot snapshot;
  snapshot.corpus = std::make_unique<doc::Corpus>(std::move(*corpus));
  auto loaded_index = LoadIndex(*snapshot.corpus);
  if (!loaded_index.ok()) return loaded_index.status();
  snapshot.index =
      std::make_unique<index::InvertedIndex>(std::move(*loaded_index));
  snapshot.stats = snapshot.corpus->Stats();
  if (HasSection(kSectionPerm)) {
    auto perm = ReadPermutation();
    if (!perm.ok()) return perm.status();
    snapshot.external_ids = std::move(*perm);
    snapshot.index->SetExternalIds(snapshot.external_ids);
  }
  QEC_COUNTER_INC("storage/snapshot_reads");
  QEC_COUNTER_ADD("storage/snapshot_read_bytes", data_.size());
  QEC_HISTOGRAM_RECORD("storage/snapshot_load_ns", ElapsedNs(watch));
  return snapshot;
}

Result<Snapshot> DeserializeSnapshot(std::string_view data) {
  auto reader = SnapshotReader::Open(data);
  auto result = reader.ok() ? reader->Load() : Result<Snapshot>(reader.status());
  if (!result.ok() && result.status().code() == StatusCode::kCorruption) {
    QEC_COUNTER_INC("storage/snapshot_corruptions");
  }
  return result;
}

Result<std::string> ReadSnapshotBlob(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (f == nullptr) return Status::NotFound("cannot open '" + path + "'");
  std::string blob;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    blob.append(buf, n);
  }
  return blob;
}

Result<Snapshot> ReadSnapshot(const std::string& path) {
  auto blob = ReadSnapshotBlob(path);
  if (!blob.ok()) return blob.status();
  return DeserializeSnapshot(*blob);
}

bool LooksLikeSnapshot(std::string_view data) {
  return data.size() >= kSnapshotMagic.size() &&
         data.substr(0, kSnapshotMagic.size()) == kSnapshotMagic;
}

}  // namespace qec::storage
