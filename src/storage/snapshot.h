#ifndef QEC_STORAGE_SNAPSHOT_H_
#define QEC_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "doc/corpus.h"
#include "index/inverted_index.h"

namespace qec::storage {

/// Versioned on-disk snapshot of a fully built search substrate: analyzer
/// options, vocabulary, documents (text and structured), corpus statistics,
/// and the inverted index (delta + varbyte posting lists, reusing
/// index/posting_codec.h). A `serve`/`eval` process loads one in a single
/// pass instead of re-parsing XML and rebuilding the index.
///
/// Layout (little-endian; full spec in docs/FORMATS.md):
///
///   header   magic "QECSNAP1" (8) + format version u32
///   sections raw payloads, back to back
///   TOC      count u32 + per section {id[4], offset u64, len u64, crc u32}
///   footer   toc_offset u64 + toc_crc u32 + magic "QECSNAPF" (20 bytes)
///
/// The footer-based TOC lets readers seek straight to one section (e.g.
/// `index-inspect` prints statistics without touching DOCS/INDX). Every
/// section is CRC-32 checked before parsing and every parse is bounds-
/// checked, so any truncated or bit-flipped input fails with
/// Status::Corruption — never UB.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

inline constexpr std::string_view kSnapshotMagic = "QECSNAP1";
inline constexpr std::string_view kSnapshotFooterMagic = "QECSNAPF";

/// Section ids, in the order SerializeSnapshot writes them. PERM is only
/// present in snapshots of cluster-reordered corpora; readers that predate
/// it skip unknown sections, so no format-version bump is needed.
inline constexpr std::string_view kSectionMeta = "META";   // analyzer options
inline constexpr std::string_view kSectionVocab = "VOCA";  // term strings
inline constexpr std::string_view kSectionDocs = "DOCS";   // documents
inline constexpr std::string_view kSectionStats = "STAT";  // corpus stats
inline constexpr std::string_view kSectionIndex = "INDX";  // posting lists
inline constexpr std::string_view kSectionPerm = "PERM";   // doc-id permutation

/// One TOC entry.
struct SectionInfo {
  std::string id;       // 4 ASCII bytes
  uint64_t offset = 0;  // absolute offset of the payload in the file
  uint64_t length = 0;  // payload bytes
  uint32_t crc32 = 0;   // CRC-32 of the payload
};

/// A fully loaded snapshot. Corpus and index are heap-held so the struct
/// can move without invalidating the index's corpus pointer.
struct Snapshot {
  std::unique_ptr<doc::Corpus> corpus;
  std::unique_ptr<index::InvertedIndex> index;
  doc::CorpusStats stats;
  /// Doc-id permutation of a cluster-reordered snapshot: external_ids[i]
  /// is the id document i carried before reordering. Empty = identity
  /// (no PERM section). Load() also installs it on `index`, so ranked
  /// searches tie-break on external ids.
  std::vector<DocId> external_ids;
};

/// Serializes `index` and its corpus into a snapshot blob.
std::string SerializeSnapshot(const index::InvertedIndex& index);

/// Like above, additionally persisting a doc-id permutation as a `PERM`
/// section (per-section CRC like the rest). `external_ids` must be empty
/// (no PERM section written) or NumDocs entries.
std::string SerializeSnapshot(const index::InvertedIndex& index,
                              const std::vector<DocId>& external_ids);

/// Serializes and writes to `path` (Internal on I/O failure).
Status WriteSnapshot(const index::InvertedIndex& index,
                     const std::string& path);

/// Writes a reordered snapshot carrying the doc-id permutation.
Status WriteSnapshot(const index::InvertedIndex& index,
                     const std::vector<DocId>& external_ids,
                     const std::string& path);

/// Lazy section-level reader. Open() parses only the header, footer, and
/// TOC; sections are CRC-verified and decoded on demand. `data` must
/// outlive the reader (loaded objects copy everything out, so the backing
/// blob may be freed after the Load*/Read* call returns).
class SnapshotReader {
 public:
  static Result<SnapshotReader> Open(std::string_view data);

  uint32_t version() const { return version_; }

  /// TOC entries in file order.
  const std::vector<SectionInfo>& sections() const { return sections_; }

  bool HasSection(std::string_view id) const;

  /// Payload bytes of section `id`; verifies the section CRC on each call
  /// (NotFound for an absent id, Corruption on checksum mismatch).
  Result<std::string_view> Section(std::string_view id) const;

  /// Decodes STAT only — no vocabulary/document/index parsing.
  Result<doc::CorpusStats> ReadStats() const;

  /// Decodes the PERM section: the external doc id of every internal doc
  /// id, validated to be a permutation whose length equals the STAT doc
  /// count (any mismatch, out-of-range id, or duplicate is Corruption).
  /// NotFound when the snapshot has no PERM section (identity mapping).
  Result<std::vector<DocId>> ReadPermutation() const;

  /// Restores the corpus from META + VOCA + DOCS and cross-checks its
  /// recomputed statistics against STAT (mismatch = Corruption).
  Result<doc::Corpus> LoadCorpus() const;

  /// Restores the inverted index from INDX over `corpus` (which must come
  /// from LoadCorpus() on the same snapshot) without rescanning documents.
  Result<index::InvertedIndex> LoadIndex(const doc::Corpus& corpus) const;

  /// Restores everything.
  Result<Snapshot> Load() const;

 private:
  explicit SnapshotReader(std::string_view data) : data_(data) {}

  std::string_view data_;
  uint32_t version_ = 0;
  std::vector<SectionInfo> sections_;
};

/// One-shot full load from a blob.
Result<Snapshot> DeserializeSnapshot(std::string_view data);

/// Reads `path` into memory (NotFound on open failure) and loads it.
Result<Snapshot> ReadSnapshot(const std::string& path);

/// Reads `path` into memory for SnapshotReader::Open (NotFound / Internal).
Result<std::string> ReadSnapshotBlob(const std::string& path);

/// Cheap sniff: true when `data` starts with the snapshot magic. CLIs use
/// it to accept either a corpus blob or a snapshot for the same argument.
bool LooksLikeSnapshot(std::string_view data);

}  // namespace qec::storage

#endif  // QEC_STORAGE_SNAPSHOT_H_
