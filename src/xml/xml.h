#ifndef QEC_XML_XML_H_
#define QEC_XML_XML_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace qec::xml {

/// A node in a parsed XML document: either an element (name, attributes,
/// children) or a text node (text only).
class XmlNode {
 public:
  enum class Kind { kElement, kText };

  /// Creates an element node.
  static std::unique_ptr<XmlNode> Element(std::string name);

  /// Creates a text node.
  static std::unique_ptr<XmlNode> Text(std::string text);

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }

  /// Element name (empty for text nodes).
  const std::string& name() const { return name_; }

  /// Raw text of a text node (empty for elements).
  const std::string& text() const { return text_; }

  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }

  /// Attribute value, or empty string_view when absent.
  std::string_view Attribute(std::string_view name) const;

  void SetAttribute(std::string name, std::string value);

  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }

  /// Appends a child, returning a borrowed pointer to it.
  XmlNode* AddChild(std::unique_ptr<XmlNode> child);

  /// Convenience: appends <name>text</name>.
  XmlNode* AddElementWithText(std::string name, std::string text);

  /// First child element with the given name, or nullptr.
  const XmlNode* FindChild(std::string_view name) const;

  /// All child elements with the given name.
  std::vector<const XmlNode*> FindChildren(std::string_view name) const;

  /// Concatenation of all text in this subtree, depth-first, with single
  /// spaces between adjacent text nodes.
  std::string InnerText() const;

 private:
  explicit XmlNode(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

/// A parsed XML document (single root element).
struct XmlDocument {
  std::unique_ptr<XmlNode> root;
};

/// Parses `input` into a document. Supports elements, attributes
/// (single/double quoted), self-closing tags, text with the five standard
/// entities, numeric character references (ASCII range), comments, CDATA
/// sections, and a leading XML declaration. Returns Corruption on
/// malformed input.
Result<XmlDocument> Parse(std::string_view input);

/// Serializes a document (or subtree) back to XML with 2-space indentation.
std::string Write(const XmlDocument& document);
std::string WriteNode(const XmlNode& node);

/// Escapes the five standard XML entities in `text`.
std::string EscapeText(std::string_view text);

}  // namespace qec::xml

#endif  // QEC_XML_XML_H_
