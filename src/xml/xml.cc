#include "xml/xml.h"

#include <cctype>
#include <sstream>

namespace qec::xml {

std::unique_ptr<XmlNode> XmlNode::Element(std::string name) {
  auto node = std::unique_ptr<XmlNode>(new XmlNode(Kind::kElement));
  node->name_ = std::move(name);
  return node;
}

std::unique_ptr<XmlNode> XmlNode::Text(std::string text) {
  auto node = std::unique_ptr<XmlNode>(new XmlNode(Kind::kText));
  node->text_ = std::move(text);
  return node;
}

std::string_view XmlNode::Attribute(std::string_view name) const {
  for (const auto& [k, v] : attributes_) {
    if (k == name) return v;
  }
  return {};
}

void XmlNode::SetAttribute(std::string name, std::string value) {
  for (auto& [k, v] : attributes_) {
    if (k == name) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::move(name), std::move(value));
}

XmlNode* XmlNode::AddChild(std::unique_ptr<XmlNode> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

XmlNode* XmlNode::AddElementWithText(std::string name, std::string text) {
  auto elem = Element(std::move(name));
  elem->AddChild(Text(std::move(text)));
  return AddChild(std::move(elem));
}

const XmlNode* XmlNode::FindChild(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::FindChildren(std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children_) {
    if (c->is_element() && c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string XmlNode::InnerText() const {
  std::string out;
  auto append = [&out](const std::string& t) {
    if (t.empty()) return;
    if (!out.empty()) out += ' ';
    out += t;
  };
  if (is_text()) {
    append(text_);
    return out;
  }
  for (const auto& c : children_) {
    std::string t = c->InnerText();
    append(t);
  }
  return out;
}

namespace {

/// Recursive-descent XML parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<XmlDocument> Parse() {
    SkipProlog();
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    SkipMisc();
    if (pos_ != input_.size()) {
      return Status::Corruption("trailing content after root element at byte " +
                                std::to_string(pos_));
    }
    XmlDocument doc;
    doc.root = std::move(root).value();
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Match(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  bool SkipComment() {
    if (!Match("<!--")) return false;
    size_t end = input_.find("-->", pos_ + 4);
    pos_ = (end == std::string_view::npos) ? input_.size() : end + 3;
    return true;
  }

  void SkipProlog() {
    SkipWhitespace();
    if (Match("<?xml")) {
      size_t end = input_.find("?>", pos_);
      pos_ = (end == std::string_view::npos) ? input_.size() : end + 2;
    }
    SkipMisc();
    // DOCTYPE (skipped wholesale; internal subsets not supported).
    if (Match("<!DOCTYPE")) {
      size_t end = input_.find('>', pos_);
      pos_ = (end == std::string_view::npos) ? input_.size() : end + 1;
    }
    SkipMisc();
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (!SkipComment()) break;
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) {
      return Status::Corruption("expected name at byte " +
                                std::to_string(pos_));
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Status::Corruption("expected quoted attribute value at byte " +
                                std::to_string(pos_));
    }
    char quote = Peek();
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) ++pos_;
    if (AtEnd()) return Status::Corruption("unterminated attribute value");
    std::string value = DecodeEntities(input_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return value;
  }

  static std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        out += raw[i++];
        continue;
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out += '&';
      } else if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else if (!ent.empty() && ent[0] == '#') {
        int code = 0;
        bool ok = true;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          for (size_t j = 2; j < ent.size(); ++j) {
            char c = ent[j];
            int d = (c >= '0' && c <= '9')   ? c - '0'
                    : (c >= 'a' && c <= 'f') ? c - 'a' + 10
                    : (c >= 'A' && c <= 'F') ? c - 'A' + 10
                                             : -1;
            if (d < 0) {
              ok = false;
              break;
            }
            code = code * 16 + d;
          }
        } else {
          for (size_t j = 1; j < ent.size(); ++j) {
            if (!std::isdigit(static_cast<unsigned char>(ent[j]))) {
              ok = false;
              break;
            }
            code = code * 10 + (ent[j] - '0');
          }
        }
        if (ok && code > 0 && code < 128) {
          out += static_cast<char>(code);
        }  // non-ASCII references are dropped (corpus is ASCII)
      } else {
        // Unknown entity: keep verbatim.
        out += raw.substr(i, semi - i + 1);
      }
      i = semi + 1;
    }
    return out;
  }

  Result<std::unique_ptr<XmlNode>> ParseElement() {
    if (AtEnd() || Peek() != '<') {
      return Status::Corruption("expected '<' at byte " + std::to_string(pos_));
    }
    ++pos_;
    auto name = ParseName();
    if (!name.ok()) return name.status();
    auto elem = XmlNode::Element(std::move(name).value());

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Status::Corruption("unterminated start tag");
      if (Peek() == '>' || Match("/>")) break;
      auto attr_name = ParseName();
      if (!attr_name.ok()) return attr_name.status();
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') {
        return Status::Corruption("expected '=' after attribute name");
      }
      ++pos_;
      SkipWhitespace();
      auto value = ParseAttributeValue();
      if (!value.ok()) return value.status();
      elem->SetAttribute(std::move(attr_name).value(), std::move(value).value());
    }

    if (Match("/>")) {
      pos_ += 2;
      return elem;
    }
    ++pos_;  // '>'

    // Content.
    for (;;) {
      if (AtEnd()) {
        return Status::Corruption("unterminated element <" + elem->name() +
                                  ">");
      }
      if (Match("</")) {
        pos_ += 2;
        auto close = ParseName();
        if (!close.ok()) return close.status();
        if (close.value() != elem->name()) {
          return Status::Corruption("mismatched close tag </" + close.value() +
                                    "> for <" + elem->name() + ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') {
          return Status::Corruption("malformed close tag");
        }
        ++pos_;
        return elem;
      }
      if (SkipComment()) continue;
      if (Match("<![CDATA[")) {
        size_t end = input_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) {
          return Status::Corruption("unterminated CDATA section");
        }
        elem->AddChild(
            XmlNode::Text(std::string(input_.substr(pos_ + 9, end - pos_ - 9))));
        pos_ = end + 3;
        continue;
      }
      if (Peek() == '<') {
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        elem->AddChild(std::move(child).value());
        continue;
      }
      // Text run.
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      std::string text = DecodeEntities(input_.substr(start, pos_ - start));
      // Collapse pure-whitespace runs between elements.
      bool all_space = true;
      for (char c : text) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          all_space = false;
          break;
        }
      }
      if (!all_space) elem->AddChild(XmlNode::Text(std::move(text)));
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

void WriteStartTag(const XmlNode& node, std::string& out) {
  out += '<';
  out += node.name();
  for (const auto& [k, v] : node.attributes()) {
    out += ' ';
    out += k;
    out += "=\"";
    out += EscapeText(v);
    out += '"';
  }
}

// Serializes without any added whitespace — required inside mixed content,
// where pretty-printing would alter the text nodes.
void WriteNodeInline(const XmlNode& node, std::string& out) {
  if (node.is_text()) {
    out += EscapeText(node.text());
    return;
  }
  WriteStartTag(node, out);
  if (node.children().empty()) {
    out += "/>";
    return;
  }
  out += '>';
  for (const auto& c : node.children()) WriteNodeInline(*c, out);
  out += "</";
  out += node.name();
  out += '>';
}

bool HasTextChild(const XmlNode& node) {
  for (const auto& c : node.children()) {
    if (c->is_text()) return true;
  }
  return false;
}

void WriteNodeImpl(const XmlNode& node, int depth, std::string& out) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  // Mixed content (any text child) must round-trip byte-exactly: no
  // pretty-printing inside it.
  if (node.is_text() || HasTextChild(node)) {
    out += indent;
    WriteNodeInline(node, out);
    out += '\n';
    return;
  }
  out += indent;
  WriteStartTag(node, out);
  if (node.children().empty()) {
    out += "/>\n";
    return;
  }
  out += ">\n";
  for (const auto& c : node.children()) {
    WriteNodeImpl(*c, depth + 1, out);
  }
  out += indent;
  out += "</";
  out += node.name();
  out += ">\n";
}

}  // namespace

Result<XmlDocument> Parse(std::string_view input) {
  return Parser(input).Parse();
}

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string WriteNode(const XmlNode& node) {
  std::string out;
  WriteNodeImpl(node, 0, out);
  return out;
}

std::string Write(const XmlDocument& document) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  if (document.root != nullptr) out += WriteNode(*document.root);
  return out;
}

}  // namespace qec::xml
