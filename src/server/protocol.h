#ifndef QEC_SERVER_PROTOCOL_H_
#define QEC_SERVER_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/query_expander.h"
#include "server/request_context.h"

namespace qec::server {

/// One parsed request of the line protocol (docs/SERVING.md). A request is
/// a single line:
///
///   EXPAND [key=value ...] [--] <query words>
///   EXPLAIN [key=value ...] [--] <query words>
///   PING
///   STATS
///   METRICS
///   SLOWLOG [n]
///   ABTEST [n]
///
/// Recognized EXPAND options: k=N (max clusters), algo=iskr|pebc|fmeasure,
/// topk=N (results used), minimize=0|1, weights=0|1, threads=N (per-request
/// expansion threads; 0 = auto), deadline_ms=N, trace=HEX (propagate a
/// caller-assigned trace id; the server generates one otherwise). A literal
/// `--` token ends option parsing so query words containing '=' stay query
/// words. EXPLAIN accepts the same options and runs the query through both
/// the primary and the shadow arm with per-term diagnostics; ABTEST reports
/// the running shadow tallies plus the most recent [n] comparisons.
struct ServeRequest {
  enum class Verb {
    kExpand,
    kExplain,
    kPing,
    kStats,
    kMetrics,
    kSlowlog,
    kAbtest,
  };

  Verb verb = Verb::kExpand;
  std::string query;

  /// Caller-propagated trace id (the `trace=` option); 0 = the server
  /// assigns a fresh one at submission.
  uint64_t trace_id = 0;

  /// SLOWLOG only: maximum records to return.
  size_t slowlog_count = 16;

  /// ABTEST only: maximum recent comparisons to return.
  size_t abtest_count = 16;

  /// Per-request overrides of the server's base expander options; unset
  /// fields inherit the server configuration.
  std::optional<size_t> max_clusters;
  std::optional<core::ExpansionAlgorithm> algorithm;
  std::optional<size_t> top_k_results;
  std::optional<bool> minimize_queries;
  std::optional<bool> use_ranking_weights;
  std::optional<size_t> num_threads;

  /// Request deadline in milliseconds from submission; 0 = use the server
  /// default (which may itself be "none").
  uint64_t deadline_ms = 0;

  /// Optional cooperative cancellation flag: set it to true and the server
  /// drops the request (Status Cancelled) if it has not started executing.
  std::shared_ptr<std::atomic<bool>> cancel;
};

/// Parses one request line. InvalidArgument on unknown verbs, malformed
/// options, or an EXPAND with no query words.
Result<ServeRequest> ParseRequestLine(std::string_view line);

/// Canonical cache form of a query string: ASCII-lowercased with
/// whitespace runs collapsed to single spaces and ends trimmed, so
/// "Apple  Store" and "apple store" share a cache entry. (Full analyzer
/// normalization — stemming, stopwords — happens inside the expander; two
/// queries that differ only there miss the cache but still return
/// identical results.)
std::string NormalizeQuery(std::string_view query);

/// 64-bit FNV-1a fingerprint over every expander option that can change an
/// expansion result. Two server/request configurations with equal
/// fingerprints produce interchangeable cached responses.
uint64_t OptionsFingerprint(const core::QueryExpanderOptions& options);

/// The expansion-cache key: normalized query + max clusters + algorithm +
/// options fingerprint, joined unambiguously.
std::string ExpansionCacheKey(std::string_view normalized_query,
                              size_t max_clusters,
                              core::ExpansionAlgorithm algorithm,
                              uint64_t options_fingerprint);

/// Outcome of one served request.
struct ServeResponse {
  Status status;
  /// Valid when status.ok(). A cached response carries the outcome (and
  /// its timing fields) of the original computation.
  core::ExpansionOutcome outcome;
  bool from_cache = false;
  /// Time spent queued before a worker picked the request up.
  double queue_seconds = 0.0;
  /// Submission-to-completion wall time.
  double total_seconds = 0.0;
  /// The request's trace id (0 when the request never entered the pool).
  uint64_t trace_id = 0;
  /// Per-stage latency breakdown. The serialize stage is measured after
  /// the JSON line is rendered, so inside `json_line` it reads 0; the
  /// stage histograms and the flight recorder carry the real value.
  StageTimings stages;
  /// Response line pre-rendered by the worker (the timed serialize stage).
  /// Empty for responses produced outside the pool — render on demand.
  std::string json_line;
  /// The outcome-dependent tail of the JSON line (clusters, set_score, the
  /// queries array). Invariant for a given outcome, so the expansion cache
  /// stores it once and every hit splices it in instead of re-formatting
  /// ~40 numbers per request. Empty → rendered on demand.
  std::string rendered_tail;
};

/// Renders the outcome-dependent tail of an ok response line, from
/// `,"clusters":` through the closing `}`. ResponseToJsonLine() composes
/// the volatile prefix (trace id, cached flag, timings) with this tail.
std::string RenderOutcomeTail(const core::ExpansionOutcome& outcome);

/// Renders a response as the protocol's single-line JSON:
///   {"status":"ok","trace_id":"4fe1...","cached":false,"clusters":2,
///    "set_score":0.91,"stages_ms":{...},...}
///   {"status":"error","code":"Unavailable","trace_id":"...","message":"..."}
std::string ResponseToJsonLine(const ServeResponse& response);

}  // namespace qec::server

#endif  // QEC_SERVER_PROTOCOL_H_
