#ifndef QEC_SERVER_REQUEST_CONTEXT_H_
#define QEC_SERVER_REQUEST_CONTEXT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace qec::server {

/// The stages a request passes through inside QecServer; every request
/// contributes one sample per stage to the `server/stage/<stage>_ns`
/// histograms (a stage the request never entered records 0).
enum class Stage : size_t {
  /// Submission until a worker dequeued the request.
  kQueueWait = 0,
  /// Cache key computation + lookup (+ the Put on a miss).
  kCacheLookup,
  /// The expander itself (retrieval, clustering, ISKR/PEBC inner loop).
  kExpansion,
  /// Rendering the response JSON line.
  kSerialize,
};

inline constexpr size_t kNumStages = 4;

std::string_view StageName(Stage stage);

/// Per-stage accumulated nanoseconds.
struct StageTimings {
  uint64_t ns[kNumStages] = {};

  uint64_t& operator[](Stage s) { return ns[static_cast<size_t>(s)]; }
  uint64_t operator[](Stage s) const { return ns[static_cast<size_t>(s)]; }
};

/// Request-scoped telemetry threaded from protocol parse through the
/// worker pool into the expander and back out: who the request is (trace
/// id), how long it may run (deadline), and where its time went.
struct RequestContext {
  using Clock = std::chrono::steady_clock;

  uint64_t trace_id = 0;
  Clock::time_point submit_time{};
  /// Clock::time_point::max() when the request has no deadline.
  Clock::time_point deadline = Clock::time_point::max();
  StageTimings stages;
  /// True when the shadow A/B sampler selected this request and a shadow
  /// job was enqueued (the comparison lands in a later flight record once
  /// the shadow run completes off the critical path).
  bool shadow_sampled = false;
};

/// RAII stopwatch accumulating into one stage of a context.
class StageTimer {
 public:
  StageTimer(RequestContext& context, Stage stage)
      : context_(&context), stage_(stage),
        start_(RequestContext::Clock::now()) {}
  ~StageTimer() {
    context_->stages[stage_] += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            RequestContext::Clock::now() - start_)
            .count());
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  RequestContext* context_;
  Stage stage_;
  RequestContext::Clock::time_point start_;
};

/// A fresh, never-zero 64-bit trace id (splitmix64 over a process-wide
/// counter seeded from the clock at first use). Thread-safe.
uint64_t GenerateTraceId();

/// 16 lowercase hex digits, the wire rendering of a trace id.
std::string TraceIdToHex(uint64_t trace_id);

/// Parses a 1-16 hex digit trace id; false (and *out untouched) on
/// malformed input or an all-zero id.
bool ParseTraceIdHex(std::string_view hex, uint64_t* out);

}  // namespace qec::server

#endif  // QEC_SERVER_REQUEST_CONTEXT_H_
