#ifndef QEC_SERVER_NET_LISTENER_H_
#define QEC_SERVER_NET_LISTENER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"

namespace qec::server::net {

/// A nonblocking listening TCP socket. Bind() resolves the address, sets
/// SO_REUSEADDR, binds, and listens; AcceptReady() accepts until EAGAIN
/// (the accept loop a level-triggered reactor needs), handing each new
/// connection over already nonblocking with TCP_NODELAY set.
class Listener {
 public:
  /// `port` 0 binds an ephemeral port — port() reports the real one.
  /// `host` is a dotted-quad IPv4 address ("127.0.0.1", "0.0.0.0").
  static Result<std::unique_ptr<Listener>> Bind(const std::string& host,
                                                uint16_t port, int backlog);

  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int fd() const { return fd_; }
  /// The bound port (resolves port 0 to the kernel-assigned one).
  uint16_t port() const { return port_; }

  /// Accepts every connection currently pending, invoking
  /// `on_accept(conn_fd, peer)` for each ("ip:port" peer). Transient
  /// per-connection failures (ECONNABORTED, EMFILE) are logged and
  /// skipped, never fatal.
  void AcceptReady(
      const std::function<void(int fd, std::string peer)>& on_accept);

  /// Closes the socket early (before destruction) so no new connections
  /// land during drain. Idempotent.
  void Close();

 private:
  Listener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  uint16_t port_;
};

}  // namespace qec::server::net

#endif  // QEC_SERVER_NET_LISTENER_H_
