#ifndef QEC_SERVER_NET_NET_SERVER_H_
#define QEC_SERVER_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "server/net/connection.h"
#include "server/net/event_loop.h"
#include "server/net/listener.h"
#include "server/server.h"

namespace qec::server::net {

struct NetServerOptions {
  /// IPv4 address to bind. The default stays on loopback; pass "0.0.0.0"
  /// to serve externally.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port (NetServer::port() reports it) — what the
  /// tests and the in-process benchmark use.
  uint16_t port = 0;
  int backlog = 128;
  /// Max request-line bytes; a longer frame earns one error response and
  /// the connection drains closed (the stream cannot resync past an
  /// unterminated frame).
  size_t max_line_bytes = 64 * 1024;
  /// Accepted connections beyond this are answered with one error line
  /// and closed immediately.
  size_t max_connections = 1024;
  /// Graceful-drain budget: on stop, in-flight requests get this long to
  /// complete and flush before remaining connections are force-closed.
  uint64_t drain_timeout_ms = 5000;
};

/// Monotonic totals since construction. Thread-safe snapshot.
struct NetServerStats {
  uint64_t accepted = 0;
  uint64_t rejected_over_capacity = 0;
  uint64_t closed = 0;
  uint64_t lines = 0;
  uint64_t expand_requests = 0;
  uint64_t immediate_requests = 0;
  uint64_t parse_errors = 0;
  uint64_t batches = 0;
  size_t active_connections = 0;
  /// Milliseconds the graceful drain took (0 until a drain ran). Also
  /// exported as the `qec_net_drain_duration_ms` gauge.
  uint64_t drain_duration_ms = 0;
};

/// Epoll front end serving the qec line protocol over TCP, in front of an
/// existing QecServer (which must outlive it and whose worker pool does
/// every expansion — the loop thread only parses, dispatches, and writes).
///
/// Pipelining: a connection may send any number of request lines without
/// waiting; responses come back in request order. All EXPAND lines decoded
/// from one readable burst are admitted through QecServer::SubmitBatch
/// under a single queue-lock acquisition, so a burst for one hot cluster
/// runs back to back on cache-warm state. Non-EXPAND verbs (PING, STATS,
/// METRICS, SLOWLOG, ABTEST) are answered on the loop thread but still
/// occupy an in-order slot, so `EXPAND…\nPING\n` answers in that order.
/// EXPLAIN also runs on the loop thread — it is a synchronous diagnostic
/// verb, and a pipelined EXPLAIN stalls only its own connection's reads.
///
/// Shutdown is a graceful drain: stop accepting, stop reading, let
/// in-flight expansions complete and flush, then close — bounded by
/// NetServerOptions::drain_timeout_ms.
class NetServer {
 public:
  NetServer(QecServer* server, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Creates the event loop and binds the listener; port() is valid after
  /// an OK return. Run()/Start() call it implicitly if needed.
  Status Bind();

  /// The bound port (resolves an ephemeral request to the real port).
  uint16_t port() const;

  /// Runs the event loop on the calling thread until RequestStop(), then
  /// drains and returns. This is what `qec_cli serve --port` blocks in.
  Status Run();

  /// Bind() + a background thread running Run(). For tests and the
  /// in-process benchmark.
  Status Start();

  /// RequestStop() + join the background thread (or wait for a foreground
  /// Run() to drain). Idempotent; the destructor calls it.
  void Shutdown();

  /// Signals the loop to stop and drain. Async-signal-safe: callable
  /// straight from a SIGINT/SIGTERM handler.
  void RequestStop();

  /// True once RequestStop() was called — the admin plane's /readyz flips
  /// to 503 on this, before the listener actually closes.
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  NetServerStats stats() const;
  const NetServerOptions& options() const { return options_; }

 private:
  void OnAccept(int fd, std::string peer);
  void OnLine(Connection& connection, std::string_view line);
  void OnBatchEnd(Connection& connection);
  void OnClosed(Connection& connection);
  /// Serves the verbs answered without the worker pool; returns the
  /// response line.
  std::string ImmediateResponse(const ServeRequest& request);
  void Drain();

  QecServer* server_;
  NetServerOptions options_;
  /// shared_ptr so worker-pool completion callbacks can keep the loop
  /// alive (and post into it harmlessly) even if the NetServer is torn
  /// down on a drain timeout with expansions still in flight.
  std::shared_ptr<EventLoop> loop_;
  std::unique_ptr<Listener> listener_;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  /// EXPANDs decoded from the current readable burst, admitted together
  /// at on_batch_end.
  std::vector<QecServer::AsyncRequest> batch_;

  std::thread run_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> bound_port_{0};

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_over_capacity_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> lines_{0};
  std::atomic<uint64_t> expand_requests_{0};
  std::atomic<uint64_t> immediate_requests_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<size_t> active_connections_{0};
  std::atomic<uint64_t> drain_duration_ms_{0};
};

}  // namespace qec::server::net

#endif  // QEC_SERVER_NET_NET_SERVER_H_
