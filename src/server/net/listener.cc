#include "server/net/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace qec::server::net {

Result<std::unique_ptr<Listener>> Listener::Bind(const std::string& host,
                                                 uint16_t port, int backlog) {
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int on = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s = Status::Unavailable("bind " + host + ":" +
                                         std::to_string(port) + ": " +
                                         std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    const Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }

  // Resolve the ephemeral port the kernel picked for port 0.
  struct sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) ==
      0) {
    port = ntohs(bound.sin_port);
  }
  return std::unique_ptr<Listener>(new Listener(fd, port));
}

Listener::~Listener() { Close(); }

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Listener::AcceptReady(
    const std::function<void(int fd, std::string peer)>& on_accept) {
  for (;;) {
    struct sockaddr_in peer = {};
    socklen_t len = sizeof(peer);
    const int conn =
        ::accept4(fd_, reinterpret_cast<struct sockaddr*>(&peer), &len,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (conn < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
      if (errno == EINTR) continue;
      // ECONNABORTED: the client went away between listen and accept.
      // EMFILE/ENFILE: out of fds — drop this one, keep serving the rest.
      QEC_LOG(Warning) << "accept failed: " << std::strerror(errno);
      if (errno == EMFILE || errno == ENFILE) return;
      continue;
    }
    // Responses are small coalesced lines on an interactive path; Nagle
    // only adds latency here.
    const int on = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    on_accept(conn,
              std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port)));
  }
}

}  // namespace qec::server::net
