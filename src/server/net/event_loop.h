#ifndef QEC_SERVER_NET_EVENT_LOOP_H_
#define QEC_SERVER_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace qec::server::net {

/// Single-threaded epoll reactor. All fd registration and dispatch happens
/// on the thread that calls RunOnce (the "loop thread"); the only
/// thread-safe entry points are Post() and Wakeup().
///
/// Design notes:
///  - Level-triggered epoll: handlers read/write until EAGAIN but are
///    re-notified if they leave data behind, so a partially-drained socket
///    can never stall silently.
///  - Post() hands a closure from any thread to the loop thread via a
///    mutex-guarded queue plus an eventfd wakeup — this is how worker-pool
///    completion callbacks re-enter the loop to write responses.
///  - Wakeup() is a bare eventfd write: async-signal-safe, so a SIGTERM
///    handler may call it directly.
class EventLoop {
 public:
  using FdHandler = std::function<void(uint32_t epoll_events)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Construction can fail (fd exhaustion); everything else degrades to
  /// no-ops when it did.
  const Status& status() const { return status_; }

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The handler is
  /// invoked on the loop thread with the ready event mask. Loop thread (or
  /// pre-Run setup thread) only.
  Status Add(int fd, uint32_t events, FdHandler handler);

  /// Changes the interest set of a registered fd. Loop thread only.
  Status Modify(int fd, uint32_t events);

  /// Deregisters `fd`. Safe to call from inside that fd's own handler;
  /// does not close the fd. Loop thread only.
  void Remove(int fd);

  /// Enqueues `task` to run on the loop thread at the next RunOnce
  /// iteration. Thread-safe. Tasks posted after the owner stops running
  /// the loop are destroyed unrun.
  void Post(Task task);

  /// Async-signal-safe: makes a blocked RunOnce return promptly.
  void Wakeup();

  /// One reactor iteration: waits up to `timeout_ms` (-1 = indefinitely)
  /// for events, dispatches fd handlers, then drains the posted-task
  /// queue. Returns the number of fd events dispatched, or -1 on a fatal
  /// epoll error.
  int RunOnce(int timeout_ms);

  /// Number of registered fds (excluding the internal wakeup eventfd).
  size_t num_fds() const;

 private:
  void DrainPosted();

  Status status_;
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  /// Handlers are held by shared_ptr so a handler that removes its own fd
  /// (or another's) mid-dispatch never frees a std::function still on the
  /// call stack.
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;

  std::mutex post_mu_;
  std::vector<Task> posted_;
  /// True once a wakeup write covers the tasks currently queued; further
  /// Post() calls skip the eventfd write until the loop drains. Turns a
  /// burst of worker completions into one syscall and one loop wakeup.
  bool wakeup_pending_ = false;
};

}  // namespace qec::server::net

#endif  // QEC_SERVER_NET_EVENT_LOOP_H_
