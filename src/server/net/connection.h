#ifndef QEC_SERVER_NET_CONNECTION_H_
#define QEC_SERVER_NET_CONNECTION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "server/net/event_loop.h"

namespace qec::server::net {

/// One accepted TCP connection speaking the line protocol, owned by the
/// event-loop thread. Handles:
///
///  - nonblocking reads with EINTR/EAGAIN/partial-frame handling: bytes
///    accumulate in a receive buffer until '\n' completes a frame (CRLF
///    tolerated), so a request split across arbitrarily many TCP segments
///    parses identically to one arriving whole;
///  - a max-line guard: a frame that exceeds the limit without a
///    terminator gets one error response and the connection drains closed
///    (the stream cannot resync past an unterminated frame);
///  - pipelining with in-order writeback: every parsed line opens a
///    response slot; slots complete out of order (worker pool) but are
///    written strictly in request order;
///  - write coalescing: all completed head-of-line responses are appended
///    to one output buffer and flushed with as few send() calls as the
///    socket accepts, falling back to EPOLLOUT on short writes.
///
/// Thread model: every method must be called on the loop thread. Worker
/// threads deliver responses by posting a CompleteSlot call through the
/// EventLoop. Callers keep Connections alive via shared_ptr; event
/// handlers self-hold, so a handler that closes its own connection is
/// safe.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  struct Callbacks {
    /// One complete, non-empty request line (terminator stripped).
    std::function<void(Connection&, std::string_view line)> on_line;
    /// End of one readable burst: every line the kernel had buffered has
    /// been delivered — the moment to submit the accumulated batch.
    std::function<void(Connection&)> on_batch_end;
    /// The fd is closed and deregistered; drop the owning shared_ptr.
    std::function<void(Connection&)> on_closed;
  };

  Connection(EventLoop* loop, int fd, std::string peer, size_t max_line_bytes,
             Callbacks callbacks);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Registers the fd with the loop. Call once, right after construction
  /// (needs shared_from_this, hence not in the constructor).
  Status Register();

  /// Reserves the next in-order response slot. Responses are written back
  /// in OpenSlot order regardless of completion order.
  uint64_t OpenSlot();

  /// Delivers the response line for a slot (without trailing newline; it
  /// is appended on the wire). Flushes every completed head-of-line slot.
  /// No-op after Close.
  void CompleteSlot(uint64_t slot, std::string line);

  /// Stops reading; the connection closes once every open slot has
  /// completed and flushed. Used for server drain and after protocol
  /// errors that poison the stream.
  void StartDrain();

  /// Immediate teardown: deregisters, closes the fd, invokes on_closed.
  /// Idempotent.
  void Close();

  int fd() const { return fd_; }
  const std::string& peer() const { return peer_; }
  bool closed() const { return closed_; }
  /// Slots opened but not yet flushed to the socket.
  size_t open_slots() const { return slots_.size(); }
  /// True when nothing is owed to the client: no open slots, no buffered
  /// output.
  bool idle() const { return slots_.empty() && write_pos_ >= wbuf_.size(); }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  struct Slot {
    bool done = false;
    std::string line;
  };

  void HandleEvents(uint32_t events);
  void OnReadable();
  /// Extracts every complete frame from rbuf_, enforcing the max-line
  /// guard on both terminated and still-unterminated frames.
  void DeliverFrames();
  /// Appends completed head-of-line slots to wbuf_ and schedules a flush.
  void FlushCompleted();
  /// Defers TryWrite to the end of the current loop iteration, so a burst
  /// of completions (one batch of worker responses, or several immediate
  /// verbs in one read event) leaves the socket with one send() instead of
  /// one per response.
  void ScheduleFlush();
  void TryWrite();
  void UpdateWriteInterest(bool want_write);
  /// Closes once drained/EOF and nothing is owed. Returns true if closed.
  bool MaybeFinish();

  EventLoop* loop_;
  int fd_;
  std::string peer_;
  const size_t max_line_bytes_;
  Callbacks callbacks_;

  std::string rbuf_;
  /// Prefix of rbuf_ already scanned for '\n' (avoids rescans on partial
  /// frames).
  size_t scan_pos_ = 0;

  std::deque<Slot> slots_;
  uint64_t next_slot_ = 0;
  /// Slot id of slots_.front().
  uint64_t base_slot_ = 0;

  std::string wbuf_;
  size_t write_pos_ = 0;
  bool want_write_ = false;
  /// A posted flush task is in flight; further completions just append.
  bool flush_scheduled_ = false;

  bool peer_eof_ = false;
  bool draining_ = false;
  bool closed_ = false;

  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace qec::server::net

#endif  // QEC_SERVER_NET_CONNECTION_H_
