#include "server/net/net_server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "server/protocol.h"

namespace qec::server::net {

NetServer::NetServer(QecServer* server, NetServerOptions options)
    : server_(server), options_(std::move(options)) {}

NetServer::~NetServer() { Shutdown(); }

Status NetServer::Bind() {
  if (listener_) return Status::Ok();
  loop_ = std::make_shared<EventLoop>();
  if (!loop_->status().ok()) return loop_->status();
  auto listener = Listener::Bind(options_.host, options_.port,
                                 options_.backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  bound_port_.store(listener_->port(), std::memory_order_release);
  const Status added =
      loop_->Add(listener_->fd(), EPOLLIN, [this](uint32_t) {
        listener_->AcceptReady(
            [this](int fd, std::string peer) { OnAccept(fd, std::move(peer)); });
      });
  if (!added.ok()) return added;
  QEC_LOG(Info) << "net: listening on " << options_.host << ":"
                << listener_->port();
  return Status::Ok();
}

uint16_t NetServer::port() const {
  return bound_port_.load(std::memory_order_acquire);
}

Status NetServer::Run() {
  const Status bound = Bind();
  if (!bound.ok()) return bound;
  running_.store(true, std::memory_order_release);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (loop_->RunOnce(/*timeout_ms=*/1000) < 0) {
      running_.store(false, std::memory_order_release);
      return Status::Internal("event loop failed");
    }
  }
  Drain();
  running_.store(false, std::memory_order_release);
  return Status::Ok();
}

Status NetServer::Start() {
  const Status bound = Bind();
  if (!bound.ok()) return bound;
  run_thread_ = std::thread([this] {
    const Status s = Run();
    if (!s.ok()) QEC_LOG(Error) << "net: serve loop exited: " << s.message();
  });
  return Status::Ok();
}

void NetServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (loop_) loop_->Wakeup();
}

void NetServer::Shutdown() {
  RequestStop();
  if (run_thread_.joinable()) run_thread_.join();
}

void NetServer::OnAccept(int fd, std::string peer) {
  if (connections_.size() >= options_.max_connections) {
    rejected_over_capacity_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("net/rejected_over_capacity");
    // Best-effort courtesy line; the socket buffer of a fresh connection
    // always has room for it.
    static constexpr char kBusy[] =
        "{\"status\":\"error\",\"code\":\"Unavailable\","
        "\"message\":\"connection limit reached\"}\n";
    (void)::send(fd, kBusy, sizeof(kBusy) - 1, MSG_NOSIGNAL);
    ::close(fd);
    return;
  }

  Connection::Callbacks callbacks;
  callbacks.on_line = [this](Connection& c, std::string_view line) {
    OnLine(c, line);
  };
  callbacks.on_batch_end = [this](Connection& c) { OnBatchEnd(c); };
  callbacks.on_closed = [this](Connection& c) { OnClosed(c); };
  auto connection = std::make_shared<Connection>(
      loop_.get(), fd, std::move(peer), options_.max_line_bytes,
      std::move(callbacks));
  const Status registered = connection->Register();
  if (!registered.ok()) {
    QEC_LOG(Warning) << "net: register " << connection->peer()
                     << " failed: " << registered.message();
    // Close() would deregister + on_closed; the fd never made it into the
    // loop, so just close it via the destructor (shared_ptr drops here).
    return;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  QEC_COUNTER_INC("net/connections_accepted");
  connections_.emplace(fd, std::move(connection));
  active_connections_.store(connections_.size(), std::memory_order_relaxed);
  QEC_GAUGE_SET("net/active_connections",
                static_cast<int64_t>(connections_.size()));
}

void NetServer::OnLine(Connection& connection, std::string_view line) {
  lines_.fetch_add(1, std::memory_order_relaxed);
  QEC_COUNTER_INC("net/requests");

  auto parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("net/parse_errors");
    ServeResponse bad;
    bad.status = parsed.status();
    const uint64_t slot = connection.OpenSlot();
    connection.CompleteSlot(slot, ResponseToJsonLine(bad));
    return;
  }
  ServeRequest request = std::move(parsed).value();

  if (request.verb != ServeRequest::Verb::kExpand) {
    // Submit any buffered EXPANDs from this burst first, so a pipelined
    // `EXPAND…\nSTATS` observes them as submitted (and the stdin transport
    // behaves identically).
    OnBatchEnd(connection);
    immediate_requests_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("net/immediate_requests");
    const uint64_t slot = connection.OpenSlot();
    connection.CompleteSlot(slot, ImmediateResponse(request));
    return;
  }

  expand_requests_.fetch_add(1, std::memory_order_relaxed);
  QEC_COUNTER_INC("net/expand_requests");
  const uint64_t slot = connection.OpenSlot();
  // The completion callback runs on a worker thread. It holds the loop by
  // shared_ptr (posting into a stopped loop is a harmless no-op) and the
  // connection only weakly: if the client vanished first, the response is
  // simply dropped.
  std::weak_ptr<Connection> weak = connection.weak_from_this();
  QecServer::AsyncRequest async;
  async.request = std::move(request);
  async.on_done = [loop = loop_, weak, slot](ServeResponse response) {
    std::string out = !response.json_line.empty()
                          ? std::move(response.json_line)
                          : ResponseToJsonLine(response);
    loop->Post([weak, slot, out = std::move(out)]() mutable {
      if (auto conn = weak.lock()) conn->CompleteSlot(slot, std::move(out));
    });
  };
  batch_.push_back(std::move(async));
}

void NetServer::OnBatchEnd(Connection&) {
  if (batch_.empty()) return;
  batches_.fetch_add(1, std::memory_order_relaxed);
  QEC_COUNTER_INC("net/batches");
  server_->SubmitBatch(std::move(batch_));
  batch_.clear();
}

void NetServer::OnClosed(Connection& connection) {
  closed_.fetch_add(1, std::memory_order_relaxed);
  QEC_COUNTER_INC("net/connections_closed");
  connections_.erase(connection.fd());
  active_connections_.store(connections_.size(), std::memory_order_relaxed);
  QEC_GAUGE_SET("net/active_connections",
                static_cast<int64_t>(connections_.size()));
}

std::string NetServer::ImmediateResponse(const ServeRequest& request) {
  // Mirrors the stdin driver in qec_cli verb for verb, so the two
  // transports answer byte-identically.
  switch (request.verb) {
    case ServeRequest::Verb::kPing:
      return "{\"status\":\"ok\",\"pong\":true}";
    case ServeRequest::Verb::kStats:
      return server_->StatsJsonLine();
    case ServeRequest::Verb::kMetrics: {
      // Multi-line Prometheus text; the trailing "# EOF" line marks the
      // end for pipeline consumers. The final newline is re-added by the
      // connection's line writer.
      std::string out = qec::obs::PrometheusSnapshot();
      if (!out.empty() && out.back() == '\n') out.pop_back();
      return out;
    }
    case ServeRequest::Verb::kSlowlog:
      return server_->SlowlogJsonLine(request.slowlog_count);
    case ServeRequest::Verb::kAbtest:
      return server_->AbtestJsonLine(request.abtest_count);
    case ServeRequest::Verb::kExplain:
      // Synchronous on the loop thread by design: a diagnostic verb, and a
      // pipelined EXPLAIN stalls only its own connection.
      return server_->ExplainJsonLine(request);
    case ServeRequest::Verb::kExpand:
      break;  // unreachable: handled via the worker pool
  }
  ServeResponse bad;
  bad.status = Status::Internal("unhandled verb");
  return ResponseToJsonLine(bad);
}

void NetServer::Drain() {
  const auto drain_start = std::chrono::steady_clock::now();
  // 1. No new connections.
  if (listener_) {
    loop_->Remove(listener_->fd());
    listener_->Close();
  }
  // 2. Stop reading; in-flight responses still complete and flush.
  //    Iterate over a copy — StartDrain may Close an idle connection,
  //    which erases it from connections_.
  std::vector<std::shared_ptr<Connection>> open;
  open.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) open.push_back(conn);
  for (auto& conn : open) conn->StartDrain();

  // 3. Pump the loop until every connection finished or the budget ran out.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  while (!connections_.empty()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    loop_->RunOnce(static_cast<int>(
        std::min<std::chrono::milliseconds::rep>(left.count(), 50)));
  }

  // 4. Whatever is still open missed the budget.
  if (!connections_.empty()) {
    QEC_LOG(Warning) << "net: drain timeout, force-closing "
                     << connections_.size() << " connection(s)";
    open.clear();
    for (auto& [fd, conn] : connections_) open.push_back(conn);
    for (auto& conn : open) conn->Close();
  }
  QEC_GAUGE_SET("net/active_connections", 0);
  const uint64_t drain_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - drain_start)
          .count());
  drain_duration_ms_.store(drain_ms, std::memory_order_relaxed);
  QEC_GAUGE_SET("net/drain_duration_ms", static_cast<double>(drain_ms));
}

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_over_capacity =
      rejected_over_capacity_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.lines = lines_.load(std::memory_order_relaxed);
  s.expand_requests = expand_requests_.load(std::memory_order_relaxed);
  s.immediate_requests = immediate_requests_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.active_connections = active_connections_.load(std::memory_order_relaxed);
  s.drain_duration_ms = drain_duration_ms_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace qec::server::net
