#include "server/net/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace qec::server::net {

namespace {

/// Per readable event, stop pulling from the socket after this many bytes
/// so one fire-hosing client cannot starve its neighbours; level-triggered
/// epoll re-notifies for the remainder.
constexpr size_t kMaxBytesPerReadEvent = 256 * 1024;

}  // namespace

Connection::Connection(EventLoop* loop, int fd, std::string peer,
                       size_t max_line_bytes, Callbacks callbacks)
    : loop_(loop),
      fd_(fd),
      peer_(std::move(peer)),
      max_line_bytes_(max_line_bytes),
      callbacks_(std::move(callbacks)) {}

Connection::~Connection() {
  if (fd_ >= 0 && !closed_) ::close(fd_);
}

Status Connection::Register() {
  auto self = weak_from_this();
  return loop_->Add(fd_, EPOLLIN, [self](uint32_t events) {
    // Self-hold: the handler may Close() this connection, dropping the
    // owner's shared_ptr mid-call.
    if (auto conn = self.lock()) conn->HandleEvents(events);
  });
}

void Connection::HandleEvents(uint32_t events) {
  if (closed_) return;
  if (events & EPOLLERR) {
    Close();
    return;
  }
  if (events & EPOLLOUT) {
    TryWrite();
    if (closed_) return;
  }
  if (events & (EPOLLIN | EPOLLHUP)) OnReadable();
}

void Connection::OnReadable() {
  if (draining_) return;  // interest already narrowed; spurious level event
  char buf[16 * 1024];
  size_t read_this_event = 0;
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<size_t>(n));
      bytes_read_ += static_cast<uint64_t>(n);
      read_this_event += static_cast<size_t>(n);
      if (read_this_event >= kMaxBytesPerReadEvent) break;
      continue;
    }
    if (n == 0) {
      // Orderly shutdown from the peer. Responses for everything already
      // received still go out (the client may have half-closed with
      // shutdown(SHUT_WR) and be reading).
      peer_eof_ = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    Close();  // ECONNRESET and friends
    return;
  }

  DeliverFrames();
  if (closed_) return;
  if (callbacks_.on_batch_end) callbacks_.on_batch_end(*this);
  if (closed_) return;
  if (peer_eof_) {
    // Nothing more will arrive: close now if nothing is owed, otherwise
    // once the open slots flush.
    draining_ = true;
    MaybeFinish();
  }
}

void Connection::DeliverFrames() {
  size_t consumed = 0;
  for (;;) {
    const size_t nl = rbuf_.find('\n', scan_pos_);
    if (nl == std::string::npos) {
      scan_pos_ = rbuf_.size();
      break;
    }
    size_t end = nl;
    if (end > consumed && rbuf_[end - 1] == '\r') --end;
    const std::string_view line(rbuf_.data() + consumed, end - consumed);
    consumed = nl + 1;
    scan_pos_ = consumed;
    if (line.size() > max_line_bytes_) {
      QEC_COUNTER_INC("net/oversized_lines");
      const uint64_t slot = OpenSlot();
      CompleteSlot(slot,
                   "{\"status\":\"error\",\"code\":\"InvalidArgument\","
                   "\"message\":\"request line exceeds " +
                       std::to_string(max_line_bytes_) + " bytes\"}");
      StartDrain();
      rbuf_.clear();
      scan_pos_ = 0;
      return;
    }
    if (!line.empty() && callbacks_.on_line) callbacks_.on_line(*this, line);
    if (closed_ || draining_) break;
  }
  if (consumed > 0) {
    rbuf_.erase(0, consumed);
    scan_pos_ -= consumed;
  }
  // Unterminated frame growing past the limit: the terminator can be
  // arbitrarily far away, so reject now instead of buffering unboundedly.
  if (!closed_ && !draining_ && rbuf_.size() > max_line_bytes_) {
    QEC_COUNTER_INC("net/oversized_lines");
    const uint64_t slot = OpenSlot();
    CompleteSlot(slot,
                 "{\"status\":\"error\",\"code\":\"InvalidArgument\","
                 "\"message\":\"request line exceeds " +
                     std::to_string(max_line_bytes_) + " bytes\"}");
    StartDrain();
    rbuf_.clear();
    scan_pos_ = 0;
  }
}

uint64_t Connection::OpenSlot() {
  slots_.emplace_back();
  return next_slot_++;
}

void Connection::CompleteSlot(uint64_t slot, std::string line) {
  if (closed_) return;
  if (slot < base_slot_) return;  // flushed already (cannot normally happen)
  const size_t index = static_cast<size_t>(slot - base_slot_);
  QEC_CHECK_LT(index, slots_.size());
  slots_[index].done = true;
  slots_[index].line = std::move(line);
  FlushCompleted();
}

void Connection::FlushCompleted() {
  // Coalesce: every completed head-of-line response joins one buffer, so a
  // pipelined burst answers with one send() instead of one per response.
  while (!slots_.empty() && slots_.front().done) {
    wbuf_ += slots_.front().line;
    wbuf_ += '\n';
    slots_.pop_front();
    ++base_slot_;
  }
  if (write_pos_ < wbuf_.size()) ScheduleFlush();
}

void Connection::ScheduleFlush() {
  // If EPOLLOUT is armed the socket is full; it flushes when writable.
  if (flush_scheduled_ || want_write_) return;
  flush_scheduled_ = true;
  auto self = weak_from_this();
  loop_->Post([self] {
    if (auto conn = self.lock()) {
      conn->flush_scheduled_ = false;
      if (!conn->closed_) conn->TryWrite();
    }
  });
}

void Connection::TryWrite() {
  while (write_pos_ < wbuf_.size()) {
    const ssize_t n = ::send(fd_, wbuf_.data() + write_pos_,
                             wbuf_.size() - write_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      write_pos_ += static_cast<size_t>(n);
      bytes_written_ += static_cast<uint64_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateWriteInterest(true);
      return;
    }
    // EPIPE/ECONNRESET: the client left mid-response. Nothing to salvage.
    Close();
    return;
  }
  wbuf_.clear();
  write_pos_ = 0;
  UpdateWriteInterest(false);
  MaybeFinish();
}

void Connection::UpdateWriteInterest(bool want_write) {
  if (want_write == want_write_ || closed_) return;
  want_write_ = want_write;
  // While draining we no longer care about EPOLLIN.
  uint32_t events = draining_ ? 0u : static_cast<uint32_t>(EPOLLIN);
  if (want_write) events |= EPOLLOUT;
  loop_->Modify(fd_, events);
}

void Connection::StartDrain() {
  if (closed_ || draining_) return;
  draining_ = true;
  const uint32_t events = want_write_ ? static_cast<uint32_t>(EPOLLOUT) : 0u;
  loop_->Modify(fd_, events);
  MaybeFinish();
}

bool Connection::MaybeFinish() {
  if (closed_) return true;
  if (!draining_) return false;
  if (!idle()) return false;
  Close();
  return true;
}

void Connection::Close() {
  if (closed_) return;
  closed_ = true;
  loop_->Remove(fd_);
  ::close(fd_);
  slots_.clear();
  wbuf_.clear();
  write_pos_ = 0;
  if (callbacks_.on_closed) callbacks_.on_closed(*this);
}

}  // namespace qec::server::net
