#include "server/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace qec::server::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    status_ = Errno("epoll_create1");
    return;
  }
  wakeup_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) {
    status_ = Errno("eventfd");
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
  // The wakeup fd participates like any other fd; its handler just drains
  // the counter (posted tasks run in RunOnce's task phase).
  struct epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
    status_ = Errno("epoll_ctl(wakeup)");
    ::close(wakeup_fd_);
    ::close(epoll_fd_);
    wakeup_fd_ = epoll_fd_ = -1;
  }
}

EventLoop::~EventLoop() {
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, FdHandler handler) {
  if (!status_.ok()) return status_;
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(add)");
  }
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  return Status::Ok();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  if (!status_.ok()) return status_;
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(mod)");
  }
  return Status::Ok();
}

void EventLoop::Remove(int fd) {
  if (!status_.ok()) return;
  // Deregistration failure (fd already closed) is harmless; the handler
  // map is the source of truth for dispatch.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::Post(Task task) {
  bool need_wakeup;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(task));
    need_wakeup = !wakeup_pending_;
    wakeup_pending_ = true;
  }
  if (need_wakeup) Wakeup();
}

void EventLoop::Wakeup() {
  if (wakeup_fd_ < 0) return;
  const uint64_t one = 1;
  // Signal-safe: a plain write. EAGAIN (counter saturated) still leaves
  // the fd readable, so the wakeup is never lost.
  [[maybe_unused]] ssize_t n = ::write(wakeup_fd_, &one, sizeof(one));
}

int EventLoop::RunOnce(int timeout_ms) {
  if (!status_.ok()) return -1;
  struct epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    QEC_LOG(Error) << "epoll_wait failed: " << std::strerror(errno);
    return -1;
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wakeup_fd_) {
      uint64_t drained;
      while (::read(wakeup_fd_, &drained, sizeof(drained)) > 0) {
      }
      continue;
    }
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;  // removed by an earlier handler
    // Copy the shared_ptr: the handler may Remove(fd) (connection close)
    // while executing.
    std::shared_ptr<FdHandler> handler = it->second;
    (*handler)(events[i].events);
    ++dispatched;
  }
  DrainPosted();
  return dispatched;
}

void EventLoop::DrainPosted() {
  std::vector<Task> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    tasks.swap(posted_);
    // Tasks posted from here on need a fresh eventfd write: the swap above
    // is the last point this drain observes the queue.
    wakeup_pending_ = false;
  }
  for (Task& task : tasks) task();
}

size_t EventLoop::num_fds() const { return handlers_.size(); }

}  // namespace qec::server::net
