#include "server/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/string_util.h"
#include "obs/json.h"

namespace qec::server {

namespace {

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

// Strict unsigned decimal: digits only, no leading whitespace/'+'/'-'
// (strtoull accepts all three — and wraps "-1" to 2^64-1), overflow
// rejected.
bool ParseSize(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (std::numeric_limits<uint64_t>::max() - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

bool ParseBool(const std::string& text, bool* out) {
  if (text == "0" || text == "false") {
    *out = false;
    return true;
  }
  if (text == "1" || text == "true") {
    *out = true;
    return true;
  }
  return false;
}

Status BadOption(const std::string& token) {
  return Status::InvalidArgument("malformed option '" + token + "'");
}

// FNV-1a, folding raw bytes of each field.
struct Fingerprinter {
  uint64_t h = 1469598103934665603ULL;

  void Bytes(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void D(double v) { Bytes(&v, sizeof(v)); }
  void B(bool v) { U64(v ? 1 : 0); }
};

}  // namespace

Result<ServeRequest> ParseRequestLine(std::string_view line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return Status::InvalidArgument("empty request line");

  ServeRequest request;
  const std::string verb = AsciiLower(tokens[0]);
  if (verb == "ping") {
    request.verb = ServeRequest::Verb::kPing;
    return request;
  }
  if (verb == "stats") {
    request.verb = ServeRequest::Verb::kStats;
    return request;
  }
  if (verb == "metrics") {
    request.verb = ServeRequest::Verb::kMetrics;
    return request;
  }
  if (verb == "slowlog") {
    request.verb = ServeRequest::Verb::kSlowlog;
    if (tokens.size() > 2) {
      return Status::InvalidArgument("SLOWLOG takes at most one count");
    }
    if (tokens.size() == 2) {
      uint64_t n = 0;
      if (!ParseSize(tokens[1], &n) || n == 0) {
        return Status::InvalidArgument("malformed SLOWLOG count '" +
                                       tokens[1] + "'");
      }
      request.slowlog_count = static_cast<size_t>(n);
    }
    return request;
  }
  if (verb == "abtest") {
    request.verb = ServeRequest::Verb::kAbtest;
    if (tokens.size() > 2) {
      return Status::InvalidArgument("ABTEST takes at most one count");
    }
    if (tokens.size() == 2) {
      uint64_t n = 0;
      if (!ParseSize(tokens[1], &n)) {
        return Status::InvalidArgument("malformed ABTEST count '" +
                                       tokens[1] + "'");
      }
      request.abtest_count = static_cast<size_t>(n);
    }
    return request;
  }
  if (verb != "expand" && verb != "explain") {
    return Status::InvalidArgument("unknown verb '" + tokens[0] + "'");
  }
  request.verb = verb == "expand" ? ServeRequest::Verb::kExpand
                                  : ServeRequest::Verb::kExplain;

  std::vector<std::string> query_words;
  bool in_options = true;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (in_options && token == "--") {
      in_options = false;
      continue;
    }
    const size_t eq = token.find('=');
    if (!in_options || eq == std::string::npos || eq == 0) {
      in_options = false;  // First query word ends option parsing for good.
      query_words.push_back(token);
      continue;
    }
    const std::string key = AsciiLower(token.substr(0, eq));
    const std::string value = token.substr(eq + 1);
    uint64_t n = 0;
    bool b = false;
    if (key == "k") {
      if (!ParseSize(value, &n) || n == 0) return BadOption(token);
      request.max_clusters = static_cast<size_t>(n);
    } else if (key == "algo") {
      if (value == "iskr") {
        request.algorithm = core::ExpansionAlgorithm::kIskr;
      } else if (value == "pebc") {
        request.algorithm = core::ExpansionAlgorithm::kPebc;
      } else if (value == "fmeasure") {
        request.algorithm = core::ExpansionAlgorithm::kFMeasure;
      } else {
        return BadOption(token);
      }
    } else if (key == "topk") {
      if (!ParseSize(value, &n)) return BadOption(token);
      request.top_k_results = static_cast<size_t>(n);
    } else if (key == "minimize") {
      if (!ParseBool(value, &b)) return BadOption(token);
      request.minimize_queries = b;
    } else if (key == "weights") {
      if (!ParseBool(value, &b)) return BadOption(token);
      request.use_ranking_weights = b;
    } else if (key == "threads") {
      if (!ParseSize(value, &n)) return BadOption(token);
      request.num_threads = static_cast<size_t>(n);
    } else if (key == "deadline_ms") {
      if (!ParseSize(value, &n)) return BadOption(token);
      request.deadline_ms = n;
    } else if (key == "trace") {
      if (!ParseTraceIdHex(value, &request.trace_id)) return BadOption(token);
    } else {
      return Status::InvalidArgument("unknown option '" + key + "'");
    }
  }
  if (query_words.empty()) {
    return Status::InvalidArgument(
        request.verb == ServeRequest::Verb::kExplain
            ? "EXPLAIN needs query words"
            : "EXPAND needs query words");
  }
  request.query = Join(query_words, " ");
  return request;
}

std::string NormalizeQuery(std::string_view query) {
  std::string out;
  out.reserve(query.size());
  bool pending_space = false;
  for (char c : query) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

uint64_t OptionsFingerprint(const core::QueryExpanderOptions& options) {
  Fingerprinter fp;
  fp.U64(options.top_k_results);
  fp.U64(options.max_clusters);
  fp.B(options.use_ranking_weights);
  fp.U64(static_cast<uint64_t>(options.algorithm));
  fp.U64(static_cast<uint64_t>(options.retrieval));
  fp.U64(static_cast<uint64_t>(options.clustering));
  fp.U64(options.interleave_rounds);
  fp.B(options.minimize_queries);
  // num_threads, memoize_set_algebra, and explain_terms are deliberately
  // excluded: they change how an expansion is computed (or what diagnostics
  // ride along), never the queries it returns. Explain requests bypass the
  // cache anyway — cached outcomes carry no per-term rows.
  fp.D(options.candidates.fraction);
  fp.U64(options.candidates.max_candidates);
  fp.B(options.candidates.drop_universal_terms);
  fp.U64(options.iskr.max_iterations);
  fp.B(options.iskr.allow_removal);
  fp.U64(options.pebc.num_segments);
  fp.U64(options.pebc.num_iterations);
  fp.U64(static_cast<uint64_t>(options.pebc.strategy));
  fp.U64(options.pebc.seed);
  fp.U64(options.fmeasure.max_iterations);
  fp.B(options.fmeasure.allow_removal);
  fp.U64(options.kmeans.k);
  fp.U64(options.kmeans.max_iterations);
  fp.U64(options.kmeans.seed);
  fp.B(options.kmeans.auto_k);
  return fp.h;
}

std::string ExpansionCacheKey(std::string_view normalized_query,
                              size_t max_clusters,
                              core::ExpansionAlgorithm algorithm,
                              uint64_t options_fingerprint) {
  std::string key(normalized_query);
  key.push_back('\x1f');  // Unit separator: cannot appear in a token.
  key += std::to_string(max_clusters);
  key.push_back('\x1f');
  key += std::to_string(static_cast<int>(algorithm));
  key.push_back('\x1f');
  key += std::to_string(options_fingerprint);
  return key;
}

namespace {

/// Appends a millisecond timing as fixed-point with 0.1us resolution
/// ("1.6910"). The wire carries human-scale diagnostics — exact
/// nanoseconds live in the stage histograms — and integer formatting is
/// ~5x cheaper than snprintf("%.17g"), which matters at one render per
/// request on the hot path.
void AppendMillis(std::string* out, double ms) {
  if (!std::isfinite(ms) || ms < 0.0 || ms >= 1e13) {
    *out += obs::json::NumberToString(ms);
    return;
  }
  const uint64_t tenth_us = static_cast<uint64_t>(ms * 1e4 + 0.5);
  *out += std::to_string(tenth_us / 10000);
  const unsigned frac = static_cast<unsigned>(tenth_us % 10000);
  const char digits[4] = {static_cast<char>('0' + frac / 1000),
                          static_cast<char>('0' + (frac / 100) % 10),
                          static_cast<char>('0' + (frac / 10) % 10),
                          static_cast<char>('0' + frac % 10)};
  out->push_back('.');
  out->append(digits, 4);
}

}  // namespace

std::string ResponseToJsonLine(const ServeResponse& response) {
  using obs::json::NumberToString;
  using obs::json::Quote;
  std::string out = "{";
  if (!response.status.ok()) {
    out += "\"status\":\"error\",\"code\":";
    out += Quote(StatusCodeName(response.status.code()));
    if (response.trace_id != 0) {
      out += ",\"trace_id\":" + Quote(TraceIdToHex(response.trace_id));
    }
    out += ",\"message\":";
    out += Quote(response.status.message());
    out += "}";
    return out;
  }
  // Volatile, per-request fields first; everything derived from the outcome
  // lives in the tail so cached responses splice a pre-rendered string.
  // This prefix renders once per request on the hot path: append piecewise
  // (no operator+ temporaries) and reuse pre-quoted stage keys.
  static const std::vector<std::string> kStageKeys = [] {
    std::vector<std::string> keys;
    for (size_t s = 0; s < kNumStages; ++s) {
      keys.push_back(std::string(s > 0 ? "," : "") +
                     Quote(std::string(StageName(static_cast<Stage>(s)))) +
                     ":");
    }
    return keys;
  }();
  out.reserve(224 + response.rendered_tail.size());
  out += "\"status\":\"ok\"";
  if (response.trace_id != 0) {
    out += ",\"trace_id\":\"";
    out += TraceIdToHex(response.trace_id);
    out += '"';
  }
  out += ",\"cached\":";
  out += response.from_cache ? "true" : "false";
  out += ",\"queue_ms\":";
  AppendMillis(&out, response.queue_seconds * 1e3);
  out += ",\"total_ms\":";
  AppendMillis(&out, response.total_seconds * 1e3);
  out += ",\"stages_ms\":{";
  for (size_t s = 0; s < kNumStages; ++s) {
    out += kStageKeys[s];
    AppendMillis(&out, static_cast<double>(response.stages.ns[s]) / 1e6);
  }
  out += "}";
  if (!response.rendered_tail.empty()) {
    out += response.rendered_tail;
  } else {
    out += RenderOutcomeTail(response.outcome);
  }
  return out;
}

std::string RenderOutcomeTail(const core::ExpansionOutcome& o) {
  using obs::json::NumberToString;
  using obs::json::Quote;
  std::string out;
  out += ",\"clusters\":" + std::to_string(o.num_clusters);
  out += ",\"results_used\":" + std::to_string(o.num_results_used);
  out += ",\"set_score\":" + NumberToString(o.set_score);
  out += ",\"queries\":[";
  for (size_t i = 0; i < o.queries.size(); ++i) {
    const core::ExpandedQuery& q = o.queries[i];
    if (i > 0) out += ",";
    out += "{\"keywords\":[";
    for (size_t k = 0; k < q.keywords.size(); ++k) {
      if (k > 0) out += ",";
      out += Quote(q.keywords[k]);
    }
    out += "],\"cluster_size\":" + std::to_string(q.cluster_size);
    out += ",\"precision\":" + NumberToString(q.quality.precision);
    out += ",\"recall\":" + NumberToString(q.quality.recall);
    out += ",\"f_measure\":" + NumberToString(q.quality.f_measure);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace qec::server
