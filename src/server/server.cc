#include "server/server.h"

#include <limits>
#include <utility>

#include "common/threading.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qec::server {

namespace {

uint64_t ToNanos(std::chrono::steady_clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

double ToSeconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

QecServer::QecServer(const index::InvertedIndex& index, ServerOptions options)
    : index_(&index), options_(std::move(options)) {
  pool_size_ = ResolveThreadCount(options_.num_threads,
                                  std::numeric_limits<size_t>::max());
  if (options_.enable_expansion_cache) {
    cache_ = std::make_unique<ShardedLruCache<std::string, ServeResponse>>(
        options_.expansion_cache_capacity, options_.expansion_cache_shards);
  }
  if (options_.start_workers) Start();
}

QecServer::~QecServer() { Shutdown(); }

void QecServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_ || !workers_.empty()) return;
  workers_.reserve(pool_size_);
  for (size_t i = 0; i < pool_size_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void QecServer::Shutdown() {
  std::vector<std::thread> to_join;
  std::deque<Pending> to_reject;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    to_join.swap(workers_);
    if (to_join.empty()) {
      // Pool never ran (or already joined): nobody will drain the queue,
      // so reject whatever is still waiting.
      to_reject.swap(queue_);
      UpdateQueueDepthLocked();
    }
  }
  cv_.notify_all();
  for (auto& pending : to_reject) {
    ServeResponse response;
    response.status = Status::Unavailable("server shutting down");
    response.total_seconds = ToSeconds(Clock::now() - pending.submit_time);
    pending.promise.set_value(std::move(response));
  }
  for (auto& worker : to_join) worker.join();
}

std::future<ServeResponse> QecServer::Submit(ServeRequest request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  QEC_COUNTER_INC("server/requests");

  Pending pending;
  pending.submit_time = Clock::now();
  const uint64_t deadline_ms = request.deadline_ms != 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;
  pending.deadline = deadline_ms != 0
                         ? pending.submit_time +
                               std::chrono::milliseconds(deadline_ms)
                         : Clock::time_point::max();
  pending.request = std::move(request);
  std::future<ServeResponse> future = pending.promise.get_future();

  auto reject = [&](Status status, std::atomic<uint64_t>* counter) {
    if (counter != nullptr) counter->fetch_add(1, std::memory_order_relaxed);
    ServeResponse response;
    response.status = std::move(status);
    pending.promise.set_value(std::move(response));
    return std::move(future);
  };

  if (pending.request.verb != ServeRequest::Verb::kExpand) {
    return reject(
        Status::InvalidArgument("only EXPAND goes through the request queue"),
        nullptr);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return reject(Status::Unavailable("server shutting down"), nullptr);
    }
    if (queue_.size() >= options_.queue_capacity) {
      QEC_COUNTER_INC("server/shed_queue_full");
      return reject(Status::Unavailable("admission queue full"),
                    &shed_queue_full_);
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("server/admitted");
    queue_.push_back(std::move(pending));
    UpdateQueueDepthLocked();
  }
  cv_.notify_one();
  return future;
}

void QecServer::WorkerLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      pending = std::move(queue_.front());
      queue_.pop_front();
      UpdateQueueDepthLocked();
    }
    Process(std::move(pending));
  }
}

void QecServer::Process(Pending pending) {
  const Clock::time_point dequeue_time = Clock::now();
  QEC_HISTOGRAM_RECORD("server/queue_wait_ns",
                       ToNanos(dequeue_time - pending.submit_time));

  ServeResponse response;
  const ServeRequest& request = pending.request;
  if (request.cancel != nullptr &&
      request.cancel->load(std::memory_order_relaxed)) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("server/cancelled");
    response.status = Status::Cancelled("request cancelled before execution");
  } else if (dequeue_time > pending.deadline) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("server/shed_deadline");
    response.status =
        Status::DeadlineExceeded("deadline passed while request was queued");
  } else {
    response = Execute(request);
  }

  const Clock::time_point done = Clock::now();
  response.queue_seconds = ToSeconds(dequeue_time - pending.submit_time);
  response.total_seconds = ToSeconds(done - pending.submit_time);
  QEC_HISTOGRAM_RECORD("server/request_latency_ns",
                       ToNanos(done - pending.submit_time));
  completed_.fetch_add(1, std::memory_order_relaxed);
  QEC_COUNTER_INC("server/completed");
  pending.promise.set_value(std::move(response));
}

ServeResponse QecServer::Execute(const ServeRequest& request) {
  QEC_TRACE_SPAN("server/execute");
  ServeResponse response;
  if (request.verb != ServeRequest::Verb::kExpand) {
    response.status =
        Status::InvalidArgument("only EXPAND requests are executable");
    return response;
  }

  const core::QueryExpanderOptions effective = EffectiveOptions(request);
  std::string key;
  if (cache_ != nullptr) {
    key = ExpansionCacheKey(NormalizeQuery(request.query),
                            effective.max_clusters, effective.algorithm,
                            OptionsFingerprint(effective));
    std::optional<ServeResponse> hit = cache_->Get(key);
    if (hit.has_value()) {
      QEC_COUNTER_INC("server/cache_hits");
      hit->from_cache = true;
      return *std::move(hit);
    }
    QEC_COUNTER_INC("server/cache_misses");
  }

  core::QueryExpander expander(*index_, effective);
  Result<core::ExpansionOutcome> outcome = expander.ExpandText(request.query);
  if (!outcome.ok()) {
    response.status = outcome.status();
    return response;
  }
  response.outcome = *std::move(outcome);
  if (cache_ != nullptr) {
    // Only successful expansions are cached (no negative caching): errors
    // are either caller mistakes or transient, and both should re-resolve.
    cache_->Put(key, response);
  }
  return response;
}

core::QueryExpanderOptions QecServer::EffectiveOptions(
    const ServeRequest& r) const {
  core::QueryExpanderOptions o = options_.expander;
  if (r.max_clusters.has_value()) o.max_clusters = *r.max_clusters;
  if (r.algorithm.has_value()) o.algorithm = *r.algorithm;
  if (r.top_k_results.has_value()) o.top_k_results = *r.top_k_results;
  if (r.minimize_queries.has_value()) o.minimize_queries = *r.minimize_queries;
  if (r.use_ranking_weights.has_value()) {
    o.use_ranking_weights = *r.use_ranking_weights;
  }
  if (r.num_threads.has_value()) o.num_threads = *r.num_threads;
  o.memoize_set_algebra = options_.enable_set_algebra_cache;
  return o;
}

void QecServer::UpdateQueueDepthLocked() {
  const size_t depth = queue_.size();
  QEC_GAUGE_SET("server/queue_depth", static_cast<double>(depth));
  if (depth > peak_queue_depth_) {
    peak_queue_depth_ = depth;
    QEC_GAUGE_SET("server/queue_depth_peak", static_cast<double>(depth));
  }
}

size_t QecServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t QecServer::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

ServerStats QecServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) s.expansion_cache = cache_->stats();
  return s;
}

std::string QecServer::StatsJsonLine() const {
  const ServerStats s = stats();
  std::string out = "{\"status\":\"ok\"";
  out += ",\"docs\":" + std::to_string(index_->corpus().NumDocs());
  out += ",\"queue_depth\":" + std::to_string(queue_depth());
  out += ",\"queue_capacity\":" + std::to_string(options_.queue_capacity);
  out += ",\"workers\":" + std::to_string(num_workers());
  out += ",\"submitted\":" + std::to_string(s.submitted);
  out += ",\"admitted\":" + std::to_string(s.admitted);
  out += ",\"completed\":" + std::to_string(s.completed);
  out += ",\"shed_queue_full\":" + std::to_string(s.shed_queue_full);
  out += ",\"shed_deadline\":" + std::to_string(s.shed_deadline);
  out += ",\"cancelled\":" + std::to_string(s.cancelled);
  out += ",\"cache\":{\"enabled\":";
  out += cache_ != nullptr ? "true" : "false";
  out += ",\"hits\":" + std::to_string(s.expansion_cache.hits);
  out += ",\"misses\":" + std::to_string(s.expansion_cache.misses);
  out += ",\"evictions\":" + std::to_string(s.expansion_cache.evictions);
  out += ",\"entries\":" + std::to_string(s.expansion_cache.entries);
  out += "}}";
  return out;
}

}  // namespace qec::server
