#include "server/server.h"

#include <limits>
#include <utility>

#include "common/simd_kernels.h"
#include "common/sweep_pool.h"
#include "common/threading.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qec::server {

namespace {

uint64_t ToNanos(std::chrono::steady_clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

double ToSeconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

uint64_t UnixMillisNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Exact per-stage tail counters: histogram buckets are power-of-two wide
/// at the millisecond scale, so "how many requests crossed 10ms in
/// expansion" needs its own counters to be exact rather than estimated.
void RecordStageTails(const StageTimings& stages) {
  const uint64_t qw = stages[Stage::kQueueWait];
  if (qw > 1'000'000) QEC_COUNTER_INC("server/stage/queue_wait_gt_1ms");
  if (qw > 10'000'000) QEC_COUNTER_INC("server/stage/queue_wait_gt_10ms");
  if (qw > 100'000'000) QEC_COUNTER_INC("server/stage/queue_wait_gt_100ms");
  const uint64_t cl = stages[Stage::kCacheLookup];
  if (cl > 1'000'000) QEC_COUNTER_INC("server/stage/cache_lookup_gt_1ms");
  if (cl > 10'000'000) QEC_COUNTER_INC("server/stage/cache_lookup_gt_10ms");
  if (cl > 100'000'000) QEC_COUNTER_INC("server/stage/cache_lookup_gt_100ms");
  const uint64_t ex = stages[Stage::kExpansion];
  if (ex > 1'000'000) QEC_COUNTER_INC("server/stage/expansion_gt_1ms");
  if (ex > 10'000'000) QEC_COUNTER_INC("server/stage/expansion_gt_10ms");
  if (ex > 100'000'000) QEC_COUNTER_INC("server/stage/expansion_gt_100ms");
  const uint64_t se = stages[Stage::kSerialize];
  if (se > 1'000'000) QEC_COUNTER_INC("server/stage/serialize_gt_1ms");
  if (se > 10'000'000) QEC_COUNTER_INC("server/stage/serialize_gt_10ms");
  if (se > 100'000'000) QEC_COUNTER_INC("server/stage/serialize_gt_100ms");
}

void RecordStageHistograms(const StageTimings& stages, uint64_t trace_id) {
  // Traced records attach the request's trace id as a bucket exemplar, so
  // a slow bucket on the scrape links straight to its flight-recorder
  // record (SLOWLOG / EXPLAIN by trace id).
  QEC_HISTOGRAM_RECORD_TRACED("server/stage/queue_wait_ns",
                              stages[Stage::kQueueWait], trace_id);
  QEC_HISTOGRAM_RECORD_TRACED("server/stage/cache_lookup_ns",
                              stages[Stage::kCacheLookup], trace_id);
  QEC_HISTOGRAM_RECORD_TRACED("server/stage/expansion_ns",
                              stages[Stage::kExpansion], trace_id);
  QEC_HISTOGRAM_RECORD_TRACED("server/stage/serialize_ns",
                              stages[Stage::kSerialize], trace_id);
  RecordStageTails(stages);
}

}  // namespace

QecServer::QecServer(const index::InvertedIndex& index, ServerOptions options)
    : index_(&index),
      options_(std::move(options)),
      start_time_(Clock::now()),
      recorder_(options_.flight_recorder_capacity) {
  pool_size_ = ResolveThreadCount(options_.num_threads,
                                  std::numeric_limits<size_t>::max());
  if (options_.enable_expansion_cache) {
    cache_ = std::make_unique<ShardedLruCache<std::string, ServeResponse>>(
        options_.expansion_cache_capacity, options_.expansion_cache_shards);
  }
  if (options_.shadow_sample_rate > 0.0) {
    ShadowEvaluatorOptions shadow_options;
    shadow_options.sample_rate = options_.shadow_sample_rate;
    shadow_options.algorithm = options_.shadow_algorithm;
    shadow_options.seed = options_.shadow_seed;
    shadow_options.dedupe = options_.shadow_dedupe;
    shadow_ = std::make_unique<ShadowEvaluator>(shadow_options);
  }
  recorder_.SetDumpPath(options_.slowlog_dump_path);
  if (options_.start_workers) Start();
}

QecServer::~QecServer() { Shutdown(); }

void QecServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_ || !workers_.empty()) return;
  workers_.reserve(pool_size_);
  for (size_t i = 0; i < pool_size_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void QecServer::Shutdown() {
  std::vector<std::thread> to_join;
  std::deque<Pending> to_reject;
  std::deque<ShadowJob> shadows_to_drop;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    to_join.swap(workers_);
    // Shadows are best-effort: pending ones are dropped (shed) at shutdown
    // rather than draining, whether or not the pool ran.
    shadows_to_drop.swap(shadow_queue_);
    if (to_join.empty()) {
      // Pool never ran (or already joined): nobody will drain the queue,
      // so reject whatever is still waiting.
      to_reject.swap(queue_);
      UpdateQueueDepthLocked();
    }
  }
  cv_.notify_all();
  if (shadow_ != nullptr) {
    for (size_t i = 0; i < shadows_to_drop.size(); ++i) shadow_->RecordShed();
  }
  for (auto& pending : to_reject) {
    ServeResponse response;
    response.status = Status::Unavailable("server shutting down");
    response.trace_id = pending.context.trace_id;
    const uint64_t total_ns =
        ToNanos(Clock::now() - pending.context.submit_time);
    response.total_seconds = static_cast<double>(total_ns) / 1e9;
    RecordFlight(pending.request, response, pending.context, total_ns);
    Fulfill(std::move(pending), std::move(response));
  }
  for (auto& worker : to_join) worker.join();
}

QecServer::Pending QecServer::MakePending(ServeRequest request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  QEC_COUNTER_INC("server/requests");
  Pending pending;
  pending.context.submit_time = Clock::now();
  pending.context.trace_id =
      request.trace_id != 0 ? request.trace_id : GenerateTraceId();
  const uint64_t deadline_ms = request.deadline_ms != 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;
  pending.context.deadline =
      deadline_ms != 0
          ? pending.context.submit_time + std::chrono::milliseconds(deadline_ms)
          : Clock::time_point::max();
  pending.request = std::move(request);
  return pending;
}

void QecServer::Fulfill(Pending pending, ServeResponse response) {
  if (pending.callback) {
    pending.callback(std::move(response));
  } else {
    pending.promise.set_value(std::move(response));
  }
}

void QecServer::Reject(Pending pending, Status status,
                       std::atomic<uint64_t>* counter) {
  if (counter != nullptr) counter->fetch_add(1, std::memory_order_relaxed);
  ServeResponse response;
  response.status = std::move(status);
  response.trace_id = pending.context.trace_id;
  const uint64_t total_ns = ToNanos(Clock::now() - pending.context.submit_time);
  response.total_seconds = static_cast<double>(total_ns) / 1e9;
  RecordFlight(pending.request, response, pending.context, total_ns);
  Fulfill(std::move(pending), std::move(response));
}

std::future<ServeResponse> QecServer::Submit(ServeRequest request) {
  Pending pending = MakePending(std::move(request));
  std::future<ServeResponse> future = pending.promise.get_future();

  if (pending.request.verb != ServeRequest::Verb::kExpand) {
    Reject(std::move(pending),
           Status::InvalidArgument("only EXPAND goes through the request queue"),
           nullptr);
    return future;
  }
  enum class Decision { kAdmitted, kStopping, kQueueFull };
  Decision decision;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      decision = Decision::kStopping;
    } else if (queue_.size() >= options_.queue_capacity) {
      QEC_COUNTER_INC("server/shed_queue_full");
      decision = Decision::kQueueFull;
    } else {
      admitted_.fetch_add(1, std::memory_order_relaxed);
      QEC_COUNTER_INC("server/admitted");
      queue_.push_back(std::move(pending));
      UpdateQueueDepthLocked();
      decision = Decision::kAdmitted;
    }
  }
  switch (decision) {
    case Decision::kAdmitted:
      cv_.notify_one();
      break;
    case Decision::kStopping:
      Reject(std::move(pending), Status::Unavailable("server shutting down"),
             nullptr);
      break;
    case Decision::kQueueFull:
      Reject(std::move(pending), Status::Unavailable("admission queue full"),
             &shed_queue_full_);
      break;
  }
  return future;
}

void QecServer::SubmitBatch(std::vector<AsyncRequest> batch) {
  struct Rejection {
    Pending pending;
    Status status;
    std::atomic<uint64_t>* counter;
  };
  std::vector<Pending> to_admit;
  to_admit.reserve(batch.size());
  // Rejections are resolved outside the queue lock: callbacks may do
  // arbitrary work (post to an event loop) and must never run under mu_.
  std::vector<Rejection> to_reject;

  for (auto& entry : batch) {
    Pending pending = MakePending(std::move(entry.request));
    pending.callback = std::move(entry.on_done);
    if (pending.request.verb != ServeRequest::Verb::kExpand) {
      to_reject.push_back(
          {std::move(pending),
           Status::InvalidArgument("only EXPAND goes through the request queue"),
           nullptr});
      continue;
    }
    to_admit.push_back(std::move(pending));
  }

  size_t admitted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& pending : to_admit) {
      if (stopping_) {
        to_reject.push_back({std::move(pending),
                             Status::Unavailable("server shutting down"),
                             nullptr});
        continue;
      }
      if (queue_.size() >= options_.queue_capacity) {
        QEC_COUNTER_INC("server/shed_queue_full");
        to_reject.push_back({std::move(pending),
                             Status::Unavailable("admission queue full"),
                             &shed_queue_full_});
        continue;
      }
      admitted_.fetch_add(1, std::memory_order_relaxed);
      QEC_COUNTER_INC("server/admitted");
      queue_.push_back(std::move(pending));
      ++admitted;
    }
    if (admitted > 0) UpdateQueueDepthLocked();
  }
  QEC_HISTOGRAM_RECORD("server/batch_admitted", admitted);
  if (admitted == 1) {
    cv_.notify_one();
  } else if (admitted > 1) {
    cv_.notify_all();
  }
  for (auto& rejection : to_reject) {
    Reject(std::move(rejection.pending), std::move(rejection.status),
           rejection.counter);
  }
}

void QecServer::WorkerLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stopping_ || !queue_.empty() || !shadow_queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_) return;  // Foreground drained; shadows are dropped.
        // Foreground queue empty: drain the low-priority class. Shadows
        // only ever run in cycles a foreground request would have left
        // idle — a new Submit wakes another worker via cv_.
        ShadowJob job = std::move(shadow_queue_.front());
        shadow_queue_.pop_front();
        lock.unlock();
        RunShadow(std::move(job));
        continue;
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
      UpdateQueueDepthLocked();
    }
    Process(std::move(pending));
  }
}

void QecServer::Process(Pending pending) {
  RequestContext& context = pending.context;
  const Clock::time_point dequeue_time = Clock::now();
  context.stages[Stage::kQueueWait] =
      ToNanos(dequeue_time - context.submit_time);
  QEC_HISTOGRAM_RECORD("server/queue_wait_ns",
                       context.stages[Stage::kQueueWait]);

  ServeResponse response;
  const ServeRequest& request = pending.request;
  if (request.cancel != nullptr &&
      request.cancel->load(std::memory_order_relaxed)) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("server/cancelled");
    response.status = Status::Cancelled("request cancelled before execution");
  } else if (dequeue_time > context.deadline) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("server/shed_deadline");
    response.status =
        Status::DeadlineExceeded("deadline passed while request was queued");
  } else {
    response = Execute(request, &context);
    MaybeScheduleShadow(request, response, &context);
  }

  // Render the wire line here, inside the timed serialize stage. The
  // stages_ms the line itself carries therefore shows serialize as 0; the
  // response struct, the stage histograms, and the flight recorder all get
  // the real value.
  response.trace_id = context.trace_id;
  response.queue_seconds = ToSeconds(dequeue_time - context.submit_time);
  response.total_seconds = ToSeconds(Clock::now() - context.submit_time);
  response.stages = context.stages;
  {
    StageTimer timer(context, Stage::kSerialize);
    response.json_line = ResponseToJsonLine(response);
  }
  response.stages = context.stages;

  const Clock::time_point done = Clock::now();
  const uint64_t total_ns = ToNanos(done - context.submit_time);
  response.total_seconds = static_cast<double>(total_ns) / 1e9;
  QEC_HISTOGRAM_RECORD_TRACED("server/request_latency_ns", total_ns,
                              context.trace_id);
  RecordStageHistograms(context.stages, context.trace_id);
  if (options_.slow_request_threshold_ms != 0 &&
      total_ns >= options_.slow_request_threshold_ms * 1'000'000ULL) {
    slow_requests_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("server/slow_requests");
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  QEC_COUNTER_INC("server/completed");
  RecordFlight(request, response, context, total_ns);
  Fulfill(std::move(pending), std::move(response));
}

ServeResponse QecServer::Execute(const ServeRequest& request) {
  RequestContext context;
  context.trace_id =
      request.trace_id != 0 ? request.trace_id : GenerateTraceId();
  context.submit_time = Clock::now();
  ServeResponse response = Execute(request, &context);
  MaybeScheduleShadow(request, response, &context);
  response.trace_id = context.trace_id;
  response.stages = context.stages;
  response.total_seconds = ToSeconds(Clock::now() - context.submit_time);
  return response;
}

ServeResponse QecServer::Execute(const ServeRequest& request,
                                 RequestContext* context) {
  QEC_TRACE_SPAN("server/execute");
  ServeResponse response;
  if (request.verb != ServeRequest::Verb::kExpand) {
    response.status =
        Status::InvalidArgument("only EXPAND requests are executable");
    return response;
  }

  const core::QueryExpanderOptions effective = EffectiveOptions(request);
  std::string key;
  if (cache_ != nullptr) {
    StageTimer timer(*context, Stage::kCacheLookup);
    key = ExpansionCacheKey(NormalizeQuery(request.query),
                            effective.max_clusters, effective.algorithm,
                            OptionsFingerprint(effective));
    std::optional<ServeResponse> hit = cache_->Get(key);
    if (hit.has_value()) {
      QEC_COUNTER_INC("server/cache_hits");
      hit->from_cache = true;
      // Identity and timing are per-request, never per-cache-entry: drop
      // whatever the original computation left behind. rendered_tail stays:
      // it depends only on the outcome, which is exactly what the cache
      // deduplicates.
      hit->trace_id = 0;
      hit->stages = StageTimings{};
      hit->json_line.clear();
      return *std::move(hit);
    }
    QEC_COUNTER_INC("server/cache_misses");
  }

  Result<core::ExpansionOutcome> outcome = [&] {
    StageTimer timer(*context, Stage::kExpansion);
    core::QueryExpander expander(*index_, effective);
    return expander.ExpandText(request.query);
  }();
  if (!outcome.ok()) {
    response.status = outcome.status();
    return response;
  }
  response.outcome = *std::move(outcome);
  if (cache_ != nullptr) {
    // Only successful expansions are cached (no negative caching): errors
    // are either caller mistakes or transient, and both should re-resolve.
    // The rendered tail rides along with the entry so hits splice a string
    // instead of re-formatting the whole queries array per request.
    StageTimer timer(*context, Stage::kCacheLookup);
    response.rendered_tail = RenderOutcomeTail(response.outcome);
    cache_->Put(key, response);
  }
  return response;
}

void QecServer::MaybeScheduleShadow(const ServeRequest& request,
                                    const ServeResponse& response,
                                    RequestContext* context) {
  if (shadow_ == nullptr) return;
  if (request.verb != ServeRequest::Verb::kExpand) return;
  if (!response.status.ok()) return;

  const core::QueryExpanderOptions effective = EffectiveOptions(request);
  // Same algorithm on both arms compares nothing — don't burn a sample.
  if (effective.algorithm == options_.shadow_algorithm) return;
  if (!shadow_->ShouldSample()) return;

  core::QueryExpanderOptions shadow_options = effective;
  shadow_options.algorithm = options_.shadow_algorithm;
  shadow_options.explain_terms = false;
  if (options_.shadow_dedupe) {
    // Key the comparison, not just the shadow run: primary algo + the
    // shadow arm's cache identity.
    std::string key = ExpansionCacheKey(
        NormalizeQuery(request.query), shadow_options.max_clusters,
        shadow_options.algorithm, OptionsFingerprint(shadow_options));
    key.push_back('\x1f');
    key += std::to_string(static_cast<int>(effective.algorithm));
    if (shadow_->SeenRecently(key)) {
      shadow_->RecordDeduped();
      return;
    }
  }

  ShadowJob job;
  job.trace_id = context->trace_id;
  job.query = request.query;
  job.primary_algo = std::string(core::AlgorithmName(effective.algorithm));
  job.primary_score = response.outcome.set_score;
  // A cache hit's expansion stage reads 0 — fall back to the expansion
  // time the original computation recorded in the cached outcome.
  job.primary_expansion_ns =
      response.from_cache
          ? static_cast<uint64_t>(response.outcome.expansion_seconds * 1e9)
          : context->stages[Stage::kExpansion];
  job.options = std::move(shadow_options);

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Shed rather than queue when the server is saturated: a full
    // foreground queue means every worker cycle is spoken for, and the
    // whole point of the low-priority class is that shadows never displace
    // foreground work.
    if (stopping_ || shadow_queue_.size() >= options_.shadow_queue_capacity ||
        queue_.size() >= options_.queue_capacity) {
      shadow_->RecordShed();
      return;
    }
    shadow_queue_.push_back(std::move(job));
    QEC_GAUGE_SET("shadow/queue_depth",
                  static_cast<double>(shadow_queue_.size()));
  }
  context->shadow_sampled = true;
  cv_.notify_one();
}

void QecServer::RunShadow(ShadowJob job) {
  QEC_TRACE_SPAN("server/shadow");
  {
    std::lock_guard<std::mutex> lock(mu_);
    QEC_GAUGE_SET("shadow/queue_depth",
                  static_cast<double>(shadow_queue_.size()));
  }
  const Clock::time_point start = Clock::now();
  // The shadow arm runs the expander directly: it must never read or fill
  // the expansion cache (a shadow hit would measure the cache, not the
  // algorithm — and a shadow fill would poison foreground entries keyed by
  // a different algorithm's fingerprint).
  core::QueryExpander expander(*index_, job.options);
  Result<core::ExpansionOutcome> outcome = expander.ExpandText(job.query);
  const uint64_t shadow_ns = ToNanos(Clock::now() - start);
  if (!outcome.ok()) {
    shadow_->RecordError();
    return;
  }

  const ShadowComparison comparison = shadow_->Compare(
      job.trace_id, job.query, job.primary_algo, job.primary_score,
      job.primary_expansion_ns, outcome->set_score,
      static_cast<uint64_t>(outcome->expansion_seconds * 1e9));

  // Flight-record the comparison so SLOWLOG interleaves quality verdicts
  // with the requests they describe (same trace id as the foreground
  // request). Work counters are the shadow arm's.
  obs::RequestRecord record;
  record.trace_id = job.trace_id;
  record.unix_ms = UnixMillisNow();
  record.query = job.query;
  record.algo = job.primary_algo;
  record.status = std::string(StatusCodeName(StatusCode::kOk));
  record.expansion_ns = job.primary_expansion_ns;
  record.total_ns = shadow_ns;
  record.iskr_steps = outcome->iskr_stats.steps;
  record.iskr_candidates_evaluated = outcome->iskr_stats.candidates_evaluated;
  record.pebc_samples_drawn = outcome->pebc_stats.samples_drawn;
  record.pebc_candidates_evaluated = outcome->pebc_stats.candidates_evaluated;
  record.set_score = comparison.primary_score;
  record.shadow_sampled = true;
  record.shadow_algo = comparison.shadow_algo;
  record.shadow_set_score = comparison.shadow_score;
  record.ab_winner = comparison.winner;
  record.shadow_expansion_ns = comparison.shadow_expansion_ns;
  recorder_.Record(record);
  // A shadow win is a foreground quality miss — dump it like an error so
  // low-quality requests are as greppable as slow ones.
  if (comparison.winner == "shadow") recorder_.Dump(record);
}

core::QueryExpanderOptions QecServer::EffectiveOptions(
    const ServeRequest& r) const {
  core::QueryExpanderOptions o = options_.expander;
  if (r.max_clusters.has_value()) o.max_clusters = *r.max_clusters;
  if (r.algorithm.has_value()) o.algorithm = *r.algorithm;
  if (r.top_k_results.has_value()) o.top_k_results = *r.top_k_results;
  if (r.minimize_queries.has_value()) o.minimize_queries = *r.minimize_queries;
  if (r.use_ranking_weights.has_value()) {
    o.use_ranking_weights = *r.use_ranking_weights;
  }
  if (r.num_threads.has_value()) o.num_threads = *r.num_threads;
  o.memoize_set_algebra = options_.enable_set_algebra_cache;
  return o;
}

void QecServer::RecordFlight(const ServeRequest& request,
                             const ServeResponse& response,
                             const RequestContext& context,
                             uint64_t total_ns) {
  obs::RequestRecord record;
  record.trace_id = context.trace_id;
  record.unix_ms = UnixMillisNow();
  record.query = request.query;
  // Only the algorithm is needed; skip the full EffectiveOptions copy.
  record.algo = std::string(core::AlgorithmName(
      request.algorithm.value_or(options_.expander.algorithm)));
  record.status = std::string(StatusCodeName(response.status.code()));
  record.from_cache = response.from_cache;
  record.queue_wait_ns = context.stages[Stage::kQueueWait];
  record.cache_lookup_ns = context.stages[Stage::kCacheLookup];
  record.expansion_ns = context.stages[Stage::kExpansion];
  record.serialize_ns = context.stages[Stage::kSerialize];
  record.total_ns = total_ns;
  record.iskr_steps = response.outcome.iskr_stats.steps;
  record.iskr_candidates_evaluated =
      response.outcome.iskr_stats.candidates_evaluated;
  record.pebc_samples_drawn = response.outcome.pebc_stats.samples_drawn;
  record.pebc_candidates_evaluated =
      response.outcome.pebc_stats.candidates_evaluated;
  if (response.status.ok()) record.set_score = response.outcome.set_score;
  record.shadow_sampled = context.shadow_sampled;
  recorder_.Record(record);

  const StatusCode code = response.status.code();
  const bool dump_worthy =
      code == StatusCode::kDeadlineExceeded ||
      code == StatusCode::kUnavailable || code == StatusCode::kCorruption ||
      (options_.slow_request_threshold_ms != 0 &&
       total_ns >= options_.slow_request_threshold_ms * 1'000'000ULL);
  if (dump_worthy) recorder_.Dump(record);
}

void QecServer::UpdateQueueDepthLocked() {
  const size_t depth = queue_.size();
  QEC_GAUGE_SET("server/queue_depth", static_cast<double>(depth));
  if (depth > peak_queue_depth_) {
    peak_queue_depth_ = depth;
    QEC_GAUGE_SET("server/queue_depth_peak", static_cast<double>(depth));
  }
}

size_t QecServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t QecServer::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

ServerStats QecServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.slow_requests = slow_requests_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) s.expansion_cache = cache_->stats();
  return s;
}

double QecServer::uptime_seconds() const {
  return ToSeconds(Clock::now() - start_time_);
}

std::string QecServer::StatsJsonLine() const {
  using obs::json::NumberToString;
  const ServerStats s = stats();
  std::string out = "{\"status\":\"ok\"";
  out += ",\"docs\":" + std::to_string(index_->corpus().NumDocs());
  out += ",\"uptime_seconds\":" + NumberToString(uptime_seconds());
  out += ",\"queue_depth\":" + std::to_string(queue_depth());
  out += ",\"queue_capacity\":" + std::to_string(options_.queue_capacity);
  out += ",\"workers\":" + std::to_string(num_workers());
  // Runtime-dispatched bitset-kernel tier and persistent sweep-pool
  // counters — steady state is zero new spawns per STATS interval.
  out += ",\"kernel\":" +
         obs::json::Quote(qec::simd::ActiveTierName());
  const common::SweepPool::Stats pool =
      common::SweepPool::Instance().GetStats();
  out += ",\"sweep_pool\":{\"runs\":" + std::to_string(pool.runs);
  out += ",\"spawns\":" + std::to_string(pool.spawns);
  out += ",\"reuses\":" + std::to_string(pool.reuses);
  out += "}";
  out += ",\"submitted\":" + std::to_string(s.submitted);
  out += ",\"admitted\":" + std::to_string(s.admitted);
  out += ",\"completed\":" + std::to_string(s.completed);
  out += ",\"shed_queue_full\":" + std::to_string(s.shed_queue_full);
  out += ",\"shed_deadline\":" + std::to_string(s.shed_deadline);
  out += ",\"cancelled\":" + std::to_string(s.cancelled);
  out += ",\"slow_requests\":" + std::to_string(s.slow_requests);
  const uint64_t lookups = s.expansion_cache.hits + s.expansion_cache.misses;
  const double hit_ratio =
      lookups != 0 ? static_cast<double>(s.expansion_cache.hits) /
                         static_cast<double>(lookups)
                   : 0.0;
  out += ",\"cache\":{\"enabled\":";
  out += cache_ != nullptr ? "true" : "false";
  out += ",\"hits\":" + std::to_string(s.expansion_cache.hits);
  out += ",\"misses\":" + std::to_string(s.expansion_cache.misses);
  out += ",\"hit_ratio\":" + NumberToString(hit_ratio);
  out += ",\"evictions\":" + std::to_string(s.expansion_cache.evictions);
  out += ",\"entries\":" + std::to_string(s.expansion_cache.entries);
  out += "},\"slowlog\":{\"capacity\":" + std::to_string(recorder_.capacity());
  out += ",\"recorded\":" + std::to_string(recorder_.total_recorded());
  out += ",\"dumped\":" + std::to_string(recorder_.dumped());
  out += "},\"shadow\":{\"enabled\":";
  out += shadow_ != nullptr ? "true" : "false";
  if (shadow_ != nullptr) {
    const ShadowTallies t = shadow_->tallies();
    out += ",\"sample_rate\":" + NumberToString(options_.shadow_sample_rate);
    out += ",\"algo\":" + obs::json::Quote(std::string(core::AlgorithmName(
                              options_.shadow_algorithm)));
    out += ",\"queue_depth\":" + std::to_string(shadow_queue_depth());
    out += ",\"queue_capacity\":" +
           std::to_string(options_.shadow_queue_capacity);
    out += ",\"sampled\":" + std::to_string(t.sampled);
    out += ",\"executed\":" + std::to_string(t.executed);
    out += ",\"shed\":" + std::to_string(t.shed);
    out += ",\"deduped\":" + std::to_string(t.deduped);
    out += ",\"errors\":" + std::to_string(t.errors);
    out += ",\"primary_wins\":" + std::to_string(t.primary_wins);
    out += ",\"shadow_wins\":" + std::to_string(t.shadow_wins);
    out += ",\"ties\":" + std::to_string(t.ties);
  }
  out += "}}";
  return out;
}

std::string QecServer::SlowlogJsonLine(size_t max) const {
  // The ring can never return more than its capacity: clamp oversized
  // requests up front and say so, instead of silently behaving as if the
  // caller's count had been honored.
  const size_t capacity = recorder_.capacity();
  const bool clamped = max > capacity;
  const size_t effective = clamped ? capacity : max;
  const std::vector<obs::RequestRecord> records = recorder_.Recent(effective);
  std::string out = "{\"status\":\"ok\"";
  out += ",\"count\":" + std::to_string(records.size());
  if (clamped) {
    out += ",\"requested\":" + std::to_string(max);
    out += ",\"clamped_to\":" + std::to_string(capacity);
  }
  out += ",\"total_recorded\":" + std::to_string(recorder_.total_recorded());
  out += ",\"dumped\":" + std::to_string(recorder_.dumped());
  out += ",\"records\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ",";
    out += records[i].ToJsonLine();
  }
  out += "]}";
  return out;
}

size_t QecServer::shadow_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shadow_queue_.size();
}

ShadowTallies QecServer::shadow_tallies() const {
  return shadow_ != nullptr ? shadow_->tallies() : ShadowTallies{};
}

std::string QecServer::AbtestJsonLine(size_t max) const {
  if (shadow_ == nullptr) {
    return "{\"status\":\"ok\",\"enabled\":false,\"sampled\":0,"
           "\"executed\":0,\"shed\":0,\"deduped\":0,\"errors\":0,"
           "\"primary_wins\":0,\"shadow_wins\":0,\"ties\":0,\"recent\":[]}";
  }
  return shadow_->AbtestJsonLine(max);
}

std::string QecServer::ExplainJsonLine(const ServeRequest& request) const {
  using obs::json::NumberToString;
  using obs::json::Quote;
  QEC_COUNTER_INC("server/explain");

  core::QueryExpanderOptions primary = EffectiveOptions(request);
  primary.explain_terms = true;
  core::QueryExpanderOptions secondary = primary;
  secondary.algorithm = options_.shadow_algorithm;
  if (secondary.algorithm == primary.algorithm) {
    // EXPLAIN always shows two arms; when the configured shadow arm
    // coincides with the primary, fall back to its natural counterpart.
    secondary.algorithm = primary.algorithm == core::ExpansionAlgorithm::kPebc
                              ? core::ExpansionAlgorithm::kIskr
                              : core::ExpansionAlgorithm::kPebc;
  }

  // Both arms run the expander directly: EXPLAIN measures the algorithms,
  // never the cache, and cached outcomes carry no per-term rows anyway.
  auto run_arm = [&](const core::QueryExpanderOptions& arm) {
    core::QueryExpander expander(*index_, arm);
    return expander.ExpandText(request.query);
  };
  const Result<core::ExpansionOutcome> primary_outcome = run_arm(primary);
  const Result<core::ExpansionOutcome> shadow_outcome = run_arm(secondary);

  const auto& vocab = index_->corpus().analyzer().vocabulary();
  auto render_arm = [&](core::ExpansionAlgorithm algo,
                        const Result<core::ExpansionOutcome>& r) {
    std::string out = "{\"algo\":";
    out += Quote(std::string(core::AlgorithmName(algo)));
    out += ",\"status\":";
    out += Quote(StatusCodeName(r.status().code()));
    if (!r.ok()) {
      out += ",\"message\":" + Quote(r.status().message());
      out += "}";
      return out;
    }
    const core::ExpansionOutcome& o = *r;
    out += ",\"set_score\":" + NumberToString(o.set_score);
    out += ",\"clusters\":" + std::to_string(o.num_clusters);
    out += ",\"results_used\":" + std::to_string(o.num_results_used);
    out += ",\"expansion_ms\":" + NumberToString(o.expansion_seconds * 1e3);
    out += ",\"queries\":[";
    for (size_t i = 0; i < o.queries.size(); ++i) {
      const core::ExpandedQuery& q = o.queries[i];
      if (i > 0) out += ",";
      out += "{\"keywords\":[";
      for (size_t k = 0; k < q.keywords.size(); ++k) {
        if (k > 0) out += ",";
        out += Quote(q.keywords[k]);
      }
      out += "],\"cluster_size\":" + std::to_string(q.cluster_size);
      out += ",\"precision\":" + NumberToString(q.quality.precision);
      out += ",\"recall\":" + NumberToString(q.quality.recall);
      out += ",\"f_measure\":" + NumberToString(q.quality.f_measure);
      out += ",\"terms\":[";
      for (size_t t = 0; t < q.term_details.size(); ++t) {
        const core::TermExplain& row = q.term_details[t];
        if (t > 0) out += ",";
        out += "{\"term\":" + Quote(vocab.TermString(row.term));
        out += ",\"action\":";
        out += row.is_removal ? "\"remove\"" : "\"add\"";
        out += ",\"benefit\":" + NumberToString(row.benefit);
        out += ",\"cost\":" + NumberToString(row.cost);
        // A zero-cost term has infinite value; clamp so the line stays
        // valid JSON.
        out += ",\"value\":" +
               NumberToString(row.value > 1e12 ? 1e12 : row.value);
        out += "}";
      }
      out += "]}";
    }
    out += "]}";
    return out;
  };

  std::string winner;
  if (primary_outcome.ok() && shadow_outcome.ok()) {
    const double d = primary_outcome->set_score - shadow_outcome->set_score;
    const double epsilon =
        shadow_ != nullptr ? shadow_->options().tie_epsilon : 1e-9;
    winner = d > epsilon ? "primary" : (d < -epsilon ? "shadow" : "tie");
  } else if (primary_outcome.ok()) {
    winner = "primary";
  } else if (shadow_outcome.ok()) {
    winner = "shadow";
  } else {
    winner = "none";
  }

  std::string out = "{\"status\":\"ok\"";
  out += ",\"query\":" + Quote(request.query);
  out += ",\"primary\":" + render_arm(primary.algorithm, primary_outcome);
  out += ",\"shadow\":" + render_arm(secondary.algorithm, shadow_outcome);
  out += ",\"winner\":" + Quote(winner);
  out += "}";
  return out;
}

}  // namespace qec::server
