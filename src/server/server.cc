#include "server/server.h"

#include <limits>
#include <utility>

#include "common/threading.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qec::server {

namespace {

uint64_t ToNanos(std::chrono::steady_clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

double ToSeconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

uint64_t UnixMillisNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Exact per-stage tail counters: histogram buckets are power-of-two wide
/// at the millisecond scale, so "how many requests crossed 10ms in
/// expansion" needs its own counters to be exact rather than estimated.
void RecordStageTails(const StageTimings& stages) {
  const uint64_t qw = stages[Stage::kQueueWait];
  if (qw > 1'000'000) QEC_COUNTER_INC("server/stage/queue_wait_gt_1ms");
  if (qw > 10'000'000) QEC_COUNTER_INC("server/stage/queue_wait_gt_10ms");
  if (qw > 100'000'000) QEC_COUNTER_INC("server/stage/queue_wait_gt_100ms");
  const uint64_t cl = stages[Stage::kCacheLookup];
  if (cl > 1'000'000) QEC_COUNTER_INC("server/stage/cache_lookup_gt_1ms");
  if (cl > 10'000'000) QEC_COUNTER_INC("server/stage/cache_lookup_gt_10ms");
  if (cl > 100'000'000) QEC_COUNTER_INC("server/stage/cache_lookup_gt_100ms");
  const uint64_t ex = stages[Stage::kExpansion];
  if (ex > 1'000'000) QEC_COUNTER_INC("server/stage/expansion_gt_1ms");
  if (ex > 10'000'000) QEC_COUNTER_INC("server/stage/expansion_gt_10ms");
  if (ex > 100'000'000) QEC_COUNTER_INC("server/stage/expansion_gt_100ms");
  const uint64_t se = stages[Stage::kSerialize];
  if (se > 1'000'000) QEC_COUNTER_INC("server/stage/serialize_gt_1ms");
  if (se > 10'000'000) QEC_COUNTER_INC("server/stage/serialize_gt_10ms");
  if (se > 100'000'000) QEC_COUNTER_INC("server/stage/serialize_gt_100ms");
}

void RecordStageHistograms(const StageTimings& stages) {
  QEC_HISTOGRAM_RECORD("server/stage/queue_wait_ns",
                       stages[Stage::kQueueWait]);
  QEC_HISTOGRAM_RECORD("server/stage/cache_lookup_ns",
                       stages[Stage::kCacheLookup]);
  QEC_HISTOGRAM_RECORD("server/stage/expansion_ns",
                       stages[Stage::kExpansion]);
  QEC_HISTOGRAM_RECORD("server/stage/serialize_ns",
                       stages[Stage::kSerialize]);
  RecordStageTails(stages);
}

}  // namespace

QecServer::QecServer(const index::InvertedIndex& index, ServerOptions options)
    : index_(&index),
      options_(std::move(options)),
      start_time_(Clock::now()),
      recorder_(options_.flight_recorder_capacity) {
  pool_size_ = ResolveThreadCount(options_.num_threads,
                                  std::numeric_limits<size_t>::max());
  if (options_.enable_expansion_cache) {
    cache_ = std::make_unique<ShardedLruCache<std::string, ServeResponse>>(
        options_.expansion_cache_capacity, options_.expansion_cache_shards);
  }
  recorder_.SetDumpPath(options_.slowlog_dump_path);
  if (options_.start_workers) Start();
}

QecServer::~QecServer() { Shutdown(); }

void QecServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_ || !workers_.empty()) return;
  workers_.reserve(pool_size_);
  for (size_t i = 0; i < pool_size_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void QecServer::Shutdown() {
  std::vector<std::thread> to_join;
  std::deque<Pending> to_reject;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    to_join.swap(workers_);
    if (to_join.empty()) {
      // Pool never ran (or already joined): nobody will drain the queue,
      // so reject whatever is still waiting.
      to_reject.swap(queue_);
      UpdateQueueDepthLocked();
    }
  }
  cv_.notify_all();
  for (auto& pending : to_reject) {
    ServeResponse response;
    response.status = Status::Unavailable("server shutting down");
    response.trace_id = pending.context.trace_id;
    const uint64_t total_ns =
        ToNanos(Clock::now() - pending.context.submit_time);
    response.total_seconds = static_cast<double>(total_ns) / 1e9;
    RecordFlight(pending.request, response, pending.context, total_ns);
    pending.promise.set_value(std::move(response));
  }
  for (auto& worker : to_join) worker.join();
}

std::future<ServeResponse> QecServer::Submit(ServeRequest request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  QEC_COUNTER_INC("server/requests");

  Pending pending;
  pending.context.submit_time = Clock::now();
  pending.context.trace_id =
      request.trace_id != 0 ? request.trace_id : GenerateTraceId();
  const uint64_t deadline_ms = request.deadline_ms != 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;
  pending.context.deadline =
      deadline_ms != 0
          ? pending.context.submit_time + std::chrono::milliseconds(deadline_ms)
          : Clock::time_point::max();
  pending.request = std::move(request);
  std::future<ServeResponse> future = pending.promise.get_future();

  auto reject = [&](Status status, std::atomic<uint64_t>* counter) {
    if (counter != nullptr) counter->fetch_add(1, std::memory_order_relaxed);
    ServeResponse response;
    response.status = std::move(status);
    response.trace_id = pending.context.trace_id;
    const uint64_t total_ns =
        ToNanos(Clock::now() - pending.context.submit_time);
    response.total_seconds = static_cast<double>(total_ns) / 1e9;
    RecordFlight(pending.request, response, pending.context, total_ns);
    pending.promise.set_value(std::move(response));
    return std::move(future);
  };

  if (pending.request.verb != ServeRequest::Verb::kExpand) {
    return reject(
        Status::InvalidArgument("only EXPAND goes through the request queue"),
        nullptr);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return reject(Status::Unavailable("server shutting down"), nullptr);
    }
    if (queue_.size() >= options_.queue_capacity) {
      QEC_COUNTER_INC("server/shed_queue_full");
      return reject(Status::Unavailable("admission queue full"),
                    &shed_queue_full_);
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("server/admitted");
    queue_.push_back(std::move(pending));
    UpdateQueueDepthLocked();
  }
  cv_.notify_one();
  return future;
}

void QecServer::WorkerLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      pending = std::move(queue_.front());
      queue_.pop_front();
      UpdateQueueDepthLocked();
    }
    Process(std::move(pending));
  }
}

void QecServer::Process(Pending pending) {
  RequestContext& context = pending.context;
  const Clock::time_point dequeue_time = Clock::now();
  context.stages[Stage::kQueueWait] =
      ToNanos(dequeue_time - context.submit_time);
  QEC_HISTOGRAM_RECORD("server/queue_wait_ns",
                       context.stages[Stage::kQueueWait]);

  ServeResponse response;
  const ServeRequest& request = pending.request;
  if (request.cancel != nullptr &&
      request.cancel->load(std::memory_order_relaxed)) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("server/cancelled");
    response.status = Status::Cancelled("request cancelled before execution");
  } else if (dequeue_time > context.deadline) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("server/shed_deadline");
    response.status =
        Status::DeadlineExceeded("deadline passed while request was queued");
  } else {
    response = Execute(request, &context);
  }

  // Render the wire line here, inside the timed serialize stage. The
  // stages_ms the line itself carries therefore shows serialize as 0; the
  // response struct, the stage histograms, and the flight recorder all get
  // the real value.
  response.trace_id = context.trace_id;
  response.queue_seconds = ToSeconds(dequeue_time - context.submit_time);
  response.total_seconds = ToSeconds(Clock::now() - context.submit_time);
  response.stages = context.stages;
  {
    StageTimer timer(context, Stage::kSerialize);
    response.json_line = ResponseToJsonLine(response);
  }
  response.stages = context.stages;

  const Clock::time_point done = Clock::now();
  const uint64_t total_ns = ToNanos(done - context.submit_time);
  response.total_seconds = static_cast<double>(total_ns) / 1e9;
  QEC_HISTOGRAM_RECORD("server/request_latency_ns", total_ns);
  RecordStageHistograms(context.stages);
  if (options_.slow_request_threshold_ms != 0 &&
      total_ns >= options_.slow_request_threshold_ms * 1'000'000ULL) {
    slow_requests_.fetch_add(1, std::memory_order_relaxed);
    QEC_COUNTER_INC("server/slow_requests");
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  QEC_COUNTER_INC("server/completed");
  RecordFlight(request, response, context, total_ns);
  pending.promise.set_value(std::move(response));
}

ServeResponse QecServer::Execute(const ServeRequest& request) {
  RequestContext context;
  context.trace_id =
      request.trace_id != 0 ? request.trace_id : GenerateTraceId();
  context.submit_time = Clock::now();
  ServeResponse response = Execute(request, &context);
  response.trace_id = context.trace_id;
  response.stages = context.stages;
  response.total_seconds = ToSeconds(Clock::now() - context.submit_time);
  return response;
}

ServeResponse QecServer::Execute(const ServeRequest& request,
                                 RequestContext* context) {
  QEC_TRACE_SPAN("server/execute");
  ServeResponse response;
  if (request.verb != ServeRequest::Verb::kExpand) {
    response.status =
        Status::InvalidArgument("only EXPAND requests are executable");
    return response;
  }

  const core::QueryExpanderOptions effective = EffectiveOptions(request);
  std::string key;
  if (cache_ != nullptr) {
    StageTimer timer(*context, Stage::kCacheLookup);
    key = ExpansionCacheKey(NormalizeQuery(request.query),
                            effective.max_clusters, effective.algorithm,
                            OptionsFingerprint(effective));
    std::optional<ServeResponse> hit = cache_->Get(key);
    if (hit.has_value()) {
      QEC_COUNTER_INC("server/cache_hits");
      hit->from_cache = true;
      // Identity and timing are per-request, never per-cache-entry: drop
      // whatever the original computation left behind.
      hit->trace_id = 0;
      hit->stages = StageTimings{};
      hit->json_line.clear();
      return *std::move(hit);
    }
    QEC_COUNTER_INC("server/cache_misses");
  }

  Result<core::ExpansionOutcome> outcome = [&] {
    StageTimer timer(*context, Stage::kExpansion);
    core::QueryExpander expander(*index_, effective);
    return expander.ExpandText(request.query);
  }();
  if (!outcome.ok()) {
    response.status = outcome.status();
    return response;
  }
  response.outcome = *std::move(outcome);
  if (cache_ != nullptr) {
    // Only successful expansions are cached (no negative caching): errors
    // are either caller mistakes or transient, and both should re-resolve.
    StageTimer timer(*context, Stage::kCacheLookup);
    cache_->Put(key, response);
  }
  return response;
}

core::QueryExpanderOptions QecServer::EffectiveOptions(
    const ServeRequest& r) const {
  core::QueryExpanderOptions o = options_.expander;
  if (r.max_clusters.has_value()) o.max_clusters = *r.max_clusters;
  if (r.algorithm.has_value()) o.algorithm = *r.algorithm;
  if (r.top_k_results.has_value()) o.top_k_results = *r.top_k_results;
  if (r.minimize_queries.has_value()) o.minimize_queries = *r.minimize_queries;
  if (r.use_ranking_weights.has_value()) {
    o.use_ranking_weights = *r.use_ranking_weights;
  }
  if (r.num_threads.has_value()) o.num_threads = *r.num_threads;
  o.memoize_set_algebra = options_.enable_set_algebra_cache;
  return o;
}

void QecServer::RecordFlight(const ServeRequest& request,
                             const ServeResponse& response,
                             const RequestContext& context,
                             uint64_t total_ns) {
  obs::RequestRecord record;
  record.trace_id = context.trace_id;
  record.unix_ms = UnixMillisNow();
  record.query = request.query;
  record.algo =
      std::string(core::AlgorithmName(EffectiveOptions(request).algorithm));
  record.status = std::string(StatusCodeName(response.status.code()));
  record.from_cache = response.from_cache;
  record.queue_wait_ns = context.stages[Stage::kQueueWait];
  record.cache_lookup_ns = context.stages[Stage::kCacheLookup];
  record.expansion_ns = context.stages[Stage::kExpansion];
  record.serialize_ns = context.stages[Stage::kSerialize];
  record.total_ns = total_ns;
  record.iskr_steps = response.outcome.iskr_stats.steps;
  record.iskr_candidates_evaluated =
      response.outcome.iskr_stats.candidates_evaluated;
  record.pebc_samples_drawn = response.outcome.pebc_stats.samples_drawn;
  record.pebc_candidates_evaluated =
      response.outcome.pebc_stats.candidates_evaluated;
  recorder_.Record(record);

  const StatusCode code = response.status.code();
  const bool dump_worthy =
      code == StatusCode::kDeadlineExceeded ||
      code == StatusCode::kUnavailable || code == StatusCode::kCorruption ||
      (options_.slow_request_threshold_ms != 0 &&
       total_ns >= options_.slow_request_threshold_ms * 1'000'000ULL);
  if (dump_worthy) recorder_.Dump(record);
}

void QecServer::UpdateQueueDepthLocked() {
  const size_t depth = queue_.size();
  QEC_GAUGE_SET("server/queue_depth", static_cast<double>(depth));
  if (depth > peak_queue_depth_) {
    peak_queue_depth_ = depth;
    QEC_GAUGE_SET("server/queue_depth_peak", static_cast<double>(depth));
  }
}

size_t QecServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t QecServer::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

ServerStats QecServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.slow_requests = slow_requests_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) s.expansion_cache = cache_->stats();
  return s;
}

double QecServer::uptime_seconds() const {
  return ToSeconds(Clock::now() - start_time_);
}

std::string QecServer::StatsJsonLine() const {
  using obs::json::NumberToString;
  const ServerStats s = stats();
  std::string out = "{\"status\":\"ok\"";
  out += ",\"docs\":" + std::to_string(index_->corpus().NumDocs());
  out += ",\"uptime_seconds\":" + NumberToString(uptime_seconds());
  out += ",\"queue_depth\":" + std::to_string(queue_depth());
  out += ",\"queue_capacity\":" + std::to_string(options_.queue_capacity);
  out += ",\"workers\":" + std::to_string(num_workers());
  out += ",\"submitted\":" + std::to_string(s.submitted);
  out += ",\"admitted\":" + std::to_string(s.admitted);
  out += ",\"completed\":" + std::to_string(s.completed);
  out += ",\"shed_queue_full\":" + std::to_string(s.shed_queue_full);
  out += ",\"shed_deadline\":" + std::to_string(s.shed_deadline);
  out += ",\"cancelled\":" + std::to_string(s.cancelled);
  out += ",\"slow_requests\":" + std::to_string(s.slow_requests);
  const uint64_t lookups = s.expansion_cache.hits + s.expansion_cache.misses;
  const double hit_ratio =
      lookups != 0 ? static_cast<double>(s.expansion_cache.hits) /
                         static_cast<double>(lookups)
                   : 0.0;
  out += ",\"cache\":{\"enabled\":";
  out += cache_ != nullptr ? "true" : "false";
  out += ",\"hits\":" + std::to_string(s.expansion_cache.hits);
  out += ",\"misses\":" + std::to_string(s.expansion_cache.misses);
  out += ",\"hit_ratio\":" + NumberToString(hit_ratio);
  out += ",\"evictions\":" + std::to_string(s.expansion_cache.evictions);
  out += ",\"entries\":" + std::to_string(s.expansion_cache.entries);
  out += "},\"slowlog\":{\"capacity\":" + std::to_string(recorder_.capacity());
  out += ",\"recorded\":" + std::to_string(recorder_.total_recorded());
  out += ",\"dumped\":" + std::to_string(recorder_.dumped());
  out += "}}";
  return out;
}

std::string QecServer::SlowlogJsonLine(size_t max) const {
  const std::vector<obs::RequestRecord> records = recorder_.Recent(max);
  std::string out = "{\"status\":\"ok\"";
  out += ",\"count\":" + std::to_string(records.size());
  out += ",\"total_recorded\":" + std::to_string(recorder_.total_recorded());
  out += ",\"dumped\":" + std::to_string(recorder_.dumped());
  out += ",\"records\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ",";
    out += records[i].ToJsonLine();
  }
  out += "]}";
  return out;
}

}  // namespace qec::server
