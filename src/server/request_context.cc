#include "server/request_context.h"

#include <atomic>
#include <cstdio>

namespace qec::server {

std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kExpansion:
      return "expansion";
    case Stage::kSerialize:
      return "serialize";
  }
  return "?";
}

uint64_t GenerateTraceId() {
  // Seed once from the clock so two processes started apart do not share
  // id sequences; splitmix64 then guarantees distinct, well-mixed ids
  // within the process.
  static const uint64_t seed = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  static std::atomic<uint64_t> counter{0};
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                          (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

std::string TraceIdToHex(uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

bool ParseTraceIdHex(std::string_view hex, uint64_t* out) {
  if (hex.empty() || hex.size() > 16) return false;
  uint64_t value = 0;
  for (char c : hex) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  if (value == 0) return false;
  *out = value;
  return true;
}

}  // namespace qec::server
