#ifndef QEC_SERVER_LRU_CACHE_H_
#define QEC_SERVER_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace qec::server {

/// Aggregated cache statistics across all shards.
struct LruCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
};

/// Bounded LRU cache sharded by key hash: each shard holds its own mutex,
/// recency list, and map, so concurrent server workers contend only when
/// they touch the same shard. Values are returned by copy — entries may be
/// evicted at any moment, so references would not be safe to hand out.
///
/// No single-flight de-duplication: two concurrent misses on one key both
/// compute and the second Put wins. For the expansion workloads this is a
/// deliberate simplification (results are deterministic, so the duplicate
/// work is wasted but harmless).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry bound, split across `num_shards` so the
  /// per-shard capacities sum to exactly `capacity` (the first
  /// `capacity % num_shards` shards hold one extra entry); each shard
  /// holds at least one entry. Ceil-division here used to let a
  /// (capacity=10, num_shards=8) cache hold 16 entries — 60% over the
  /// documented total bound.
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8) {
    QEC_CHECK_GT(capacity, 0u);
    QEC_CHECK_GT(num_shards, 0u);
    if (num_shards > capacity) num_shards = capacity;
    const size_t base = capacity / num_shards;
    const size_t extra = capacity % num_shards;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(base + (i < extra ? 1 : 0)));
    }
  }

  /// Returns a copy of the cached value and marks it most-recently-used,
  /// or nullopt on miss.
  std::optional<Value> Get(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return std::nullopt;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }

  /// Inserts or refreshes `key`, evicting the shard's least-recently-used
  /// entry when the shard is at capacity.
  void Put(const Key& key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= shard.capacity) {
      shard.map.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.evictions;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.map[key] = shard.lru.begin();
  }

  /// Drops every entry (stats are kept).
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->lru.clear();
      shard->map.clear();
    }
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      n += shard->lru.size();
    }
    return n;
  }

  size_t num_shards() const { return shards_.size(); }

  LruCacheStats stats() const {
    LruCacheStats s;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      s.hits += shard->hits;
      s.misses += shard->misses;
      s.evictions += shard->evictions;
      s.entries += shard->lru.size();
    }
    return s;
  }

 private:
  struct Shard {
    explicit Shard(size_t capacity) : capacity(capacity) {}

    const size_t capacity;
    mutable std::mutex mu;
    /// front = most recently used.
    std::list<std::pair<Key, Value>> lru;
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        map;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// Shard selection mixes the hash through a splitmix64 finalizer first:
  /// std::hash is the identity for integral keys on common
  /// implementations, so `hash % num_shards` and the in-shard bucket index
  /// would otherwise be computed from the same low bits — sequential keys
  /// with a stride equal to the shard count would all pile into one shard.
  static size_t MixHash(size_t h) {
    uint64_t x = static_cast<uint64_t>(h);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }

  Shard& ShardFor(const Key& key) {
    return *shards_[MixHash(hash_(key)) % shards_.size()];
  }

  Hash hash_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qec::server

#endif  // QEC_SERVER_LRU_CACHE_H_
