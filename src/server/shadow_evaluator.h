#ifndef QEC_SERVER_SHADOW_EVALUATOR_H_
#define QEC_SERVER_SHADOW_EVALUATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/query_expander.h"
#include "server/lru_cache.h"

namespace qec::server {

/// Configuration of the shadow A/B layer (docs/OBSERVABILITY.md).
struct ShadowEvaluatorOptions {
  /// Fraction of successful foreground expansions re-run through the
  /// shadow arm, in [0, 1]. 0 disables shadowing entirely (no RNG draw,
  /// no metrics); 1 shadows every eligible request.
  double sample_rate = 0.0;
  /// The shadow arm's expansion algorithm. Requests whose effective
  /// foreground algorithm equals this are not sampled — there is nothing
  /// to compare.
  core::ExpansionAlgorithm algorithm = core::ExpansionAlgorithm::kPebc;
  /// Seed of the sampling RNG. The decision sequence is a pure function of
  /// (seed, sample_rate), so replays reproduce exactly which requests were
  /// shadowed.
  uint64_t seed = 42;
  /// Scores within this of each other count as a tie rather than a win.
  double tie_epsilon = 1e-9;
  /// Skip shadowing a (query, options) pair seen recently: under Zipfian
  /// traffic the head queries would otherwise soak up the entire shadow
  /// budget re-measuring the same comparison.
  bool dedupe = true;
  size_t dedupe_capacity = 512;
  /// Most recent comparisons kept for the ABTEST verb.
  size_t history_capacity = 64;
};

/// One scored primary-vs-shadow comparison.
struct ShadowComparison {
  uint64_t trace_id = 0;
  std::string query;
  std::string primary_algo;
  std::string shadow_algo;
  /// Set scores (Eq. 1 harmonic mean of per-cluster F) of each arm.
  double primary_score = 0.0;
  double shadow_score = 0.0;
  /// Expansion-stage latency of each arm, nanoseconds.
  uint64_t primary_expansion_ns = 0;
  uint64_t shadow_expansion_ns = 0;
  /// "primary", "shadow", or "tie".
  std::string winner;
};

/// Monotonic per-arm tallies since construction.
struct ShadowTallies {
  /// Requests the sampler selected (before dedupe/shedding).
  uint64_t sampled = 0;
  /// Shadow runs that completed and were scored.
  uint64_t executed = 0;
  /// Sampled requests dropped because the admission class was full (or the
  /// server was shutting down).
  uint64_t shed = 0;
  /// Sampled requests skipped because the same comparison ran recently.
  uint64_t deduped = 0;
  /// Shadow runs that failed (the expander returned an error).
  uint64_t errors = 0;
  uint64_t primary_wins = 0;
  uint64_t shadow_wins = 0;
  uint64_t ties = 0;
  double primary_score_sum = 0.0;
  double shadow_score_sum = 0.0;
  uint64_t primary_expansion_ns_sum = 0;
  uint64_t shadow_expansion_ns_sum = 0;
};

/// The quality-observability core: decides which requests to shadow
/// (seeded, deterministic), scores primary vs shadow outcomes by set
/// score, and keeps per-arm tallies + a bounded history of recent
/// comparisons. All methods are thread-safe; the evaluator never runs
/// expansions itself — QecServer owns scheduling and execution so shadows
/// ride the existing worker pool as a sheddable, low-priority class.
///
/// Metrics (obs::MetricsRegistry → Prometheus `qec_shadow_*`): counters
/// shadow/{sampled,executed,shed,deduped,errors,wins_primary,wins_shadow,
/// ties}; histograms shadow/{primary,shadow}_score_milli (set score ×
/// 1000) and shadow/{primary,shadow}_expansion_ns.
class ShadowEvaluator {
 public:
  explicit ShadowEvaluator(ShadowEvaluatorOptions options);

  /// Draws the next sampling decision. Deterministic in construction order:
  /// two evaluators with equal (seed, sample_rate) return identical
  /// decision sequences. Does not count a sample — callers that act on a
  /// `true` follow up with exactly one of RecordDeduped / RecordShed /
  /// (Compare | RecordError), each of which records the sample.
  bool ShouldSample();

  /// True when `key` was shadowed recently (and should be skipped); marks
  /// the key either way. No-op returning false when dedupe is off.
  bool SeenRecently(const std::string& key);

  /// Scores one completed shadow run against its foreground counterpart,
  /// updates tallies/metrics/history, and returns the comparison.
  ShadowComparison Compare(uint64_t trace_id, const std::string& query,
                           const std::string& primary_algo,
                           double primary_score,
                           uint64_t primary_expansion_ns,
                           double shadow_score, uint64_t shadow_expansion_ns);

  /// Counts a sampled request dropped before execution.
  void RecordShed();
  /// Counts a sampled request skipped by dedupe.
  void RecordDeduped();
  /// Counts a shadow run that failed.
  void RecordError();

  ShadowTallies tallies() const;

  /// Up to `max` most recent comparisons, newest first.
  std::vector<ShadowComparison> Recent(size_t max) const;

  /// One-line JSON for the ABTEST verb: options, tallies, win rates, mean
  /// per-arm scores, and up to `max` recent comparisons.
  std::string AbtestJsonLine(size_t max) const;

  const ShadowEvaluatorOptions& options() const { return options_; }

 private:
  ShadowEvaluatorOptions options_;

  mutable std::mutex mu_;
  Rng rng_;
  ShadowTallies tallies_;
  std::deque<ShadowComparison> history_;
  std::unique_ptr<ShardedLruCache<std::string, bool>> dedupe_;
};

}  // namespace qec::server

#endif  // QEC_SERVER_SHADOW_EVALUATOR_H_
