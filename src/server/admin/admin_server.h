#ifndef QEC_SERVER_ADMIN_ADMIN_SERVER_H_
#define QEC_SERVER_ADMIN_ADMIN_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.h"
#include "server/admin/http_connection.h"
#include "server/net/event_loop.h"
#include "server/net/listener.h"
#include "server/net/net_server.h"
#include "server/server.h"

namespace qec::server::admin {

struct AdminServerOptions {
  /// Admin plane stays on loopback unless explicitly opened up.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port (AdminServer::port() reports it).
  uint16_t port = 0;
  int backlog = 64;
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 64 * 1024;
  /// Scrapers and probes are few; a tight cap keeps a misconfigured LB
  /// from exhausting fds meant for the query plane.
  size_t max_connections = 64;
  uint64_t drain_timeout_ms = 2000;
  /// Bounds for GET /pprof/profile?seconds=N&hz=H.
  double max_profile_seconds = 60.0;
  int default_profile_hz = 99;
};

/// The HTTP admin plane: a second listener on its own EventLoop and thread
/// (admin traffic never competes with query pipelining), speaking just
/// enough HTTP/1.1 for fleet tooling. Routes:
///
///   GET /metrics        Prometheus/OpenMetrics text with exemplars and
///                       the qec_process_* families
///   GET /healthz        liveness: 200 while the process runs
///   GET /readyz         readiness: 503 the moment drain begins (before
///                       the query listener closes), 200 otherwise
///   GET /statusz        build info, uptime, kernel tier, process, sweep
///                       pool, server and net stats as JSON
///   GET /slowlog?n=K    the flight recorder's slowest requests
///   GET /abtest?n=K     shadow A/B tallies
///   GET /pprof/profile?seconds=N&hz=H
///                       SIGPROF sampling profile, folded-stack text
///                       (flamegraph-ready); 409 while one is running
///
/// Unknown paths 404; known paths with a non-GET method 405. The profiler
/// runs on a dedicated thread and completes its response slot through the
/// loop, so a 30-second capture never blocks /healthz probes.
class AdminServer {
 public:
  /// `server` must outlive this. `net_server` may be null (stdin mode);
  /// when set, /readyz also reports 503 once the query plane is stopping.
  AdminServer(QecServer* server, net::NetServer* net_server,
              AdminServerOptions options = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Creates the loop and binds the listener; port() is valid after an OK
  /// return. Start() calls it implicitly if needed.
  Status Bind();
  uint16_t port() const;

  /// Bind() + a background thread running the loop until RequestStop().
  Status Start();

  /// RequestStop() + join. Idempotent; the destructor calls it.
  void Shutdown();

  /// Signals the loop to stop and drain. Async-signal-safe.
  void RequestStop();

  /// Flips /readyz to 503. Async-signal-safe: the SIGTERM handler calls
  /// this first, then stops the query plane — an LB polling /readyz sees
  /// "draining" while in-flight queries still complete.
  void SetDraining() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

 private:
  void RunLoop();
  void OnAccept(int fd, std::string peer);
  void OnRequest(HttpConnection& connection, const HttpRequest& request,
                 uint64_t slot);
  void OnClosed(HttpConnection& connection);
  /// Routes a GET. Returns the serialized response, or "" when the route
  /// completes asynchronously (the profiler).
  std::string Route(HttpConnection& connection, const HttpRequest& request,
                    uint64_t slot);
  std::string StatuszJson() const;
  void StartProfile(HttpConnection& connection, const HttpRequest& request,
                    uint64_t slot);
  void Drain();

  QecServer* server_;
  net::NetServer* net_server_;
  AdminServerOptions options_;
  std::shared_ptr<net::EventLoop> loop_;
  std::unique_ptr<net::Listener> listener_;
  std::unordered_map<int, std::shared_ptr<HttpConnection>> connections_;

  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();

  std::thread run_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint16_t> bound_port_{0};

  /// One profile at a time; the flag clears when the capture thread hands
  /// its response to the loop.
  std::atomic<bool> profile_busy_{false};
  /// Tells an in-flight capture to cut its sleep short on shutdown.
  std::atomic<bool> profile_abort_{false};
  std::thread profile_thread_;
};

}  // namespace qec::server::admin

#endif  // QEC_SERVER_ADMIN_ADMIN_SERVER_H_
