#include "server/admin/admin_server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/sweep_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/process_collector.h"
#include "obs/profiler.h"
#include "obs/prometheus.h"

namespace qec::server::admin {

namespace {

constexpr char kTextPlain[] = "text/plain; charset=utf-8";
constexpr char kJson[] = "application/json";
/// The exposition carries `# EOF` and exemplars, i.e. OpenMetrics.
constexpr char kOpenMetrics[] =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Parses a positive decimal query parameter, clamped to [min, max];
/// `fallback` when absent or malformed.
double QueryNumber(const HttpRequest& request, std::string_view key,
                   double fallback, double min, double max) {
  const std::string_view raw = request.QueryParam(key);
  if (raw.empty()) return fallback;
  char* end = nullptr;
  const std::string text(raw);
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || value <= 0) return fallback;
  return value < min ? min : (value > max ? max : value);
}

}  // namespace

AdminServer::AdminServer(QecServer* server, net::NetServer* net_server,
                         AdminServerOptions options)
    : server_(server),
      net_server_(net_server),
      options_(std::move(options)) {}

AdminServer::~AdminServer() { Shutdown(); }

Status AdminServer::Bind() {
  if (listener_) return Status::Ok();
  loop_ = std::make_shared<net::EventLoop>();
  if (!loop_->status().ok()) return loop_->status();
  auto listener =
      net::Listener::Bind(options_.host, options_.port, options_.backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  bound_port_.store(listener_->port(), std::memory_order_release);
  const Status added = loop_->Add(listener_->fd(), EPOLLIN, [this](uint32_t) {
    listener_->AcceptReady(
        [this](int fd, std::string peer) { OnAccept(fd, std::move(peer)); });
  });
  if (!added.ok()) return added;
  QEC_LOG(Info) << "admin: listening on " << options_.host << ":"
                << listener_->port();
  return Status::Ok();
}

uint16_t AdminServer::port() const {
  return bound_port_.load(std::memory_order_acquire);
}

Status AdminServer::Start() {
  const Status bound = Bind();
  if (!bound.ok()) return bound;
  run_thread_ = std::thread([this] { RunLoop(); });
  return Status::Ok();
}

void AdminServer::RunLoop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (loop_->RunOnce(/*timeout_ms=*/1000) < 0) {
      QEC_LOG(Error) << "admin: event loop failed";
      return;
    }
  }
  Drain();
}

void AdminServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  profile_abort_.store(true, std::memory_order_release);
  if (loop_) loop_->Wakeup();
}

void AdminServer::Shutdown() {
  RequestStop();
  if (run_thread_.joinable()) run_thread_.join();
  if (profile_thread_.joinable()) profile_thread_.join();
}

void AdminServer::OnAccept(int fd, std::string peer) {
  if (connections_.size() >= options_.max_connections) {
    QEC_COUNTER_INC("admin/http_rejected_over_capacity");
    const std::string busy = HttpConnection::RenderResponse(
        503, kTextPlain, "admin connection limit reached\n",
        /*keep_alive=*/false);
    (void)::send(fd, busy.data(), busy.size(), MSG_NOSIGNAL);
    ::close(fd);
    return;
  }
  HttpConnection::Callbacks callbacks;
  callbacks.on_request = [this](HttpConnection& c, const HttpRequest& r,
                                uint64_t slot) { OnRequest(c, r, slot); };
  callbacks.on_closed = [this](HttpConnection& c) { OnClosed(c); };
  auto connection = std::make_shared<HttpConnection>(
      loop_.get(), fd, std::move(peer), options_.max_header_bytes,
      options_.max_body_bytes, std::move(callbacks));
  const Status registered = connection->Register();
  if (!registered.ok()) {
    QEC_LOG(Warning) << "admin: register " << connection->peer()
                     << " failed: " << registered.message();
    return;
  }
  QEC_COUNTER_INC("admin/http_connections_accepted");
  connections_.emplace(fd, std::move(connection));
  QEC_GAUGE_SET("admin/http_active_connections",
                static_cast<int64_t>(connections_.size()));
}

void AdminServer::OnClosed(HttpConnection& connection) {
  connections_.erase(connection.fd());
  QEC_GAUGE_SET("admin/http_active_connections",
                static_cast<int64_t>(connections_.size()));
}

void AdminServer::OnRequest(HttpConnection& connection,
                            const HttpRequest& request, uint64_t slot) {
  const std::string response = Route(connection, request, slot);
  if (response.empty()) return;  // completes asynchronously
  connection.CompleteSlot(slot, response, /*close_after=*/!request.keep_alive);
}

std::string AdminServer::Route(HttpConnection& connection,
                               const HttpRequest& request, uint64_t slot) {
  const bool keep = request.keep_alive;
  const std::string& path = request.path;

  const bool known_path =
      path == "/metrics" || path == "/healthz" || path == "/readyz" ||
      path == "/statusz" || path == "/slowlog" || path == "/abtest" ||
      path == "/pprof/profile";
  if (!known_path) {
    return HttpConnection::RenderResponse(404, kTextPlain,
                                          "unknown route " + path + "\n",
                                          keep);
  }
  // Admin routes are all read-only views; HEAD/POST/PUT/... earn a 405 so
  // a misconfigured pusher fails loudly instead of silently succeeding.
  if (request.method != "GET") {
    return HttpConnection::RenderResponse(
        405, kTextPlain, "method " + request.method + " not allowed\n", keep);
  }

  if (path == "/metrics") {
    QEC_COUNTER_INC("admin/scrapes");
    return HttpConnection::RenderResponse(200, kOpenMetrics,
                                          obs::PrometheusSnapshot(), keep);
  }
  if (path == "/healthz") {
    return HttpConnection::RenderResponse(200, kTextPlain, "ok\n", keep);
  }
  if (path == "/readyz") {
    const bool ready =
        !draining() &&
        (net_server_ == nullptr || !net_server_->stop_requested());
    return ready ? HttpConnection::RenderResponse(200, kTextPlain, "ready\n",
                                                  keep)
                 : HttpConnection::RenderResponse(503, kTextPlain,
                                                  "draining\n", keep);
  }
  if (path == "/statusz") {
    return HttpConnection::RenderResponse(200, kJson, StatuszJson(), keep);
  }
  if (path == "/slowlog") {
    const size_t n = static_cast<size_t>(
        QueryNumber(request, "n", 16.0, 1.0, 1024.0));
    return HttpConnection::RenderResponse(
        200, kJson, server_->SlowlogJsonLine(n) + "\n", keep);
  }
  if (path == "/abtest") {
    const size_t n = static_cast<size_t>(
        QueryNumber(request, "n", 16.0, 1.0, 1024.0));
    return HttpConnection::RenderResponse(
        200, kJson, server_->AbtestJsonLine(n) + "\n", keep);
  }
  // /pprof/profile
  StartProfile(connection, request, slot);
  return "";
}

std::string AdminServer::StatuszJson() const {
  const obs::BuildInfo build = obs::GetBuildInfo();
  const obs::ProcessStats process = obs::SampleProcessStats();
  const common::SweepPool::Stats pool =
      common::SweepPool::Instance().GetStats();
  const double uptime_seconds =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count() /
      1000.0;

  std::string out = "{";
  out += "\"version\": " + obs::json::Quote(build.version);
  out += ", \"git\": " + obs::json::Quote(build.git);
  out += ", \"kernel\": " + obs::json::Quote(build.kernel_tier);
  out += std::string(", \"popcount\": ") + (build.popcount ? "true" : "false");
  out += std::string(", \"tracing\": ") + (build.tracing ? "true" : "false");
  out += ", \"pid\": " + std::to_string(static_cast<long>(::getpid()));
  out += ", \"uptime_seconds\": " + obs::json::NumberToString(uptime_seconds);
  out += std::string(", \"draining\": ") + (draining() ? "true" : "false");
  if (process.valid) {
    out += ", \"process\": {";
    out += "\"cpu_seconds\": " + obs::json::NumberToString(process.cpu_seconds);
    out += ", \"resident_bytes\": " + std::to_string(process.resident_bytes);
    out += ", \"virtual_bytes\": " + std::to_string(process.virtual_bytes);
    out += ", \"open_fds\": " + std::to_string(process.open_fds);
    out += "}";
  }
  out += ", \"sweep_pool\": {";
  out += "\"runs\": " + std::to_string(pool.runs);
  out += ", \"spawns\": " + std::to_string(pool.spawns);
  out += ", \"reuses\": " + std::to_string(pool.reuses);
  out += "}";
  // StatsJsonLine is already a JSON object (admission, cache, shadow
  // stats); embed it verbatim rather than re-modeling its schema here.
  out += ", \"server\": " + server_->StatsJsonLine();
  if (net_server_ != nullptr) {
    const net::NetServerStats net = net_server_->stats();
    out += ", \"net\": {";
    out += "\"accepted\": " + std::to_string(net.accepted);
    out += ", \"rejected_over_capacity\": " +
           std::to_string(net.rejected_over_capacity);
    out += ", \"closed\": " + std::to_string(net.closed);
    out += ", \"lines\": " + std::to_string(net.lines);
    out += ", \"expand_requests\": " + std::to_string(net.expand_requests);
    out += ", \"parse_errors\": " + std::to_string(net.parse_errors);
    out += ", \"batches\": " + std::to_string(net.batches);
    out += ", \"active_connections\": " +
           std::to_string(net.active_connections);
    out += "}";
  }
  out += "}\n";
  return out;
}

void AdminServer::StartProfile(HttpConnection& connection,
                               const HttpRequest& request, uint64_t slot) {
  const bool keep = request.keep_alive;
  const double seconds = QueryNumber(request, "seconds", 2.0, 0.1,
                                     options_.max_profile_seconds);
  const int hz = static_cast<int>(QueryNumber(
      request, "hz", static_cast<double>(options_.default_profile_hz), 1.0,
      1000.0));

  bool expected = false;
  if (!profile_busy_.compare_exchange_strong(expected, true)) {
    connection.CompleteSlot(
        slot,
        HttpConnection::RenderResponse(
            409, kTextPlain, "a cpu profile is already running\n", keep),
        !keep);
    return;
  }
  // The previous capture thread (if any) has finished — profile_busy_ was
  // clear — so this join returns immediately.
  if (profile_thread_.joinable()) profile_thread_.join();

  QEC_COUNTER_INC("admin/profiles");
  std::weak_ptr<HttpConnection> weak = connection.weak_from_this();
  auto loop = loop_;
  profile_thread_ = std::thread([this, loop, weak, slot, keep, hz, seconds] {
    obs::CpuProfiler& profiler = obs::CpuProfiler::Global();
    std::string response;
    const Status started = profiler.Start(hz);
    if (!started.ok()) {
      response = HttpConnection::RenderResponse(
          409, kTextPlain, started.message() + "\n", keep);
    } else {
      // Sleep in slices so shutdown aborts a long capture promptly.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000.0));
      while (std::chrono::steady_clock::now() < deadline &&
             !profile_abort_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      response = HttpConnection::RenderResponse(
          200, kTextPlain, profiler.StopFolded(), keep);
    }
    loop->Post([weak, slot, response = std::move(response), keep]() mutable {
      if (auto conn = weak.lock()) {
        conn->CompleteSlot(slot, std::move(response), !keep);
      }
    });
    profile_busy_.store(false, std::memory_order_release);
  });
}

void AdminServer::Drain() {
  if (listener_) {
    loop_->Remove(listener_->fd());
    listener_->Close();
  }
  std::vector<std::shared_ptr<HttpConnection>> open;
  open.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) open.push_back(conn);
  for (auto& conn : open) conn->StartDrain();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  while (!connections_.empty()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    loop_->RunOnce(static_cast<int>(
        std::min<std::chrono::milliseconds::rep>(left.count(), 50)));
  }
  if (!connections_.empty()) {
    QEC_LOG(Warning) << "admin: drain timeout, force-closing "
                     << connections_.size() << " connection(s)";
    open.clear();
    for (auto& [fd, conn] : connections_) open.push_back(conn);
    for (auto& conn : open) conn->Close();
  }
  QEC_GAUGE_SET("admin/http_active_connections", 0);
}

}  // namespace qec::server::admin
