#ifndef QEC_SERVER_ADMIN_HTTP_CONNECTION_H_
#define QEC_SERVER_ADMIN_HTTP_CONNECTION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "server/net/event_loop.h"

namespace qec::server::admin {

/// One parsed HTTP/1.1 request head. Every admin route is a GET; request
/// bodies are accepted up to the configured bound and discarded, so
/// misbehaving probes can't wedge the connection.
struct HttpRequest {
  std::string method;   // as sent ("GET", "POST", ...)
  std::string target;   // raw request-target, e.g. "/pprof/profile?seconds=2"
  std::string path;     // target up to the first '?'
  std::string query;    // after the '?', "" when absent
  std::string version;  // "HTTP/1.1" or "HTTP/1.0"
  /// (lower-cased key, trimmed value) in source order.
  std::vector<std::pair<std::string, std::string>> headers;
  /// HTTP/1.1 defaults to keep-alive; `Connection: close` (or 1.0 without
  /// `Connection: keep-alive`) turns it off.
  bool keep_alive = true;

  /// Value of header `key` (pass lower-case), or "" when absent.
  std::string_view Header(std::string_view key) const;
  /// Value of `key` in the query string ("" when absent or valueless).
  /// No %-decoding — admin parameters are plain integers.
  std::string_view QueryParam(std::string_view key) const;
};

/// One accepted admin-plane connection speaking HTTP/1.1, owned by the
/// event-loop thread. Mirrors the line-protocol Connection's discipline:
/// incremental nonblocking reads (a request split across arbitrarily many
/// segments parses identically to one arriving whole), pipelining with
/// strict in-order response slots, and coalesced writeback — plus HTTP
/// framing: bounded header and body sizes (431/413), malformed-request
/// rejection (400), chunked uploads refused (501), and keep-alive.
///
/// Thread model: every method runs on the loop thread. Slow routes (the
/// CPU profiler) complete their slot from another thread by posting
/// through the EventLoop, exactly like the query plane's worker pool.
class HttpConnection : public std::enable_shared_from_this<HttpConnection> {
 public:
  struct Callbacks {
    /// One fully-parsed request occupying in-order response slot `slot`.
    /// The handler must eventually CompleteSlot(slot, ...) — synchronously
    /// or via EventLoop::Post from another thread.
    std::function<void(HttpConnection&, const HttpRequest&, uint64_t slot)>
        on_request;
    /// The fd is closed and deregistered; drop the owning shared_ptr.
    std::function<void(HttpConnection&)> on_closed;
  };

  HttpConnection(net::EventLoop* loop, int fd, std::string peer,
                 size_t max_header_bytes, size_t max_body_bytes,
                 Callbacks callbacks);
  ~HttpConnection();

  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// Registers the fd with the loop. Call once, right after construction.
  Status Register();

  /// Delivers the full serialized response (status line + headers + body,
  /// from RenderResponse) for a slot. `close_after` ends the connection
  /// once this response flushes (the request asked `Connection: close`, or
  /// the response is a framing-error reply). No-op after Close.
  void CompleteSlot(uint64_t slot, std::string response_bytes,
                    bool close_after);

  /// Stops reading; closes once every open slot has flushed.
  void StartDrain();

  /// Immediate teardown: deregisters, closes the fd, invokes on_closed.
  void Close();

  int fd() const { return fd_; }
  const std::string& peer() const { return peer_; }
  bool closed() const { return closed_; }
  size_t open_slots() const { return slots_.size(); }
  bool idle() const { return slots_.empty() && write_pos_ >= wbuf_.size(); }

  /// Serializes one response: status line, Content-Type, Content-Length,
  /// Connection: keep-alive|close, blank line, body.
  static std::string RenderResponse(int status, std::string_view content_type,
                                    std::string_view body, bool keep_alive);
  /// The canonical reason phrase for the status codes this plane emits.
  static std::string_view ReasonPhrase(int status);

 private:
  struct Slot {
    bool done = false;
    bool close_after = false;
    std::string bytes;
  };

  void HandleEvents(uint32_t events);
  void OnReadable();
  /// Extracts every complete request from rbuf_, enforcing the header and
  /// body bounds; dispatches each through on_request.
  void DeliverRequests();
  /// Parses one head [head_start, head_end). Returns false after
  /// responding with a framing error (the connection is draining).
  bool ParseHead(size_t head_start, size_t head_end, HttpRequest* out);
  /// Opens a slot, completes it with an error response, and drains the
  /// connection (framing errors poison the stream).
  void RejectAndDrain(int status, std::string_view message);
  uint64_t OpenSlot();
  void FlushCompleted();
  void ScheduleFlush();
  void TryWrite();
  void UpdateWriteInterest(bool want_write);
  bool MaybeFinish();

  net::EventLoop* loop_;
  int fd_;
  std::string peer_;
  const size_t max_header_bytes_;
  const size_t max_body_bytes_;
  Callbacks callbacks_;

  std::string rbuf_;
  /// Bytes of the pending request body still to arrive and be discarded
  /// before the next head parses.
  size_t body_to_skip_ = 0;

  std::deque<Slot> slots_;
  uint64_t next_slot_ = 0;
  uint64_t base_slot_ = 0;

  std::string wbuf_;
  size_t write_pos_ = 0;
  bool want_write_ = false;
  bool flush_scheduled_ = false;
  /// Set when a flushed response carried close_after; MaybeFinish closes
  /// even though the peer kept the stream open.
  bool close_when_flushed_ = false;

  bool peer_eof_ = false;
  bool draining_ = false;
  bool closed_ = false;
};

}  // namespace qec::server::admin

#endif  // QEC_SERVER_ADMIN_HTTP_CONNECTION_H_
