#include "server/admin/http_connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace qec::server::admin {

namespace {

constexpr size_t kMaxBytesPerReadEvent = 256 * 1024;

char ToLowerAscii(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLowerAscii(a[i]) != ToLowerAscii(b[i])) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view key) const {
  for (const auto& [k, v] : headers) {
    if (k == key) return v;
  }
  return {};
}

std::string_view HttpRequest::QueryParam(std::string_view key) const {
  std::string_view q = query;
  while (!q.empty()) {
    size_t amp = q.find('&');
    std::string_view pair = q.substr(0, amp);
    q = amp == std::string_view::npos ? std::string_view{}
                                      : q.substr(amp + 1);
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (pair == key) return {};
      continue;
    }
    if (pair.substr(0, eq) == key) return pair.substr(eq + 1);
  }
  return {};
}

std::string_view HttpConnection::ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string HttpConnection::RenderResponse(int status,
                                           std::string_view content_type,
                                           std::string_view body,
                                           bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += ReasonPhrase(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

HttpConnection::HttpConnection(net::EventLoop* loop, int fd, std::string peer,
                               size_t max_header_bytes, size_t max_body_bytes,
                               Callbacks callbacks)
    : loop_(loop),
      fd_(fd),
      peer_(std::move(peer)),
      max_header_bytes_(max_header_bytes),
      max_body_bytes_(max_body_bytes),
      callbacks_(std::move(callbacks)) {}

HttpConnection::~HttpConnection() {
  if (fd_ >= 0 && !closed_) ::close(fd_);
}

Status HttpConnection::Register() {
  auto self = weak_from_this();
  return loop_->Add(fd_, EPOLLIN, [self](uint32_t events) {
    if (auto conn = self.lock()) conn->HandleEvents(events);
  });
}

void HttpConnection::HandleEvents(uint32_t events) {
  if (closed_) return;
  if (events & EPOLLERR) {
    Close();
    return;
  }
  if (events & EPOLLOUT) {
    TryWrite();
    if (closed_) return;
  }
  if (events & (EPOLLIN | EPOLLHUP)) OnReadable();
}

void HttpConnection::OnReadable() {
  if (draining_) return;
  char buf[16 * 1024];
  size_t read_this_event = 0;
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<size_t>(n));
      read_this_event += static_cast<size_t>(n);
      if (read_this_event >= kMaxBytesPerReadEvent) break;
      continue;
    }
    if (n == 0) {
      peer_eof_ = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    Close();
    return;
  }

  DeliverRequests();
  if (closed_) return;
  if (peer_eof_) {
    draining_ = true;
    MaybeFinish();
  }
}

void HttpConnection::DeliverRequests() {
  size_t consumed = 0;
  while (!closed_ && !draining_) {
    // Finish discarding the previous request's body before the next head.
    if (body_to_skip_ > 0) {
      const size_t available = rbuf_.size() - consumed;
      const size_t skip = std::min(body_to_skip_, available);
      consumed += skip;
      body_to_skip_ -= skip;
      if (body_to_skip_ > 0) break;  // need more bytes
    }

    // Head terminator: CRLFCRLF, with bare-LF tolerance (curl always sends
    // CRLF; tests exercise both).
    size_t head_end = std::string::npos;
    size_t terminator_len = 0;
    const size_t crlf = rbuf_.find("\r\n\r\n", consumed);
    const size_t lf = rbuf_.find("\n\n", consumed);
    if (crlf != std::string::npos && (lf == std::string::npos || crlf <= lf)) {
      head_end = crlf;
      terminator_len = 4;
    } else if (lf != std::string::npos) {
      head_end = lf;
      terminator_len = 2;
    }
    if (head_end == std::string::npos) {
      if (rbuf_.size() - consumed > max_header_bytes_) {
        QEC_COUNTER_INC("admin/http_oversized_headers");
        RejectAndDrain(431, "request head exceeds " +
                                std::to_string(max_header_bytes_) + " bytes");
        consumed = rbuf_.size();
      }
      break;
    }
    if (head_end - consumed > max_header_bytes_) {
      QEC_COUNTER_INC("admin/http_oversized_headers");
      RejectAndDrain(431, "request head exceeds " +
                              std::to_string(max_header_bytes_) + " bytes");
      consumed = rbuf_.size();
      break;
    }

    HttpRequest request;
    if (!ParseHead(consumed, head_end, &request)) {
      consumed = rbuf_.size();
      break;
    }
    consumed = head_end + terminator_len;

    if (!request.Header("transfer-encoding").empty()) {
      RejectAndDrain(501, "chunked request bodies are not supported");
      consumed = rbuf_.size();
      break;
    }
    const std::string_view content_length = request.Header("content-length");
    if (!content_length.empty()) {
      char* end = nullptr;
      const unsigned long long length =
          std::strtoull(std::string(content_length).c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        RejectAndDrain(400, "malformed Content-Length");
        consumed = rbuf_.size();
        break;
      }
      if (length > max_body_bytes_) {
        QEC_COUNTER_INC("admin/http_oversized_bodies");
        RejectAndDrain(413, "request body exceeds " +
                                std::to_string(max_body_bytes_) + " bytes");
        consumed = rbuf_.size();
        break;
      }
      body_to_skip_ = static_cast<size_t>(length);
    }

    QEC_COUNTER_INC("admin/http_requests");
    const uint64_t slot = OpenSlot();
    const bool close_requested = !request.keep_alive;
    if (callbacks_.on_request) callbacks_.on_request(*this, request, slot);
    if (close_requested) {
      // Nothing after this request will be answered; stop parsing. The
      // response's close_after flag (set by the router from
      // request.keep_alive) tears the connection down once flushed.
      break;
    }
  }
  if (consumed > 0) rbuf_.erase(0, consumed);
}

bool HttpConnection::ParseHead(size_t head_start, size_t head_end,
                               HttpRequest* out) {
  const std::string_view head(rbuf_.data() + head_start,
                              head_end - head_start);
  // Request line.
  size_t line_end = head.find('\n');
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= request_line.size()) {
    QEC_COUNTER_INC("admin/http_parse_errors");
    RejectAndDrain(400, "malformed request line");
    return false;
  }
  out->method = std::string(request_line.substr(0, sp1));
  out->target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out->version = std::string(request_line.substr(sp2 + 1));
  if (out->version != "HTTP/1.1" && out->version != "HTTP/1.0") {
    QEC_COUNTER_INC("admin/http_parse_errors");
    RejectAndDrain(400, "unsupported HTTP version '" + out->version + "'");
    return false;
  }
  const size_t question = out->target.find('?');
  out->path = out->target.substr(0, question);
  out->query =
      question == std::string::npos ? "" : out->target.substr(question + 1);

  // Header lines.
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 1;
  while (pos < head.size()) {
    size_t end = head.find('\n', pos);
    if (end == std::string_view::npos) end = head.size();
    std::string_view line = head.substr(pos, end - pos);
    pos = end + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      QEC_COUNTER_INC("admin/http_parse_errors");
      RejectAndDrain(400, "malformed header line");
      return false;
    }
    std::string key(line.substr(0, colon));
    for (char& c : key) c = ToLowerAscii(c);
    out->headers.emplace_back(std::move(key),
                              std::string(Trim(line.substr(colon + 1))));
  }

  const std::string_view connection = out->Header("connection");
  if (out->version == "HTTP/1.0") {
    out->keep_alive = EqualsIgnoreCase(connection, "keep-alive");
  } else {
    out->keep_alive = !EqualsIgnoreCase(connection, "close");
  }
  return true;
}

void HttpConnection::RejectAndDrain(int status, std::string_view message) {
  const uint64_t slot = OpenSlot();
  std::string body(message);
  body += '\n';
  CompleteSlot(slot,
               RenderResponse(status, "text/plain; charset=utf-8", body,
                              /*keep_alive=*/false),
               /*close_after=*/true);
  StartDrain();
}

uint64_t HttpConnection::OpenSlot() {
  slots_.emplace_back();
  return next_slot_++;
}

void HttpConnection::CompleteSlot(uint64_t slot, std::string response_bytes,
                                  bool close_after) {
  if (closed_) return;
  if (slot < base_slot_) return;
  const size_t index = static_cast<size_t>(slot - base_slot_);
  QEC_CHECK_LT(index, slots_.size());
  slots_[index].done = true;
  slots_[index].close_after = close_after;
  slots_[index].bytes = std::move(response_bytes);
  FlushCompleted();
}

void HttpConnection::FlushCompleted() {
  while (!slots_.empty() && slots_.front().done) {
    wbuf_ += slots_.front().bytes;
    if (slots_.front().close_after) close_when_flushed_ = true;
    slots_.pop_front();
    ++base_slot_;
    if (close_when_flushed_) {
      // Responses past a close are undeliverable by contract; drop them.
      slots_.clear();
      draining_ = true;
      break;
    }
  }
  if (write_pos_ < wbuf_.size()) ScheduleFlush();
}

void HttpConnection::ScheduleFlush() {
  if (flush_scheduled_ || want_write_) return;
  flush_scheduled_ = true;
  auto self = weak_from_this();
  loop_->Post([self] {
    if (auto conn = self.lock()) {
      conn->flush_scheduled_ = false;
      if (!conn->closed_) conn->TryWrite();
    }
  });
}

void HttpConnection::TryWrite() {
  while (write_pos_ < wbuf_.size()) {
    const ssize_t n = ::send(fd_, wbuf_.data() + write_pos_,
                             wbuf_.size() - write_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      write_pos_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateWriteInterest(true);
      return;
    }
    Close();
    return;
  }
  wbuf_.clear();
  write_pos_ = 0;
  UpdateWriteInterest(false);
  if (close_when_flushed_ && slots_.empty()) {
    Close();
    return;
  }
  MaybeFinish();
}

void HttpConnection::UpdateWriteInterest(bool want_write) {
  if (want_write == want_write_ || closed_) return;
  want_write_ = want_write;
  uint32_t events = draining_ ? 0u : static_cast<uint32_t>(EPOLLIN);
  if (want_write) events |= EPOLLOUT;
  loop_->Modify(fd_, events);
}

void HttpConnection::StartDrain() {
  if (closed_ || draining_) return;
  draining_ = true;
  const uint32_t events = want_write_ ? static_cast<uint32_t>(EPOLLOUT) : 0u;
  loop_->Modify(fd_, events);
  MaybeFinish();
}

bool HttpConnection::MaybeFinish() {
  if (closed_) return true;
  if (!draining_) return false;
  if (!idle()) return false;
  Close();
  return true;
}

void HttpConnection::Close() {
  if (closed_) return;
  closed_ = true;
  loop_->Remove(fd_);
  ::close(fd_);
  slots_.clear();
  wbuf_.clear();
  write_pos_ = 0;
  if (callbacks_.on_closed) callbacks_.on_closed(*this);
}

}  // namespace qec::server::admin
