#ifndef QEC_SERVER_SERVER_H_
#define QEC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/query_expander.h"
#include "index/inverted_index.h"
#include "obs/flight_recorder.h"
#include "server/lru_cache.h"
#include "server/protocol.h"
#include "server/request_context.h"
#include "server/shadow_evaluator.h"

namespace qec::server {

/// Configuration of a QecServer.
struct ServerOptions {
  /// Worker threads executing requests. 0 = auto (hardware concurrency);
  /// same knob semantics as QueryExpanderOptions::num_threads, via
  /// ResolveThreadCount.
  size_t num_threads = 0;
  /// Bounded admission queue: Submit sheds with Status Unavailable once
  /// this many requests are waiting, instead of queueing unboundedly.
  size_t queue_capacity = 128;
  /// Default per-request deadline in milliseconds (0 = none). A request
  /// whose deadline passes while it is still queued is shed with
  /// DeadlineExceeded; execution itself is never interrupted mid-run.
  uint64_t default_deadline_ms = 0;
  /// Full-response sharded LRU cache keyed by (normalized query, k,
  /// algorithm, options fingerprint) — see docs/SERVING.md.
  bool enable_expansion_cache = true;
  size_t expansion_cache_capacity = 1024;
  size_t expansion_cache_shards = 8;
  /// Enable the per-request ResultUniverse set-algebra memo
  /// (QueryExpanderOptions::memoize_set_algebra) on cache misses.
  bool enable_set_algebra_cache = true;
  /// Spawn the worker pool in the constructor. Tests set this to false so
  /// they can fill the admission queue deterministically, then call
  /// Start().
  bool start_workers = true;
  /// Ring size of the always-on flight recorder (SLOWLOG). Every request
  /// that reaches the pool leaves a record; the ring keeps the most recent
  /// ones.
  size_t flight_recorder_capacity = 256;
  /// Requests whose total latency reaches this many milliseconds are
  /// auto-dumped to `slowlog_dump_path` (0 = only failed requests dump).
  uint64_t slow_request_threshold_ms = 0;
  /// JSONL append file for flight-recorder dumps: requests that end in
  /// DeadlineExceeded/Unavailable/Corruption or exceed
  /// `slow_request_threshold_ms`. "" disables dumping (the in-memory ring
  /// stays on regardless).
  std::string slowlog_dump_path;
  /// Shadow A/B execution (docs/OBSERVABILITY.md): fraction of successful
  /// foreground EXPANDs re-run through `shadow_algorithm` off the critical
  /// path and scored against the foreground arm. 0 disables the shadow
  /// layer entirely.
  double shadow_sample_rate = 0.0;
  core::ExpansionAlgorithm shadow_algorithm =
      core::ExpansionAlgorithm::kPebc;
  /// Seed of the (deterministic) shadow sampling RNG.
  uint64_t shadow_seed = 42;
  /// Bounded low-priority queue of pending shadow runs: workers drain it
  /// only when the foreground queue is empty, and sampled shadows are shed
  /// (never queued foreground work) when either queue is full.
  size_t shadow_queue_capacity = 32;
  /// Skip shadowing a (query, options) pair seen recently so Zipf-head
  /// queries don't monopolize the shadow budget.
  bool shadow_dedupe = true;
  /// Base expander configuration; per-request ServeRequest fields overlay
  /// it. Note num_threads here is the *per-expansion* cluster parallelism;
  /// the server's own parallelism comes from its worker pool, so the
  /// default of 1 avoids thread multiplication under load.
  core::QueryExpanderOptions expander;
};

/// Monotonic totals since construction (ResetAll on the global metrics
/// registry does not affect these).
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline = 0;
  uint64_t cancelled = 0;
  /// Requests at or over ServerOptions::slow_request_threshold_ms.
  uint64_t slow_requests = 0;
  LruCacheStats expansion_cache;
};

/// Concurrent serving layer over one immutable InvertedIndex: a worker
/// pool fed by a bounded admission queue, with graceful shedding, per-
/// request deadlines/cancellation, and an expansion-result LRU cache. The
/// index (and its corpus) must outlive the server; because they are
/// immutable for the server's lifetime, cached responses never need
/// invalidation — rebuild the index and restart the server to pick up new
/// documents.
///
/// Everything is instrumented through qec_obs: server/queue_depth (+peak)
/// gauges, server/{admitted,shed_queue_full,shed_deadline,cancelled}
/// counters, server/cache_{hits,misses} counters,
/// server/{queue_wait_ns,request_latency_ns} histograms, per-stage
/// server/stage/{queue_wait,cache_lookup,expansion,serialize}_ns
/// histograms with exact gt_{1,10,100}ms tail counters, and an always-on
/// flight recorder of completed requests (SLOWLOG; errors and slow
/// requests auto-dump to ServerOptions::slowlog_dump_path as JSONL).
class QecServer {
 public:
  explicit QecServer(const index::InvertedIndex& index,
                     ServerOptions options = {});
  ~QecServer();

  QecServer(const QecServer&) = delete;
  QecServer& operator=(const QecServer&) = delete;

  /// Enqueues an EXPAND request. The future resolves with the response —
  /// possibly an error Status: Unavailable (queue full / shutting down),
  /// DeadlineExceeded, Cancelled, or whatever the expander returned.
  /// Non-EXPAND verbs resolve immediately with InvalidArgument (PING and
  /// STATS are answered by the driver, not the pool).
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Completion callback alternative to the future: invoked exactly once
  /// with the final response, on a worker thread for executed requests or
  /// on the submitting thread for immediate rejections. Callbacks must not
  /// block (the network front end posts the response to its event loop).
  using ResponseCallback = std::function<void(ServeResponse)>;

  /// One request of a batch submission.
  struct AsyncRequest {
    ServeRequest request;
    ResponseCallback on_done;
  };

  /// Admits a pipelined burst under a single queue-lock acquisition and one
  /// worker wakeup, so co-arriving requests for one hot cluster run back to
  /// back on cache-warm state instead of interleaving with unrelated work.
  /// Per-request shedding semantics are identical to Submit; rejected
  /// requests get their callback invoked before SubmitBatch returns.
  void SubmitBatch(std::vector<AsyncRequest> batch);

  /// Runs a request synchronously on the calling thread, bypassing the
  /// queue (still uses — and fills — the expansion cache). Stage timings
  /// and the trace id land in the returned response; the queue_wait stage
  /// is 0 by definition on this path.
  ServeResponse Execute(const ServeRequest& request);

  /// Core of Execute: runs the request against `context`, accumulating the
  /// cache_lookup and expansion stages into it. The worker pool calls this
  /// with the request's queued context.
  ServeResponse Execute(const ServeRequest& request, RequestContext* context);

  /// Spawns the worker pool if it is not already running.
  void Start();

  /// Stops accepting new requests, lets the workers drain the queue, and
  /// joins them. If the pool never started, queued requests are rejected
  /// with Unavailable. Idempotent; the destructor calls it.
  void Shutdown();

  size_t queue_depth() const;
  size_t num_workers() const;
  const ServerOptions& options() const { return options_; }
  ServerStats stats() const;

  /// One-line JSON for the STATS verb: queue state, totals, cache stats,
  /// uptime, flight-recorder counts.
  std::string StatsJsonLine() const;

  /// One-line JSON for the SLOWLOG verb: up to `max` most recent flight-
  /// recorder records, newest first. A `max` beyond the ring capacity is
  /// clamped, and the response reports the clamp (`requested`,
  /// `clamped_to`).
  std::string SlowlogJsonLine(size_t max) const;

  /// One-line JSON for the EXPLAIN verb: runs `request` through both the
  /// primary arm (its effective options) and the shadow arm with per-term
  /// diagnostics, synchronously on the calling thread and bypassing the
  /// expansion cache (cached outcomes carry no per-term rows).
  std::string ExplainJsonLine(const ServeRequest& request) const;

  /// One-line JSON for the ABTEST verb: shadow tallies + up to `max`
  /// recent comparisons. Answers even when shadowing is disabled (all
  /// tallies zero).
  std::string AbtestJsonLine(size_t max) const;

  /// Pending shadow runs (the low-priority queue).
  size_t shadow_queue_depth() const;
  /// Zero-value tallies when shadowing is disabled.
  ShadowTallies shadow_tallies() const;
  /// Nullptr when ServerOptions::shadow_sample_rate is 0.
  const ShadowEvaluator* shadow_evaluator() const { return shadow_.get(); }

  obs::FlightRecorder& flight_recorder() { return recorder_; }
  const obs::FlightRecorder& flight_recorder() const { return recorder_; }

  /// Seconds since construction.
  double uptime_seconds() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    /// Set for callback-style submissions (SubmitBatch); the promise is
    /// fulfilled otherwise.
    ResponseCallback callback;
    /// Trace id, submit time, deadline, and stage stopwatch accumulators.
    RequestContext context;
  };

  /// One queued shadow run: everything needed to re-run the query through
  /// the shadow arm and score it against the foreground result, detached
  /// from the foreground request's promise and deadline.
  struct ShadowJob {
    uint64_t trace_id = 0;
    std::string query;
    std::string primary_algo;
    double primary_score = 0.0;
    uint64_t primary_expansion_ns = 0;
    /// The foreground request's effective options with the algorithm
    /// swapped to the shadow arm.
    core::QueryExpanderOptions options;
  };

  /// Stamps submission time, trace id, and deadline onto a fresh Pending.
  Pending MakePending(ServeRequest request);
  /// Resolves a pending request through its callback or promise.
  static void Fulfill(Pending pending, ServeResponse response);
  /// Resolves `pending` with an error status without executing it,
  /// flight-recording the rejection. `counter` is the matching shed/cancel
  /// total (may be null).
  void Reject(Pending pending, Status status, std::atomic<uint64_t>* counter);

  void WorkerLoop();
  /// Processes one dequeued request end to end and fulfills its promise.
  void Process(Pending pending);
  /// Samples a completed foreground EXPAND; enqueues a ShadowJob (low
  /// priority, sheddable) when selected and sets context->shadow_sampled.
  void MaybeScheduleShadow(const ServeRequest& request,
                           const ServeResponse& response,
                           RequestContext* context);
  /// Runs one shadow job on a worker thread: expands through the shadow
  /// arm (never touching the expansion cache), scores the comparison, and
  /// flight-records it.
  void RunShadow(ShadowJob job);
  /// Effective expander options for one request: base + overlays.
  core::QueryExpanderOptions EffectiveOptions(const ServeRequest& r) const;
  void UpdateQueueDepthLocked();
  /// Flight-records one finished request and dumps it to the slowlog file
  /// when it failed in a dump-worthy way or crossed the slow threshold.
  void RecordFlight(const ServeRequest& request, const ServeResponse& response,
                    const RequestContext& context, uint64_t total_ns);

  const index::InvertedIndex* index_;
  ServerOptions options_;
  size_t pool_size_;
  Clock::time_point start_time_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  /// Low-priority admission class: drained only when `queue_` is empty.
  std::deque<ShadowJob> shadow_queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  size_t peak_queue_depth_ = 0;

  std::unique_ptr<ShardedLruCache<std::string, ServeResponse>> cache_;
  std::unique_ptr<ShadowEvaluator> shadow_;
  obs::FlightRecorder recorder_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> slow_requests_{0};
};

}  // namespace qec::server

#endif  // QEC_SERVER_SERVER_H_
