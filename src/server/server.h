#ifndef QEC_SERVER_SERVER_H_
#define QEC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/query_expander.h"
#include "index/inverted_index.h"
#include "obs/flight_recorder.h"
#include "server/lru_cache.h"
#include "server/protocol.h"
#include "server/request_context.h"

namespace qec::server {

/// Configuration of a QecServer.
struct ServerOptions {
  /// Worker threads executing requests. 0 = auto (hardware concurrency);
  /// same knob semantics as QueryExpanderOptions::num_threads, via
  /// ResolveThreadCount.
  size_t num_threads = 0;
  /// Bounded admission queue: Submit sheds with Status Unavailable once
  /// this many requests are waiting, instead of queueing unboundedly.
  size_t queue_capacity = 128;
  /// Default per-request deadline in milliseconds (0 = none). A request
  /// whose deadline passes while it is still queued is shed with
  /// DeadlineExceeded; execution itself is never interrupted mid-run.
  uint64_t default_deadline_ms = 0;
  /// Full-response sharded LRU cache keyed by (normalized query, k,
  /// algorithm, options fingerprint) — see docs/SERVING.md.
  bool enable_expansion_cache = true;
  size_t expansion_cache_capacity = 1024;
  size_t expansion_cache_shards = 8;
  /// Enable the per-request ResultUniverse set-algebra memo
  /// (QueryExpanderOptions::memoize_set_algebra) on cache misses.
  bool enable_set_algebra_cache = true;
  /// Spawn the worker pool in the constructor. Tests set this to false so
  /// they can fill the admission queue deterministically, then call
  /// Start().
  bool start_workers = true;
  /// Ring size of the always-on flight recorder (SLOWLOG). Every request
  /// that reaches the pool leaves a record; the ring keeps the most recent
  /// ones.
  size_t flight_recorder_capacity = 256;
  /// Requests whose total latency reaches this many milliseconds are
  /// auto-dumped to `slowlog_dump_path` (0 = only failed requests dump).
  uint64_t slow_request_threshold_ms = 0;
  /// JSONL append file for flight-recorder dumps: requests that end in
  /// DeadlineExceeded/Unavailable/Corruption or exceed
  /// `slow_request_threshold_ms`. "" disables dumping (the in-memory ring
  /// stays on regardless).
  std::string slowlog_dump_path;
  /// Base expander configuration; per-request ServeRequest fields overlay
  /// it. Note num_threads here is the *per-expansion* cluster parallelism;
  /// the server's own parallelism comes from its worker pool, so the
  /// default of 1 avoids thread multiplication under load.
  core::QueryExpanderOptions expander;
};

/// Monotonic totals since construction (ResetAll on the global metrics
/// registry does not affect these).
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline = 0;
  uint64_t cancelled = 0;
  /// Requests at or over ServerOptions::slow_request_threshold_ms.
  uint64_t slow_requests = 0;
  LruCacheStats expansion_cache;
};

/// Concurrent serving layer over one immutable InvertedIndex: a worker
/// pool fed by a bounded admission queue, with graceful shedding, per-
/// request deadlines/cancellation, and an expansion-result LRU cache. The
/// index (and its corpus) must outlive the server; because they are
/// immutable for the server's lifetime, cached responses never need
/// invalidation — rebuild the index and restart the server to pick up new
/// documents.
///
/// Everything is instrumented through qec_obs: server/queue_depth (+peak)
/// gauges, server/{admitted,shed_queue_full,shed_deadline,cancelled}
/// counters, server/cache_{hits,misses} counters,
/// server/{queue_wait_ns,request_latency_ns} histograms, per-stage
/// server/stage/{queue_wait,cache_lookup,expansion,serialize}_ns
/// histograms with exact gt_{1,10,100}ms tail counters, and an always-on
/// flight recorder of completed requests (SLOWLOG; errors and slow
/// requests auto-dump to ServerOptions::slowlog_dump_path as JSONL).
class QecServer {
 public:
  explicit QecServer(const index::InvertedIndex& index,
                     ServerOptions options = {});
  ~QecServer();

  QecServer(const QecServer&) = delete;
  QecServer& operator=(const QecServer&) = delete;

  /// Enqueues an EXPAND request. The future resolves with the response —
  /// possibly an error Status: Unavailable (queue full / shutting down),
  /// DeadlineExceeded, Cancelled, or whatever the expander returned.
  /// Non-EXPAND verbs resolve immediately with InvalidArgument (PING and
  /// STATS are answered by the driver, not the pool).
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Runs a request synchronously on the calling thread, bypassing the
  /// queue (still uses — and fills — the expansion cache). Stage timings
  /// and the trace id land in the returned response; the queue_wait stage
  /// is 0 by definition on this path.
  ServeResponse Execute(const ServeRequest& request);

  /// Core of Execute: runs the request against `context`, accumulating the
  /// cache_lookup and expansion stages into it. The worker pool calls this
  /// with the request's queued context.
  ServeResponse Execute(const ServeRequest& request, RequestContext* context);

  /// Spawns the worker pool if it is not already running.
  void Start();

  /// Stops accepting new requests, lets the workers drain the queue, and
  /// joins them. If the pool never started, queued requests are rejected
  /// with Unavailable. Idempotent; the destructor calls it.
  void Shutdown();

  size_t queue_depth() const;
  size_t num_workers() const;
  const ServerOptions& options() const { return options_; }
  ServerStats stats() const;

  /// One-line JSON for the STATS verb: queue state, totals, cache stats,
  /// uptime, flight-recorder counts.
  std::string StatsJsonLine() const;

  /// One-line JSON for the SLOWLOG verb: up to `max` most recent flight-
  /// recorder records, newest first.
  std::string SlowlogJsonLine(size_t max) const;

  obs::FlightRecorder& flight_recorder() { return recorder_; }
  const obs::FlightRecorder& flight_recorder() const { return recorder_; }

  /// Seconds since construction.
  double uptime_seconds() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    /// Trace id, submit time, deadline, and stage stopwatch accumulators.
    RequestContext context;
  };

  void WorkerLoop();
  /// Processes one dequeued request end to end and fulfills its promise.
  void Process(Pending pending);
  /// Effective expander options for one request: base + overlays.
  core::QueryExpanderOptions EffectiveOptions(const ServeRequest& r) const;
  void UpdateQueueDepthLocked();
  /// Flight-records one finished request and dumps it to the slowlog file
  /// when it failed in a dump-worthy way or crossed the slow threshold.
  void RecordFlight(const ServeRequest& request, const ServeResponse& response,
                    const RequestContext& context, uint64_t total_ns);

  const index::InvertedIndex* index_;
  ServerOptions options_;
  size_t pool_size_;
  Clock::time_point start_time_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  size_t peak_queue_depth_ = 0;

  std::unique_ptr<ShardedLruCache<std::string, ServeResponse>> cache_;
  obs::FlightRecorder recorder_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> slow_requests_{0};
};

}  // namespace qec::server

#endif  // QEC_SERVER_SERVER_H_
