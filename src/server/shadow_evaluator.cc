#include "server/shadow_evaluator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "server/request_context.h"

namespace qec::server {

// The sampling stream must not run in lockstep with other components
// seeded from the same popular constant (a workload generator seeded 42
// feeding a server whose evaluator defaults to seed 42 would make the
// sample decision a deterministic function of the query rank). Mixing a
// fixed tag into the seed gives the evaluator its own stream while staying
// fully deterministic per seed.
ShadowEvaluator::ShadowEvaluator(ShadowEvaluatorOptions options)
    : options_(std::move(options)),
      rng_(options_.seed ^ 0x73686164'6f772e71ULL) {
  if (options_.dedupe && options_.dedupe_capacity > 0) {
    dedupe_ = std::make_unique<ShardedLruCache<std::string, bool>>(
        options_.dedupe_capacity, /*num_shards=*/4);
  }
}

bool ShadowEvaluator::ShouldSample() {
  if (options_.sample_rate <= 0.0) return false;
  if (options_.sample_rate >= 1.0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.UniformDouble() < options_.sample_rate;
}

bool ShadowEvaluator::SeenRecently(const std::string& key) {
  if (dedupe_ == nullptr) return false;
  const bool seen = dedupe_->Get(key).has_value();
  if (!seen) dedupe_->Put(key, true);
  return seen;
}

ShadowComparison ShadowEvaluator::Compare(
    uint64_t trace_id, const std::string& query,
    const std::string& primary_algo, double primary_score,
    uint64_t primary_expansion_ns, double shadow_score,
    uint64_t shadow_expansion_ns) {
  ShadowComparison c;
  c.trace_id = trace_id;
  c.query = query;
  c.primary_algo = primary_algo;
  c.shadow_algo = std::string(core::AlgorithmName(options_.algorithm));
  c.primary_score = primary_score;
  c.shadow_score = shadow_score;
  c.primary_expansion_ns = primary_expansion_ns;
  c.shadow_expansion_ns = shadow_expansion_ns;
  if (std::abs(primary_score - shadow_score) <= options_.tie_epsilon) {
    c.winner = "tie";
  } else if (primary_score > shadow_score) {
    c.winner = "primary";
  } else {
    c.winner = "shadow";
  }

  QEC_COUNTER_INC("shadow/sampled");
  QEC_COUNTER_INC("shadow/executed");
  if (c.winner == "tie") {
    QEC_COUNTER_INC("shadow/ties");
  } else if (c.winner == "primary") {
    QEC_COUNTER_INC("shadow/wins_primary");
  } else {
    QEC_COUNTER_INC("shadow/wins_shadow");
  }
  // Scores live in [0, 1]; the integer histograms bucket them at the
  // milli-score scale.
  QEC_HISTOGRAM_RECORD("shadow/primary_score_milli",
                       static_cast<uint64_t>(primary_score * 1000.0));
  QEC_HISTOGRAM_RECORD("shadow/shadow_score_milli",
                       static_cast<uint64_t>(shadow_score * 1000.0));
  QEC_HISTOGRAM_RECORD("shadow/primary_expansion_ns", primary_expansion_ns);
  QEC_HISTOGRAM_RECORD("shadow/shadow_expansion_ns", shadow_expansion_ns);

  std::lock_guard<std::mutex> lock(mu_);
  tallies_.sampled += 1;
  tallies_.executed += 1;
  if (c.winner == "tie") {
    tallies_.ties += 1;
  } else if (c.winner == "primary") {
    tallies_.primary_wins += 1;
  } else {
    tallies_.shadow_wins += 1;
  }
  tallies_.primary_score_sum += primary_score;
  tallies_.shadow_score_sum += shadow_score;
  tallies_.primary_expansion_ns_sum += primary_expansion_ns;
  tallies_.shadow_expansion_ns_sum += shadow_expansion_ns;
  history_.push_back(c);
  while (history_.size() > options_.history_capacity) history_.pop_front();
  return c;
}

void ShadowEvaluator::RecordShed() {
  QEC_COUNTER_INC("shadow/sampled");
  QEC_COUNTER_INC("shadow/shed");
  std::lock_guard<std::mutex> lock(mu_);
  tallies_.sampled += 1;
  tallies_.shed += 1;
}

void ShadowEvaluator::RecordDeduped() {
  QEC_COUNTER_INC("shadow/sampled");
  QEC_COUNTER_INC("shadow/deduped");
  std::lock_guard<std::mutex> lock(mu_);
  tallies_.sampled += 1;
  tallies_.deduped += 1;
}

void ShadowEvaluator::RecordError() {
  QEC_COUNTER_INC("shadow/sampled");
  QEC_COUNTER_INC("shadow/errors");
  std::lock_guard<std::mutex> lock(mu_);
  tallies_.sampled += 1;
  tallies_.errors += 1;
}

ShadowTallies ShadowEvaluator::tallies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tallies_;
}

std::vector<ShadowComparison> ShadowEvaluator::Recent(size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShadowComparison> out;
  const size_t n = std::min(max, history_.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(history_[history_.size() - 1 - i]);
  }
  return out;
}

std::string ShadowEvaluator::AbtestJsonLine(size_t max) const {
  using obs::json::NumberToString;
  using obs::json::Quote;
  const ShadowTallies t = tallies();
  const std::vector<ShadowComparison> recent = Recent(max);
  std::string out = "{\"status\":\"ok\",\"enabled\":true";
  out += ",\"shadow_algo\":" +
         Quote(std::string(core::AlgorithmName(options_.algorithm)));
  out += ",\"sample_rate\":" + NumberToString(options_.sample_rate);
  out += ",\"sampled\":" + std::to_string(t.sampled);
  out += ",\"executed\":" + std::to_string(t.executed);
  out += ",\"shed\":" + std::to_string(t.shed);
  out += ",\"deduped\":" + std::to_string(t.deduped);
  out += ",\"errors\":" + std::to_string(t.errors);
  out += ",\"primary_wins\":" + std::to_string(t.primary_wins);
  out += ",\"shadow_wins\":" + std::to_string(t.shadow_wins);
  out += ",\"ties\":" + std::to_string(t.ties);
  const double n = t.executed != 0 ? static_cast<double>(t.executed) : 1.0;
  out += ",\"shadow_win_rate\":" +
         NumberToString(static_cast<double>(t.shadow_wins) / n);
  out += ",\"mean_primary_score\":" + NumberToString(t.primary_score_sum / n);
  out += ",\"mean_shadow_score\":" + NumberToString(t.shadow_score_sum / n);
  out += ",\"mean_primary_expansion_ms\":" +
         NumberToString(static_cast<double>(t.primary_expansion_ns_sum) / n /
                        1e6);
  out += ",\"mean_shadow_expansion_ms\":" +
         NumberToString(static_cast<double>(t.shadow_expansion_ns_sum) / n /
                        1e6);
  out += ",\"recent\":[";
  for (size_t i = 0; i < recent.size(); ++i) {
    const ShadowComparison& c = recent[i];
    if (i > 0) out += ",";
    out += "{\"trace_id\":" + Quote(TraceIdToHex(c.trace_id));
    out += ",\"query\":" + Quote(c.query);
    out += ",\"primary_algo\":" + Quote(c.primary_algo);
    out += ",\"shadow_algo\":" + Quote(c.shadow_algo);
    out += ",\"primary_score\":" + NumberToString(c.primary_score);
    out += ",\"shadow_score\":" + NumberToString(c.shadow_score);
    out += ",\"primary_expansion_ms\":" +
           NumberToString(static_cast<double>(c.primary_expansion_ns) / 1e6);
    out += ",\"shadow_expansion_ms\":" +
           NumberToString(static_cast<double>(c.shadow_expansion_ns) / 1e6);
    out += ",\"winner\":" + Quote(c.winner);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace qec::server
