#ifndef QEC_DOC_CORPUS_IO_H_
#define QEC_DOC_CORPUS_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "doc/corpus.h"

namespace qec::doc {

/// Serializes `corpus` (analyzer options, vocabulary, documents with
/// interned term ids and structured features) to a little-endian binary
/// blob. The inverted index is not stored — it rebuilds in one pass on
/// load.
std::string SerializeCorpus(const Corpus& corpus);

/// Parses a blob produced by SerializeCorpus. Returns Corruption on any
/// malformed input (bad magic, truncation, out-of-range term ids).
Result<Corpus> DeserializeCorpus(std::string_view data);

/// Writes the serialized corpus to `path` (Internal on I/O failure).
Status SaveCorpus(const Corpus& corpus, const std::string& path);

/// Reads and parses a corpus from `path` (NotFound / Corruption).
Result<Corpus> LoadCorpus(const std::string& path);

}  // namespace qec::doc

#endif  // QEC_DOC_CORPUS_IO_H_
