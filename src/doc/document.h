#ifndef QEC_DOC_DOCUMENT_H_
#define QEC_DOC_DOCUMENT_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace qec::doc {

/// A structured-data feature, the (entity:attribute:value) triplet of
/// Sec. 2 of the paper (e.g. product:name:iPad).
struct Feature {
  std::string entity;
  std::string attribute;
  std::string value;

  friend bool operator==(const Feature& a, const Feature& b) {
    return a.entity == b.entity && a.attribute == b.attribute &&
           a.value == b.value;
  }
};

/// Renders a feature as its canonical searchable token,
/// "entity:attribute:value" lowercased with internal whitespace removed
/// (e.g. "tv:display area:42\"" -> "tv:displayarea:42\"").
std::string FeatureToken(const Feature& feature);

enum class DocumentKind {
  /// Free text modeled as a set of words.
  kText,
  /// A fragment of structured data modeled as a set of features.
  kStructured,
};

/// One indexed document. Term ids carry duplicates (term frequency); the
/// deduplicated sorted term set is materialized once for boolean evaluation.
class Document {
 public:
  Document(DocId id, DocumentKind kind, std::string title,
           std::vector<TermId> terms, std::vector<Feature> features);

  DocId id() const { return id_; }
  DocumentKind kind() const { return kind_; }
  const std::string& title() const { return title_; }

  /// All term occurrences, in document order (duplicates preserved).
  const std::vector<TermId>& terms() const { return terms_; }

  /// Sorted, deduplicated term ids.
  const std::vector<TermId>& term_set() const { return term_set_; }

  /// Frequency of `term` in this document (0 when absent).
  int TermFrequency(TermId term) const;

  /// True if the document contains `term`.
  bool Contains(TermId term) const;

  /// Structured features (empty for text documents).
  const std::vector<Feature>& features() const { return features_; }

  /// Number of term occurrences (document length).
  size_t length() const { return terms_.size(); }

 private:
  DocId id_;
  DocumentKind kind_;
  std::string title_;
  std::vector<TermId> terms_;
  std::vector<TermId> term_set_;   // sorted unique
  std::vector<int> term_counts_;   // parallel to term_set_
  std::vector<Feature> features_;
};

}  // namespace qec::doc

#endif  // QEC_DOC_DOCUMENT_H_
