#ifndef QEC_DOC_CORPUS_H_
#define QEC_DOC_CORPUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "doc/document.h"
#include "text/analyzer.h"

namespace qec::doc {

/// Aggregate corpus statistics.
struct CorpusStats {
  size_t num_docs = 0;
  size_t num_distinct_terms = 0;
  size_t total_term_occurrences = 0;
  double avg_doc_length = 0.0;
};

/// A collection of documents sharing one analyzer/vocabulary. Documents are
/// append-only and identified by dense DocIds.
class Corpus {
 public:
  explicit Corpus(text::AnalyzerOptions analyzer_options = {});

  /// Adds a free-text document; `body` is tokenized by the analyzer.
  DocId AddTextDocument(std::string title, std::string_view body);

  /// Adds a structured document: each feature is indexed both as its
  /// canonical token ("entity:attribute:value") and as the word tokens of
  /// its parts, so both keyword queries ("canon") and feature queries
  /// ("canonproducts:category:camera") retrieve it.
  DocId AddStructuredDocument(std::string title,
                              std::vector<Feature> features);

  /// Deserialization support: appends a document with pre-interned term
  /// ids, bypassing text analysis. Every id must already exist in the
  /// vocabulary (corpus_io.h validates this before calling).
  DocId RestoreDocument(DocumentKind kind, std::string title,
                        std::vector<TermId> terms,
                        std::vector<Feature> features);

  size_t NumDocs() const { return docs_.size(); }

  const Document& Get(DocId id) const;

  text::Analyzer& analyzer() { return *analyzer_; }
  const text::Analyzer& analyzer() const { return *analyzer_; }

  CorpusStats Stats() const;

 private:
  std::unique_ptr<text::Analyzer> analyzer_;
  std::vector<Document> docs_;
};

}  // namespace qec::doc

#endif  // QEC_DOC_CORPUS_H_
