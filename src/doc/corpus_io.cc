#include "doc/corpus_io.h"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "common/binary_io.h"

namespace qec::doc {

namespace {

constexpr char kMagic[8] = {'Q', 'E', 'C', 'C', 'O', 'R', 'P', '1'};

}  // namespace

std::string SerializeCorpus(const Corpus& corpus) {
  BinaryWriter w;
  for (char c : kMagic) w.U8(static_cast<uint8_t>(c));

  // Analyzer options.
  const text::AnalyzerOptions& a = corpus.analyzer().options();
  w.U8(a.tokenizer.lowercase ? 1 : 0);
  w.U8(a.tokenizer.keep_numbers ? 1 : 0);
  w.U32(static_cast<uint32_t>(a.tokenizer.min_token_length));
  w.Str(a.tokenizer.intra_token_chars);
  w.U8(a.remove_stopwords ? 1 : 0);
  w.U8(a.stem ? 1 : 0);

  // Vocabulary, in id order so interning on load restores the same ids.
  const text::Vocabulary& vocab = corpus.analyzer().vocabulary();
  w.U32(static_cast<uint32_t>(vocab.size()));
  for (TermId t = 0; t < vocab.size(); ++t) w.Str(vocab.TermString(t));

  // Documents.
  w.U32(static_cast<uint32_t>(corpus.NumDocs()));
  for (DocId d = 0; d < corpus.NumDocs(); ++d) {
    const Document& doc = corpus.Get(d);
    w.U8(doc.kind() == DocumentKind::kStructured ? 1 : 0);
    w.Str(doc.title());
    w.U32(static_cast<uint32_t>(doc.terms().size()));
    for (TermId t : doc.terms()) w.U32(t);
    w.U32(static_cast<uint32_t>(doc.features().size()));
    for (const Feature& f : doc.features()) {
      w.Str(f.entity);
      w.Str(f.attribute);
      w.Str(f.value);
    }
  }
  return w.Take();
}

Result<Corpus> DeserializeCorpus(std::string_view data) {
  BinaryReader r(data, "corpus blob");
  for (char expected : kMagic) {
    uint8_t c = 0;
    QEC_RETURN_IF_ERROR(r.U8(c));
    if (static_cast<char>(c) != expected) {
      return Status::Corruption("bad corpus magic");
    }
  }

  text::AnalyzerOptions options;
  uint8_t flag = 0;
  uint32_t u = 0;
  QEC_RETURN_IF_ERROR(r.U8(flag));
  options.tokenizer.lowercase = flag != 0;
  QEC_RETURN_IF_ERROR(r.U8(flag));
  options.tokenizer.keep_numbers = flag != 0;
  QEC_RETURN_IF_ERROR(r.U32(u));
  options.tokenizer.min_token_length = u;
  QEC_RETURN_IF_ERROR(r.Str(options.tokenizer.intra_token_chars));
  QEC_RETURN_IF_ERROR(r.U8(flag));
  options.remove_stopwords = flag != 0;
  QEC_RETURN_IF_ERROR(r.U8(flag));
  options.stem = flag != 0;

  Corpus corpus(options);

  uint32_t vocab_size = 0;
  QEC_RETURN_IF_ERROR(r.U32(vocab_size));
  for (uint32_t i = 0; i < vocab_size; ++i) {
    std::string term;
    QEC_RETURN_IF_ERROR(r.Str(term));
    TermId id = corpus.analyzer().InternVerbatim(term);
    if (id != i) {
      return Status::Corruption("duplicate vocabulary entry '" + term + "'");
    }
  }

  uint32_t num_docs = 0;
  QEC_RETURN_IF_ERROR(r.U32(num_docs));
  for (uint32_t d = 0; d < num_docs; ++d) {
    uint8_t kind_flag = 0;
    QEC_RETURN_IF_ERROR(r.U8(kind_flag));
    std::string title;
    QEC_RETURN_IF_ERROR(r.Str(title));
    uint32_t num_terms = 0;
    QEC_RETURN_IF_ERROR(r.U32(num_terms));
    if (num_terms > data.size()) {
      return Status::Corruption("implausible term count");
    }
    std::vector<TermId> terms;
    terms.reserve(num_terms);
    for (uint32_t i = 0; i < num_terms; ++i) {
      uint32_t t = 0;
      QEC_RETURN_IF_ERROR(r.U32(t));
      if (t >= vocab_size) {
        return Status::Corruption("term id " + std::to_string(t) +
                                  " out of range");
      }
      terms.push_back(t);
    }
    uint32_t num_features = 0;
    QEC_RETURN_IF_ERROR(r.U32(num_features));
    if (num_features > data.size()) {
      return Status::Corruption("implausible feature count");
    }
    std::vector<Feature> features;
    features.reserve(num_features);
    for (uint32_t i = 0; i < num_features; ++i) {
      Feature f;
      QEC_RETURN_IF_ERROR(r.Str(f.entity));
      QEC_RETURN_IF_ERROR(r.Str(f.attribute));
      QEC_RETURN_IF_ERROR(r.Str(f.value));
      features.push_back(std::move(f));
    }
    corpus.RestoreDocument(kind_flag != 0 ? DocumentKind::kStructured
                                          : DocumentKind::kText,
                           std::move(title), std::move(terms),
                           std::move(features));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after corpus");
  }
  return corpus;
}

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  std::string blob = SerializeCorpus(corpus);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  if (std::fwrite(blob.data(), 1, blob.size(), f.get()) != blob.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::Ok();
}

Result<Corpus> LoadCorpus(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string blob;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    blob.append(buf, n);
  }
  return DeserializeCorpus(blob);
}

}  // namespace qec::doc
