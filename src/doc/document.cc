#include "doc/document.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace qec::doc {

std::string FeatureToken(const Feature& feature) {
  auto squash = [](std::string_view part) {
    std::string out;
    out.reserve(part.size());
    for (char c : part) {
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
  };
  return squash(feature.entity) + ":" + squash(feature.attribute) + ":" +
         squash(feature.value);
}

Document::Document(DocId id, DocumentKind kind, std::string title,
                   std::vector<TermId> terms, std::vector<Feature> features)
    : id_(id),
      kind_(kind),
      title_(std::move(title)),
      terms_(std::move(terms)),
      features_(std::move(features)) {
  term_set_ = terms_;
  std::sort(term_set_.begin(), term_set_.end());
  term_set_.erase(std::unique(term_set_.begin(), term_set_.end()),
                  term_set_.end());
  term_counts_.assign(term_set_.size(), 0);
  for (TermId t : terms_) {
    auto it = std::lower_bound(term_set_.begin(), term_set_.end(), t);
    term_counts_[static_cast<size_t>(it - term_set_.begin())]++;
  }
}

int Document::TermFrequency(TermId term) const {
  auto it = std::lower_bound(term_set_.begin(), term_set_.end(), term);
  if (it == term_set_.end() || *it != term) return 0;
  return term_counts_[static_cast<size_t>(it - term_set_.begin())];
}

bool Document::Contains(TermId term) const {
  return std::binary_search(term_set_.begin(), term_set_.end(), term);
}

}  // namespace qec::doc
