#include "doc/corpus.h"

#include "common/logging.h"

namespace qec::doc {

Corpus::Corpus(text::AnalyzerOptions analyzer_options)
    : analyzer_(std::make_unique<text::Analyzer>(analyzer_options)) {}

DocId Corpus::AddTextDocument(std::string title, std::string_view body) {
  DocId id = static_cast<DocId>(docs_.size());
  std::vector<TermId> terms = analyzer_->Analyze(body);
  docs_.emplace_back(id, DocumentKind::kText, std::move(title),
                     std::move(terms), std::vector<Feature>{});
  return id;
}

DocId Corpus::AddStructuredDocument(std::string title,
                                    std::vector<Feature> features) {
  DocId id = static_cast<DocId>(docs_.size());
  std::vector<TermId> terms;
  for (const Feature& f : features) {
    terms.push_back(analyzer_->InternVerbatim(FeatureToken(f)));
    for (TermId t : analyzer_->Analyze(f.entity)) terms.push_back(t);
    for (TermId t : analyzer_->Analyze(f.attribute)) terms.push_back(t);
    for (TermId t : analyzer_->Analyze(f.value)) terms.push_back(t);
  }
  docs_.emplace_back(id, DocumentKind::kStructured, std::move(title),
                     std::move(terms), std::move(features));
  return id;
}

DocId Corpus::RestoreDocument(DocumentKind kind, std::string title,
                              std::vector<TermId> terms,
                              std::vector<Feature> features) {
  DocId id = static_cast<DocId>(docs_.size());
  docs_.emplace_back(id, kind, std::move(title), std::move(terms),
                     std::move(features));
  return id;
}

const Document& Corpus::Get(DocId id) const {
  QEC_CHECK_LT(id, docs_.size());
  return docs_[id];
}

CorpusStats Corpus::Stats() const {
  CorpusStats stats;
  stats.num_docs = docs_.size();
  stats.num_distinct_terms = analyzer_->vocabulary().size();
  for (const auto& d : docs_) stats.total_term_occurrences += d.length();
  stats.avg_doc_length =
      docs_.empty() ? 0.0
                    : static_cast<double>(stats.total_term_occurrences) /
                          static_cast<double>(docs_.size());
  return stats;
}

}  // namespace qec::doc
