// Figure 6: query-expansion time per Table 1 query for ISKR, PEBC, Data
// Clouds, the F-measure variant, and CS. Clustering time (shared by the
// cluster-based methods and reported separately in the paper: 0.02s avg on
// shopping, 0.35s on Wikipedia for their testbed) is printed per dataset.
//
// Paper shape: Data Clouds fastest, CS comparable to ISKR/PEBC, and the
// F-measure variant far slower (30+ seconds on some queries, because it
// re-evaluates every keyword after every refinement). In this
// reproduction all result-set algebra is 64-bit-word bitset based, which
// flattens the per-update cost difference the paper's F-measure blowup
// (and its ISKR-slower-than-PEBC ordering) relied on — see EXPERIMENTS.md
// for the deviation analysis. What reproduces here: Data Clouds fastest,
// CS ≈ ISKR, every method sub-second, and the F-measure variant doing
// strictly more value recomputations per refinement than ISKR (the
// bench_ablation_iskr binary reports the counts).

#include <cstdio>

#include "common/string_util.h"
#include "common/stopwatch.h"
#include "eval/harness.h"
#include "eval/obs_report.h"
#include "eval/table_printer.h"

namespace {

// Medians over repetitions keep the microsecond-scale timings stable.
constexpr int kReps = 5;

// The paper caps the expansion input at the top 30 results only on the
// Wikipedia dataset; shopping queries use ALL their results (QS8: 557
// results, 464 distinct keywords in its largest cluster) — which is where
// the F-measure variant's recompute-everything cost explodes.
void RunDataset(const qec::eval::DatasetBundle& bundle, size_t top_k,
                const char* label) {
  const auto methods = qec::eval::TimingMethods();
  std::printf("Figure 6(%s): query expansion time (milliseconds)\n", label);
  std::vector<std::string> headers = {"query"};
  for (auto m : methods) headers.emplace_back(qec::eval::MethodName(m));
  qec::eval::TablePrinter table(headers);

  qec::baselines::QueryLogSuggester log(qec::datagen::SyntheticQueryLog());
  double clustering_total = 0.0;
  size_t n = 0;
  std::vector<double> sums(methods.size(), 0.0);
  for (const auto& wq : bundle.queries) {
    auto qc = qec::eval::PrepareQueryCase(bundle, wq.text, top_k);
    if (!qc.ok()) continue;
    clustering_total += qc->clustering_seconds;
    ++n;
    std::vector<std::string> row = {wq.id};
    for (size_t m = 0; m < methods.size(); ++m) {
      double best = 0.0;
      for (int rep = 0; rep < kReps; ++rep) {
        auto run =
            qec::eval::RunMethod(bundle, *qc, methods[m], &log, wq.text);
        if (rep == 0 || run.seconds < best) best = run.seconds;
      }
      sums[m] += best;
      row.push_back(qec::FormatDouble(best * 1e3, 3));
    }
    table.AddRow(std::move(row));
  }
  std::vector<std::string> avg_row = {"avg"};
  for (double s : sums) {
    avg_row.push_back(qec::FormatDouble(n ? s * 1e3 / n : 0.0, 3));
  }
  table.AddRow(std::move(avg_row));
  std::printf("%s", table.ToString().c_str());
  table.WriteCsv(qec::eval::ResultsDir() + "/fig6_time_" + bundle.name +
                 ".csv");
  std::printf("average clustering time: %.3f ms (shared by ISKR/PEBC/CS)\n\n",
              n ? clustering_total * 1e3 / n : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto obs_flags = qec::eval::ParseObsFlags(argc, argv);
  std::printf("=== Figure 6: Query Expansion Time ===\n\n");
  // A catalog sized like the paper's (hundreds of results per query).
  qec::datagen::ShoppingOptions shopping_options;
  shopping_options.products_per_family = 30;
  auto shopping = qec::eval::MakeShoppingBundle(shopping_options);
  RunDataset(shopping, /*top_k=*/0, "a: shopping, all results");
  auto wikipedia = qec::eval::MakeWikipediaBundle();
  RunDataset(wikipedia, /*top_k=*/30, "b: wikipedia, top-30");
  return qec::eval::EmitObsOutputs(obs_flags) ? 0 : 1;
}
