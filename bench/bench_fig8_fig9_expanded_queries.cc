// Figures 8-9: the actual expanded queries each approach generates for
// every Table 1 query — the qualitative output the paper prints in its
// appendix (e.g. ISKR's {"san jose, player, hockey"} vs Data Clouds'
// {"san jose, scorer"}).

#include <cstdio>

#include "eval/harness.h"

namespace {

void RunDataset(const qec::eval::DatasetBundle& bundle) {
  qec::baselines::QueryLogSuggester log(qec::datagen::SyntheticQueryLog());
  std::vector<qec::eval::Method> methods = qec::eval::UserStudyMethods();
  methods.push_back(qec::eval::Method::kFMeasure);
  for (const auto& wq : bundle.queries) {
    auto qc = qec::eval::PrepareQueryCase(bundle, wq.text);
    if (!qc.ok()) continue;
    std::printf("%s: \"%s\"  (%zu results, %zu clusters)\n", wq.id.c_str(),
                wq.text.c_str(), qc->universe->size(),
                qc->clustering.num_clusters);
    for (auto m : methods) {
      auto run = qec::eval::RunMethod(bundle, *qc, m, &log, wq.text);
      std::printf("  %-10s", std::string(qec::eval::MethodName(m)).c_str());
      for (size_t i = 0; i < run.suggestions.size(); ++i) {
        const auto& s = run.suggestions[i];
        std::printf(" q%zu:\"", i + 1);
        for (size_t k = 0; k < s.keywords.size(); ++k) {
          std::printf("%s%s", k > 0 ? ", " : "", s.keywords[k].c_str());
        }
        std::printf("\"");
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("=== Figures 8-9: Expanded Queries per Approach ===\n\n");
  std::printf("--- Shopping dataset (Figure 9 analogue) ---\n\n");
  auto shopping = qec::eval::MakeShoppingBundle();
  RunDataset(shopping);
  std::printf("--- Wikipedia dataset (Figure 8 analogue) ---\n\n");
  auto wikipedia = qec::eval::MakeWikipediaBundle();
  RunDataset(wikipedia);
  return 0;
}
