// Ablation: the paper's Sec. 7 future-work directions, prototyped.
//
//  (1) clustering method sensitivity — Eq. 1 scores when the result
//      clustering comes from k-means, average-link HAC, or the dynamic
//      silhouette-based selector ("choosing the best clustering method
//      dynamically");
//  (2) interleaving clustering and expansion — extra score bought by
//      reassigning results to the expanded query that retrieves them and
//      re-expanding;
//  (3) OR semantics (appendix) — quality of disjunctive expanded queries
//      versus the paper's conjunctive ones on the same clusters;
//  (4) faceted search (related work §F) — how much of each dataset's
//      result sets automatic facet extraction can navigate at all: high on
//      the structured catalog, zero on text, the paper's argument for why
//      expansion subsumes facets on ambiguous/text queries;
//  (5) vector-space retrieval (Sec. 7) — Eq. 1 scores when the expansion
//      universe is ranked by VSM cosine instead of TF-IDF AND-retrieval.

#include <cstdio>

#include "baselines/faceted.h"
#include "cluster/hac.h"
#include "common/string_util.h"
#include "core/candidates.h"
#include "core/expansion_context.h"
#include "core/interleaved.h"
#include "core/iskr.h"
#include "core/metrics.h"
#include "core/or_expander.h"
#include "eval/harness.h"
#include "eval/table_printer.h"

namespace {

using qec::cluster::Clustering;

double ExpandAllScore(const qec::core::ResultUniverse& universe,
                      const std::vector<qec::TermId>& user_terms,
                      const Clustering& clustering,
                      const std::vector<qec::TermId>& candidates,
                      bool or_semantics = false) {
  std::vector<qec::core::QueryQuality> qualities;
  for (const auto& m : clustering.Members()) {
    qec::DynamicBitset bits = universe.EmptySet();
    for (size_t i : m) bits.Set(i);
    auto ctx = qec::core::MakeContext(universe, user_terms, std::move(bits),
                                      candidates);
    if (or_semantics) {
      qualities.push_back(qec::core::OrIskrExpander().Expand(ctx).quality);
    } else {
      qualities.push_back(qec::core::IskrExpander().Expand(ctx).quality);
    }
  }
  return qec::core::SetScore(qualities);
}

struct Sums {
  double kmeans = 0.0, hac = 0.0, dynamic = 0.0;
  double plain = 0.0, interleaved = 0.0;
  double and_sem = 0.0, or_sem = 0.0;
  double facetable = 0.0;
  double facet_count = 0.0;
  double tfidf_rank = 0.0, vsm_rank = 0.0;
  size_t interleave_improved = 0;
  size_t hac_chosen = 0;
  size_t n = 0;
};

void RunDataset(const qec::eval::DatasetBundle& bundle, Sums& sums) {
  for (const auto& wq : bundle.queries) {
    auto qc = qec::eval::PrepareQueryCase(bundle, wq.text);
    if (!qc.ok()) continue;
    const auto& universe = *qc->universe;
    auto candidates = qec::core::SelectCandidates(universe, *bundle.index,
                                                  qc->user_terms, {});
    // Rebuild the TF vectors once for the alternative clusterings.
    std::vector<qec::cluster::SparseVector> vectors;
    for (size_t i = 0; i < universe.size(); ++i) {
      vectors.push_back(qec::cluster::SparseVector::FromDocument(
          bundle.corpus->Get(universe.doc_at(i))));
    }

    // (1) clustering methods.
    const Clustering& kmeans = qc->clustering;  // harness used auto-k kmeans
    qec::cluster::HacOptions hopts;
    hopts.k = 5;
    hopts.auto_k = true;
    Clustering hac = qec::cluster::Hac(hopts).Cluster(vectors);
    qec::cluster::ClusteringMethod chosen;
    Clustering dynamic =
        qec::cluster::SelectBestClustering(vectors, 5, 42, &chosen);
    if (chosen == qec::cluster::ClusteringMethod::kHac) ++sums.hac_chosen;

    double s_kmeans =
        ExpandAllScore(universe, qc->user_terms, kmeans, candidates);
    sums.kmeans += s_kmeans;
    sums.hac += ExpandAllScore(universe, qc->user_terms, hac, candidates);
    sums.dynamic +=
        ExpandAllScore(universe, qc->user_terms, dynamic, candidates);

    // (2) interleaving, from the k-means clustering.
    auto out = qec::core::InterleavedExpander().Run(universe, qc->user_terms,
                                                    kmeans, candidates);
    sums.plain += s_kmeans;
    sums.interleaved += out.set_score;
    if (out.set_score > s_kmeans + 1e-12) ++sums.interleave_improved;

    // (3) AND vs OR semantics on the same clusters.
    sums.and_sem += s_kmeans;
    sums.or_sem += ExpandAllScore(universe, qc->user_terms, kmeans,
                                  candidates, /*or_semantics=*/true);

    // (4) faceted navigation applicability.
    qec::baselines::FacetedNavigator navigator;
    auto facets = navigator.ExtractFacets(universe);
    sums.facetable +=
        qec::baselines::FacetedNavigator::FacetableFraction(universe, facets);
    sums.facet_count += static_cast<double>(facets.size());

    // (5) VSM-ranked universe: same pipeline, cosine retrieval.
    {
      auto vsm_results = bundle.index->SearchVsm(qc->user_terms, 30);
      qec::core::ResultUniverse vsm_universe(*bundle.corpus, vsm_results);
      std::vector<qec::cluster::SparseVector> vsm_vectors;
      for (size_t i = 0; i < vsm_universe.size(); ++i) {
        vsm_vectors.push_back(qec::cluster::SparseVector::FromDocument(
            bundle.corpus->Get(vsm_universe.doc_at(i))));
      }
      qec::cluster::KMeansOptions kopts;
      kopts.k = 5;
      kopts.auto_k = true;
      Clustering vsm_clustering =
          qec::cluster::KMeans(kopts).Cluster(vsm_vectors);
      auto vsm_candidates = qec::core::SelectCandidates(
          vsm_universe, *bundle.index, qc->user_terms, {});
      sums.vsm_rank += ExpandAllScore(vsm_universe, qc->user_terms,
                                      vsm_clustering, vsm_candidates);
      sums.tfidf_rank += s_kmeans;
    }
    ++sums.n;
  }
}

}  // namespace

int main() {
  std::printf("=== Ablation: Sec. 7 future-work prototypes ===\n\n");
  Sums sums;
  auto shopping = qec::eval::MakeShoppingBundle();
  RunDataset(shopping, sums);
  auto wikipedia = qec::eval::MakeWikipediaBundle();
  RunDataset(wikipedia, sums);
  const double n = sums.n > 0 ? static_cast<double>(sums.n) : 1.0;

  std::printf("(1) clustering-method sensitivity (avg Eq. 1 over %zu "
              "queries, ISKR)\n", sums.n);
  qec::eval::TablePrinter t1({"clustering", "avg score"});
  t1.AddRow({"k-means (auto-k)", qec::FormatDouble(sums.kmeans / n, 3)});
  t1.AddRow({"HAC average-link (auto-k)", qec::FormatDouble(sums.hac / n, 3)});
  t1.AddRow({"dynamic selection (silhouette)",
             qec::FormatDouble(sums.dynamic / n, 3)});
  std::printf("%s", t1.ToString().c_str());
  std::printf("dynamic selector picked HAC on %zu/%zu queries\n\n",
              sums.hac_chosen, sums.n);

  std::printf("(2) interleaving clustering and expansion\n");
  qec::eval::TablePrinter t2({"pipeline", "avg score"});
  t2.AddRow({"cluster -> expand", qec::FormatDouble(sums.plain / n, 3)});
  t2.AddRow({"cluster -> expand -> reassign -> expand",
             qec::FormatDouble(sums.interleaved / n, 3)});
  std::printf("%s", t2.ToString().c_str());
  std::printf("interleaving strictly improved %zu/%zu queries\n\n",
              sums.interleave_improved, sums.n);

  std::printf("(3) AND vs OR semantics on identical clusters\n");
  qec::eval::TablePrinter t3({"semantics", "avg score"});
  t3.AddRow({"AND (conjunctive, Sec. 2)",
             qec::FormatDouble(sums.and_sem / n, 3)});
  t3.AddRow({"OR (disjunctive, appendix)",
             qec::FormatDouble(sums.or_sem / n, 3)});
  std::printf("%s\n", t3.ToString().c_str());

  std::printf("(4) faceted-search applicability (related work comparison)\n");
  std::printf("  avg facets extracted per query:        %.1f\n",
              sums.facet_count / n);
  std::printf("  avg fraction of results facet-navigable: %.2f\n",
              sums.facetable / n);
  std::printf("  (structured catalog results facet well; text results "
              "contribute 0 —\n   the paper's case for expansion over "
              "facets on ambiguous/text queries)\n\n");

  std::printf("(5) retrieval model for the expansion universe (Sec. 7)\n");
  qec::eval::TablePrinter t5({"ranking", "avg score"});
  t5.AddRow({"TF-IDF, AND semantics (paper)",
             qec::FormatDouble(sums.tfidf_rank / n, 3)});
  t5.AddRow({"VSM cosine, OR candidates",
             qec::FormatDouble(sums.vsm_rank / n, 3)});
  std::printf("%s", t5.ToString().c_str());
  return 0;
}
