// Extension experiment (not in the paper): generalization to a third,
// bibliographic dataset. The shopping and Wikipedia corpora drove every
// design decision; this bench checks that the algorithms behave the same
// way on publication records — ambiguous author names split into topic
// clusters, venue queries split by research area, and ISKR/PEBC keep
// their margin over CS.

#include <cstdio>

#include "common/string_util.h"
#include "datagen/publications.h"
#include "eval/harness.h"
#include "eval/table_printer.h"

int main() {
  std::printf("=== Extension: publications dataset (generalization) ===\n\n");
  qec::eval::DatasetBundle bundle;
  bundle.name = "publications";
  bundle.corpus = std::make_unique<qec::doc::Corpus>(
      qec::datagen::PublicationsGenerator().Generate());
  bundle.index = std::make_unique<qec::index::InvertedIndex>(*bundle.corpus);
  bundle.queries = qec::datagen::PublicationQueries();

  auto stats = bundle.corpus->Stats();
  std::printf("corpus: %zu papers, %zu distinct terms\n\n", stats.num_docs,
              stats.num_distinct_terms);

  const auto methods = qec::eval::ScoreMethods();
  std::vector<std::string> headers = {"query", "text", "#results"};
  for (auto m : methods) headers.emplace_back(qec::eval::MethodName(m));
  qec::eval::TablePrinter table(headers);
  std::vector<double> sums(methods.size(), 0.0);
  size_t n = 0;
  for (const auto& wq : bundle.queries) {
    auto qc = qec::eval::PrepareQueryCase(bundle, wq.text);
    if (!qc.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", wq.id.c_str(),
                   qc.status().ToString().c_str());
      continue;
    }
    std::vector<std::string> row = {wq.id, wq.text,
                                    std::to_string(qc->universe->size())};
    for (size_t m = 0; m < methods.size(); ++m) {
      auto run =
          qec::eval::RunMethod(bundle, *qc, methods[m], nullptr, wq.text);
      row.push_back(qec::FormatDouble(run.set_score, 3));
      sums[m] += run.set_score;
    }
    ++n;
    table.AddRow(std::move(row));
  }
  std::vector<std::string> avg = {"avg", "", ""};
  for (double s : sums) avg.push_back(qec::FormatDouble(n ? s / n : 0.0, 3));
  table.AddRow(std::move(avg));
  std::printf("%s", table.ToString().c_str());
  table.WriteCsv(qec::eval::ResultsDir() + "/ext_publications.csv");

  // Show what the expansions look like for the ambiguous author QP1.
  auto qc = qec::eval::PrepareQueryCase(bundle, "chen");
  if (qc.ok()) {
    auto run = qec::eval::RunMethod(bundle, *qc, qec::eval::Method::kIskr,
                                    nullptr, "chen");
    std::printf("\nISKR expansions for the ambiguous author \"chen\":\n");
    for (const auto& s : run.suggestions) {
      std::printf("  \"");
      for (size_t k = 0; k < s.keywords.size(); ++k) {
        std::printf("%s%s", k > 0 ? ", " : "", s.keywords[k].c_str());
      }
      std::printf("\"\n");
    }
  }
  return 0;
}
