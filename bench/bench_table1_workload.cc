// Table 1: the data and query sets. Prints the 20-query workload alongside
// corpus statistics and each query's result count — the inputs every other
// experiment consumes.

#include <cstdio>

#include "eval/harness.h"
#include "eval/table_printer.h"

namespace {

void PrintDataset(const qec::eval::DatasetBundle& bundle) {
  const auto stats = bundle.corpus->Stats();
  std::printf("dataset: %s — %zu documents, %zu distinct terms, avg length %.1f\n",
              bundle.name.c_str(), stats.num_docs, stats.num_distinct_terms,
              stats.avg_doc_length);
  qec::eval::TablePrinter table({"id", "query", "#results", "top-30 used"});
  for (const auto& wq : bundle.queries) {
    auto terms = bundle.corpus->analyzer().AnalyzeReadOnly(wq.text);
    auto all = bundle.index->Search(terms, 0);
    auto used = std::min<size_t>(all.size(), 30);
    table.AddRow({wq.id, wq.text, std::to_string(all.size()),
                  std::to_string(used)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("=== Table 1: Data and Query Sets ===\n\n");
  PrintDataset(qec::eval::MakeShoppingBundle());
  PrintDataset(qec::eval::MakeWikipediaBundle());
  return 0;
}
