// Serving-layer throughput on a repeated-query workload.
//
// Real keyword-search traffic is heavily head-skewed (the query-log
// studies behind the paper's log-based baselines), so the qec_server
// expansion cache should amortize almost all of the clustering +
// generation work. This bench replays a Zipf-skewed stream drawn from the
// Table 1 shopping workload (src/datagen/workload.cc) against a QecServer
// twice — caches disabled, then enabled — and reports the speedup. The
// acceptance bar for the serving layer is >= 2x with caches on.
//
// Flags: --requests=N (default 400), --threads=N (default 0 = auto),
// --queue=N (default 256), --no-cache (run only the uncached config),
// --shadow-rate=R (additionally run the cached config with shadow A/B
// execution at rate R and report foreground p99 shadows-on vs shadows-off
// — the acceptance bar is p99 within 10% on the cached path),
// --result-out=FILE (write a plain JSON result summary — qps, latency
// percentiles, per-stage breakdown — that works even in notrace builds,
// which is what the CI telemetry-overhead gate compares), plus the shared
// observability flags (--metrics-out=FILE writes the metrics JSON,
// including server/cache_* counters, the queue-depth gauges, and the
// server/request_latency_ns histogram).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "datagen/shopping.h"
#include "datagen/workload.h"
#include "eval/obs_report.h"
#include "eval/table_printer.h"
#include "index/inverted_index.h"
#include "server/request_context.h"
#include "server/server.h"

namespace {

/// A Zipf-skewed request stream over the Table 1 shopping queries:
/// query at popularity rank r is drawn with weight 1/(r+1).
std::vector<std::string> MakeWorkload(size_t num_requests, uint64_t seed) {
  const auto queries = qec::datagen::ShoppingQueries();
  std::vector<double> cumulative;
  double total = 0.0;
  for (size_t r = 0; r < queries.size(); ++r) {
    total += 1.0 / static_cast<double>(r + 1);
    cumulative.push_back(total);
  }
  qec::Rng rng(seed);
  std::vector<std::string> workload;
  workload.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    const double x = rng.UniformDouble() * total;
    size_t pick = 0;
    while (pick + 1 < cumulative.size() && cumulative[pick] < x) ++pick;
    workload.push_back(queries[pick].text);
  }
  return workload;
}

struct RunResult {
  double seconds = 0.0;
  double qps = 0.0;
  size_t ok = 0;
  size_t errors = 0;
  qec::server::ServerStats stats;
  /// Shadow A/B tallies (all zero when the run had shadow_rate 0).
  qec::server::ShadowTallies shadow;
  /// Summed per-stage nanoseconds over every response (the responses carry
  /// their StageTimings in all builds, so this survives QEC_DISABLE_TRACING).
  uint64_t stage_ns[qec::server::kNumStages] = {};
  /// Per-request total latency in milliseconds, for percentiles.
  std::vector<double> latencies_ms;

  double Percentile(double q) const {
    if (latencies_ms.empty()) return 0.0;
    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }
};

/// Prints the per-stage latency breakdown for a run. Stage timings come from
/// the responses' StageTimings, so the table is populated in every build
/// (including QEC_DISABLE_TRACING, which only strips the metrics macros).
void PrintStageBreakdown(const char* config, const RunResult& r) {
  qec::eval::TablePrinter table(
      {"stage", "total ms", "avg ms", "share %"});
  uint64_t total_ns = 0;
  for (size_t s = 0; s < qec::server::kNumStages; ++s) total_ns += r.stage_ns[s];
  const double requests =
      r.latencies_ms.empty() ? 1.0 : static_cast<double>(r.latencies_ms.size());
  for (size_t s = 0; s < qec::server::kNumStages; ++s) {
    const double ms = static_cast<double>(r.stage_ns[s]) / 1e6;
    const double share =
        total_ns > 0
            ? 100.0 * static_cast<double>(r.stage_ns[s]) /
                  static_cast<double>(total_ns)
            : 0.0;
    table.AddRow({std::string(qec::server::StageName(
                      static_cast<qec::server::Stage>(s))),
                  qec::FormatDouble(ms, 3), qec::FormatDouble(ms / requests, 4),
                  qec::FormatDouble(share, 1)});
  }
  std::printf("per-stage breakdown (%s): p50=%.3fms p95=%.3fms\n%s\n", config,
              r.Percentile(50.0), r.Percentile(95.0),
              table.ToString().c_str());
}

/// Appends the JSON object for one run to `out` (no trailing separator).
void AppendRunJson(std::string* out, const RunResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"seconds\":%.6f,\"qps\":%.3f,\"ok\":%zu,\"errors\":%zu,"
                "\"p50_ms\":%.6f,\"p95_ms\":%.6f,\"p99_ms\":%.6f,\"stages_ms\":{",
                r.seconds, r.qps, r.ok, r.errors, r.Percentile(50.0),
                r.Percentile(95.0), r.Percentile(99.0));
  *out += buf;
  for (size_t s = 0; s < qec::server::kNumStages; ++s) {
    const std::string stage(
        qec::server::StageName(static_cast<qec::server::Stage>(s)));
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.6f", s > 0 ? "," : "",
                  stage.c_str(), static_cast<double>(r.stage_ns[s]) / 1e6);
    *out += buf;
  }
  *out += "}}";
}

RunResult RunWorkload(const qec::index::InvertedIndex& index,
                      const std::vector<std::string>& workload, bool caches,
                      size_t threads, size_t queue_capacity,
                      double shadow_rate = 0.0) {
  qec::server::ServerOptions options;
  options.num_threads = threads;
  options.queue_capacity = queue_capacity;
  options.enable_expansion_cache = caches;
  options.enable_set_algebra_cache = caches;
  options.expander.candidates.fraction = 1.0;
  options.shadow_sample_rate = shadow_rate;
  options.shadow_algorithm = qec::core::ExpansionAlgorithm::kPebc;
  qec::server::QecServer server(index, options);

  // Submit with backpressure: keep fewer requests outstanding than the
  // admission queue holds, so nothing sheds and every request completes.
  const size_t window =
      queue_capacity > 16 ? queue_capacity - 16 : queue_capacity;
  RunResult result;
  std::deque<std::future<qec::server::ServeResponse>> outstanding;
  auto drain_one = [&] {
    qec::server::ServeResponse response = outstanding.front().get();
    outstanding.pop_front();
    if (response.status.ok()) {
      ++result.ok;
    } else {
      ++result.errors;
      std::fprintf(stderr, "request failed: %s\n",
                   response.status.ToString().c_str());
    }
    for (size_t s = 0; s < qec::server::kNumStages; ++s) {
      result.stage_ns[s] += response.stages.ns[s];
    }
    result.latencies_ms.push_back(response.total_seconds * 1e3);
  };

  qec::Stopwatch watch;
  for (const std::string& query : workload) {
    qec::server::ServeRequest request;
    request.query = query;
    while (outstanding.size() >= window) drain_one();
    outstanding.push_back(server.Submit(std::move(request)));
  }
  while (!outstanding.empty()) drain_one();
  result.seconds = watch.ElapsedSeconds();
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(workload.size()) / result.seconds
                   : 0.0;
  result.stats = server.stats();
  if (shadow_rate > 0.0) {
    // Foreground latencies are already recorded; give the low-priority
    // shadow queue a moment to drain so the tallies reflect executed
    // comparisons instead of still-queued jobs.
    while (server.shadow_queue_depth() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  result.shadow = server.shadow_tallies();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto obs_flags = qec::eval::ParseObsFlags(argc, argv);
  size_t num_requests = 400;
  size_t threads = 0;
  size_t queue_capacity = 256;
  bool cached_config = true;
  double shadow_rate = 0.0;
  std::string result_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (qec::StartsWith(arg, "--requests=")) {
      num_requests = std::stoul(arg.substr(strlen("--requests=")));
    } else if (qec::StartsWith(arg, "--threads=")) {
      threads = std::stoul(arg.substr(strlen("--threads=")));
    } else if (qec::StartsWith(arg, "--queue=")) {
      queue_capacity = std::stoul(arg.substr(strlen("--queue=")));
    } else if (arg == "--no-cache") {
      cached_config = false;
    } else if (qec::StartsWith(arg, "--shadow-rate=")) {
      shadow_rate = std::stod(arg.substr(strlen("--shadow-rate=")));
    } else if (qec::StartsWith(arg, "--result-out=")) {
      result_out = arg.substr(strlen("--result-out="));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf("=== Serving Throughput: Repeated-Query Workload ===\n\n");
  qec::doc::Corpus corpus = qec::datagen::ShoppingGenerator().Generate();
  qec::index::InvertedIndex index(corpus);
  const std::vector<std::string> workload = MakeWorkload(num_requests, 42);
  std::printf(
      "corpus: %zu docs; %zu requests over %zu distinct queries "
      "(Zipf-skewed)\n\n",
      corpus.NumDocs(), workload.size(),
      qec::datagen::ShoppingQueries().size());

  qec::eval::TablePrinter table({"config", "seconds", "qps", "cache hits",
                                 "cache misses", "errors"});
  auto add_row = [&](const char* name, const RunResult& r) {
    table.AddRow({name, qec::FormatDouble(r.seconds, 3),
                  qec::FormatDouble(r.qps, 1),
                  std::to_string(r.stats.expansion_cache.hits),
                  std::to_string(r.stats.expansion_cache.misses),
                  std::to_string(r.errors)});
  };

  // Uncached first so the cached run's server/cache_* counters are the
  // last written into the metrics snapshot.
  RunResult uncached =
      RunWorkload(index, workload, false, threads, queue_capacity);
  add_row("no-cache", uncached);
  int rc = 0;
  std::string result_json = "{";
  {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "\"requests\":%zu,\"threads\":%zu,",
                  workload.size(), threads);
    result_json += buf;
  }
  result_json += "\"uncached\":";
  AppendRunJson(&result_json, uncached);
  if (cached_config) {
    RunResult cached =
        RunWorkload(index, workload, true, threads, queue_capacity);
    add_row("cached", cached);
    RunResult shadowed;
    if (shadow_rate > 0.0) {
      shadowed = RunWorkload(index, workload, true, threads, queue_capacity,
                             shadow_rate);
      add_row("cached+shadow", shadowed);
    }
    std::printf("%s\n", table.ToString().c_str());
    PrintStageBreakdown("no-cache", uncached);
    PrintStageBreakdown("cached", cached);
    if (shadow_rate > 0.0) {
      PrintStageBreakdown("cached+shadow", shadowed);
      // Foreground latency comparison: the shadow arm runs off the
      // critical path, so p99 with shadows on should track shadows off.
      const double p99_off = cached.Percentile(99.0);
      const double p99_on = shadowed.Percentile(99.0);
      const double ratio = p99_off > 0.0 ? p99_on / p99_off : 0.0;
      std::printf(
          "shadow A/B (rate=%.2f, pebc arm): sampled=%llu executed=%llu "
          "shed=%llu deduped=%llu\n",
          shadow_rate,
          static_cast<unsigned long long>(shadowed.shadow.sampled),
          static_cast<unsigned long long>(shadowed.shadow.executed),
          static_cast<unsigned long long>(shadowed.shadow.shed),
          static_cast<unsigned long long>(shadowed.shadow.deduped));
      std::printf(
          "foreground p99: shadows-off %.3fms vs shadows-on %.3fms "
          "(%.2fx)\n",
          p99_off, p99_on, ratio);
      if (shadowed.errors > 0) rc = 1;
      char buf[128];
      result_json += ",\"shadow\":";
      AppendRunJson(&result_json, shadowed);
      std::snprintf(buf, sizeof(buf),
                    ",\"shadow_rate\":%.3f,\"shadow_p99_ratio\":%.4f",
                    shadow_rate, ratio);
      result_json += buf;
    }
    const double speedup =
        uncached.qps > 0.0 ? cached.qps / uncached.qps : 0.0;
    std::printf("speedup (cached vs no-cache): %.2fx %s\n", speedup,
                speedup >= 2.0 ? "(>= 2x: PASS)" : "(< 2x: FAIL)");
    if (speedup < 2.0 || cached.errors > 0) rc = 1;
    result_json += ",\"cached\":";
    AppendRunJson(&result_json, cached);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"speedup\":%.3f", speedup);
    result_json += buf;
  } else {
    std::printf("%s\n", table.ToString().c_str());
    PrintStageBreakdown("no-cache", uncached);
  }
  result_json += "}";
  if (!result_out.empty()) {
    std::FILE* f = std::fopen(result_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", result_out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", result_json.c_str());
    std::fclose(f);
    std::printf("result json: %s\n", result_out.c_str());
  }
  if (uncached.errors > 0) rc = 1;
  return qec::eval::EmitObsOutputs(obs_flags) ? rc : 1;
}
