// Serving-layer throughput on a repeated-query workload.
//
// Real keyword-search traffic is heavily head-skewed (the query-log
// studies behind the paper's log-based baselines), so the qec_server
// expansion cache should amortize almost all of the clustering +
// generation work. This bench replays a Zipf-skewed stream drawn from the
// Table 1 shopping workload (src/datagen/workload.cc) against a QecServer
// twice — caches disabled, then enabled — and reports the speedup. The
// acceptance bar for the serving layer is >= 2x with caches on.
//
// Flags: --requests=N (default 400), --threads=N (default 0 = auto),
// --queue=N (default 256), --no-cache (run only the uncached config),
// --shadow-rate=R (additionally run the cached config with shadow A/B
// execution at rate R and report foreground p99 shadows-on vs shadows-off
// — the acceptance bar is p99 within 10% on the cached path),
// --result-out=FILE (write a plain JSON result summary — qps, latency
// percentiles, per-stage breakdown — that works even in notrace builds,
// which is what the CI telemetry-overhead gate compares), plus the shared
// observability flags (--metrics-out=FILE writes the metrics JSON,
// including server/cache_* counters, the queue-depth gauges, and the
// server/request_latency_ns histogram).
//
// --net switches to the network load-generator mode: an in-process epoll
// NetServer (ephemeral loopback port) is driven by the same Zipf workload,
// cache pre-warmed, first with one single-in-flight connection (the old
// stdin serve loop's behavior: one request, wait, repeat), then with
// --connections=N (default 8) pipelined connections at --pipeline=D
// (default 32) requests in flight each. Reports both QPS and their ratio —
// the acceptance bar is >= 4x — and cross-checks that the TCP transport
// returns byte-identical responses (volatile fields canonicalized) to the
// direct submission path for the same request stream.
//
// --admin-port (net mode) additionally runs an in-process HTTP admin plane
// and repeats the pipelined run under a 1 Hz /metrics scrape; the result
// JSON gains "scrape":{"scrapes","p99_ratio","scraped"} — the CI gate
// compares p99_ratio against its regression budget. --profile-out=FILE
// [--profile-hz=N, default 99] captures a sampling CPU profile of the
// measured runs as folded stacks (render with `qec_cli profile FILE`).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "datagen/shopping.h"
#include "datagen/workload.h"
#include "eval/obs_report.h"
#include "eval/table_printer.h"
#include "index/inverted_index.h"
#include "obs/profiler.h"
#include "server/admin/admin_server.h"
#include "server/net/net_server.h"
#include "server/protocol.h"
#include "server/request_context.h"
#include "server/server.h"

namespace {

/// A Zipf-skewed request stream over the Table 1 shopping queries:
/// query at popularity rank r is drawn with weight 1/(r+1).
std::vector<std::string> MakeWorkload(size_t num_requests, uint64_t seed) {
  const auto queries = qec::datagen::ShoppingQueries();
  std::vector<double> cumulative;
  double total = 0.0;
  for (size_t r = 0; r < queries.size(); ++r) {
    total += 1.0 / static_cast<double>(r + 1);
    cumulative.push_back(total);
  }
  qec::Rng rng(seed);
  std::vector<std::string> workload;
  workload.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    const double x = rng.UniformDouble() * total;
    size_t pick = 0;
    while (pick + 1 < cumulative.size() && cumulative[pick] < x) ++pick;
    workload.push_back(queries[pick].text);
  }
  return workload;
}

struct RunResult {
  double seconds = 0.0;
  double qps = 0.0;
  size_t ok = 0;
  size_t errors = 0;
  qec::server::ServerStats stats;
  /// Shadow A/B tallies (all zero when the run had shadow_rate 0).
  qec::server::ShadowTallies shadow;
  /// Summed per-stage nanoseconds over every response (the responses carry
  /// their StageTimings in all builds, so this survives QEC_DISABLE_TRACING).
  uint64_t stage_ns[qec::server::kNumStages] = {};
  /// Per-request total latency in milliseconds, for percentiles.
  std::vector<double> latencies_ms;

  double Percentile(double q) const {
    if (latencies_ms.empty()) return 0.0;
    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }
};

/// Prints the per-stage latency breakdown for a run. Stage timings come from
/// the responses' StageTimings, so the table is populated in every build
/// (including QEC_DISABLE_TRACING, which only strips the metrics macros).
void PrintStageBreakdown(const char* config, const RunResult& r) {
  qec::eval::TablePrinter table(
      {"stage", "total ms", "avg ms", "share %"});
  uint64_t total_ns = 0;
  for (size_t s = 0; s < qec::server::kNumStages; ++s) total_ns += r.stage_ns[s];
  const double requests =
      r.latencies_ms.empty() ? 1.0 : static_cast<double>(r.latencies_ms.size());
  for (size_t s = 0; s < qec::server::kNumStages; ++s) {
    const double ms = static_cast<double>(r.stage_ns[s]) / 1e6;
    const double share =
        total_ns > 0
            ? 100.0 * static_cast<double>(r.stage_ns[s]) /
                  static_cast<double>(total_ns)
            : 0.0;
    table.AddRow({std::string(qec::server::StageName(
                      static_cast<qec::server::Stage>(s))),
                  qec::FormatDouble(ms, 3), qec::FormatDouble(ms / requests, 4),
                  qec::FormatDouble(share, 1)});
  }
  std::printf("per-stage breakdown (%s): p50=%.3fms p95=%.3fms\n%s\n", config,
              r.Percentile(50.0), r.Percentile(95.0),
              table.ToString().c_str());
}

/// Appends the JSON object for one run to `out` (no trailing separator).
void AppendRunJson(std::string* out, const RunResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"seconds\":%.6f,\"qps\":%.3f,\"ok\":%zu,\"errors\":%zu,"
                "\"p50_ms\":%.6f,\"p95_ms\":%.6f,\"p99_ms\":%.6f,\"stages_ms\":{",
                r.seconds, r.qps, r.ok, r.errors, r.Percentile(50.0),
                r.Percentile(95.0), r.Percentile(99.0));
  *out += buf;
  for (size_t s = 0; s < qec::server::kNumStages; ++s) {
    const std::string stage(
        qec::server::StageName(static_cast<qec::server::Stage>(s)));
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.6f", s > 0 ? "," : "",
                  stage.c_str(), static_cast<double>(r.stage_ns[s]) / 1e6);
    *out += buf;
  }
  *out += "}}";
}

RunResult RunWorkload(const qec::index::InvertedIndex& index,
                      const std::vector<std::string>& workload, bool caches,
                      size_t threads, size_t queue_capacity,
                      double shadow_rate = 0.0) {
  qec::server::ServerOptions options;
  options.num_threads = threads;
  options.queue_capacity = queue_capacity;
  options.enable_expansion_cache = caches;
  options.enable_set_algebra_cache = caches;
  options.expander.candidates.fraction = 1.0;
  options.shadow_sample_rate = shadow_rate;
  options.shadow_algorithm = qec::core::ExpansionAlgorithm::kPebc;
  qec::server::QecServer server(index, options);

  // Submit with backpressure: keep fewer requests outstanding than the
  // admission queue holds, so nothing sheds and every request completes.
  const size_t window =
      queue_capacity > 16 ? queue_capacity - 16 : queue_capacity;
  RunResult result;
  std::deque<std::future<qec::server::ServeResponse>> outstanding;
  auto drain_one = [&] {
    qec::server::ServeResponse response = outstanding.front().get();
    outstanding.pop_front();
    if (response.status.ok()) {
      ++result.ok;
    } else {
      ++result.errors;
      std::fprintf(stderr, "request failed: %s\n",
                   response.status.ToString().c_str());
    }
    for (size_t s = 0; s < qec::server::kNumStages; ++s) {
      result.stage_ns[s] += response.stages.ns[s];
    }
    result.latencies_ms.push_back(response.total_seconds * 1e3);
  };

  qec::Stopwatch watch;
  for (const std::string& query : workload) {
    qec::server::ServeRequest request;
    request.query = query;
    while (outstanding.size() >= window) drain_one();
    outstanding.push_back(server.Submit(std::move(request)));
  }
  while (!outstanding.empty()) drain_one();
  result.seconds = watch.ElapsedSeconds();
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(workload.size()) / result.seconds
                   : 0.0;
  result.stats = server.stats();
  if (shadow_rate > 0.0) {
    // Foreground latencies are already recorded; give the low-priority
    // shadow queue a moment to drain so the tallies reflect executed
    // comparisons instead of still-queued jobs.
    while (server.shadow_queue_depth() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  result.shadow = server.shadow_tallies();
  return result;
}

// ---------------------------------------------------------------------------
// --net mode: drive an in-process NetServer over loopback TCP.

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int on = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
  return fd;
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Buffered blocking line reader over a socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool ReadLine(std::string* out) {
    for (;;) {
      const size_t nl = buf_.find('\n', pos_);
      if (nl != std::string::npos) {
        out->assign(buf_, pos_, nl - pos_);
        pos_ = nl + 1;
        if (pos_ > 1 << 16) {
          buf_.erase(0, pos_);
          pos_ = 0;
        }
        return true;
      }
      if (pos_ > 0) {
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      char chunk[16 * 1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
  size_t pos_ = 0;
};

/// Replays `workload` as EXPAND lines over `connections` TCP connections,
/// each keeping up to `depth` requests in flight (depth 1 = the serialized
/// request/response loop the stdin transport used to run). The writer
/// coalesces every free window slot into one send, so a pipelined client
/// issues bursts the server can batch-admit.
RunResult RunNetWorkload(uint16_t port,
                         const std::vector<std::string>& workload,
                         size_t connections, size_t depth) {
  std::vector<std::vector<const std::string*>> per_conn(connections);
  for (size_t i = 0; i < workload.size(); ++i) {
    per_conn[i % connections].push_back(&workload[i]);
  }

  RunResult result;
  std::mutex result_mu;
  std::atomic<bool> failed{false};
  qec::Stopwatch watch;
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<const std::string*>& requests = per_conn[c];
      if (requests.empty()) return;
      const int fd = ConnectLoopback(port);
      if (fd < 0) {
        failed.store(true);
        return;
      }
      using Clock = std::chrono::steady_clock;
      std::mutex mu;
      std::condition_variable cv;
      size_t in_flight = 0;
      // Cork threshold, shared by writer (wait) and reader (notify): the
      // writer sleeps until at least this much window is free, and the
      // reader only pays a futex wake when the threshold is crossed —
      // one wake per burst instead of one per response.
      const size_t min_burst = depth > 1 ? depth / 2 : 1;
      std::vector<Clock::time_point> send_times(requests.size());

      std::vector<double> latencies;
      latencies.reserve(requests.size());
      size_t ok = 0;
      size_t errors = 0;
      std::thread reader([&] {
        LineReader lines(fd);
        std::string line;
        for (size_t i = 0; i < requests.size(); ++i) {
          if (!lines.ReadLine(&line)) {
            failed.store(true);
            cv.notify_all();
            return;
          }
          Clock::time_point sent;
          bool wake;
          {
            std::lock_guard<std::mutex> lock(mu);
            sent = send_times[i];
            --in_flight;
            const size_t free_window = depth - in_flight;
            wake = free_window == min_burst || in_flight == 0;
          }
          if (wake) cv.notify_one();
          latencies.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - sent)
                  .count());
          if (qec::StartsWith(line, "{\"status\":\"ok\"")) {
            ++ok;
          } else {
            ++errors;
          }
        }
      });

      std::string wire;
      size_t next = 0;
      while (next < requests.size() && !failed.load()) {
        size_t take = 0;
        {
          std::unique_lock<std::mutex> lock(mu);
          const size_t want = std::min(min_burst, requests.size() - next);
          cv.wait(lock, [&] {
            return depth - in_flight >= want || failed.load();
          });
          if (failed.load()) break;
          take = std::min(depth - in_flight, requests.size() - next);
          const Clock::time_point now = Clock::now();
          for (size_t k = 0; k < take; ++k) send_times[next + k] = now;
          in_flight += take;
        }
        wire.clear();
        for (size_t k = 0; k < take; ++k) {
          wire += "EXPAND ";
          wire += *requests[next + k];
          wire += '\n';
        }
        if (!SendAll(fd, wire.data(), wire.size())) failed.store(true);
        next += take;
      }
      reader.join();
      ::close(fd);

      std::lock_guard<std::mutex> lock(result_mu);
      result.ok += ok;
      result.errors += errors;
      result.latencies_ms.insert(result.latencies_ms.end(),
                                 latencies.begin(), latencies.end());
    });
  }
  for (std::thread& t : clients) t.join();
  result.seconds = watch.ElapsedSeconds();
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(workload.size()) / result.seconds
                   : 0.0;
  if (failed.load()) result.errors += 1;
  return result;
}

/// Erases one `"key":value` JSON field (string, number, or object value)
/// from a rendered response line, comma included — used to canonicalize
/// away per-request volatile fields before the transport-identity check.
void EraseJsonField(std::string* line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line->find(needle);
  if (pos == std::string::npos) return;
  size_t end = pos + needle.size();
  if (end >= line->size()) return;
  if ((*line)[end] == '"') {
    end = line->find('"', end + 1);
    if (end == std::string::npos) return;
    ++end;
  } else if ((*line)[end] == '{') {
    int nesting = 0;
    do {
      if ((*line)[end] == '{') ++nesting;
      if ((*line)[end] == '}') --nesting;
      ++end;
    } while (nesting > 0 && end < line->size());
  } else {
    while (end < line->size() &&
           (std::isdigit(static_cast<unsigned char>((*line)[end])) != 0 ||
            (*line)[end] == '.' || (*line)[end] == '-' ||
            (*line)[end] == '+' || (*line)[end] == 'e')) {
      ++end;
    }
  }
  size_t begin = pos;
  if (end < line->size() && (*line)[end] == ',') {
    ++end;  // interior field: take the trailing comma
  } else if (begin > 0 && (*line)[begin - 1] == ',') {
    --begin;  // last field: take the leading comma
  }
  line->erase(begin, end - begin);
}

std::string CanonicalizeResponse(std::string line) {
  EraseJsonField(&line, "trace_id");
  EraseJsonField(&line, "queue_ms");
  EraseJsonField(&line, "total_ms");
  EraseJsonField(&line, "stages_ms");
  return line;
}

/// Replays `workload` over one TCP connection and also through direct
/// QecServer submission (the stdin transport's path), and compares the
/// canonicalized response lines pairwise. Returns the number of mismatches.
size_t CheckTransportIdentity(qec::server::QecServer* server, uint16_t port,
                              const std::vector<std::string>& workload) {
  // TCP side: send everything pipelined, read back in order.
  std::vector<std::string> net_lines;
  const int fd = ConnectLoopback(port);
  if (fd < 0) return workload.size();
  std::string wire;
  for (const std::string& query : workload) {
    wire += "EXPAND ";
    wire += query;
    wire += '\n';
  }
  if (!SendAll(fd, wire.data(), wire.size())) {
    ::close(fd);
    return workload.size();
  }
  LineReader lines(fd);
  std::string line;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (!lines.ReadLine(&line)) break;
    net_lines.push_back(line);
  }
  ::close(fd);
  if (net_lines.size() != workload.size()) return workload.size();

  size_t mismatches = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    auto request = qec::server::ParseRequestLine("EXPAND " + workload[i]);
    qec::server::ServeResponse response =
        server->Submit(*std::move(request)).get();
    const std::string direct =
        !response.json_line.empty()
            ? response.json_line
            : qec::server::ResponseToJsonLine(response);
    if (CanonicalizeResponse(net_lines[i]) != CanonicalizeResponse(direct)) {
      if (++mismatches <= 3) {
        std::fprintf(stderr,
                     "transport mismatch on '%s':\n  net:    %s\n  direct: "
                     "%s\n",
                     workload[i].c_str(), net_lines[i].c_str(),
                     direct.c_str());
      }
    }
  }
  return mismatches;
}

/// Starts the sampling CPU profiler when `path` is nonempty; Stop() (or the
/// destructor) writes the folded stacks there and reports the sample count.
class ScopedCpuProfile {
 public:
  ScopedCpuProfile(std::string path, int hz) : path_(std::move(path)) {
    if (path_.empty()) return;
    const qec::Status started = qec::obs::CpuProfiler::Global().Start(hz);
    if (!started.ok()) {
      std::fprintf(stderr, "profiler: %s\n", started.ToString().c_str());
      path_.clear();
      return;
    }
    active_ = true;
  }

  ~ScopedCpuProfile() { Stop(); }

  void Stop() {
    if (!active_) return;
    active_ = false;
    qec::obs::CpuProfiler& profiler = qec::obs::CpuProfiler::Global();
    const std::string folded = profiler.StopFolded();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fwrite(folded.data(), 1, folded.size(), f);
    std::fclose(f);
    std::printf("cpu profile: %llu samples at %s\n",
                static_cast<unsigned long long>(profiler.sample_count()),
                path_.c_str());
  }

 private:
  std::string path_;
  bool active_ = false;
};

/// A stand-in Prometheus scraper: GET /metrics over a fresh connection once
/// per second until Stop(), which returns the completed scrape count. Used
/// to measure the foreground cost of a realistic scrape cadence.
class MetricsScraper {
 public:
  explicit MetricsScraper(uint16_t port) {
    thread_ = std::thread([this, port] {
      while (!stop_.load(std::memory_order_acquire)) {
        const int fd = ConnectLoopback(port);
        if (fd >= 0) {
          static constexpr char kRequest[] =
              "GET /metrics HTTP/1.1\r\nhost: bench\r\n"
              "connection: close\r\n\r\n";
          if (SendAll(fd, kRequest, sizeof(kRequest) - 1)) {
            char buf[16 * 1024];
            size_t total = 0;
            ssize_t n = 0;
            while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
              total += static_cast<size_t>(n);
            }
            if (total > 0) ++scrapes_;
          }
          ::close(fd);
        }
        // 1 Hz cadence, sliced so Stop() returns promptly.
        for (int i = 0; i < 20 && !stop_.load(std::memory_order_acquire);
             ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
    });
  }

  ~MetricsScraper() { Stop(); }

  size_t Stop() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
    return scrapes_;
  }

 private:
  std::atomic<bool> stop_{false};
  size_t scrapes_ = 0;
  std::thread thread_;
};

/// The --net benchmark: single-in-flight baseline vs pipelined connections
/// against one warm in-process NetServer. With `admin` set, an AdminServer
/// rides along and the pipelined run repeats under a 1 Hz /metrics scrape
/// to measure the scrape's foreground p99 cost. Returns the process exit
/// code and appends the net section of the result JSON.
int RunNetMode(const qec::index::InvertedIndex& index,
               const std::vector<std::string>& workload, size_t threads,
               size_t queue_capacity, size_t connections, size_t depth,
               bool admin, std::string* result_json) {
  qec::server::ServerOptions options;
  options.num_threads = threads;
  // Admission must hold a full pipelined burst from every connection, or
  // the load generator measures shedding instead of throughput.
  options.queue_capacity =
      std::max(queue_capacity, connections * depth + 32);
  options.expander.candidates.fraction = 1.0;
  qec::server::QecServer server(index, options);

  qec::server::net::NetServerOptions net_options;
  net_options.max_connections = connections + 8;
  qec::server::net::NetServer net(&server, net_options);
  const qec::Status started = net.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "net server: %s\n", started.ToString().c_str());
    return 1;
  }

  // Warm the expansion cache with every distinct query so both arms replay
  // the same all-hit workload — the cached-hit config the acceptance bar
  // is defined over (and the `cached` field is uniform for the identity
  // check).
  for (const auto& query : qec::datagen::ShoppingQueries()) {
    auto request = qec::server::ParseRequestLine("EXPAND " + query.text);
    if (request.ok()) server.Execute(*request);
  }

  const size_t identity_n = std::min<size_t>(workload.size(), 128);
  const std::vector<std::string> identity_slice(
      workload.begin(),
      workload.begin() + static_cast<ptrdiff_t>(identity_n));
  const size_t mismatches =
      CheckTransportIdentity(&server, net.port(), identity_slice);
  std::printf(
      "transport identity (net vs direct, %zu requests): %s\n", identity_n,
      mismatches == 0 ? "identical" : "MISMATCH");

  std::unique_ptr<qec::server::admin::AdminServer> admin_server;
  if (admin) {
    admin_server = std::make_unique<qec::server::admin::AdminServer>(
        &server, &net);
    const qec::Status admin_started = admin_server->Start();
    if (!admin_started.ok()) {
      std::fprintf(stderr, "admin server: %s\n",
                   admin_started.ToString().c_str());
      return 1;
    }
  }

  RunResult baseline = RunNetWorkload(net.port(), workload, 1, 1);
  RunResult pipelined =
      RunNetWorkload(net.port(), workload, connections, depth);

  RunResult scraped;
  size_t scrapes = 0;
  if (admin_server != nullptr) {
    MetricsScraper scraper(admin_server->port());
    scraped = RunNetWorkload(net.port(), workload, connections, depth);
    scrapes = scraper.Stop();
    admin_server->Shutdown();
  }
  net.Shutdown();

  const qec::server::net::NetServerStats net_stats = net.stats();
  qec::eval::TablePrinter table(
      {"config", "seconds", "qps", "p50 ms", "p99 ms", "errors"});
  auto add_row = [&](const char* name, const RunResult& r) {
    table.AddRow({name, qec::FormatDouble(r.seconds, 3),
                  qec::FormatDouble(r.qps, 1),
                  qec::FormatDouble(r.Percentile(50.0), 3),
                  qec::FormatDouble(r.Percentile(99.0), 3),
                  std::to_string(r.errors)});
  };
  add_row("net single-in-flight", baseline);
  add_row("net pipelined", pipelined);
  if (admin_server != nullptr) add_row("net pipelined + 1Hz scrape", scraped);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "net: %zu conns x depth %zu, %llu batches over %llu expands "
      "(%.1f expands/batch)\n",
      connections, depth,
      static_cast<unsigned long long>(net_stats.batches),
      static_cast<unsigned long long>(net_stats.expand_requests),
      net_stats.batches > 0
          ? static_cast<double>(net_stats.expand_requests) /
                static_cast<double>(net_stats.batches)
          : 0.0);

  const double ratio =
      baseline.qps > 0.0 ? pipelined.qps / baseline.qps : 0.0;
  std::printf("pipelined vs single-in-flight: %.2fx %s\n", ratio,
              ratio >= 4.0 ? "(>= 4x: PASS)" : "(< 4x: FAIL)");

  char buf[160];
  std::snprintf(buf, sizeof(buf),
                ",\"net\":{\"connections\":%zu,\"pipeline\":%zu,"
                "\"identity_mismatches\":%zu,\"ratio\":%.3f,\"baseline\":",
                connections, depth, mismatches, ratio);
  *result_json += buf;
  AppendRunJson(result_json, baseline);
  *result_json += ",\"pipelined\":";
  AppendRunJson(result_json, pipelined);

  int rc = 0;
  if (admin_server != nullptr) {
    const double p99_off = pipelined.Percentile(99.0);
    const double p99_on = scraped.Percentile(99.0);
    const double scrape_ratio = p99_off > 0.0 ? p99_on / p99_off : 0.0;
    std::printf(
        "scrape overhead (1Hz /metrics, %zu scrapes): p99 %.3fms -> %.3fms "
        "(%.3fx)\n",
        scrapes, p99_off, p99_on, scrape_ratio);
    std::snprintf(buf, sizeof(buf),
                  ",\"scrape\":{\"scrapes\":%zu,\"p99_ratio\":%.4f,"
                  "\"scraped\":",
                  scrapes, scrape_ratio);
    *result_json += buf;
    AppendRunJson(result_json, scraped);
    *result_json += "}";
    if (scraped.errors > 0) rc = 1;
  }
  *result_json += "}";

  if (ratio < 4.0 || mismatches > 0) rc = 1;
  if (baseline.errors > 0 || pipelined.errors > 0) rc = 1;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const auto obs_flags = qec::eval::ParseObsFlags(argc, argv);
  size_t num_requests = 400;
  size_t threads = 0;
  size_t queue_capacity = 256;
  bool cached_config = true;
  bool net_mode = false;
  size_t connections = 8;
  size_t pipeline_depth = 32;
  double shadow_rate = 0.0;
  std::string result_out;
  bool admin = false;
  std::string profile_out;
  int profile_hz = 99;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (qec::StartsWith(arg, "--requests=")) {
      num_requests = std::stoul(arg.substr(strlen("--requests=")));
    } else if (qec::StartsWith(arg, "--threads=")) {
      threads = std::stoul(arg.substr(strlen("--threads=")));
    } else if (qec::StartsWith(arg, "--queue=")) {
      queue_capacity = std::stoul(arg.substr(strlen("--queue=")));
    } else if (arg == "--no-cache") {
      cached_config = false;
    } else if (arg == "--net") {
      net_mode = true;
    } else if (qec::StartsWith(arg, "--connections=")) {
      connections = std::stoul(arg.substr(strlen("--connections=")));
    } else if (qec::StartsWith(arg, "--pipeline=")) {
      pipeline_depth = std::stoul(arg.substr(strlen("--pipeline=")));
    } else if (qec::StartsWith(arg, "--shadow-rate=")) {
      shadow_rate = std::stod(arg.substr(strlen("--shadow-rate=")));
    } else if (qec::StartsWith(arg, "--result-out=")) {
      result_out = arg.substr(strlen("--result-out="));
    } else if (arg == "--admin-port" ||
               qec::StartsWith(arg, "--admin-port=")) {
      // In-process: the admin listener always binds an ephemeral loopback
      // port, so any requested number is ignored.
      admin = true;
    } else if (qec::StartsWith(arg, "--profile-out=")) {
      profile_out = arg.substr(strlen("--profile-out="));
    } else if (qec::StartsWith(arg, "--profile-hz=")) {
      profile_hz = std::stoi(arg.substr(strlen("--profile-hz=")));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (connections == 0 || pipeline_depth == 0) {
    std::fprintf(stderr, "--connections and --pipeline must be >= 1\n");
    return 2;
  }

  std::printf("=== Serving Throughput: Repeated-Query Workload ===\n\n");
  qec::doc::Corpus corpus = qec::datagen::ShoppingGenerator().Generate();
  qec::index::InvertedIndex index(corpus);
  const std::vector<std::string> workload = MakeWorkload(num_requests, 42);
  std::printf(
      "corpus: %zu docs; %zu requests over %zu distinct queries "
      "(Zipf-skewed)\n\n",
      corpus.NumDocs(), workload.size(),
      qec::datagen::ShoppingQueries().size());

  if (net_mode) {
    std::string result_json = "{";
    char buf[128];
    std::snprintf(buf, sizeof(buf), "\"requests\":%zu,\"threads\":%zu",
                  workload.size(), threads);
    result_json += buf;
    ScopedCpuProfile profile(profile_out, profile_hz);
    const int rc = RunNetMode(index, workload, threads, queue_capacity,
                              connections, pipeline_depth, admin,
                              &result_json);
    profile.Stop();
    result_json += "}";
    if (!result_out.empty()) {
      std::FILE* f = std::fopen(result_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", result_out.c_str());
        return 1;
      }
      std::fprintf(f, "%s\n", result_json.c_str());
      std::fclose(f);
      std::printf("result json: %s\n", result_out.c_str());
    }
    return qec::eval::EmitObsOutputs(obs_flags) ? rc : 1;
  }

  qec::eval::TablePrinter table({"config", "seconds", "qps", "cache hits",
                                 "cache misses", "errors"});
  auto add_row = [&](const char* name, const RunResult& r) {
    table.AddRow({name, qec::FormatDouble(r.seconds, 3),
                  qec::FormatDouble(r.qps, 1),
                  std::to_string(r.stats.expansion_cache.hits),
                  std::to_string(r.stats.expansion_cache.misses),
                  std::to_string(r.errors)});
  };

  // Uncached first so the cached run's server/cache_* counters are the
  // last written into the metrics snapshot.
  ScopedCpuProfile profile(profile_out, profile_hz);
  RunResult uncached =
      RunWorkload(index, workload, false, threads, queue_capacity);
  add_row("no-cache", uncached);
  int rc = 0;
  std::string result_json = "{";
  {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "\"requests\":%zu,\"threads\":%zu,",
                  workload.size(), threads);
    result_json += buf;
  }
  result_json += "\"uncached\":";
  AppendRunJson(&result_json, uncached);
  if (cached_config) {
    RunResult cached =
        RunWorkload(index, workload, true, threads, queue_capacity);
    add_row("cached", cached);
    RunResult shadowed;
    if (shadow_rate > 0.0) {
      shadowed = RunWorkload(index, workload, true, threads, queue_capacity,
                             shadow_rate);
      add_row("cached+shadow", shadowed);
    }
    std::printf("%s\n", table.ToString().c_str());
    PrintStageBreakdown("no-cache", uncached);
    PrintStageBreakdown("cached", cached);
    if (shadow_rate > 0.0) {
      PrintStageBreakdown("cached+shadow", shadowed);
      // Foreground latency comparison: the shadow arm runs off the
      // critical path, so p99 with shadows on should track shadows off.
      const double p99_off = cached.Percentile(99.0);
      const double p99_on = shadowed.Percentile(99.0);
      const double ratio = p99_off > 0.0 ? p99_on / p99_off : 0.0;
      std::printf(
          "shadow A/B (rate=%.2f, pebc arm): sampled=%llu executed=%llu "
          "shed=%llu deduped=%llu\n",
          shadow_rate,
          static_cast<unsigned long long>(shadowed.shadow.sampled),
          static_cast<unsigned long long>(shadowed.shadow.executed),
          static_cast<unsigned long long>(shadowed.shadow.shed),
          static_cast<unsigned long long>(shadowed.shadow.deduped));
      std::printf(
          "foreground p99: shadows-off %.3fms vs shadows-on %.3fms "
          "(%.2fx)\n",
          p99_off, p99_on, ratio);
      if (shadowed.errors > 0) rc = 1;
      char buf[128];
      result_json += ",\"shadow\":";
      AppendRunJson(&result_json, shadowed);
      std::snprintf(buf, sizeof(buf),
                    ",\"shadow_rate\":%.3f,\"shadow_p99_ratio\":%.4f",
                    shadow_rate, ratio);
      result_json += buf;
    }
    const double speedup =
        uncached.qps > 0.0 ? cached.qps / uncached.qps : 0.0;
    std::printf("speedup (cached vs no-cache): %.2fx %s\n", speedup,
                speedup >= 2.0 ? "(>= 2x: PASS)" : "(< 2x: FAIL)");
    if (speedup < 2.0 || cached.errors > 0) rc = 1;
    result_json += ",\"cached\":";
    AppendRunJson(&result_json, cached);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"speedup\":%.3f", speedup);
    result_json += buf;
  } else {
    std::printf("%s\n", table.ToString().c_str());
    PrintStageBreakdown("no-cache", uncached);
  }
  profile.Stop();
  result_json += "}";
  if (!result_out.empty()) {
    std::FILE* f = std::fopen(result_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", result_out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", result_json.c_str());
    std::fclose(f);
    std::printf("result json: %s\n", result_out.c_str());
  }
  if (uncached.errors > 0) rc = 1;
  return qec::eval::EmitObsOutputs(obs_flags) ? rc : 1;
}
