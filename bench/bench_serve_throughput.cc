// Serving-layer throughput on a repeated-query workload.
//
// Real keyword-search traffic is heavily head-skewed (the query-log
// studies behind the paper's log-based baselines), so the qec_server
// expansion cache should amortize almost all of the clustering +
// generation work. This bench replays a Zipf-skewed stream drawn from the
// Table 1 shopping workload (src/datagen/workload.cc) against a QecServer
// twice — caches disabled, then enabled — and reports the speedup. The
// acceptance bar for the serving layer is >= 2x with caches on.
//
// Flags: --requests=N (default 400), --threads=N (default 0 = auto),
// --queue=N (default 256), --no-cache (run only the uncached config),
// plus the shared observability flags (--metrics-out=FILE writes the
// metrics JSON, including server/cache_* counters, the queue-depth
// gauges, and the server/request_latency_ns histogram).

#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "datagen/shopping.h"
#include "datagen/workload.h"
#include "eval/obs_report.h"
#include "eval/table_printer.h"
#include "index/inverted_index.h"
#include "server/server.h"

namespace {

/// A Zipf-skewed request stream over the Table 1 shopping queries:
/// query at popularity rank r is drawn with weight 1/(r+1).
std::vector<std::string> MakeWorkload(size_t num_requests, uint64_t seed) {
  const auto queries = qec::datagen::ShoppingQueries();
  std::vector<double> cumulative;
  double total = 0.0;
  for (size_t r = 0; r < queries.size(); ++r) {
    total += 1.0 / static_cast<double>(r + 1);
    cumulative.push_back(total);
  }
  qec::Rng rng(seed);
  std::vector<std::string> workload;
  workload.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    const double x = rng.UniformDouble() * total;
    size_t pick = 0;
    while (pick + 1 < cumulative.size() && cumulative[pick] < x) ++pick;
    workload.push_back(queries[pick].text);
  }
  return workload;
}

struct RunResult {
  double seconds = 0.0;
  double qps = 0.0;
  size_t ok = 0;
  size_t errors = 0;
  qec::server::ServerStats stats;
};

RunResult RunWorkload(const qec::index::InvertedIndex& index,
                      const std::vector<std::string>& workload, bool caches,
                      size_t threads, size_t queue_capacity) {
  qec::server::ServerOptions options;
  options.num_threads = threads;
  options.queue_capacity = queue_capacity;
  options.enable_expansion_cache = caches;
  options.enable_set_algebra_cache = caches;
  options.expander.candidates.fraction = 1.0;
  qec::server::QecServer server(index, options);

  // Submit with backpressure: keep fewer requests outstanding than the
  // admission queue holds, so nothing sheds and every request completes.
  const size_t window =
      queue_capacity > 16 ? queue_capacity - 16 : queue_capacity;
  RunResult result;
  std::deque<std::future<qec::server::ServeResponse>> outstanding;
  auto drain_one = [&] {
    qec::server::ServeResponse response = outstanding.front().get();
    outstanding.pop_front();
    if (response.status.ok()) {
      ++result.ok;
    } else {
      ++result.errors;
      std::fprintf(stderr, "request failed: %s\n",
                   response.status.ToString().c_str());
    }
  };

  qec::Stopwatch watch;
  for (const std::string& query : workload) {
    qec::server::ServeRequest request;
    request.query = query;
    while (outstanding.size() >= window) drain_one();
    outstanding.push_back(server.Submit(std::move(request)));
  }
  while (!outstanding.empty()) drain_one();
  result.seconds = watch.ElapsedSeconds();
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(workload.size()) / result.seconds
                   : 0.0;
  result.stats = server.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto obs_flags = qec::eval::ParseObsFlags(argc, argv);
  size_t num_requests = 400;
  size_t threads = 0;
  size_t queue_capacity = 256;
  bool cached_config = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (qec::StartsWith(arg, "--requests=")) {
      num_requests = std::stoul(arg.substr(strlen("--requests=")));
    } else if (qec::StartsWith(arg, "--threads=")) {
      threads = std::stoul(arg.substr(strlen("--threads=")));
    } else if (qec::StartsWith(arg, "--queue=")) {
      queue_capacity = std::stoul(arg.substr(strlen("--queue=")));
    } else if (arg == "--no-cache") {
      cached_config = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf("=== Serving Throughput: Repeated-Query Workload ===\n\n");
  qec::doc::Corpus corpus = qec::datagen::ShoppingGenerator().Generate();
  qec::index::InvertedIndex index(corpus);
  const std::vector<std::string> workload = MakeWorkload(num_requests, 42);
  std::printf(
      "corpus: %zu docs; %zu requests over %zu distinct queries "
      "(Zipf-skewed)\n\n",
      corpus.NumDocs(), workload.size(),
      qec::datagen::ShoppingQueries().size());

  qec::eval::TablePrinter table({"config", "seconds", "qps", "cache hits",
                                 "cache misses", "errors"});
  auto add_row = [&](const char* name, const RunResult& r) {
    table.AddRow({name, qec::FormatDouble(r.seconds, 3),
                  qec::FormatDouble(r.qps, 1),
                  std::to_string(r.stats.expansion_cache.hits),
                  std::to_string(r.stats.expansion_cache.misses),
                  std::to_string(r.errors)});
  };

  // Uncached first so the cached run's server/cache_* counters are the
  // last written into the metrics snapshot.
  RunResult uncached =
      RunWorkload(index, workload, false, threads, queue_capacity);
  add_row("no-cache", uncached);
  int rc = 0;
  if (cached_config) {
    RunResult cached =
        RunWorkload(index, workload, true, threads, queue_capacity);
    add_row("cached", cached);
    std::printf("%s\n", table.ToString().c_str());
    const double speedup =
        uncached.qps > 0.0 ? cached.qps / uncached.qps : 0.0;
    std::printf("speedup (cached vs no-cache): %.2fx %s\n", speedup,
                speedup >= 2.0 ? "(>= 2x: PASS)" : "(< 2x: FAIL)");
    if (speedup < 2.0 || cached.errors > 0) rc = 1;
  } else {
    std::printf("%s\n", table.ToString().c_str());
  }
  if (uncached.errors > 0) rc = 1;
  return qec::eval::EmitObsOutputs(obs_flags) ? rc : 1;
}
