// Ablation: the three PEBC keyword-selection strategies of Secs. 4.1-4.3.
//
// For every Table 1 query and a sweep of intermediate elimination targets,
// measures (a) how close each strategy gets to the requested x%, (b) how
// many *distinct* elimination levels each strategy can reach across seeds,
// and (c) the final F-measure of the full PEBC run. The paper argues
// (Examples 4.2-4.4) that fixed-order selection can only realize prefix
// sums of one keyword sequence — visible here as exactly one reachable
// outcome per target — while the randomized procedures (Secs. 4.2-4.3) can
// steer toward many different levels, giving the interval-zooming search
// real choices.

#include <cmath>
#include <map>
#include <set>
#include <cstdio>

#include "common/string_util.h"
#include "core/candidates.h"
#include "core/expansion_context.h"
#include "core/pebc.h"
#include "eval/harness.h"
#include "eval/table_printer.h"

namespace {

using qec::core::PebcStrategy;

const char* StrategyName(PebcStrategy s) {
  switch (s) {
    case PebcStrategy::kFixedOrder:
      return "fixed-order (4.1)";
    case PebcStrategy::kRandomSubset:
      return "random-subset (4.2)";
    case PebcStrategy::kRandomSingleResult:
      return "random-single (4.3)";
  }
  return "?";
}

struct Stats {
  double error_sum = 0.0;   // over non-trivial targets (0 < x < 100)
  size_t samples = 0;
  size_t hits_5pct = 0;     // samples landing within 5 points of target
  double f_sum = 0.0;
  size_t runs = 0;
  // Distinct achieved percentages per (cluster, target) across seeds: the
  // paper's Sec. 4.1 point is that fixed-order can only realize prefix
  // sums of ONE keyword sequence (so exactly one outcome), while the
  // randomized procedures can reach many different elimination levels.
  double distinct_outcomes_sum = 0.0;
  size_t outcome_groups = 0;
};

void RunDataset(const qec::eval::DatasetBundle& bundle,
                std::vector<Stats>& stats) {
  const PebcStrategy strategies[] = {PebcStrategy::kFixedOrder,
                                     PebcStrategy::kRandomSubset,
                                     PebcStrategy::kRandomSingleResult};
  for (const auto& wq : bundle.queries) {
    auto qc = qec::eval::PrepareQueryCase(bundle, wq.text);
    if (!qc.ok()) continue;
    std::vector<qec::TermId> candidates = qec::core::SelectCandidates(
        *qc->universe, *bundle.index, qc->user_terms, {});
    auto members = qc->clustering.Members();
    for (size_t c = 0; c < members.size(); ++c) {
      qec::DynamicBitset bits = qc->universe->EmptySet();
      for (size_t i : members[c]) bits.Set(i);
      auto ctx = qec::core::MakeContext(*qc->universe, qc->user_terms,
                                        std::move(bits), candidates);
      for (size_t s = 0; s < 3; ++s) {
        // target -> set of achieved percentages across seeds.
        std::map<int, std::set<int>> achieved_by_target;
        for (uint64_t seed = 1; seed <= 5; ++seed) {
          qec::core::PebcOptions options;
          options.strategy = strategies[s];
          options.num_segments = 4;
          options.num_iterations = 2;
          options.seed = seed;
          qec::core::PebcExpander pebc(options);
          std::vector<qec::core::PebcSample> trace;
          auto result = pebc.ExpandWithTrace(ctx, &trace);
          for (const auto& sample : trace) {
            // 0% (do nothing) and 100% (take everything) are trivially
            // achievable by every strategy; the Examples 4.2-4.4 argument
            // is about hitting intermediate targets.
            if (sample.target_percent <= 0.0 ||
                sample.target_percent >= 100.0) {
              continue;
            }
            double err =
                std::abs(sample.achieved_percent - sample.target_percent);
            stats[s].error_sum += err;
            stats[s].hits_5pct += err <= 5.0 ? 1 : 0;
            stats[s].samples += 1;
            achieved_by_target[static_cast<int>(sample.target_percent)]
                .insert(static_cast<int>(std::lround(
                    sample.achieved_percent)));
          }
          stats[s].f_sum += result.quality.f_measure;
          stats[s].runs += 1;
        }
        for (const auto& [target, outcomes] : achieved_by_target) {
          stats[s].distinct_outcomes_sum +=
              static_cast<double>(outcomes.size());
          stats[s].outcome_groups += 1;
        }
      }
    }
  }
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: PEBC keyword-selection strategies (Secs. 4.1-4.3) "
      "===\n\n");
  std::vector<Stats> stats(3);
  auto shopping = qec::eval::MakeShoppingBundle();
  RunDataset(shopping, stats);
  auto wikipedia = qec::eval::MakeWikipediaBundle();
  RunDataset(wikipedia, stats);

  const PebcStrategy strategies[] = {PebcStrategy::kFixedOrder,
                                     PebcStrategy::kRandomSubset,
                                     PebcStrategy::kRandomSingleResult};
  qec::eval::TablePrinter table({"strategy", "avg |achieved - target| (%)",
                                 "within 5% of target",
                                 "distinct outcomes / target (5 seeds)",
                                 "avg final F"});
  for (size_t s = 0; s < 3; ++s) {
    const double n =
        stats[s].samples > 0 ? static_cast<double>(stats[s].samples) : 1.0;
    const double groups = stats[s].outcome_groups > 0
                              ? static_cast<double>(stats[s].outcome_groups)
                              : 1.0;
    table.AddRow(
        {StrategyName(strategies[s]),
         qec::FormatDouble(stats[s].error_sum / n, 2),
         qec::FormatDouble(100.0 * static_cast<double>(stats[s].hits_5pct) / n,
                           1) + "%",
         qec::FormatDouble(stats[s].distinct_outcomes_sum / groups, 2),
         qec::FormatDouble(stats[s].runs ? stats[s].f_sum / stats[s].runs : 0.0,
                           3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\n(Sec. 4.1's limitation shows as exactly one reachable outcome per "
      "target for\nfixed-order; the randomized procedures reach several, so "
      "the zoom step has real\nchoices. Final F is similar for all: PEBC "
      "returns the best sample it saw.)\n");
  return 0;
}
