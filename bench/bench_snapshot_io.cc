// Snapshot I/O benchmark: how fast the sectioned snapshot format
// (docs/FORMATS.md) serializes and loads versus rebuilding the inverted
// index from the corpus, on both demo datasets. The load path is the one
// `qec_cli serve --snapshot` takes at startup, so the "load" row is the
// server's cold-start cost.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "datagen/shopping.h"
#include "datagen/wikipedia.h"
#include "doc/corpus.h"
#include "doc/corpus_io.h"
#include "eval/harness.h"
#include "eval/table_printer.h"
#include "index/inverted_index.h"
#include "storage/snapshot.h"

namespace {

constexpr int kReps = 20;

double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct RowResult {
  /// Bytes → serving index via a corpus blob: deserialize + index rebuild
  /// (the startup path before snapshots existed).
  double blob_cold_s = 0.0;
  /// Bytes → serving index via a snapshot: one DeserializeSnapshot call.
  double snap_cold_s = 0.0;
  double serialize_s = 0.0;
  size_t bytes = 0;
};

RowResult MeasureDataset(const qec::doc::Corpus& corpus) {
  RowResult r;
  qec::index::InvertedIndex index(corpus);
  const std::string corpus_blob = qec::doc::SerializeCorpus(corpus);
  std::vector<double> blob_cold, snap_cold, serialize;
  std::string snap_blob;
  for (int i = 0; i < kReps; ++i) {
    qec::Stopwatch watch;
    auto loaded_corpus = qec::doc::DeserializeCorpus(corpus_blob);
    if (!loaded_corpus.ok()) std::exit(1);
    qec::index::InvertedIndex rebuilt(*loaded_corpus);
    blob_cold.push_back(watch.ElapsedSeconds());

    watch.Restart();
    snap_blob = qec::storage::SerializeSnapshot(index);
    serialize.push_back(watch.ElapsedSeconds());

    watch.Restart();
    auto snapshot = qec::storage::DeserializeSnapshot(snap_blob);
    snap_cold.push_back(watch.ElapsedSeconds());
    if (!snapshot.ok()) {
      std::fprintf(stderr, "round-trip failed: %s\n",
                   snapshot.status().ToString().c_str());
      std::exit(1);
    }
  }
  r.blob_cold_s = MedianSeconds(blob_cold);
  r.snap_cold_s = MedianSeconds(snap_cold);
  r.serialize_s = MedianSeconds(serialize);
  r.bytes = snap_blob.size();
  return r;
}

}  // namespace

int main() {
  std::printf("=== Snapshot I/O: serialize/load vs index rebuild ===\n\n");
  qec::eval::TablePrinter table({"dataset", "docs", "snap KB",
                                 "blob+rebuild ms", "snap load ms",
                                 "serialize ms", "write MB/s", "read MB/s",
                                 "cold-start speedup"});
  struct Dataset {
    std::string name;
    qec::doc::Corpus corpus;
  };
  std::vector<Dataset> datasets;
  datasets.push_back({"shopping", qec::datagen::ShoppingGenerator().Generate()});
  datasets.push_back(
      {"wikipedia", qec::datagen::WikipediaGenerator().Generate()});
  qec::datagen::WikipediaOptions big;
  big.docs_per_sense = 60;
  big.background_docs = 600;
  datasets.push_back(
      {"wikipedia-xl", qec::datagen::WikipediaGenerator(big).Generate()});

  for (const auto& dataset : datasets) {
    RowResult r = MeasureDataset(dataset.corpus);
    const double mb = static_cast<double>(r.bytes) / (1024.0 * 1024.0);
    table.AddRow({dataset.name, std::to_string(dataset.corpus.NumDocs()),
                  qec::FormatDouble(static_cast<double>(r.bytes) / 1024.0, 1),
                  qec::FormatDouble(r.blob_cold_s * 1e3, 3),
                  qec::FormatDouble(r.snap_cold_s * 1e3, 3),
                  qec::FormatDouble(r.serialize_s * 1e3, 3),
                  qec::FormatDouble(mb / r.serialize_s, 1),
                  qec::FormatDouble(mb / r.snap_cold_s, 1),
                  qec::FormatDouble(r.blob_cold_s / r.snap_cold_s, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  table.WriteCsv(qec::eval::ResultsDir() + "/snapshot_io.csv");
  std::printf(
      "\nBoth cold-start columns begin from serialized bytes and end with a "
      "servable\nindex: the corpus-blob path re-analyzes nothing but must "
      "rebuild every posting\nlist; the snapshot path decodes prebuilt "
      "postings instead.\n");
  return 0;
}
