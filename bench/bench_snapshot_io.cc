// Snapshot I/O benchmark: how fast the sectioned snapshot format
// (docs/FORMATS.md) serializes and loads versus rebuilding the inverted
// index from the corpus, on both demo datasets. The load path is the one
// `qec_cli serve --snapshot` takes at startup, so the "load" row is the
// server's cold-start cost.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/doc_reorder.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "datagen/clustered.h"
#include "datagen/shopping.h"
#include "datagen/wikipedia.h"
#include "doc/corpus.h"
#include "doc/corpus_io.h"
#include "eval/harness.h"
#include "eval/table_printer.h"
#include "index/inverted_index.h"
#include "storage/snapshot.h"

namespace {

constexpr int kReps = 20;

double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct RowResult {
  /// Bytes → serving index via a corpus blob: deserialize + index rebuild
  /// (the startup path before snapshots existed).
  double blob_cold_s = 0.0;
  /// Bytes → serving index via a snapshot: one DeserializeSnapshot call.
  double snap_cold_s = 0.0;
  double serialize_s = 0.0;
  size_t bytes = 0;
};

RowResult MeasureDataset(const qec::doc::Corpus& corpus) {
  RowResult r;
  qec::index::InvertedIndex index(corpus);
  const std::string corpus_blob = qec::doc::SerializeCorpus(corpus);
  std::vector<double> blob_cold, snap_cold, serialize;
  std::string snap_blob;
  for (int i = 0; i < kReps; ++i) {
    qec::Stopwatch watch;
    auto loaded_corpus = qec::doc::DeserializeCorpus(corpus_blob);
    if (!loaded_corpus.ok()) std::exit(1);
    qec::index::InvertedIndex rebuilt(*loaded_corpus);
    blob_cold.push_back(watch.ElapsedSeconds());

    watch.Restart();
    snap_blob = qec::storage::SerializeSnapshot(index);
    serialize.push_back(watch.ElapsedSeconds());

    watch.Restart();
    auto snapshot = qec::storage::DeserializeSnapshot(snap_blob);
    snap_cold.push_back(watch.ElapsedSeconds());
    if (!snapshot.ok()) {
      std::fprintf(stderr, "round-trip failed: %s\n",
                   snapshot.status().ToString().c_str());
      std::exit(1);
    }
  }
  r.blob_cold_s = MedianSeconds(blob_cold);
  r.snap_cold_s = MedianSeconds(snap_cold);
  r.serialize_s = MedianSeconds(serialize);
  r.bytes = snap_blob.size();
  return r;
}

uint64_t IndxLength(const std::string& blob) {
  auto reader = qec::storage::SnapshotReader::Open(blob);
  if (!reader.ok()) std::exit(1);
  for (const auto& section : reader->sections()) {
    if (section.id == qec::storage::kSectionIndex) return section.length;
  }
  return 0;
}

/// --reorder-report: measures what the cluster-aware doc-id reorder buys
/// on a synthetic clustered corpus — INDX section bytes (total and per
/// doc) with and without the permutation — and emits a JSON blob for the
/// perf-smoke CI artifact. Report-only: compression is asserted by the
/// scale-smoke job, not here.
int RunReorderReport(const std::string& out_path, size_t docs,
                     size_t clusters) {
  qec::datagen::ClusteredOptions options;
  options.num_docs = docs;
  options.num_clusters = clusters;
  qec::Stopwatch watch;
  qec::doc::Corpus corpus =
      qec::datagen::ClusteredGenerator(options).Generate();
  const double datagen_s = watch.ElapsedSeconds();

  watch.Restart();
  qec::index::InvertedIndex plain(corpus);
  const std::string plain_blob = qec::storage::SerializeSnapshot(plain);
  const double plain_s = watch.ElapsedSeconds();

  watch.Restart();
  const std::vector<qec::DocId> order =
      qec::cluster::ComputeClusterOrder(corpus);
  qec::doc::Corpus reordered_corpus =
      qec::cluster::ReorderCorpus(corpus, order);
  const double reorder_s = watch.ElapsedSeconds();
  watch.Restart();
  qec::index::InvertedIndex reordered(reordered_corpus);
  const std::string reordered_blob =
      qec::storage::SerializeSnapshot(reordered, order);
  const double reordered_s = watch.ElapsedSeconds();

  const uint64_t plain_indx = IndxLength(plain_blob);
  const uint64_t reordered_indx = IndxLength(reordered_blob);
  const double n = static_cast<double>(docs);
  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"docs\": %zu,\n"
      "  \"clusters\": %zu,\n"
      "  \"indx_bytes_plain\": %llu,\n"
      "  \"indx_bytes_reordered\": %llu,\n"
      "  \"indx_bytes_per_doc_plain\": %.2f,\n"
      "  \"indx_bytes_per_doc_reordered\": %.2f,\n"
      "  \"indx_compression_ratio\": %.3f,\n"
      "  \"datagen_s\": %.3f,\n"
      "  \"build_serialize_plain_s\": %.3f,\n"
      "  \"reorder_s\": %.3f,\n"
      "  \"build_serialize_reordered_s\": %.3f\n"
      "}\n",
      docs, clusters, static_cast<unsigned long long>(plain_indx),
      static_cast<unsigned long long>(reordered_indx),
      static_cast<double>(plain_indx) / n,
      static_cast<double>(reordered_indx) / n,
      static_cast<double>(plain_indx) / static_cast<double>(reordered_indx),
      datagen_s, plain_s, reorder_s, reordered_s);
  std::printf("%s", json);
  if (!out_path.empty()) {
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) return 1;
    std::fputs(json, out);
    std::fclose(out);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string reorder_out;
  bool reorder_mode = false;
  size_t docs = 250000;
  size_t clusters = 256;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reorder-report" || arg.rfind("--reorder-report=", 0) == 0) {
      reorder_mode = true;
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) reorder_out = arg.substr(eq + 1);
    } else if (arg.rfind("--docs=", 0) == 0) {
      docs = static_cast<size_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--clusters=", 0) == 0) {
      clusters = static_cast<size_t>(std::atoll(arg.c_str() + 11));
    }
  }
  if (reorder_mode) return RunReorderReport(reorder_out, docs, clusters);

  std::printf("=== Snapshot I/O: serialize/load vs index rebuild ===\n\n");
  qec::eval::TablePrinter table({"dataset", "docs", "snap KB",
                                 "blob+rebuild ms", "snap load ms",
                                 "serialize ms", "write MB/s", "read MB/s",
                                 "cold-start speedup"});
  struct Dataset {
    std::string name;
    qec::doc::Corpus corpus;
  };
  std::vector<Dataset> datasets;
  datasets.push_back({"shopping", qec::datagen::ShoppingGenerator().Generate()});
  datasets.push_back(
      {"wikipedia", qec::datagen::WikipediaGenerator().Generate()});
  qec::datagen::WikipediaOptions big;
  big.docs_per_sense = 60;
  big.background_docs = 600;
  datasets.push_back(
      {"wikipedia-xl", qec::datagen::WikipediaGenerator(big).Generate()});

  for (const auto& dataset : datasets) {
    RowResult r = MeasureDataset(dataset.corpus);
    const double mb = static_cast<double>(r.bytes) / (1024.0 * 1024.0);
    table.AddRow({dataset.name, std::to_string(dataset.corpus.NumDocs()),
                  qec::FormatDouble(static_cast<double>(r.bytes) / 1024.0, 1),
                  qec::FormatDouble(r.blob_cold_s * 1e3, 3),
                  qec::FormatDouble(r.snap_cold_s * 1e3, 3),
                  qec::FormatDouble(r.serialize_s * 1e3, 3),
                  qec::FormatDouble(mb / r.serialize_s, 1),
                  qec::FormatDouble(mb / r.snap_cold_s, 1),
                  qec::FormatDouble(r.blob_cold_s / r.snap_cold_s, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  table.WriteCsv(qec::eval::ResultsDir() + "/snapshot_io.csv");
  std::printf(
      "\nBoth cold-start columns begin from serialized bytes and end with a "
      "servable\nindex: the corpus-blob path re-analyzes nothing but must "
      "rebuild every posting\nlist; the snapshot path decodes prebuilt "
      "postings instead.\n");
  return 0;
}
