// Figure 5: scores of expanded queries (Eq. 1, the harmonic mean of the
// per-cluster F-measures) for ISKR, PEBC, the F-measure variant, and CS,
// on each of the 20 Table 1 queries (Data Clouds and Google are not
// cluster-based, so the score is inapplicable — Sec. 5.2.2).
//
// Paper shape: ISKR and PEBC similar and high, with perfect scores on many
// shopping queries; F-measure equal or slightly better than ISKR; CS
// usually far lower (high-TFICF labels with poor co-occurrence).

#include <cstdio>

#include "common/string_util.h"
#include "eval/bootstrap.h"
#include "eval/harness.h"
#include "eval/table_printer.h"

namespace {

void RunDataset(const qec::eval::DatasetBundle& bundle, const char* label,
                std::vector<double>& iskr_scores,
                std::vector<double>& cs_scores) {
  const auto methods = qec::eval::ScoreMethods();
  std::printf("Figure 5(%s): score (Eq. 1) per query\n", label);
  std::vector<std::string> headers = {"query"};
  for (auto m : methods) headers.emplace_back(qec::eval::MethodName(m));
  qec::eval::TablePrinter table(headers);
  std::vector<double> sums(methods.size(), 0.0);
  size_t n = 0;
  for (const auto& wq : bundle.queries) {
    auto qc = qec::eval::PrepareQueryCase(bundle, wq.text);
    if (!qc.ok()) continue;
    std::vector<std::string> row = {wq.id};
    for (size_t m = 0; m < methods.size(); ++m) {
      auto run =
          qec::eval::RunMethod(bundle, *qc, methods[m], nullptr, wq.text);
      row.push_back(qec::FormatDouble(run.set_score, 3));
      sums[m] += run.set_score;
      if (methods[m] == qec::eval::Method::kIskr) {
        iskr_scores.push_back(run.set_score);
      } else if (methods[m] == qec::eval::Method::kCs) {
        cs_scores.push_back(run.set_score);
      }
    }
    ++n;
    table.AddRow(std::move(row));
  }
  std::vector<std::string> avg_row = {"avg"};
  for (double s : sums) {
    avg_row.push_back(qec::FormatDouble(n ? s / n : 0.0, 3));
  }
  table.AddRow(std::move(avg_row));
  std::printf("%s\n", table.ToString().c_str());
  table.WriteCsv(qec::eval::ResultsDir() + "/fig5_scores_" +
                 bundle.name + ".csv");
}

}  // namespace

int main() {
  std::printf("=== Figure 5: Scores of Expanded Queries (Eq. 1) ===\n\n");
  std::vector<double> iskr_scores, cs_scores;
  auto shopping = qec::eval::MakeShoppingBundle();
  RunDataset(shopping, "a: shopping", iskr_scores, cs_scores);
  auto wikipedia = qec::eval::MakeWikipediaBundle();
  RunDataset(wikipedia, "b: wikipedia", iskr_scores, cs_scores);

  // Paired bootstrap over the 20 queries: is ISKR's margin over CS real?
  auto ci = qec::eval::PairedBootstrap(iskr_scores, cs_scores);
  std::printf(
      "ISKR - CS paired bootstrap over all %zu queries: mean %+.3f, "
      "95%% CI [%+.3f, %+.3f]%s\n",
      iskr_scores.size(), ci.mean_difference, ci.low, ci.high,
      ci.significant ? " (significant)" : " (not significant)");
  return 0;
}
