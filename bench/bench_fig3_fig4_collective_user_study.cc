// Figures 3 and 4: the collective part of the user study.
//
// Fig. 3 — collective score (1-5) of each method's full expanded-query set
// per user query, averaged over the 20 Table 1 queries.
// Fig. 4 — percentage of raters choosing (A) not comprehensive and not
// diverse / (B) either missing / (C) comprehensive and diverse.
//
// Paper shape: ISKR and PEBC receive consistently high collective scores
// because each cluster gets its own maximally-covering query; Data Clouds
// lacks comprehensiveness/diversity; Google is popularity-biased (QW8
// "rockets": no NBA suggestion).

#include <cstdio>

#include "common/string_util.h"
#include "eval/harness.h"
#include "eval/table_printer.h"
#include "eval/user_study.h"

namespace {

using qec::eval::DatasetBundle;
using qec::eval::Method;
using qec::eval::UserStudySimulator;

struct Tally {
  double score_sum = 0.0;
  double a_sum = 0.0, b_sum = 0.0, c_sum = 0.0;
  double comp_sum = 0.0, div_sum = 0.0;
  size_t n = 0;
};

void RunDataset(const DatasetBundle& bundle,
                const qec::baselines::QueryLogSuggester& log,
                const UserStudySimulator& sim, std::vector<Tally>& tallies) {
  const auto methods = qec::eval::UserStudyMethods();
  for (const auto& wq : bundle.queries) {
    auto qc = qec::eval::PrepareQueryCase(bundle, wq.text);
    if (!qc.ok()) continue;
    for (size_t m = 0; m < methods.size(); ++m) {
      auto run = qec::eval::RunMethod(bundle, *qc, methods[m], &log, wq.text);
      auto a = sim.AssessCollective(*qc->universe, run.suggestions);
      tallies[m].score_sum += a.mean_score;
      tallies[m].a_sum += a.frac_a;
      tallies[m].b_sum += a.frac_b;
      tallies[m].c_sum += a.frac_c;
      tallies[m].comp_sum +=
          qec::eval::Comprehensiveness(*qc->universe, run.suggestions);
      tallies[m].div_sum +=
          qec::eval::Diversity(*qc->universe, run.suggestions);
      tallies[m].n += 1;
    }
  }
}

}  // namespace

int main() {
  std::printf(
      "=== Figures 3-4: Collective Query-Set Scores (simulated 45-rater "
      "panel) ===\n\n");
  auto shopping = qec::eval::MakeShoppingBundle();
  auto wikipedia = qec::eval::MakeWikipediaBundle();
  qec::baselines::QueryLogSuggester log(qec::datagen::SyntheticQueryLog());
  UserStudySimulator sim;

  const auto methods = qec::eval::UserStudyMethods();
  std::vector<Tally> tallies(methods.size());
  RunDataset(shopping, log, sim, tallies);
  RunDataset(wikipedia, log, sim, tallies);

  std::printf("Figure 3: collective score (1-5) per expanded-query set\n");
  qec::eval::TablePrinter fig3(
      {"method", "avg score", "comprehensiveness", "diversity"});
  for (size_t m = 0; m < methods.size(); ++m) {
    const Tally& t = tallies[m];
    double n = t.n > 0 ? static_cast<double>(t.n) : 1.0;
    fig3.AddRow({std::string(qec::eval::MethodName(methods[m])),
                 qec::FormatDouble(t.score_sum / n, 2),
                 qec::FormatDouble(t.comp_sum / n, 3),
                 qec::FormatDouble(t.div_sum / n, 3)});
  }
  std::printf("%s\n", fig3.ToString().c_str());
  fig3.WriteCsv(qec::eval::ResultsDir() + "/fig3_collective_scores.csv");

  std::printf(
      "Figure 4: %% of raters choosing each option\n"
      "  (A) not comprehensive and not diverse\n"
      "  (B) either not comprehensive or not diverse\n"
      "  (C) comprehensive and diverse\n");
  qec::eval::TablePrinter fig4({"method", "%A", "%B", "%C"});
  for (size_t m = 0; m < methods.size(); ++m) {
    const Tally& t = tallies[m];
    double n = t.n > 0 ? static_cast<double>(t.n) : 1.0;
    fig4.AddRow({std::string(qec::eval::MethodName(methods[m])),
                 qec::FormatDouble(100.0 * t.a_sum / n, 1),
                 qec::FormatDouble(100.0 * t.b_sum / n, 1),
                 qec::FormatDouble(100.0 * t.c_sum / n, 1)});
  }
  std::printf("%s", fig4.ToString().c_str());
  fig4.WriteCsv(qec::eval::ResultsDir() + "/fig4_collective_options.csv");
  std::printf("\n(CSV written to qec_results/)\n");
  return 0;
}
