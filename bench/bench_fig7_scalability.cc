// Figure 7: scalability of expansion with the number of results used.
// The paper runs QW2 "columbia" with 100-500 results and reports times
// that include both clustering and query generation, growing roughly
// linearly and staying "reasonable" at 500 results.

#include <cstdio>

#include "common/string_util.h"
#include "eval/harness.h"
#include "eval/obs_report.h"
#include "eval/table_printer.h"

int main(int argc, char** argv) {
  const auto obs_flags = qec::eval::ParseObsFlags(argc, argv);
  std::printf("=== Figure 7: Scalability over Number of Results ===\n\n");
  // A Wikipedia corpus big enough that "columbia" has 500+ results:
  // docs_per_sense scales each sense by its dominance (1.0/0.8/0.6).
  qec::datagen::WikipediaOptions options;
  options.docs_per_sense = 240;
  options.background_docs = 200;
  auto bundle = qec::eval::MakeWikipediaBundle(options);

  auto all = bundle.index->SearchText("columbia");
  std::printf("corpus: %zu docs; \"columbia\" retrieves %zu results\n\n",
              bundle.corpus->NumDocs(), all.size());

  qec::eval::TablePrinter table(
      {"#results", "clustering (ms)", "ISKR (ms)", "PEBC (ms)",
       "ISKR total (ms)", "PEBC total (ms)"});
  for (size_t count : {100, 200, 300, 400, 500}) {
    // Plain k-means (no auto-k model selection) as in the paper's setup:
    // Fig. 7's reported time is clustering + query generation.
    auto qc = qec::eval::PrepareQueryCase(bundle, "columbia", count,
                                          /*max_clusters=*/5, /*seed=*/42,
                                          /*auto_k=*/false);
    if (!qc.ok()) {
      std::fprintf(stderr, "failed at %zu: %s\n", count,
                   qc.status().ToString().c_str());
      continue;
    }
    auto iskr = qec::eval::RunMethod(bundle, *qc, qec::eval::Method::kIskr,
                                     nullptr, "columbia");
    auto pebc = qec::eval::RunMethod(bundle, *qc, qec::eval::Method::kPebc,
                                     nullptr, "columbia");
    const double cl_ms = qc->clustering_seconds * 1e3;
    table.AddRow({std::to_string(qc->universe->size()),
                  qec::FormatDouble(cl_ms, 2),
                  qec::FormatDouble(iskr.seconds * 1e3, 2),
                  qec::FormatDouble(pebc.seconds * 1e3, 2),
                  qec::FormatDouble(cl_ms + iskr.seconds * 1e3, 2),
                  qec::FormatDouble(cl_ms + pebc.seconds * 1e3, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  table.WriteCsv(qec::eval::ResultsDir() + "/fig7_scalability.csv");
  std::printf(
      "\n(the paper reports linear growth for both algorithms, including "
      "clustering time)\n");
  return qec::eval::EmitObsOutputs(obs_flags) ? 0 : 1;
}
