// Figures 1 and 2: the individual-query part of the user study.
//
// Fig. 1 — average individual query score (1-5) per method, over all 20
// Table 1 queries, from a simulated 45-rater panel.
// Fig. 2 — percentage of raters choosing option (A) highly related and
// helpful / (B) related but better ones exist / (C) not related.
//
// Paper shape to reproduce: ISKR, PEBC and Google score clearly higher
// than Data Clouds and CS; most raters choose (A) for ISKR/PEBC while
// Data Clouds and CS collect most of the (B)/(C) answers.

#include <cstdio>

#include "common/string_util.h"
#include "eval/harness.h"
#include "eval/table_printer.h"
#include "eval/user_study.h"

namespace {

using qec::eval::DatasetBundle;
using qec::eval::Method;
using qec::eval::UserStudySimulator;

struct Tally {
  double score_sum = 0.0;
  double a_sum = 0.0, b_sum = 0.0, c_sum = 0.0;
  size_t n = 0;
};

void RunDataset(const DatasetBundle& bundle,
                const qec::baselines::QueryLogSuggester& log,
                const UserStudySimulator& sim, std::vector<Tally>& tallies) {
  const auto methods = qec::eval::UserStudyMethods();
  for (const auto& wq : bundle.queries) {
    auto qc = qec::eval::PrepareQueryCase(bundle, wq.text);
    if (!qc.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n", wq.id.c_str(),
                   qc.status().ToString().c_str());
      continue;
    }
    for (size_t m = 0; m < methods.size(); ++m) {
      auto run = qec::eval::RunMethod(bundle, *qc, methods[m], &log, wq.text);
      for (const auto& suggestion : run.suggestions) {
        auto a = sim.AssessIndividual(*qc->universe, qc->clustering,
                                      suggestion);
        tallies[m].score_sum += a.mean_score;
        tallies[m].a_sum += a.frac_a;
        tallies[m].b_sum += a.frac_b;
        tallies[m].c_sum += a.frac_c;
        tallies[m].n += 1;
      }
    }
  }
}

}  // namespace

int main() {
  std::printf(
      "=== Figures 1-2: Individual Query Scores (simulated 45-rater "
      "panel) ===\n\n");
  auto shopping = qec::eval::MakeShoppingBundle();
  auto wikipedia = qec::eval::MakeWikipediaBundle();
  qec::baselines::QueryLogSuggester log(qec::datagen::SyntheticQueryLog());
  UserStudySimulator sim;

  const auto methods = qec::eval::UserStudyMethods();
  std::vector<Tally> tallies(methods.size());
  RunDataset(shopping, log, sim, tallies);
  RunDataset(wikipedia, log, sim, tallies);

  std::printf("Figure 1: average individual query score (1-5)\n");
  qec::eval::TablePrinter fig1({"method", "avg score", "#queries rated"});
  for (size_t m = 0; m < methods.size(); ++m) {
    const Tally& t = tallies[m];
    fig1.AddRow({std::string(qec::eval::MethodName(methods[m])),
                 qec::FormatDouble(t.n ? t.score_sum / t.n : 0.0, 2),
                 std::to_string(t.n)});
  }
  std::printf("%s\n", fig1.ToString().c_str());
  fig1.WriteCsv(qec::eval::ResultsDir() + "/fig1_individual_scores.csv");

  std::printf(
      "Figure 2: %% of raters choosing each option\n"
      "  (A) highly related and helpful\n"
      "  (B) related but better ones exist\n"
      "  (C) not related to the search\n");
  qec::eval::TablePrinter fig2({"method", "%A", "%B", "%C"});
  for (size_t m = 0; m < methods.size(); ++m) {
    const Tally& t = tallies[m];
    double n = t.n > 0 ? static_cast<double>(t.n) : 1.0;
    fig2.AddRow({std::string(qec::eval::MethodName(methods[m])),
                 qec::FormatDouble(100.0 * t.a_sum / n, 1),
                 qec::FormatDouble(100.0 * t.b_sum / n, 1),
                 qec::FormatDouble(100.0 * t.c_sum / n, 1)});
  }
  std::printf("%s", fig2.ToString().c_str());
  fig2.WriteCsv(qec::eval::ResultsDir() + "/fig2_individual_options.csv");
  std::printf("\n(CSV written to qec_results/)\n");
  return 0;
}
