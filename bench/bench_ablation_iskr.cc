// Ablation: ISKR design choices.
//
//  (1) keyword removal (Example 3.2) on/off — how much F-measure the
//      removal step buys;
//  (2) incremental value maintenance — recomputation counts of ISKR's
//      affected-only rule versus the delta-F-measure variant that must
//      recompute everything (the Sec. 5.3 efficiency argument);
//  (3) distance to the exhaustive optimum on candidate-capped instances.

#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "core/candidates.h"
#include "core/exact.h"
#include "core/expansion_context.h"
#include "core/fmeasure_expander.h"
#include "core/iskr.h"
#include "eval/harness.h"
#include "eval/table_printer.h"

namespace {

struct Tally {
  double f_with_removal = 0.0;
  double f_without_removal = 0.0;
  double f_fmeasure = 0.0;
  double f_exact = 0.0;
  size_t iskr_recomputations = 0;
  size_t fmeasure_recomputations = 0;
  size_t removal_helped = 0;
  size_t iskr_matches_exact = 0;
  size_t clusters = 0;
};

void RunDataset(const qec::eval::DatasetBundle& bundle, Tally& tally) {
  for (const auto& wq : bundle.queries) {
    auto qc = qec::eval::PrepareQueryCase(bundle, wq.text);
    if (!qc.ok()) continue;
    // Cap candidates so the exact solver's 2^n search stays feasible.
    qec::core::CandidateOptions copt;
    copt.max_candidates = 14;
    std::vector<qec::TermId> candidates = qec::core::SelectCandidates(
        *qc->universe, *bundle.index, qc->user_terms, copt);
    auto members = qc->clustering.Members();
    for (size_t c = 0; c < members.size(); ++c) {
      qec::DynamicBitset bits = qc->universe->EmptySet();
      for (size_t i : members[c]) bits.Set(i);
      auto ctx = qec::core::MakeContext(*qc->universe, qc->user_terms,
                                        std::move(bits), candidates);

      auto with = qec::core::IskrExpander().Expand(ctx);
      qec::core::IskrOptions no_removal;
      no_removal.allow_removal = false;
      auto without = qec::core::IskrExpander(no_removal).Expand(ctx);
      auto fmeasure = qec::core::FMeasureExpander().Expand(ctx);
      auto exact = qec::core::ExactExpander().Expand(ctx);

      tally.f_with_removal += with.quality.f_measure;
      tally.f_without_removal += without.quality.f_measure;
      tally.f_fmeasure += fmeasure.quality.f_measure;
      tally.f_exact += exact.quality.f_measure;
      tally.iskr_recomputations += with.value_recomputations;
      tally.fmeasure_recomputations += fmeasure.value_recomputations;
      if (with.quality.f_measure > without.quality.f_measure + 1e-12) {
        tally.removal_helped += 1;
      }
      if (with.quality.f_measure >= exact.quality.f_measure - 1e-9) {
        tally.iskr_matches_exact += 1;
      }
      tally.clusters += 1;
    }
  }
}

}  // namespace

int main() {
  std::printf("=== Ablation: ISKR design choices ===\n\n");
  Tally tally;
  auto shopping = qec::eval::MakeShoppingBundle();
  RunDataset(shopping, tally);
  auto wikipedia = qec::eval::MakeWikipediaBundle();
  RunDataset(wikipedia, tally);

  const double n = tally.clusters > 0 ? static_cast<double>(tally.clusters)
                                      : 1.0;
  std::printf("clusters evaluated: %zu (candidates capped at 14 for the "
              "exact 2^n search)\n\n",
              tally.clusters);

  qec::eval::TablePrinter table({"variant", "avg F-measure"});
  table.AddRow({"ISKR (with removal)",
                qec::FormatDouble(tally.f_with_removal / n, 4)});
  table.AddRow({"ISKR (add-only)",
                qec::FormatDouble(tally.f_without_removal / n, 4)});
  table.AddRow({"F-measure variant",
                qec::FormatDouble(tally.f_fmeasure / n, 4)});
  table.AddRow({"exact optimum", qec::FormatDouble(tally.f_exact / n, 4)});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("removal step strictly improved F on %zu/%zu clusters\n",
              tally.removal_helped, tally.clusters);
  std::printf("ISKR matched the exact optimum on %zu/%zu clusters\n\n",
              tally.iskr_matches_exact, tally.clusters);

  qec::eval::TablePrinter maint(
      {"method", "value recomputations (total)", "per cluster"});
  maint.AddRow({"ISKR (affected-only rule)",
                std::to_string(tally.iskr_recomputations),
                qec::FormatDouble(tally.iskr_recomputations / n, 1)});
  maint.AddRow({"F-measure (recompute all)",
                std::to_string(tally.fmeasure_recomputations),
                qec::FormatDouble(tally.fmeasure_recomputations / n, 1)});
  std::printf("%s", maint.ToString().c_str());
  std::printf(
      "\n(each F-measure recomputation is a full from-scratch query "
      "evaluation, which in\nthe paper's implementation compounds into the "
      "Fig. 6 blowup; with this library's\nbitset algebra both stay "
      "sub-millisecond — see EXPERIMENTS.md)\n\n");

  // The generated corpora are clean enough that the greedy add path rarely
  // needs to back out a keyword; keyword interaction shows on adversarial
  // random instances (the regime of Example 3.2).
  qec::Rng rng(7);
  size_t removal_helped_random = 0, random_instances = 0;
  for (int trial = 0; trial < 400; ++trial) {
    qec::doc::Corpus corpus;
    std::vector<qec::DocId> ids;
    const size_t docs = 12 + rng.UniformInt(8);
    const size_t keywords = 6 + rng.UniformInt(4);
    for (size_t d = 0; d < docs; ++d) {
      std::string body = "q";
      for (size_t k = 0; k < keywords; ++k) {
        if (rng.Bernoulli(0.5)) body += " kw" + std::to_string(k);
      }
      ids.push_back(corpus.AddTextDocument(std::to_string(d), body));
    }
    qec::core::ResultUniverse universe(corpus, ids);
    qec::DynamicBitset cluster(universe.size());
    for (size_t i = 0; i < docs / 2; ++i) cluster.Set(i);
    std::vector<qec::TermId> cand;
    for (size_t k = 0; k < keywords; ++k) {
      qec::TermId t =
          corpus.analyzer().vocabulary().Lookup("kw" + std::to_string(k));
      if (t != qec::kInvalidTermId) cand.push_back(t);
    }
    auto ctx = qec::core::MakeContext(
        universe, {corpus.analyzer().vocabulary().Lookup("q")},
        std::move(cluster), cand);
    double with = qec::core::IskrExpander().Expand(ctx).quality.f_measure;
    qec::core::IskrOptions no_removal;
    no_removal.allow_removal = false;
    double without =
        qec::core::IskrExpander(no_removal).Expand(ctx).quality.f_measure;
    if (with > without + 1e-12) ++removal_helped_random;
    ++random_instances;
  }
  std::printf(
      "on %zu adversarial random instances, removal strictly improved F on "
      "%zu (Example 3.2 regime)\n",
      random_instances, removal_helped_random);
  return 0;
}
