// Microbenchmarks (google-benchmark) for the individual components: index
// build and search, k-means clustering, result-universe construction, the
// three expansion algorithms, bitset algebra, and XML parsing.

#include <benchmark/benchmark.h>

#include <memory>

#include "cluster/kmeans.h"
#include "common/dynamic_bitset.h"
#include "core/candidates.h"
#include "core/expansion_context.h"
#include "core/fmeasure_expander.h"
#include "core/iskr.h"
#include "core/pebc.h"
#include "core/result_universe.h"
#include "datagen/shopping.h"
#include "datagen/wikipedia.h"
#include "eval/harness.h"
#include "index/inverted_index.h"
#include "xml/xml.h"

namespace {

const qec::eval::DatasetBundle& WikiBundle() {
  static auto* bundle = [] {
    qec::datagen::WikipediaOptions options;
    options.docs_per_sense = 20;
    options.background_docs = 100;
    return new qec::eval::DatasetBundle(
        qec::eval::MakeWikipediaBundle(options));
  }();
  return *bundle;
}

void BM_IndexBuild(benchmark::State& state) {
  auto corpus = qec::datagen::ShoppingGenerator().Generate();
  for (auto _ : state) {
    qec::index::InvertedIndex index(corpus);
    benchmark::DoNotOptimize(index.DocumentFrequency(0));
  }
}
BENCHMARK(BM_IndexBuild);

void BM_SearchTopK(benchmark::State& state) {
  const auto& bundle = WikiBundle();
  auto terms = bundle.corpus->analyzer().AnalyzeReadOnly("java");
  for (auto _ : state) {
    auto results = bundle.index->Search(terms, 30);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_SearchTopK);

void BM_KMeansCluster(benchmark::State& state) {
  const auto& bundle = WikiBundle();
  auto results =
      bundle.index->Search(bundle.corpus->analyzer().AnalyzeReadOnly("java"),
                           static_cast<size_t>(state.range(0)));
  std::vector<qec::cluster::SparseVector> vectors;
  for (const auto& r : results) {
    vectors.push_back(
        qec::cluster::SparseVector::FromDocument(bundle.corpus->Get(r.doc)));
  }
  qec::cluster::KMeansOptions options;
  options.k = 5;
  for (auto _ : state) {
    auto clustering = qec::cluster::KMeans(options).Cluster(vectors);
    benchmark::DoNotOptimize(clustering);
  }
}
BENCHMARK(BM_KMeansCluster)->Arg(10)->Arg(30);

void BM_UniverseBuild(benchmark::State& state) {
  const auto& bundle = WikiBundle();
  auto results = bundle.index->Search(
      bundle.corpus->analyzer().AnalyzeReadOnly("java"), 30);
  for (auto _ : state) {
    qec::core::ResultUniverse universe(*bundle.corpus, results);
    benchmark::DoNotOptimize(universe.size());
  }
}
BENCHMARK(BM_UniverseBuild);

struct ExpansionSetup {
  std::unique_ptr<qec::core::ResultUniverse> universe;
  qec::core::ExpansionContext context;
};

ExpansionSetup MakeExpansionSetup() {
  const auto& bundle = WikiBundle();
  auto qc_result = qec::eval::PrepareQueryCase(bundle, "java");
  auto& qc = *qc_result;
  auto candidates = qec::core::SelectCandidates(*qc.universe, *bundle.index,
                                                qc.user_terms, {});
  auto members = qc.clustering.Members();
  qec::DynamicBitset bits = qc.universe->EmptySet();
  for (size_t i : members[0]) bits.Set(i);
  ExpansionSetup setup;
  setup.context = qec::core::MakeContext(*qc.universe, qc.user_terms,
                                         std::move(bits), candidates);
  setup.universe = std::move(qc.universe);
  setup.context.universe = setup.universe.get();
  return setup;
}

void BM_IskrExpand(benchmark::State& state) {
  auto setup = MakeExpansionSetup();
  for (auto _ : state) {
    auto r = qec::core::IskrExpander().Expand(setup.context);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IskrExpand);

void BM_PebcExpand(benchmark::State& state) {
  auto setup = MakeExpansionSetup();
  for (auto _ : state) {
    auto r = qec::core::PebcExpander().Expand(setup.context);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PebcExpand);

void BM_FMeasureExpand(benchmark::State& state) {
  auto setup = MakeExpansionSetup();
  for (auto _ : state) {
    auto r = qec::core::FMeasureExpander().Expand(setup.context);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FMeasureExpand);

void BM_BitsetAndCount(benchmark::State& state) {
  qec::DynamicBitset a(static_cast<size_t>(state.range(0)));
  qec::DynamicBitset b(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < a.size(); i += 3) a.Set(i);
  for (size_t i = 0; i < b.size(); i += 7) b.Set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndCount(b));
  }
}
BENCHMARK(BM_BitsetAndCount)->Arg(512)->Arg(4096);

void BM_XmlParse(benchmark::State& state) {
  qec::datagen::WikipediaOptions options;
  options.docs_per_sense = 2;
  options.background_docs = 0;
  auto articles =
      qec::datagen::WikipediaGenerator(options).GenerateArticlesXml();
  for (auto _ : state) {
    for (const auto& a : articles) {
      auto parsed = qec::xml::Parse(a);
      benchmark::DoNotOptimize(parsed);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(articles.size()));
}
BENCHMARK(BM_XmlParse);

}  // namespace

BENCHMARK_MAIN();
