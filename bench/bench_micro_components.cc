// Microbenchmarks (google-benchmark) for the individual components: index
// build and search, k-means clustering, result-universe construction, the
// three expansion algorithms, bitset algebra, and XML parsing.
//
// Also hosts the fused-kernel CI gate: `--kernel-gate[=metrics.json]` pins
// the runtime-dispatched kernel tier, times the fused single-pass
// set-algebra kernels against the naive materialize-then-count/weigh
// formulation they replaced (1.3x bar, both arms pinned to the scalar
// tier so the margin is hardware-independent), and on AVX2 hardware times
// the forced-scalar tier against forced-AVX2 on the unit-weight fused
// benefit/cost evaluation (1.3x bar), writing the measurements — including
// the pinned tier — as JSON.
//
// `--sweep-report[=metrics.json]` measures the scatter-gather benefit/cost
// sweeps (core::SweepOptions::threads) against the serial sweep on a
// clustered datagen corpus and reports end-to-end expansion speedups as
// JSON (report-only, no gate — results are byte-identical either way,
// which the test suite asserts).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "common/dynamic_bitset.h"
#include "common/random.h"
#include "common/simd_kernels.h"
#include "core/candidates.h"
#include "core/expansion_context.h"
#include "core/fmeasure_expander.h"
#include "core/iskr.h"
#include "core/metrics.h"
#include "core/pebc.h"
#include "core/result_universe.h"
#include "datagen/clustered.h"
#include "datagen/shopping.h"
#include "datagen/wikipedia.h"
#include "doc/corpus.h"
#include "eval/harness.h"
#include "index/inverted_index.h"
#include "xml/xml.h"

namespace {

const qec::eval::DatasetBundle& WikiBundle() {
  static auto* bundle = [] {
    qec::datagen::WikipediaOptions options;
    options.docs_per_sense = 20;
    options.background_docs = 100;
    return new qec::eval::DatasetBundle(
        qec::eval::MakeWikipediaBundle(options));
  }();
  return *bundle;
}

void BM_IndexBuild(benchmark::State& state) {
  auto corpus = qec::datagen::ShoppingGenerator().Generate();
  for (auto _ : state) {
    qec::index::InvertedIndex index(corpus);
    benchmark::DoNotOptimize(index.DocumentFrequency(0));
  }
}
BENCHMARK(BM_IndexBuild);

void BM_SearchTopK(benchmark::State& state) {
  const auto& bundle = WikiBundle();
  auto terms = bundle.corpus->analyzer().AnalyzeReadOnly("java");
  for (auto _ : state) {
    auto results = bundle.index->Search(terms, 30);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_SearchTopK);

void BM_KMeansCluster(benchmark::State& state) {
  const auto& bundle = WikiBundle();
  auto results =
      bundle.index->Search(bundle.corpus->analyzer().AnalyzeReadOnly("java"),
                           static_cast<size_t>(state.range(0)));
  std::vector<qec::cluster::SparseVector> vectors;
  for (const auto& r : results) {
    vectors.push_back(
        qec::cluster::SparseVector::FromDocument(bundle.corpus->Get(r.doc)));
  }
  qec::cluster::KMeansOptions options;
  options.k = 5;
  for (auto _ : state) {
    auto clustering = qec::cluster::KMeans(options).Cluster(vectors);
    benchmark::DoNotOptimize(clustering);
  }
}
BENCHMARK(BM_KMeansCluster)->Arg(10)->Arg(30);

void BM_UniverseBuild(benchmark::State& state) {
  const auto& bundle = WikiBundle();
  auto results = bundle.index->Search(
      bundle.corpus->analyzer().AnalyzeReadOnly("java"), 30);
  for (auto _ : state) {
    qec::core::ResultUniverse universe(*bundle.corpus, results);
    benchmark::DoNotOptimize(universe.size());
  }
}
BENCHMARK(BM_UniverseBuild);

struct ExpansionSetup {
  std::unique_ptr<qec::core::ResultUniverse> universe;
  qec::core::ExpansionContext context;
};

ExpansionSetup MakeExpansionSetup() {
  const auto& bundle = WikiBundle();
  auto qc_result = qec::eval::PrepareQueryCase(bundle, "java");
  auto& qc = *qc_result;
  auto candidates = qec::core::SelectCandidates(*qc.universe, *bundle.index,
                                                qc.user_terms, {});
  auto members = qc.clustering.Members();
  qec::DynamicBitset bits = qc.universe->EmptySet();
  for (size_t i : members[0]) bits.Set(i);
  ExpansionSetup setup;
  setup.context = qec::core::MakeContext(*qc.universe, qc.user_terms,
                                         std::move(bits), candidates);
  setup.universe = std::move(qc.universe);
  setup.context.universe = setup.universe.get();
  return setup;
}

void BM_IskrExpand(benchmark::State& state) {
  auto setup = MakeExpansionSetup();
  for (auto _ : state) {
    auto r = qec::core::IskrExpander().Expand(setup.context);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IskrExpand);

void BM_PebcExpand(benchmark::State& state) {
  auto setup = MakeExpansionSetup();
  for (auto _ : state) {
    auto r = qec::core::PebcExpander().Expand(setup.context);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PebcExpand);

void BM_FMeasureExpand(benchmark::State& state) {
  auto setup = MakeExpansionSetup();
  for (auto _ : state) {
    auto r = qec::core::FMeasureExpander().Expand(setup.context);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FMeasureExpand);

// ----------------------------------------------------- fused vs naive --

struct KernelSetup {
  std::unique_ptr<qec::doc::Corpus> corpus;
  std::unique_ptr<qec::core::ResultUniverse> universe;
  /// a = retrieved R(q), b = docs with candidate keyword k, c = other
  /// clusters U, d = target cluster C (complement of c, as in a real
  /// expansion context). Densities mirror the ISKR inner loop: docs_k
  /// covers most of the retrieved set, so few bits survive a & ~b.
  qec::DynamicBitset a, b, c, d;

  explicit KernelSetup(size_t bits, bool unit_weights = false)
      : a(bits), b(bits), c(bits), d(bits) {
    qec::Rng rng(42);
    corpus = std::make_unique<qec::doc::Corpus>();
    std::vector<qec::index::RankedResult> results;
    for (size_t i = 0; i < bits; ++i) {
      qec::DocId id = corpus->AddTextDocument(std::to_string(i), "t");
      // Unit weights route S(.) through the count kernels (the SIMD-
      // dispatched path); ranked weights exercise the scalar weighted fold.
      results.push_back(
          {id, unit_weights ? 1.0 : 0.05 + rng.UniformDouble() * 4.0});
    }
    universe = std::make_unique<qec::core::ResultUniverse>(*corpus, results);
    for (size_t i = 0; i < bits; ++i) {
      if (rng.Bernoulli(0.4)) a.Set(i);
      if (rng.Bernoulli(0.9)) b.Set(i);
      if (rng.Bernoulli(0.55)) {
        c.Set(i);
      } else {
        d.Set(i);
      }
    }
  }
};

void BM_WeightOfAndNotAndFused(benchmark::State& state) {
  KernelSetup s(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.universe->WeightOfAndNotAnd(s.a, s.b, s.c));
  }
}
BENCHMARK(BM_WeightOfAndNotAndFused)->Arg(512)->Arg(4096);

void BM_WeightOfAndNotAndNaive(benchmark::State& state) {
  KernelSetup s(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    qec::DynamicBitset t = s.a;
    t.AndNot(s.b);
    t &= s.c;
    benchmark::DoNotOptimize(s.universe->TotalWeight(t));
  }
}
BENCHMARK(BM_WeightOfAndNotAndNaive)->Arg(512)->Arg(4096);

void BM_AndNotAndCountFused(benchmark::State& state) {
  KernelSetup s(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.a.AndNotAndCount(s.b, s.c));
  }
}
BENCHMARK(BM_AndNotAndCountFused)->Arg(512)->Arg(4096);

void BM_AndNotAndCountNaive(benchmark::State& state) {
  KernelSetup s(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    qec::DynamicBitset t = s.a;
    t.AndNot(s.b);
    t &= s.c;
    benchmark::DoNotOptimize(t.Count());
  }
}
BENCHMARK(BM_AndNotAndCountNaive)->Arg(512)->Arg(4096);

void BM_BitsetAndCount(benchmark::State& state) {
  qec::DynamicBitset a(static_cast<size_t>(state.range(0)));
  qec::DynamicBitset b(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < a.size(); i += 3) a.Set(i);
  for (size_t i = 0; i < b.size(); i += 7) b.Set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndCount(b));
  }
}
BENCHMARK(BM_BitsetAndCount)->Arg(512)->Arg(4096);

void BM_XmlParse(benchmark::State& state) {
  qec::datagen::WikipediaOptions options;
  options.docs_per_sense = 2;
  options.background_docs = 0;
  auto articles =
      qec::datagen::WikipediaGenerator(options).GenerateArticlesXml();
  for (auto _ : state) {
    for (const auto& a : articles) {
      auto parsed = qec::xml::Parse(a);
      benchmark::DoNotOptimize(parsed);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(articles.size()));
}
BENCHMARK(BM_XmlParse);

// ------------------------------------------------------- --kernel-gate --

/// Best-of-reps ns/op for `fn` (steady clock, warm-up excluded).
template <typename Fn>
double TimeNsPerOp(Fn&& fn, int iters) {
  for (int i = 0; i < iters / 10; ++i) fn();
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    auto t1 = std::chrono::steady_clock::now();
    double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
    if (ns < best) best = ns;
  }
  return best;
}

/// Times fused kernels against their naive materialize-then-count/weigh
/// counterparts and enforces the 2x CI bar; on AVX2 hardware it also pits
/// the forced-scalar tier against forced-AVX2 on the unit-weight fused
/// benefit/cost evaluation (the SIMD-dispatched count path) and enforces
/// a 1.3x bar. The dispatch tier is pinned at entry and emitted in the
/// JSON so artifacts are comparable across machines. Writes a JSON
/// metrics blob to `out_path` (if non-empty) and always prints it to
/// stdout.
int RunKernelGate(const std::string& out_path) {
  // Historically 2.0x, set when the naive arm used the pre-dispatch
  // per-word loops. The runtime kernel layer made the naive baseline
  // itself ~1.5x faster (unrolled scalar popcount feeding its Count()
  // calls), so the residual fusion margin — skipping the materialized
  // temporaries and extra passes — measures ~1.5x; the bar keeps margin
  // below that.
  constexpr double kRequiredSpeedup = 1.3;
  constexpr double kRequiredTierSpeedup = 1.3;
  constexpr size_t kBits = 4096;
  constexpr int kIters = 50000;
  // Pin the dispatch tier per measurement instead of inheriting whatever
  // cpuid/QEC_KERNEL_DISPATCH picked: the fusion gate runs both arms on
  // the scalar tier (isolating the fusion benefit — the naive arm's
  // materialized Count() would otherwise get AVX2 help the fused weighted
  // fold deliberately forgoes), and the tier gate then isolates the SIMD
  // benefit at fixed fusion. The ambient tier is restored afterwards and
  // emitted in the JSON so artifacts are comparable across machines.
  const qec::simd::KernelTier pinned_tier = qec::simd::ActiveTier();
  KernelSetup s(kBits);
  qec::simd::SetTier(qec::simd::KernelTier::kScalar);

  // The gated unit is one full ISKR add-entry evaluation — benefit,
  // cost, and the kills-cluster check — fused (two WeightOfAndNotAnd
  // passes plus an early-exit three-way Intersects, zero allocations)
  // against the exact formulation the kernels replaced (four materialized
  // bitsets, two TotalWeight passes, two Counts). Sinks defeat dead-code
  // elimination across the timed calls.
  double weight_sink = 0.0;
  size_t count_sink = 0;
  const double fused_entry_ns = TimeNsPerOp(
      [&] {
        const double benefit = s.universe->WeightOfAndNotAnd(s.a, s.b, s.c);
        const double cost = s.universe->WeightOfAndNotAnd(s.a, s.b, s.d);
        if (cost > 0.0) count_sink += !s.a.Intersects(s.b, s.d) ? 1 : 0;
        weight_sink += benefit + cost;
      },
      kIters);
  const double naive_entry_ns = TimeNsPerOp(
      [&] {
        qec::DynamicBitset eliminated = s.a;
        eliminated.AndNot(s.b);
        qec::DynamicBitset in_u = eliminated;
        in_u &= s.c;
        qec::DynamicBitset in_c = eliminated;
        in_c &= s.d;
        const double benefit = s.universe->TotalWeight(in_u);
        const double cost = s.universe->TotalWeight(in_c);
        if (cost > 0.0) {
          qec::DynamicBitset retrieved_c = s.a;
          retrieved_c &= s.d;
          count_sink += in_c.Count() == retrieved_c.Count() ? 1 : 0;
        }
        weight_sink += benefit + cost;
      },
      kIters);
  // Informational single-kernel pairs (not gated individually).
  const double fused_count_ns = TimeNsPerOp(
      [&] { count_sink += s.a.AndNotAndCount(s.b, s.c); }, kIters);
  const double naive_count_ns = TimeNsPerOp(
      [&] {
        qec::DynamicBitset t = s.a;
        t.AndNot(s.b);
        t &= s.c;
        count_sink += t.Count();
      },
      kIters);
  benchmark::DoNotOptimize(weight_sink);
  benchmark::DoNotOptimize(count_sink);
  qec::simd::SetTier(pinned_tier);

  // Scalar vs AVX2 on the unit-weight fused benefit/cost evaluation —
  // the tiers are exact-equal (property-tested), so only the clock may
  // move. Skipped (and not gated) on hardware without AVX2.
  const bool avx2_supported = qec::simd::Avx2Supported();
  double scalar_tier_ns = 0.0;
  double avx2_tier_ns = 0.0;
  double tier_speedup = 0.0;
  bool tier_pass = true;
  if (avx2_supported) {
    KernelSetup unit(kBits, /*unit_weights=*/true);
    auto entry_eval = [&] {
      const double benefit =
          unit.universe->WeightOfAndNotAnd(unit.a, unit.b, unit.c);
      const double cost =
          unit.universe->WeightOfAndNotAnd(unit.a, unit.b, unit.d);
      if (cost > 0.0) {
        count_sink += !unit.a.Intersects(unit.b, unit.d) ? 1 : 0;
      }
      weight_sink += benefit + cost;
    };
    qec::simd::SetTier(qec::simd::KernelTier::kScalar);
    scalar_tier_ns = TimeNsPerOp(entry_eval, kIters);
    qec::simd::SetTier(qec::simd::KernelTier::kAvx2);
    avx2_tier_ns = TimeNsPerOp(entry_eval, kIters);
    qec::simd::SetTier(pinned_tier);
    benchmark::DoNotOptimize(weight_sink);
    benchmark::DoNotOptimize(count_sink);
    tier_speedup = scalar_tier_ns / avx2_tier_ns;
    tier_pass = tier_speedup >= kRequiredTierSpeedup;
  }

  const double entry_speedup = naive_entry_ns / fused_entry_ns;
  const double count_speedup = naive_count_ns / fused_count_ns;
  const bool fused_pass = entry_speedup >= kRequiredSpeedup;
  const bool pass = fused_pass && tier_pass;

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"bits\": %zu,\n"
      "  \"kernel_tier\": \"%s\",\n"
      "  \"fusion_tier\": \"scalar\",\n"
      "  \"required_speedup\": %.1f,\n"
      "  \"iskr_add_entry_eval\": {\"fused_ns\": %.1f, \"naive_ns\": %.1f,"
      " \"speedup\": %.2f},\n"
      "  \"and_not_and_count\": {\"fused_ns\": %.1f, \"naive_ns\": %.1f,"
      " \"speedup\": %.2f},\n"
      "  \"tier_compare\": {\"supported\": %s, \"required_speedup\": %.1f,"
      " \"scalar_ns\": %.1f, \"avx2_ns\": %.1f, \"speedup\": %.2f},\n"
      "  \"pass\": %s\n"
      "}\n",
      kBits, qec::simd::TierName(pinned_tier), kRequiredSpeedup,
      fused_entry_ns, naive_entry_ns, entry_speedup, fused_count_ns,
      naive_count_ns, count_speedup, avx2_supported ? "true" : "false",
      kRequiredTierSpeedup, scalar_tier_ns, avx2_tier_ns, tier_speedup,
      pass ? "true" : "false");
  std::cout << json;
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
  }
  if (!fused_pass) {
    std::cerr << "kernel gate FAILED: fused kernels must be >= "
              << kRequiredSpeedup << "x the naive formulation\n";
    return 1;
  }
  if (!tier_pass) {
    std::cerr << "kernel gate FAILED: AVX2 tier must be >= "
              << kRequiredTierSpeedup
              << "x the scalar tier on the unit-weight fused eval\n";
    return 1;
  }
  return 0;
}

// ------------------------------------------------------ --sweep-report --

/// Times serial vs scatter-gather (sweep_threads=4) expansion per
/// algorithm over one prebuilt ExpansionContext on a clustered datagen
/// corpus — sweeps isolated from retrieval and clustering, same idiom as
/// the kernel gate. The sweeps distribute whole candidate evaluations and
/// merge in candidate order, so the outputs are byte-identical — only the
/// wall clock moves.
int RunSweepReport(const std::string& out_path, size_t docs,
                   size_t clusters) {
  constexpr size_t kSweepThreads = 4;
  constexpr int kSweepReps = 5;
  qec::datagen::ClusteredOptions options;
  options.num_docs = docs;
  options.num_clusters = clusters;
  qec::doc::Corpus corpus =
      qec::datagen::ClusteredGenerator(options).Generate();
  qec::index::InvertedIndex index(corpus);

  // Universe: every result of one topic term; cluster: the results also
  // carrying a sibling topic term (a realistic sub-cluster).
  const auto& vocab = corpus.analyzer().vocabulary();
  const std::vector<qec::TermId> user_terms = {vocab.Lookup("c0t0")};
  auto results = index.Search(user_terms);
  qec::core::ResultUniverse universe(corpus, results);
  qec::DynamicBitset bits =
      universe.Retrieve({vocab.Lookup("c0t1")});
  qec::core::CandidateOptions candidate_options;
  candidate_options.fraction = 1.0;  // widest sweeps: every candidate
  auto candidates = qec::core::SelectCandidates(universe, index, user_terms,
                                                candidate_options);
  auto context = qec::core::MakeContext(universe, user_terms,
                                        std::move(bits), candidates);

  auto median_ns = [&](auto&& expand) {
    std::vector<double> samples;
    for (int i = 0; i < kSweepReps; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      auto r = expand();
      auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(r);
      samples.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };

  double serial_s[3] = {0, 0, 0};
  double sharded_s[3] = {0, 0, 0};
  for (int threaded = 0; threaded < 2; ++threaded) {
    double* out = threaded != 0 ? sharded_s : serial_s;
    const size_t threads = threaded != 0 ? kSweepThreads : 1;
    const qec::core::SweepOptions sweep{/*threads=*/threads};
    qec::core::IskrOptions iskr;
    out[0] = median_ns([&] {
               return qec::core::IskrExpander(iskr, sweep).Expand(context);
             }) /
             1e9;
    qec::core::PebcOptions pebc;
    out[1] = median_ns([&] {
               return qec::core::PebcExpander(pebc, sweep).Expand(context);
             }) /
             1e9;
    qec::core::FMeasureOptions fmeasure;
    out[2] = median_ns([&] {
               return qec::core::FMeasureExpander(fmeasure, sweep)
                   .Expand(context);
             }) /
             1e9;
  }

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"docs\": %zu,\n"
      "  \"clusters\": %zu,\n"
      "  \"sweep_threads\": %zu,\n"
      "  \"iskr\": {\"serial_ms\": %.2f, \"sharded_ms\": %.2f,"
      " \"speedup\": %.2f},\n"
      "  \"pebc\": {\"serial_ms\": %.2f, \"sharded_ms\": %.2f,"
      " \"speedup\": %.2f},\n"
      "  \"fmeasure\": {\"serial_ms\": %.2f, \"sharded_ms\": %.2f,"
      " \"speedup\": %.2f}\n"
      "}\n",
      docs, clusters, kSweepThreads, serial_s[0] * 1e3, sharded_s[0] * 1e3,
      serial_s[0] / sharded_s[0], serial_s[1] * 1e3, sharded_s[1] * 1e3,
      serial_s[1] / sharded_s[1], serial_s[2] * 1e3, sharded_s[2] * 1e3,
      serial_s[2] / sharded_s[2]);
  std::cout << json;
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t docs = 400000;
  size_t clusters = 256;
  std::string sweep_out;
  bool sweep_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--docs=", 0) == 0) {
      docs = static_cast<size_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--clusters=", 0) == 0) {
      clusters = static_cast<size_t>(std::atoll(arg.c_str() + 11));
    } else if (arg == "--sweep-report" ||
               arg.rfind("--sweep-report=", 0) == 0) {
      sweep_mode = true;
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) sweep_out = arg.substr(eq + 1);
    }
  }
  if (sweep_mode) return RunSweepReport(sweep_out, docs, clusters);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--kernel-gate" || arg.rfind("--kernel-gate=", 0) == 0) {
      const size_t eq = arg.find('=');
      return RunKernelGate(eq == std::string::npos ? std::string()
                                                   : arg.substr(eq + 1));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
