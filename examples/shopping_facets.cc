// Shopping-catalog scenario: a user searches a product catalog with a broad
// query ("memory"), and the engine returns one expanded query per product
// group — a dynamic classification the user can click to drill down,
// exactly the exploratory-search workflow that motivates the paper.
//
//   ./build/examples/shopping_facets [query]

#include <cstdio>
#include <string>

#include "core/query_expander.h"
#include "datagen/shopping.h"
#include "index/inverted_index.h"

int main(int argc, char** argv) {
  const std::string query = argc > 1 ? argv[1] : "memory";

  // 1. Generate and index the catalog (a stand-in for a crawled store).
  qec::doc::Corpus catalog = qec::datagen::ShoppingGenerator().Generate();
  qec::index::InvertedIndex index(catalog);
  auto stats = catalog.Stats();
  std::printf("catalog: %zu products, %zu distinct terms\n\n", stats.num_docs,
              stats.num_distinct_terms);

  // 2. Run the search the user issued.
  auto results = index.SearchText(query);
  std::printf("\"%s\" retrieved %zu products; top hits:\n", query.c_str(),
              results.size());
  for (size_t i = 0; i < results.size() && i < 5; ++i) {
    std::printf("  %5.2f  %s\n", results[i].score,
                catalog.Get(results[i].doc).title().c_str());
  }
  if (results.empty()) {
    std::printf("no results — try \"memory\", \"tv\", \"canon products\"\n");
    return 1;
  }

  // 3. Expand: cluster the results and generate one query per cluster.
  qec::core::QueryExpanderOptions options;
  options.top_k_results = 0;  // small catalog: use all results
  qec::core::QueryExpander expander(index, options);
  auto outcome = expander.ExpandText(query);
  if (!outcome.ok()) {
    std::fprintf(stderr, "expansion failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("\nrefine your search (%zu groups, set score %.3f):\n",
              outcome->num_clusters, outcome->set_score);
  for (const auto& eq : outcome->queries) {
    std::printf("  [%zu products] \"", eq.cluster_size);
    for (size_t i = 0; i < eq.keywords.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "", eq.keywords[i].c_str());
    }
    std::printf("\"  (P=%.2f R=%.2f)\n", eq.quality.precision,
                eq.quality.recall);
  }

  // 4. Simulate the user clicking the first expanded query: issue it as a
  // real search and show that it narrows to the intended group.
  if (!outcome->queries.empty()) {
    const auto& chosen = outcome->queries.front();
    auto narrowed = index.Search(chosen.terms);
    std::printf("\nafter choosing the first suggestion, %zu products:\n",
                narrowed.size());
    for (size_t i = 0; i < narrowed.size() && i < 5; ++i) {
      std::printf("  %s\n", catalog.Get(narrowed[i].doc).title().c_str());
    }
  }
  return 0;
}
