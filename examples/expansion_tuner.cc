// Tuning tour of the engine's knobs: algorithms, PEBC strategies, candidate
// fraction, ranked vs. unranked weights, and the cluster-count bound —
// printing Eq. 1 score and timing for each configuration so a downstream
// user can pick a tradeoff (the paper: PEBC "approaches the optimal
// solution in a fast and adjustable progress").
//
//   ./build/examples/expansion_tuner

#include <cstdio>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/query_expander.h"
#include "datagen/wikipedia.h"
#include "index/inverted_index.h"

namespace {

struct Config {
  std::string name;
  qec::core::QueryExpanderOptions options;
};

}  // namespace

int main() {
  qec::doc::Corpus corpus = qec::datagen::WikipediaGenerator().Generate();
  qec::index::InvertedIndex index(corpus);

  std::vector<Config> configs;
  {
    Config c;
    c.name = "ISKR (defaults)";
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "ISKR, add-only (no removal)";
    c.options.iskr.allow_removal = false;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "ISKR, all candidates (fraction=1.0)";
    c.options.candidates.fraction = 1.0;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "ISKR, unranked weights";
    c.options.use_ranking_weights = false;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "PEBC, random-single (Sec. 4.3)";
    c.options.algorithm = qec::core::ExpansionAlgorithm::kPebc;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "PEBC, fixed-order (Sec. 4.1)";
    c.options.algorithm = qec::core::ExpansionAlgorithm::kPebc;
    c.options.pebc.strategy = qec::core::PebcStrategy::kFixedOrder;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "PEBC, deeper search (5 seg x 4 iter)";
    c.options.algorithm = qec::core::ExpansionAlgorithm::kPebc;
    c.options.pebc.num_segments = 5;
    c.options.pebc.num_iterations = 4;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "F-measure variant";
    c.options.algorithm = qec::core::ExpansionAlgorithm::kFMeasure;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "ISKR, at most 2 clusters";
    c.options.max_clusters = 2;
    configs.push_back(c);
  }

  const std::vector<std::string> queries = {"java", "eclipse", "rockets"};
  std::printf("%-38s %10s %10s %10s\n", "configuration", "avg score",
              "avg ms", "queries");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (const auto& config : configs) {
    double score_sum = 0.0;
    double ms_sum = 0.0;
    size_t ok = 0;
    for (const auto& q : queries) {
      qec::core::QueryExpander expander(index, config.options);
      qec::Stopwatch watch;
      auto outcome = expander.ExpandText(q);
      double ms = watch.ElapsedMillis();
      if (!outcome.ok()) continue;
      score_sum += outcome->set_score;
      ms_sum += ms;
      ++ok;
    }
    std::printf("%-38s %10.3f %10.3f %10zu\n", config.name.c_str(),
                ok ? score_sum / ok : 0.0, ok ? ms_sum / ok : 0.0, ok);
  }
  std::printf(
      "\nknobs shown: algorithm, removal, candidate fraction, ranking "
      "weights,\nPEBC strategy/depth, cluster bound. See "
      "qec::core::QueryExpanderOptions.\n");
  return 0;
}
