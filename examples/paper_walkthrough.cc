// A living version of the paper's Sec. 3 worked example (Examples 3.1 and
// 3.2): builds the exact instance — cluster C = {R1..R8}, U = {R1'..R10'},
// keywords job/store/location/fruit with the published elimination sets —
// and prints ISKR's refinement trace, reproducing the benefit/cost tables.
//
//   ./build/examples/paper_walkthrough

#include <cstdio>
#include <string>
#include <vector>

#include "core/expansion_context.h"
#include "core/iskr.h"
#include "core/pebc.h"
#include "core/result_universe.h"
#include "doc/corpus.h"

namespace {

/// Adds a result that contains "apple" plus the keywords flagged present.
qec::DocId AddResult(qec::doc::Corpus& corpus, const char* name, bool job,
                     bool store, bool location, bool fruit) {
  std::string body = "apple";
  if (job) body += " job";
  if (store) body += " store";
  if (location) body += " location";
  if (fruit) body += " fruit";
  return corpus.AddTextDocument(name, body);
}

}  // namespace

int main() {
  std::printf("=== The paper's Example 3.1 / 3.2, executed ===\n\n");
  qec::doc::Corpus corpus;
  std::vector<qec::DocId> ids;
  // C: R1..R8. A keyword "eliminates" a result iff absent from it; the
  // presence flags below invert the paper's elimination table.
  ids.push_back(AddResult(corpus, "R1", false, false, true, false));
  ids.push_back(AddResult(corpus, "R2", false, false, false, false));
  ids.push_back(AddResult(corpus, "R3", false, false, false, false));
  ids.push_back(AddResult(corpus, "R4", false, false, false, true));
  ids.push_back(AddResult(corpus, "R5", false, true, false, true));
  ids.push_back(AddResult(corpus, "R6", false, true, true, true));
  ids.push_back(AddResult(corpus, "R7", true, true, true, true));
  ids.push_back(AddResult(corpus, "R8", true, true, true, true));
  // U: R1'..R10'.
  ids.push_back(AddResult(corpus, "R1'", false, false, true, true));
  ids.push_back(AddResult(corpus, "R2'", false, false, true, false));
  ids.push_back(AddResult(corpus, "R3'", false, false, true, false));
  ids.push_back(AddResult(corpus, "R4'", false, false, true, false));
  ids.push_back(AddResult(corpus, "R5'", false, true, false, true));
  ids.push_back(AddResult(corpus, "R6'", false, true, false, true));
  ids.push_back(AddResult(corpus, "R7'", false, true, false, true));
  ids.push_back(AddResult(corpus, "R8'", false, true, false, true));
  ids.push_back(AddResult(corpus, "R9'", true, false, true, true));
  ids.push_back(AddResult(corpus, "R10'", true, true, false, true));

  qec::core::ResultUniverse universe(corpus, ids);  // unranked: S(.) counts
  qec::DynamicBitset cluster(universe.size());
  for (size_t i = 0; i < 8; ++i) cluster.Set(i);
  auto T = [&](const char* w) {
    return corpus.analyzer().vocabulary().Lookup(w);
  };
  auto ctx = qec::core::MakeContext(
      universe, {T("apple")}, cluster,
      {T("job"), T("store"), T("location"), T("fruit")});

  std::printf("user query: \"apple\"; C = {R1..R8}, U = {R1'..R10'}\n");
  std::printf("candidates: job, store, location, fruit\n\n");

  std::vector<qec::core::IskrStep> trace;
  auto result = qec::core::IskrExpander().ExpandWithTrace(ctx, &trace);

  std::printf("ISKR refinement trace (compare with the Example 3.1 "
              "tables):\n");
  std::printf("  %-4s %-8s %-10s %8s %6s %8s %8s\n", "step", "action",
              "keyword", "benefit", "cost", "value", "F after");
  for (size_t i = 0; i < trace.size(); ++i) {
    const auto& s = trace[i];
    char value_buf[32];
    if (s.cost == 0.0) {
      std::snprintf(value_buf, sizeof(value_buf), "inf");
    } else {
      std::snprintf(value_buf, sizeof(value_buf), "%.3f", s.value);
    }
    std::printf("  %-4zu %-8s %-10s %8.0f %6.0f %8s %8.3f\n", i + 1,
                s.is_removal ? "remove" : "add",
                std::string(
                    corpus.analyzer().vocabulary().TermString(s.keyword))
                    .c_str(),
                s.benefit, s.cost, value_buf, s.f_measure_after);
  }

  std::printf("\nfinal expanded query: \"");
  for (size_t i = 0; i < result.query.size(); ++i) {
    std::printf("%s%s", i > 0 ? ", " : "",
                std::string(corpus.analyzer().vocabulary().TermString(
                                result.query[i]))
                    .c_str());
  }
  std::printf("\"\nprecision %.2f, recall %.3f (R6, R7, R8 of the 8-result "
              "cluster; nothing from U)\n",
              result.quality.precision, result.quality.recall);
  std::printf(
      "\nThe paper's walkthrough: add job (8/6), add store, add location, "
      "then REMOVE job\n(Example 3.2) — removal regains R6 for free. "
      "Final query: {apple, store, location}.\n");

  // The per-run accounting surfaced on ExpansionResult (mirrors the
  // iskr/* and pebc/* counters in the global metrics registry).
  const auto& is = result.iskr_stats;
  std::printf(
      "\nISKR stats: %zu steps (%zu additions, %zu removals), "
      "%zu benefit/cost evaluations\n",
      is.steps, is.additions, is.removals, is.candidates_evaluated);

  auto pebc_result = qec::core::PebcExpander().Expand(ctx);
  const auto& ps = pebc_result.pebc_stats;
  std::printf(
      "PEBC stats: %zu samples over %zu rounds (%zu zooms), "
      "%zu benefit/cost evaluations, best target %.1f%% of U\n",
      ps.samples_drawn, ps.rounds, ps.intervals_zoomed,
      ps.candidates_evaluated, ps.best_target_percent);
  return 0;
}
