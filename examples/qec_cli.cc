// qec_cli — command-line front end for the library, wiring together XML
// ingestion, corpus persistence, search, and cluster-based query expansion.
//
//   qec_cli index  <corpus.qec> <file.xml|file.txt>...   build + save corpus
//   qec_cli gen    <corpus.qec> [shopping|wikipedia]     save a demo corpus
//   qec_cli index-build   <snap.qsnap> [--reorder=cluster]
//                  <file...|shopping|wikipedia|clustered:D:C[:SEED]>
//                  build corpus + inverted index, write one checksummed
//                  snapshot (docs/FORMATS.md) that serves without a rebuild;
//                  --reorder=cluster permutes doc ids so same-cluster
//                  documents are contiguous (smaller INDX, byte-identical
//                  expansion) and records the permutation as a PERM section
//   qec_cli index-inspect <snap.qsnap>   print version, section TOC, CRCs,
//                  permutation presence/identity, and corpus statistics
//                  (reads only the STAT and PERM sections)
//   qec_cli stats  <corpus.qec|snap.qsnap>               corpus statistics
//   qec_cli search <corpus.qec|snap.qsnap> <query words>...  top-10 search
//   qec_cli expand <corpus.qec|snap.qsnap> [-a iskr|pebc|fmeasure] [-k N]
//                  [--sweep-threads=N] <query>...
//   qec_cli explain <corpus.qec|snap.qsnap> [-a algo] [-b algo] [-k N]
//                  <query>...   run a query through two arms with per-term
//                  benefit/cost diagnostics and report the winner
//   qec_cli abtest <corpus.qec|shopping|wikipedia> [-a algo] [-b algo]
//                  [-n N] [--queries=FILE]   offline A/B replay: score both
//                  arms over a query workload and print the tallies
//   qec_cli serve  <corpus.qec|shopping|wikipedia> [--snapshot=FILE]
//                  [--port=N [--host=ADDR] [--max-conns=N]
//                  [--max-line-bytes=N] [--drain-ms=N]]
//                  [--threads=N] [--queue=N] [--deadline-ms=N] [--no-cache]
//                  [--cache-size=N] [--slowlog-dump=FILE] [--slow-ms=N]
//                  [--flight-recorder=N] [--metrics-flush-interval=SEC]
//                  [--metrics-flush-out=FILE] [--shadow-rate=R]
//                  [--shadow-algo=A] [--shadow-queue=N]  line-protocol
//                  server over stdin/stdout, or over TCP (epoll, pipelined)
//                  with --port
//   qec_cli slowlog <dump.jsonl> [-n N]                  print a slowlog dump
//   qec_cli quickstart [--snapshot=FILE [--query=Q]]     in-memory demo
//
// Commands taking <corpus.qec> sniff the file magic, so a snapshot works
// anywhere a corpus blob does (and skips the index rebuild). `serve
// --snapshot=FILE` starts from the snapshot alone — no XML parsing, no
// index build.
//
// Global flags (any command; `quickstart` is the default when only flags
// are given): --metrics-out=FILE writes a metrics JSON snapshot on exit,
// --trace records spans and prints a flat profile, --trace-out=FILE writes
// chrome://tracing JSON, --log-level=debug|info|warning|error sets the log
// threshold (QEC_LOG_LEVEL env works too).
//
// Text files are indexed as one document each; XML files must have a root
// element (the whole subtree's text is indexed, title = <title> child or
// the file name).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/simd_kernels.h"
#include "common/string_util.h"
#include "common/sweep_pool.h"
#include "core/query_expander.h"
#include "eval/table_printer.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/prometheus.h"
#include "server/admin/admin_server.h"
#include "server/net/net_server.h"
#include "server/protocol.h"
#include "server/server.h"
#include "cluster/doc_reorder.h"
#include "datagen/clustered.h"
#include "datagen/shopping.h"
#include "datagen/wikipedia.h"
#include "datagen/workload.h"
#include "doc/corpus_io.h"
#include "eval/obs_report.h"
#include "index/inverted_index.h"
#include "snippet/snippet.h"
#include "storage/snapshot.h"
#include "xml/xml.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  qec_cli index  <corpus.qec> <file.xml|file.txt>...\n"
      "  qec_cli gen    <corpus.qec> [shopping|wikipedia]\n"
      "  qec_cli index-build   <snap.qsnap> [--reorder=cluster] "
      "<file...|shopping|wikipedia|clustered:D:C[:SEED]>\n"
      "  qec_cli index-inspect <snap.qsnap>\n"
      "  qec_cli stats  <corpus.qec|snap.qsnap>\n"
      "  qec_cli search <corpus.qec|snap.qsnap> <query words>...\n"
      "  qec_cli expand <corpus.qec|snap.qsnap> [-a iskr|pebc|fmeasure] "
      "[-k N] [--sweep-threads=N] <query words>...\n"
      "  qec_cli explain <corpus.qec|snap.qsnap> [-a algo] [-b algo] "
      "[-k N] <query words>...\n"
      "  qec_cli abtest <corpus.qec|shopping|wikipedia> [-a algo] [-b algo] "
      "[-n N] [--queries=FILE]\n"
      "  qec_cli serve  <corpus.qec|shopping|wikipedia> [--snapshot=FILE] "
      "[--port=N [--host=ADDR] [--max-conns=N] [--max-line-bytes=N] "
      "[--drain-ms=N]] "
      "[--admin-port=N [--admin-host=ADDR]] "
      "[--threads=N] [--queue=N] [--deadline-ms=N] [--no-cache] "
      "[--cache-size=N] [--slowlog-dump=FILE] [--slow-ms=N] "
      "[--flight-recorder=N] [--metrics-flush-interval=SEC] "
      "[--metrics-flush-out=FILE] [--shadow-rate=R] [--shadow-algo=A] "
      "[--shadow-queue=N]\n"
      "  qec_cli slowlog <dump.jsonl> [-n N]\n"
      "  qec_cli metrics-lint [exposition.prom|-]   (default: stdin)\n"
      "  qec_cli profile <folded.txt|-> [-n N] | --self=SECONDS [--hz=H] "
      "[--out=FILE]\n"
      "  qec_cli quickstart [--snapshot=FILE [--query=Q]]\n"
      "global flags: --metrics-out=FILE --trace --trace-out=FILE "
      "--log-level=LEVEL\n");
  return 2;
}

qec::Result<std::string> ReadFile(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (f == nullptr) return qec::Status::NotFound("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) out.append(buf, n);
  return out;
}

bool EndsWith(const std::string& s, const char* suffix) {
  size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

/// Parses "clustered:<docs>:<clusters>[:<seed>]" into generator options.
/// Returns false when `spec` is not a clustered spec at all; malformed
/// counts surface as an error from std::stoull.
bool ParseClusteredSpec(const std::string& spec,
                        qec::datagen::ClusteredOptions* options) {
  if (!qec::StartsWith(spec, "clustered:")) return false;
  std::vector<std::string> parts;
  size_t begin = strlen("clustered:");
  while (begin <= spec.size()) {
    size_t end = spec.find(':', begin);
    if (end == std::string::npos) end = spec.size();
    parts.push_back(spec.substr(begin, end - begin));
    begin = end + 1;
  }
  if (parts.size() < 2 || parts.size() > 3) return false;
  options->num_docs = static_cast<size_t>(std::stoull(parts[0]));
  options->num_clusters = static_cast<size_t>(std::stoull(parts[1]));
  if (parts.size() == 3) options->seed = std::stoull(parts[2]);
  return options->num_docs > 0 && options->num_clusters > 0;
}

/// Builds a corpus from XML/text files ("shopping"/"wikipedia" generate the
/// demo catalogs, "clustered:D:C[:SEED]" the synthetic clustered corpus).
/// Shared by `index` and `index-build`.
qec::Result<qec::doc::Corpus> BuildCorpus(const std::vector<std::string>& inputs) {
  if (inputs.size() == 1 && inputs[0] == "shopping") {
    return qec::datagen::ShoppingGenerator().Generate();
  }
  if (inputs.size() == 1 && inputs[0] == "wikipedia") {
    return qec::datagen::WikipediaGenerator().Generate();
  }
  if (inputs.size() == 1 && qec::StartsWith(inputs[0], "clustered:")) {
    qec::datagen::ClusteredOptions options;
    if (!ParseClusteredSpec(inputs[0], &options)) {
      return qec::Status::InvalidArgument("bad clustered spec: " + inputs[0]);
    }
    return qec::datagen::ClusteredGenerator(options).Generate();
  }
  qec::doc::Corpus corpus;
  for (const std::string& input : inputs) {
    auto content = ReadFile(input);
    if (!content.ok()) return content.status();
    if (EndsWith(input, ".xml")) {
      auto parsed = qec::xml::Parse(*content);
      if (!parsed.ok()) {
        return qec::Status(parsed.status().code(),
                           input + ": " + parsed.status().message());
      }
      const qec::xml::XmlNode* title = parsed->root->FindChild("title");
      corpus.AddTextDocument(title != nullptr ? title->InnerText() : input,
                             parsed->root->InnerText());
    } else {
      corpus.AddTextDocument(input, *content);
    }
  }
  return corpus;
}

/// A corpus + index loaded from a CLI argument: a generator name, a corpus
/// blob (index rebuilt in one pass), or a snapshot (index loaded as-is —
/// the zero-rebuild path).
struct LoadedData {
  std::unique_ptr<qec::doc::Corpus> corpus;
  std::unique_ptr<qec::index::InvertedIndex> index;
  bool from_snapshot = false;
};

qec::Result<LoadedData> LoadCorpusAndIndex(const std::string& arg) {
  LoadedData data;
  if (arg == "shopping" || arg == "wikipedia") {
    data.corpus = std::make_unique<qec::doc::Corpus>(
        arg == "shopping" ? qec::datagen::ShoppingGenerator().Generate()
                          : qec::datagen::WikipediaGenerator().Generate());
    data.index =
        std::make_unique<qec::index::InvertedIndex>(*data.corpus);
    return data;
  }
  auto blob = ReadFile(arg);
  if (!blob.ok()) return blob.status();
  if (qec::storage::LooksLikeSnapshot(*blob)) {
    auto snapshot = qec::storage::DeserializeSnapshot(*blob);
    if (!snapshot.ok()) return snapshot.status();
    data.corpus = std::move(snapshot->corpus);
    data.index = std::move(snapshot->index);
    data.from_snapshot = true;
    return data;
  }
  auto corpus = qec::doc::DeserializeCorpus(*blob);
  if (!corpus.ok()) return corpus.status();
  data.corpus = std::make_unique<qec::doc::Corpus>(std::move(*corpus));
  data.index = std::make_unique<qec::index::InvertedIndex>(*data.corpus);
  return data;
}

int CmdIndex(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  auto corpus =
      BuildCorpus(std::vector<std::string>(args.begin() + 1, args.end()));
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  qec::Status s = qec::doc::SaveCorpus(*corpus, args[0]);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu documents into %s\n", corpus->NumDocs(),
              args[0].c_str());
  return 0;
}

int CmdIndexBuild(const std::vector<std::string>& args) {
  bool reorder = false;
  std::string snapshot_path;
  std::vector<std::string> inputs;
  for (const std::string& arg : args) {
    if (arg == "--reorder=cluster") {
      reorder = true;
    } else if (qec::StartsWith(arg, "--reorder=")) {
      std::fprintf(stderr, "index-build: unknown reorder mode in %s\n",
                   arg.c_str());
      return 2;
    } else if (qec::StartsWith(arg, "--")) {
      return Usage();
    } else if (snapshot_path.empty()) {
      snapshot_path = arg;
    } else {
      inputs.push_back(arg);
    }
  }
  if (snapshot_path.empty() || inputs.empty()) return Usage();
  auto corpus = BuildCorpus(inputs);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  qec::Status s = qec::Status::Ok();
  bool identity = true;
  if (reorder) {
    // Permute doc ids so same-cluster documents are contiguous: the
    // delta+varbyte codec then sees gap-1 runs inside each topical posting
    // list (smaller INDX). The permutation rides along as a PERM section,
    // so loads tie-break ranked results on the original ids and expansion
    // output stays byte-identical to the unreordered snapshot.
    const std::vector<qec::DocId> order =
        qec::cluster::ComputeClusterOrder(*corpus);
    identity = qec::cluster::IsIdentityOrder(order);
    qec::doc::Corpus reordered = qec::cluster::ReorderCorpus(*corpus, order);
    qec::index::InvertedIndex index(reordered);
    s = qec::storage::WriteSnapshot(index, order, snapshot_path);
  } else {
    qec::index::InvertedIndex index(*corpus);
    s = qec::storage::WriteSnapshot(index, snapshot_path);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto stats = corpus->Stats();
  std::printf(
      "wrote snapshot %s: %zu documents, %zu terms, format v%u%s\n",
      snapshot_path.c_str(), stats.num_docs, stats.num_distinct_terms,
      qec::storage::kSnapshotFormatVersion,
      !reorder ? ""
               : (identity ? ", cluster reorder (identity)"
                           : ", cluster reordered"));
  return 0;
}

int CmdIndexInspect(const std::vector<std::string>& args) {
  if (args.size() != 1) return Usage();
  auto blob = qec::storage::ReadSnapshotBlob(args[0]);
  if (!blob.ok()) {
    std::fprintf(stderr, "%s\n", blob.status().ToString().c_str());
    return 1;
  }
  auto reader = qec::storage::SnapshotReader::Open(*blob);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  std::printf("snapshot %s: %zu bytes, format v%u, %zu sections\n",
              args[0].c_str(), blob->size(), reader->version(),
              reader->sections().size());
  int rc = 0;
  for (const auto& section : reader->sections()) {
    auto payload = reader->Section(section.id);
    std::printf("  %-4s  offset=%-10llu length=%-10llu crc32=%08x  %s\n",
                section.id.c_str(),
                static_cast<unsigned long long>(section.offset),
                static_cast<unsigned long long>(section.length),
                section.crc32, payload.ok() ? "ok" : "CORRUPT");
    if (!payload.ok()) rc = 1;
  }
  // Statistics come from the STAT section alone — documents and postings
  // stay untouched (the lazy-load path).
  auto stats = reader->ReadStats();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("documents:        %zu\n", stats->num_docs);
  std::printf("distinct terms:   %zu\n", stats->num_distinct_terms);
  std::printf("term occurrences: %zu\n", stats->total_term_occurrences);
  std::printf("avg doc length:   %.1f\n", stats->avg_doc_length);
  if (reader->HasSection(qec::storage::kSectionPerm)) {
    auto perm = reader->ReadPermutation();
    if (!perm.ok()) {
      // A PERM section whose length differs from the doc count, repeats
      // an id, or points out of range is Corruption, same as a bad CRC.
      std::fprintf(stderr, "%s\n", perm.status().ToString().c_str());
      return 1;
    }
    bool identity = true;
    for (size_t i = 0; i < perm->size(); ++i) {
      if ((*perm)[i] != i) {
        identity = false;
        break;
      }
    }
    std::printf("permutation:      %s (%zu entries)\n",
                identity ? "identity" : "reordered", perm->size());
  } else {
    std::printf("permutation:      none\n");
  }
  // Runtime facts about this binary, not the snapshot: the bitset-kernel
  // tier the dispatcher picked on this machine and the sweep-pool counters
  // (zero here unless an expansion ran in-process).
  std::printf("kernel tier:      %s\n", qec::simd::ActiveTierName());
  const auto pool = qec::common::SweepPool::Instance().GetStats();
  std::printf("sweep pool:       runs=%llu spawns=%llu reuses=%llu\n",
              static_cast<unsigned long long>(pool.runs),
              static_cast<unsigned long long>(pool.spawns),
              static_cast<unsigned long long>(pool.reuses));
  return rc;
}

int CmdGen(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const std::string kind = args.size() > 1 ? args[1] : "wikipedia";
  qec::doc::Corpus corpus =
      kind == "shopping" ? qec::datagen::ShoppingGenerator().Generate()
                         : qec::datagen::WikipediaGenerator().Generate();
  qec::Status s = qec::doc::SaveCorpus(corpus, args[0]);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s corpus (%zu docs) to %s\n", kind.c_str(),
              corpus.NumDocs(), args[0].c_str());
  return 0;
}

int CmdStats(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  auto blob = ReadFile(args[0]);
  if (!blob.ok()) {
    std::fprintf(stderr, "%s\n", blob.status().ToString().c_str());
    return 1;
  }
  qec::doc::CorpusStats stats;
  if (qec::storage::LooksLikeSnapshot(*blob)) {
    // Snapshot: statistics live in their own section, so no documents or
    // postings are decoded.
    auto reader = qec::storage::SnapshotReader::Open(*blob);
    if (!reader.ok()) {
      std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
      return 1;
    }
    auto loaded = reader->ReadStats();
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    stats = *loaded;
  } else {
    auto corpus = qec::doc::DeserializeCorpus(*blob);
    if (!corpus.ok()) {
      std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
      return 1;
    }
    stats = corpus->Stats();
  }
  std::printf("documents:        %zu\n", stats.num_docs);
  std::printf("distinct terms:   %zu\n", stats.num_distinct_terms);
  std::printf("term occurrences: %zu\n", stats.total_term_occurrences);
  std::printf("avg doc length:   %.1f\n", stats.avg_doc_length);
  return 0;
}

bool ParseAlgoName(const std::string& name,
                   qec::core::ExpansionAlgorithm* out) {
  if (name == "iskr") {
    *out = qec::core::ExpansionAlgorithm::kIskr;
  } else if (name == "pebc") {
    *out = qec::core::ExpansionAlgorithm::kPebc;
  } else if (name == "fmeasure") {
    *out = qec::core::ExpansionAlgorithm::kFMeasure;
  } else {
    return false;
  }
  return true;
}

std::string JoinFrom(const std::vector<std::string>& args, size_t from) {
  std::string out;
  for (size_t i = from; i < args.size(); ++i) {
    if (i > from) out += ' ';
    out += args[i];
  }
  return out;
}

int CmdSearch(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  auto data = LoadCorpusAndIndex(args[0]);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const auto& corpus = data->corpus;
  const auto& index = *data->index;
  std::string query = JoinFrom(args, 1);
  auto results = index.SearchText(query, 10);
  auto query_terms = corpus->analyzer().AnalyzeReadOnly(query);
  qec::snippet::SnippetGenerator snippets;
  std::printf("%zu results for \"%s\"\n", results.size(), query.c_str());
  for (const auto& r : results) {
    std::printf("  %7.3f  %s\n", r.score, corpus->Get(r.doc).title().c_str());
    auto s = snippets.Generate(corpus->Get(r.doc), query_terms,
                               corpus->analyzer().vocabulary());
    std::printf("           %s\n", s.text.c_str());
  }
  return 0;
}

int CmdExpand(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  qec::core::QueryExpanderOptions options;
  size_t i = 1;
  while (i < args.size() && args[i][0] == '-') {
    if (args[i] == "-a" && i + 1 < args.size()) {
      const std::string& a = args[i + 1];
      if (a == "iskr") {
        options.algorithm = qec::core::ExpansionAlgorithm::kIskr;
      } else if (a == "pebc") {
        options.algorithm = qec::core::ExpansionAlgorithm::kPebc;
      } else if (a == "fmeasure") {
        options.algorithm = qec::core::ExpansionAlgorithm::kFMeasure;
      } else {
        return Usage();
      }
      i += 2;
    } else if (args[i] == "-k" && i + 1 < args.size()) {
      options.max_clusters = static_cast<size_t>(std::stoul(args[i + 1]));
      i += 2;
    } else if (qec::StartsWith(args[i], "--sweep-threads=")) {
      // Scatter-gather benefit/cost sweeps inside every algorithm; merges
      // are candidate-ordered, so output is byte-identical to serial.
      const size_t n = static_cast<size_t>(
          std::stoul(args[i].substr(strlen("--sweep-threads="))));
      options.sweep.threads = n;
      i += 1;
    } else {
      return Usage();
    }
  }
  if (i >= args.size()) return Usage();

  auto data = LoadCorpusAndIndex(args[0]);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  qec::core::QueryExpander expander(*data->index, options);
  std::string query = JoinFrom(args, i);
  auto outcome = expander.ExpandText(query);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("%s expansions for \"%s\" (%zu results, %zu clusters, "
              "set score %.3f):\n",
              std::string(qec::core::AlgorithmName(options.algorithm)).c_str(),
              query.c_str(), outcome->num_results_used,
              outcome->num_clusters, outcome->set_score);
  for (const auto& eq : outcome->queries) {
    std::printf("  [%2zu results] \"", eq.cluster_size);
    for (size_t k = 0; k < eq.keywords.size(); ++k) {
      std::printf("%s%s", k > 0 ? ", " : "", eq.keywords[k].c_str());
    }
    std::printf("\"  P=%.2f R=%.2f F=%.2f\n", eq.quality.precision,
                eq.quality.recall, eq.quality.f_measure);
  }
  return 0;
}

// explain: run one query through two expansion arms with per-term
// benefit/cost diagnostics (QueryExpanderOptions::explain_terms) and report
// which arm's set score wins — the offline twin of the server's EXPLAIN
// verb (docs/OBSERVABILITY.md).
int CmdExplain(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  qec::core::QueryExpanderOptions options;
  options.explain_terms = true;
  qec::core::ExpansionAlgorithm shadow_algo =
      qec::core::ExpansionAlgorithm::kPebc;
  size_t i = 1;
  while (i < args.size() && args[i][0] == '-') {
    if (args[i] == "-a" && i + 1 < args.size()) {
      if (!ParseAlgoName(args[i + 1], &options.algorithm)) return Usage();
      i += 2;
    } else if (args[i] == "-b" && i + 1 < args.size()) {
      if (!ParseAlgoName(args[i + 1], &shadow_algo)) return Usage();
      i += 2;
    } else if (args[i] == "-k" && i + 1 < args.size()) {
      options.max_clusters = static_cast<size_t>(std::stoul(args[i + 1]));
      i += 2;
    } else {
      return Usage();
    }
  }
  if (i >= args.size()) return Usage();
  if (shadow_algo == options.algorithm) {
    shadow_algo = options.algorithm == qec::core::ExpansionAlgorithm::kPebc
                      ? qec::core::ExpansionAlgorithm::kIskr
                      : qec::core::ExpansionAlgorithm::kPebc;
  }

  auto data = LoadCorpusAndIndex(args[0]);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const std::string query = JoinFrom(args, i);

  qec::eval::TablePrinter table(
      {"arm", "cluster", "term", "action", "benefit", "cost", "value"});
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v > 1e12 ? 1e12 : v);
    return std::string(buf);
  };
  double scores[2] = {-1.0, -1.0};
  const char* arm_names[2] = {"primary", "shadow"};
  const qec::core::ExpansionAlgorithm arms[2] = {options.algorithm,
                                                 shadow_algo};
  for (int arm = 0; arm < 2; ++arm) {
    qec::core::QueryExpanderOptions arm_options = options;
    arm_options.algorithm = arms[arm];
    qec::core::QueryExpander expander(*data->index, arm_options);
    auto outcome = expander.ExpandText(query);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s arm (%s): %s\n", arm_names[arm],
                   std::string(qec::core::AlgorithmName(arms[arm])).c_str(),
                   outcome.status().ToString().c_str());
      continue;
    }
    scores[arm] = outcome->set_score;
    std::printf("%s arm %s: set score %.3f over %zu clusters "
                "(%zu results, %.2f ms)\n",
                arm_names[arm],
                std::string(qec::core::AlgorithmName(arms[arm])).c_str(),
                outcome->set_score, outcome->num_clusters,
                outcome->num_results_used,
                outcome->expansion_seconds * 1e3);
    for (const auto& eq : outcome->queries) {
      for (const auto& row : eq.term_details) {
        table.AddRow({arm_names[arm], std::to_string(eq.cluster_index),
                      std::string(
                          data->corpus->analyzer().vocabulary().TermString(
                              row.term)),
                      row.is_removal ? "remove" : "add", fmt(row.benefit),
                      fmt(row.cost), fmt(row.value)});
      }
    }
  }
  std::printf("%s", table.ToString().c_str());
  if (scores[0] >= 0.0 && scores[1] >= 0.0) {
    const double d = scores[0] - scores[1];
    std::printf("winner: %s (primary %.3f vs shadow %.3f)\n",
                d > 1e-9 ? "primary" : (d < -1e-9 ? "shadow" : "tie"),
                scores[0], scores[1]);
  }
  return scores[0] < 0.0 && scores[1] < 0.0 ? 1 : 0;
}

// abtest: offline A/B replay — scores a primary and a shadow arm over a
// query workload through the same ShadowEvaluator the server samples
// with, then prints the tallies the ABTEST verb would report.
int CmdAbtest(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  qec::core::ExpansionAlgorithm primary_algo =
      qec::core::ExpansionAlgorithm::kIskr;
  qec::core::ExpansionAlgorithm shadow_algo =
      qec::core::ExpansionAlgorithm::kPebc;
  size_t limit = 0;  // 0 = all
  std::string queries_file;
  std::string corpus_arg;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-a" && i + 1 < args.size()) {
      if (!ParseAlgoName(args[++i], &primary_algo)) return Usage();
    } else if (args[i] == "-b" && i + 1 < args.size()) {
      if (!ParseAlgoName(args[++i], &shadow_algo)) return Usage();
    } else if (args[i] == "-n" && i + 1 < args.size()) {
      limit = static_cast<size_t>(std::stoul(args[++i]));
    } else if (qec::StartsWith(args[i], "--queries=")) {
      queries_file = args[i].substr(strlen("--queries="));
    } else if (corpus_arg.empty()) {
      corpus_arg = args[i];
    } else {
      return Usage();
    }
  }
  if (corpus_arg.empty()) return Usage();
  if (primary_algo == shadow_algo) {
    std::fprintf(stderr, "abtest: both arms are %s — nothing to compare\n",
                 std::string(qec::core::AlgorithmName(primary_algo)).c_str());
    return 2;
  }

  std::vector<std::string> queries;
  if (!queries_file.empty()) {
    auto content = ReadFile(queries_file);
    if (!content.ok()) {
      std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
      return 1;
    }
    size_t begin = 0;
    while (begin <= content->size()) {
      size_t end = content->find('\n', begin);
      if (end == std::string::npos) end = content->size();
      std::string q(qec::TrimWhitespace(
          std::string_view(content->data() + begin, end - begin)));
      if (!q.empty()) queries.push_back(std::move(q));
      begin = end + 1;
    }
  } else if (corpus_arg == "shopping") {
    for (const auto& q : qec::datagen::ShoppingQueries()) {
      queries.push_back(q.text);
    }
  } else if (corpus_arg == "wikipedia") {
    for (const auto& q : qec::datagen::WikipediaQueries()) {
      queries.push_back(q.text);
    }
  } else {
    std::fprintf(stderr,
                 "abtest: --queries=FILE is required for corpus files\n");
    return 2;
  }
  if (limit != 0 && queries.size() > limit) queries.resize(limit);

  auto data = LoadCorpusAndIndex(corpus_arg);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  qec::server::ShadowEvaluatorOptions shadow_options;
  shadow_options.sample_rate = 1.0;
  shadow_options.algorithm = shadow_algo;
  shadow_options.dedupe = false;  // replay every workload query once
  shadow_options.history_capacity = queries.size() + 1;
  qec::server::ShadowEvaluator evaluator(shadow_options);

  qec::core::QueryExpanderOptions primary_options;
  primary_options.algorithm = primary_algo;
  qec::core::QueryExpanderOptions secondary_options;
  secondary_options.algorithm = shadow_algo;
  qec::core::QueryExpander primary(*data->index, primary_options);
  qec::core::QueryExpander shadow(*data->index, secondary_options);

  qec::eval::TablePrinter table(
      {"query", "primary", "shadow", "winner", "p_ms", "s_ms"});
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!evaluator.ShouldSample()) continue;  // rate 1.0: never skips
    auto p = primary.ExpandText(queries[i]);
    auto s = shadow.ExpandText(queries[i]);
    if (!p.ok() || !s.ok()) {
      evaluator.RecordError();
      continue;
    }
    const auto c = evaluator.Compare(
        i + 1, queries[i],
        std::string(qec::core::AlgorithmName(primary_algo)), p->set_score,
        static_cast<uint64_t>(p->expansion_seconds * 1e9), s->set_score,
        static_cast<uint64_t>(s->expansion_seconds * 1e9));
    char p_score[32], s_score[32], p_ms[32], s_ms[32];
    std::snprintf(p_score, sizeof(p_score), "%.3f", c.primary_score);
    std::snprintf(s_score, sizeof(s_score), "%.3f", c.shadow_score);
    std::snprintf(p_ms, sizeof(p_ms), "%.2f",
                  static_cast<double>(c.primary_expansion_ns) / 1e6);
    std::snprintf(s_ms, sizeof(s_ms), "%.2f",
                  static_cast<double>(c.shadow_expansion_ns) / 1e6);
    table.AddRow({queries[i], p_score, s_score, c.winner, p_ms, s_ms});
  }
  std::printf("%s", table.ToString().c_str());
  const qec::server::ShadowTallies t = evaluator.tallies();
  std::printf("%s vs %s over %llu queries: primary %llu, shadow %llu, "
              "tie %llu, errors %llu\n",
              std::string(qec::core::AlgorithmName(primary_algo)).c_str(),
              std::string(qec::core::AlgorithmName(shadow_algo)).c_str(),
              static_cast<unsigned long long>(t.sampled),
              static_cast<unsigned long long>(t.primary_wins),
              static_cast<unsigned long long>(t.shadow_wins),
              static_cast<unsigned long long>(t.ties),
              static_cast<unsigned long long>(t.errors));
  return 0;
}

// The serve --port signal hook: SIGINT/SIGTERM request a graceful drain.
// NetServer::RequestStop and AdminServer::SetDraining are both
// async-signal-safe (atomic store + eventfd write), so the handler may
// call them directly.
std::atomic<qec::server::net::NetServer*> g_net_server{nullptr};
std::atomic<qec::server::admin::AdminServer*> g_admin_server{nullptr};

void HandleStopSignal(int) {
  // Flip /readyz to 503 first, so a load balancer polling readiness sees
  // "draining" before the query listener actually closes.
  qec::server::admin::AdminServer* admin =
      g_admin_server.load(std::memory_order_acquire);
  if (admin != nullptr) admin->SetDraining();
  qec::server::net::NetServer* net =
      g_net_server.load(std::memory_order_acquire);
  if (net != nullptr) net->RequestStop();
}

// Ordered stdout writer for the pipelined stdin serve loop. The reader
// thread opens one slot per request line and keeps reading ahead;
// responses complete out of order on worker threads but print strictly in
// request order. Open() applies backpressure once `window` responses are
// outstanding, so a piped-in workload cannot trip the server's admission
// shedding.
class OrderedStdout {
 public:
  explicit OrderedStdout(size_t window) : window_(window) {}

  bool Full() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.size() >= window_;
  }

  uint64_t Open() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return slots_.size() < window_; });
    slots_.emplace_back();
    return next_++;
  }

  void Complete(uint64_t slot, std::string line) {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[static_cast<size_t>(slot - base_)] = {true, std::move(line)};
    bool flushed = false;
    while (!slots_.empty() && slots_.front().done) {
      std::printf("%s\n", slots_.front().line.c_str());
      slots_.pop_front();
      ++base_;
      flushed = true;
    }
    if (flushed) {
      std::fflush(stdout);
      cv_.notify_all();
    }
  }

  /// Blocks until every opened slot has completed and printed.
  void Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return slots_.empty(); });
  }

 private:
  struct Slot {
    bool done = false;
    std::string line;
  };

  const size_t window_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Slot> slots_;
  uint64_t next_ = 0;
  uint64_t base_ = 0;
};

// serve: the line-protocol serving layer (docs/SERVING.md) driven by
// stdin/stdout — one request line in, one JSON response line out — or, with
// --port=N, by the epoll network front end serving the same protocol over
// TCP with pipelining (--port=0 binds an ephemeral port and reports it on
// stderr). The corpus argument is a .qec file, or the literal
// "shopping"/"wikipedia" to serve a generated demo corpus;
// `--snapshot=FILE` starts from a checksummed snapshot instead — no XML
// parsing, no index rebuild.
int CmdServe(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  qec::server::ServerOptions options;
  qec::server::net::NetServerOptions net_options;
  qec::server::admin::AdminServerOptions admin_options;
  bool net_mode = false;
  bool admin_mode = false;
  std::string corpus_arg;
  std::string snapshot_path;
  std::string metrics_flush_out = "metrics.prom";
  uint64_t metrics_flush_interval_s = 0;
  for (const std::string& arg : args) {
    if (qec::StartsWith(arg, "--port=")) {
      net_mode = true;
      net_options.port =
          static_cast<uint16_t>(std::stoul(arg.substr(strlen("--port="))));
    } else if (qec::StartsWith(arg, "--host=")) {
      net_options.host = arg.substr(strlen("--host="));
    } else if (qec::StartsWith(arg, "--max-conns=")) {
      net_options.max_connections =
          static_cast<size_t>(std::stoul(arg.substr(strlen("--max-conns="))));
    } else if (qec::StartsWith(arg, "--max-line-bytes=")) {
      net_options.max_line_bytes = static_cast<size_t>(
          std::stoul(arg.substr(strlen("--max-line-bytes="))));
    } else if (qec::StartsWith(arg, "--drain-ms=")) {
      net_options.drain_timeout_ms =
          std::stoull(arg.substr(strlen("--drain-ms=")));
    } else if (qec::StartsWith(arg, "--admin-port=")) {
      admin_mode = true;
      admin_options.port = static_cast<uint16_t>(
          std::stoul(arg.substr(strlen("--admin-port="))));
    } else if (qec::StartsWith(arg, "--admin-host=")) {
      admin_options.host = arg.substr(strlen("--admin-host="));
    } else if (qec::StartsWith(arg, "--snapshot=")) {
      snapshot_path = arg.substr(strlen("--snapshot="));
    } else if (qec::StartsWith(arg, "--threads=")) {
      options.num_threads =
          static_cast<size_t>(std::stoul(arg.substr(strlen("--threads="))));
    } else if (qec::StartsWith(arg, "--queue=")) {
      options.queue_capacity =
          static_cast<size_t>(std::stoul(arg.substr(strlen("--queue="))));
    } else if (qec::StartsWith(arg, "--deadline-ms=")) {
      options.default_deadline_ms =
          std::stoull(arg.substr(strlen("--deadline-ms=")));
    } else if (arg == "--no-cache") {
      options.enable_expansion_cache = false;
      options.enable_set_algebra_cache = false;
    } else if (qec::StartsWith(arg, "--cache-size=")) {
      options.expansion_cache_capacity =
          static_cast<size_t>(std::stoul(arg.substr(strlen("--cache-size="))));
    } else if (qec::StartsWith(arg, "--slowlog-dump=")) {
      options.slowlog_dump_path = arg.substr(strlen("--slowlog-dump="));
    } else if (qec::StartsWith(arg, "--slow-ms=")) {
      options.slow_request_threshold_ms =
          std::stoull(arg.substr(strlen("--slow-ms=")));
    } else if (qec::StartsWith(arg, "--flight-recorder=")) {
      options.flight_recorder_capacity = static_cast<size_t>(
          std::stoul(arg.substr(strlen("--flight-recorder="))));
    } else if (qec::StartsWith(arg, "--metrics-flush-interval=")) {
      metrics_flush_interval_s =
          std::stoull(arg.substr(strlen("--metrics-flush-interval=")));
    } else if (qec::StartsWith(arg, "--metrics-flush-out=")) {
      metrics_flush_out = arg.substr(strlen("--metrics-flush-out="));
    } else if (qec::StartsWith(arg, "--shadow-rate=")) {
      options.shadow_sample_rate =
          std::stod(arg.substr(strlen("--shadow-rate=")));
    } else if (qec::StartsWith(arg, "--shadow-algo=")) {
      if (!ParseAlgoName(arg.substr(strlen("--shadow-algo=")),
                         &options.shadow_algorithm)) {
        return Usage();
      }
    } else if (qec::StartsWith(arg, "--shadow-queue=")) {
      options.shadow_queue_capacity = static_cast<size_t>(
          std::stoul(arg.substr(strlen("--shadow-queue="))));
    } else if (qec::StartsWith(arg, "--")) {
      return Usage();
    } else if (corpus_arg.empty()) {
      corpus_arg = arg;
    } else {
      return Usage();
    }
  }
  if (corpus_arg.empty() == snapshot_path.empty()) return Usage();

  // LoadCorpusAndIndex sniffs the magic, so both the positional argument
  // and --snapshot accept either format; the flag spelling documents intent
  // and rejects non-snapshot files.
  auto data = LoadCorpusAndIndex(snapshot_path.empty() ? corpus_arg
                                                       : snapshot_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  if (!snapshot_path.empty() && !data->from_snapshot) {
    std::fprintf(stderr, "--snapshot=%s: not a snapshot file\n",
                 snapshot_path.c_str());
    return 1;
  }
  qec::server::QecServer server(*data->index, options);
  std::unique_ptr<qec::obs::MetricsFlusher> flusher;
  if (metrics_flush_interval_s != 0) {
    flusher = std::make_unique<qec::obs::MetricsFlusher>(
        metrics_flush_out,
        std::chrono::milliseconds(metrics_flush_interval_s * 1000));
  }
  std::fprintf(stderr,
               "serving %zu documents%s with %zu workers (queue %zu, cache "
               "%s, shadow %s); one request per line: EXPAND [k=N] [algo=A] "
               "[--] <query> | EXPLAIN <query> | PING | STATS | METRICS | "
               "SLOWLOG [n] | ABTEST [n]\n",
               data->corpus->NumDocs(),
               data->from_snapshot ? " from snapshot" : "",
               server.num_workers(), options.queue_capacity,
               options.enable_expansion_cache ? "on" : "off",
               options.shadow_sample_rate > 0.0 ? "on" : "off");

  if (net_mode) {
    qec::server::net::NetServer net(&server, net_options);
    const qec::Status bound = net.Bind();
    if (!bound.ok()) {
      std::fprintf(stderr, "%s\n", bound.ToString().c_str());
      return 1;
    }
    std::unique_ptr<qec::server::admin::AdminServer> admin;
    if (admin_mode) {
      admin = std::make_unique<qec::server::admin::AdminServer>(
          &server, &net, admin_options);
      const qec::Status admin_up = admin->Start();
      if (!admin_up.ok()) {
        std::fprintf(stderr, "%s\n", admin_up.ToString().c_str());
        return 1;
      }
      g_admin_server.store(admin.get(), std::memory_order_release);
      std::fprintf(stderr,
                   "admin plane on http://%s:%u (/metrics /healthz /readyz "
                   "/statusz /slowlog /abtest /pprof/profile)\n",
                   admin_options.host.c_str(),
                   static_cast<unsigned>(admin->port()));
    }
    g_net_server.store(&net, std::memory_order_release);
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    std::fprintf(stderr, "listening on %s:%u (SIGINT/SIGTERM drain)\n",
                 net_options.host.c_str(), static_cast<unsigned>(net.port()));
    const qec::Status run = net.Run();
    g_net_server.store(nullptr, std::memory_order_release);
    // The admin plane outlives the query drain (so /readyz answered 503 the
    // whole time queries were finishing) and only now shuts down.
    g_admin_server.store(nullptr, std::memory_order_release);
    if (admin != nullptr) admin->Shutdown();
    if (flusher != nullptr) flusher->Stop();
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.ToString().c_str());
      return 1;
    }
    return 0;
  }

  // The admin plane also works without --port: stdin-driven serve with
  // --admin-port gets /metrics, /statusz, and the profiler over HTTP while
  // requests flow through the pipe (net_server == nullptr, so /readyz only
  // reflects SetDraining).
  std::unique_ptr<qec::server::admin::AdminServer> admin;
  if (admin_mode) {
    admin = std::make_unique<qec::server::admin::AdminServer>(
        &server, nullptr, admin_options);
    const qec::Status admin_up = admin->Start();
    if (!admin_up.ok()) {
      std::fprintf(stderr, "%s\n", admin_up.ToString().c_str());
      return 1;
    }
    g_admin_server.store(admin.get(), std::memory_order_release);
    std::fprintf(stderr,
                 "admin plane on http://%s:%u (/metrics /healthz /readyz "
                 "/statusz /slowlog /abtest /pprof/profile)\n",
                 admin_options.host.c_str(),
                 static_cast<unsigned>(admin->port()));
  }

  // Stdin transport, same submission path as the network front end:
  // request lines are read ahead and EXPANDs admitted in bursts through
  // SubmitBatch, so a piped workload pipelines through the whole worker
  // pool instead of serializing on one future.get() per line. OrderedStdout
  // keeps responses in request order.
  OrderedStdout writer(std::max<size_t>(options.queue_capacity, 1));
  std::vector<qec::server::QecServer::AsyncRequest> batch;
  const auto flush_batch = [&server, &batch] {
    if (batch.empty()) return;
    server.SubmitBatch(std::move(batch));
    batch.clear();
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (qec::TrimWhitespace(line).empty()) continue;
    // Never let unsubmitted work block slot backpressure.
    if (writer.Full()) flush_batch();
    const uint64_t slot = writer.Open();

    auto request = qec::server::ParseRequestLine(line);
    if (!request.ok()) {
      qec::server::ServeResponse bad;
      bad.status = request.status();
      writer.Complete(slot, qec::server::ResponseToJsonLine(bad));
      continue;
    }

    if (request->verb == qec::server::ServeRequest::Verb::kExpand) {
      qec::server::QecServer::AsyncRequest async;
      async.request = *std::move(request);
      async.on_done = [&writer, slot](qec::server::ServeResponse response) {
        // The worker pre-renders the line inside its timed serialize
        // stage; requests rejected before reaching a worker render here.
        writer.Complete(slot,
                        !response.json_line.empty()
                            ? std::move(response.json_line)
                            : qec::server::ResponseToJsonLine(response));
      };
      batch.push_back(std::move(async));
      // Submit at end of the buffered burst (nothing left to read without
      // blocking) or at a size cap, mirroring the per-readable-event
      // batches of the network front end.
      if (batch.size() >= 64 || std::cin.rdbuf()->in_avail() <= 0) {
        flush_batch();
      }
      continue;
    }

    // Control verbs answer immediately (still in request order via their
    // slot). Submit buffered EXPANDs first so STATS/METRICS observe them.
    flush_batch();
    std::string out;
    switch (request->verb) {
      case qec::server::ServeRequest::Verb::kPing:
        out = "{\"status\":\"ok\",\"pong\":true}";
        break;
      case qec::server::ServeRequest::Verb::kStats:
        out = server.StatsJsonLine();
        break;
      case qec::server::ServeRequest::Verb::kMetrics:
        // Multi-line Prometheus text; the trailing "# EOF" line marks the
        // end for pipeline consumers.
        out = qec::obs::PrometheusSnapshot();
        if (!out.empty() && out.back() == '\n') out.pop_back();
        break;
      case qec::server::ServeRequest::Verb::kSlowlog:
        out = server.SlowlogJsonLine(request->slowlog_count);
        break;
      case qec::server::ServeRequest::Verb::kAbtest:
        out = server.AbtestJsonLine(request->abtest_count);
        break;
      case qec::server::ServeRequest::Verb::kExplain:
        // Synchronous and cache-bypassing by design: EXPLAIN is a
        // diagnostic verb, not a serving path.
        out = server.ExplainJsonLine(*request);
        break;
      case qec::server::ServeRequest::Verb::kExpand:
        break;  // unreachable: handled above
    }
    writer.Complete(slot, std::move(out));
  }
  flush_batch();
  writer.Drain();
  g_admin_server.store(nullptr, std::memory_order_release);
  if (admin != nullptr) admin->Shutdown();
  if (flusher != nullptr) flusher->Stop();
  return 0;
}

// Pretty-prints a flight-recorder JSONL dump (serve --slowlog-dump=FILE):
// one table row per record, newest last. `-n N` keeps only the last N.
int CmdSlowlog(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  std::string path;
  size_t keep = 0;  // 0 = all
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-n") {
      if (i + 1 >= args.size()) return Usage();
      keep = static_cast<size_t>(std::stoul(args[++i]));
    } else if (path.empty()) {
      path = args[i];
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  auto content = ReadFile(path);
  if (!content.ok()) {
    std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
    return 1;
  }
  std::vector<qec::obs::RequestRecord> records;
  size_t line_no = 0;
  size_t begin = 0;
  while (begin <= content->size()) {
    size_t end = content->find('\n', begin);
    if (end == std::string::npos) end = content->size();
    const std::string_view record_line(content->data() + begin, end - begin);
    begin = end + 1;
    ++line_no;
    if (qec::TrimWhitespace(record_line).empty()) continue;
    auto record = qec::obs::RequestRecordFromJson(record_line);
    if (!record.ok()) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), line_no,
                   record.status().ToString().c_str());
      return 1;
    }
    records.push_back(*std::move(record));
  }
  if (keep != 0 && records.size() > keep) {
    records.erase(records.begin(),
                  records.end() - static_cast<ptrdiff_t>(keep));
  }

  qec::eval::TablePrinter table({"trace_id", "status", "algo", "cached",
                                 "queue_ms", "lookup_ms", "expand_ms",
                                 "serialize_ms", "total_ms", "query"});
  auto ms = [](uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
    return std::string(buf);
  };
  for (const auto& r : records) {
    table.AddRow({qec::server::TraceIdToHex(r.trace_id), r.status, r.algo,
                  r.from_cache ? "yes" : "no", ms(r.queue_wait_ns),
                  ms(r.cache_lookup_ns), ms(r.expansion_ns),
                  ms(r.serialize_ns), ms(r.total_ns), r.query});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("%zu record%s\n", records.size(),
              records.size() == 1 ? "" : "s");
  return 0;
}

std::string ReadAllStdin() {
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) out.append(buf, n);
  return out;
}

// Lints a Prometheus/OpenMetrics exposition (a /metrics scrape, a METRICS
// verb response, or a --metrics-flush-out file): parse, histogram
// invariants (cumulative buckets, +Inf, _count, exemplar-within-bucket),
// then the qec naming conventions. Exit 0 with a summary line on success,
// 1 with the first violation on stderr otherwise.
int CmdMetricsLint(const std::vector<std::string>& args) {
  if (args.size() > 1) return Usage();
  std::string source = "<stdin>";
  std::string text;
  if (args.empty() || args[0] == "-") {
    text = ReadAllStdin();
  } else {
    source = args[0];
    auto content = ReadFile(source);
    if (!content.ok()) {
      std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
      return 1;
    }
    text = *std::move(content);
  }

  auto families = qec::obs::ParsePrometheusText(text);
  if (!families.ok()) {
    std::fprintf(stderr, "%s: %s\n", source.c_str(),
                 families.status().ToString().c_str());
    return 1;
  }
  const qec::Status histograms =
      qec::obs::ValidatePrometheusHistograms(*families);
  if (!histograms.ok()) {
    std::fprintf(stderr, "%s: %s\n", source.c_str(),
                 histograms.ToString().c_str());
    return 1;
  }
  const qec::Status naming = qec::obs::LintPrometheusNaming(*families);
  if (!naming.ok()) {
    std::fprintf(stderr, "%s: %s\n", source.c_str(),
                 naming.ToString().c_str());
    return 1;
  }

  size_t samples = 0;
  size_t exemplars = 0;
  for (const auto& family : *families) {
    samples += family.samples.size();
    for (const auto& sample : family.samples) {
      if (sample.has_exemplar) ++exemplars;
    }
  }
  std::printf("%s: OK (%zu families, %zu samples, %zu exemplars)\n",
              source.c_str(), families->size(), samples, exemplars);
  return 0;
}

// Pretty-prints folded-stack profiler output (GET /pprof/profile, or
// bench --profile-out): per-frame inclusive/self sample counts, heaviest
// self-time first. `--self=SECONDS` instead profiles this process live —
// the standalone smoke test for the SIGPROF profiler.
int CmdProfile(const std::vector<std::string>& args) {
  std::string path;
  size_t limit = 30;
  double self_seconds = 0.0;
  int hz = 99;
  std::string out_path;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "-n") {
      if (i + 1 >= args.size()) return Usage();
      limit = static_cast<size_t>(std::stoul(args[++i]));
    } else if (qec::StartsWith(arg, "--self=")) {
      self_seconds = std::stod(arg.substr(strlen("--self=")));
    } else if (qec::StartsWith(arg, "--hz=")) {
      hz = std::stoi(arg.substr(strlen("--hz=")));
    } else if (qec::StartsWith(arg, "--out=")) {
      out_path = arg.substr(strlen("--out="));
    } else if (qec::StartsWith(arg, "--")) {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }

  std::string folded;
  if (self_seconds > 0.0) {
    auto profile = qec::obs::CollectCpuProfile(hz, self_seconds);
    if (!profile.ok()) {
      std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
      return 1;
    }
    folded = *std::move(profile);
    if (!out_path.empty()) {
      std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
          std::fopen(out_path.c_str(), "wb"), &std::fclose);
      if (f == nullptr ||
          std::fwrite(folded.data(), 1, folded.size(), f.get()) !=
              folded.size()) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
      }
    }
  } else {
    if (path.empty()) return Usage();
    if (path == "-") {
      folded = ReadAllStdin();
    } else {
      auto content = ReadFile(path);
      if (!content.ok()) {
        std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
        return 1;
      }
      folded = *std::move(content);
    }
  }
  std::printf("%s", qec::obs::SummarizeFoldedStacks(folded, limit).c_str());
  return 0;
}

// The quickstart corpus: the ranking-bias "apple" situation from the
// paper's introduction (same documents as examples/quickstart.cc).
qec::doc::Corpus QuickstartCorpus() {
  qec::doc::Corpus corpus;
  corpus.AddTextDocument(
      "apple inc store",
      "apple store opens downtown with iphone laptop displays and genius bar "
      "apple apple retail launch");
  corpus.AddTextDocument(
      "apple quarterly results",
      "apple reports record revenue as iphone and laptop sales grow apple "
      "apple earnings investors");
  corpus.AddTextDocument(
      "apple job cuts",
      "apple announces job changes in retail division apple store staffing "
      "apple location plans");
  corpus.AddTextDocument(
      "apple keynote",
      "apple keynote reveals new iphone laptop and software apple apple "
      "developers cheer");
  corpus.AddTextDocument(
      "apple store location",
      "new apple store location announced apple mall opening apple retail");
  corpus.AddTextDocument(
      "apple orchard guide",
      "apple orchard harvest fruit trees ripen sweet apple cider pressing "
      "fruit growers celebrate autumn apple");
  return corpus;
}

/// Runs every expansion algorithm once over the quickstart corpus — the
/// smallest end-to-end exercise of index, clustering, ISKR, and PEBC, so a
/// --metrics-out snapshot from it covers every subsystem's counters.
/// `--snapshot=FILE` swaps in a prebuilt snapshot (with `--query=Q` to pick
/// a query that exists in that corpus).
int CmdQuickstart(const std::vector<std::string>& args) {
  std::string snapshot_path;
  std::string query = "apple";
  for (const std::string& arg : args) {
    if (qec::StartsWith(arg, "--snapshot=")) {
      snapshot_path = arg.substr(strlen("--snapshot="));
    } else if (qec::StartsWith(arg, "--query=")) {
      query = arg.substr(strlen("--query="));
    } else {
      return Usage();
    }
  }
  LoadedData data;
  if (snapshot_path.empty()) {
    data.corpus = std::make_unique<qec::doc::Corpus>(QuickstartCorpus());
    data.index = std::make_unique<qec::index::InvertedIndex>(*data.corpus);
  } else {
    auto loaded = LoadCorpusAndIndex(snapshot_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    data = std::move(*loaded);
  }
  qec::core::QueryExpanderOptions options;
  options.max_clusters = 3;
  options.candidates.fraction = 1.0;  // tiny corpus: consider all keywords
  for (auto algorithm : {qec::core::ExpansionAlgorithm::kIskr,
                         qec::core::ExpansionAlgorithm::kPebc,
                         qec::core::ExpansionAlgorithm::kFMeasure}) {
    options.algorithm = algorithm;
    qec::core::QueryExpander expander(*data.index, options);
    auto outcome = expander.ExpandText(query);
    if (!outcome.ok()) {
      std::fprintf(stderr, "expansion failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%s expanded queries for \"%s\" (set score %.3f):\n",
                std::string(qec::core::AlgorithmName(algorithm)).c_str(),
                query.c_str(), outcome->set_score);
    for (const auto& eq : outcome->queries) {
      std::printf("  cluster %zu (%zu results): \"", eq.cluster_index,
                  eq.cluster_size);
      for (size_t i = 0; i < eq.keywords.size(); ++i) {
        std::printf("%s%s", i > 0 ? ", " : "", eq.keywords[i].c_str());
      }
      std::printf("\"  P=%.2f R=%.2f F=%.2f\n", eq.quality.precision,
                  eq.quality.recall, eq.quality.f_measure);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  qec::eval::ObsFlags obs_flags = qec::eval::ConsumeObsFlags(args);

  int rc;
  if (args.empty()) {
    // Bare flags (e.g. `qec_cli --metrics-out=m.json`) run the quickstart
    // demo so there is always something to measure; no arguments at all is
    // still a usage error.
    if (obs_flags.metrics_out.empty() && obs_flags.trace_out.empty() &&
        !obs_flags.trace) {
      return Usage();
    }
    rc = CmdQuickstart({});
  } else {
    const std::string cmd = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (cmd == "index") {
      rc = CmdIndex(rest);
    } else if (cmd == "index-build") {
      rc = CmdIndexBuild(rest);
    } else if (cmd == "index-inspect") {
      rc = CmdIndexInspect(rest);
    } else if (cmd == "gen") {
      rc = CmdGen(rest);
    } else if (cmd == "stats") {
      rc = CmdStats(rest);
    } else if (cmd == "search") {
      rc = CmdSearch(rest);
    } else if (cmd == "expand") {
      rc = CmdExpand(rest);
    } else if (cmd == "explain") {
      rc = CmdExplain(rest);
    } else if (cmd == "abtest") {
      rc = CmdAbtest(rest);
    } else if (cmd == "serve") {
      rc = CmdServe(rest);
    } else if (cmd == "slowlog") {
      rc = CmdSlowlog(rest);
    } else if (cmd == "metrics-lint") {
      rc = CmdMetricsLint(rest);
    } else if (cmd == "profile") {
      rc = CmdProfile(rest);
    } else if (cmd == "quickstart") {
      rc = CmdQuickstart(rest);
    } else {
      return Usage();
    }
  }
  if (!qec::eval::EmitObsOutputs(obs_flags)) rc = rc == 0 ? 1 : rc;
  return rc;
}
