// Quickstart: build a tiny corpus around the paper's running "apple"
// example, index it, and generate cluster-classifying expanded queries with
// ISKR and PEBC.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/query_expander.h"
#include "doc/corpus.h"
#include "index/inverted_index.h"

int main() {
  // 1. Build a corpus. Most results are about Apple Inc.; one is about the
  // fruit — the ranking-bias situation from the paper's introduction.
  qec::doc::Corpus corpus;
  corpus.AddTextDocument(
      "apple inc store",
      "apple store opens downtown with iphone laptop displays and genius bar "
      "apple apple retail launch");
  corpus.AddTextDocument(
      "apple quarterly results",
      "apple reports record revenue as iphone and laptop sales grow apple "
      "apple earnings investors");
  corpus.AddTextDocument(
      "apple job cuts",
      "apple announces job changes in retail division apple store staffing "
      "apple location plans");
  corpus.AddTextDocument(
      "apple keynote",
      "apple keynote reveals new iphone laptop and software apple apple "
      "developers cheer");
  corpus.AddTextDocument(
      "apple store location",
      "new apple store location announced apple mall opening apple retail");
  corpus.AddTextDocument(
      "apple orchard guide",
      "apple orchard harvest fruit trees ripen sweet apple cider pressing "
      "fruit growers celebrate autumn apple");

  // 2. Index it.
  qec::index::InvertedIndex index(corpus);

  // 3. Expand "apple": cluster its results, then generate one query per
  // cluster that maximally retrieves exactly that cluster.
  qec::core::QueryExpanderOptions options;
  options.max_clusters = 3;
  options.candidates.fraction = 1.0;  // tiny corpus: consider all keywords

  for (auto algorithm : {qec::core::ExpansionAlgorithm::kIskr,
                         qec::core::ExpansionAlgorithm::kPebc}) {
    options.algorithm = algorithm;
    qec::core::QueryExpander expander(index, options);
    auto outcome = expander.ExpandText("apple");
    if (!outcome.ok()) {
      std::fprintf(stderr, "expansion failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%s expanded queries for \"apple\" (set score %.3f):\n",
                std::string(qec::core::AlgorithmName(algorithm)).c_str(),
                outcome->set_score);
    for (const auto& eq : outcome->queries) {
      std::printf("  cluster %zu (%zu results): \"", eq.cluster_index,
                  eq.cluster_size);
      for (size_t i = 0; i < eq.keywords.size(); ++i) {
        std::printf("%s%s", i > 0 ? ", " : "", eq.keywords[i].c_str());
      }
      std::printf("\"  P=%.2f R=%.2f F=%.2f\n", eq.quality.precision,
                  eq.quality.recall, eq.quality.f_measure);
    }
    std::printf("\n");
  }
  return 0;
}
