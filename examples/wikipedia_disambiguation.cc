// Ambiguous-query scenario on document-centric XML: the corpus is
// generated as XML articles, parsed through the qec::xml substrate, and an
// ambiguous query ("java") is expanded into one query per interpretation —
// the paper's introduction use-case where top-ranked results are dominated
// by one sense yet the expansion still surfaces the rare ones.
//
//   ./build/examples/wikipedia_disambiguation [query]

#include <cstdio>
#include <string>

#include "core/query_expander.h"
#include "datagen/wikipedia.h"
#include "index/inverted_index.h"

int main(int argc, char** argv) {
  const std::string query = argc > 1 ? argv[1] : "java";

  // 1. Generate XML articles and ingest them through the XML parser.
  qec::datagen::WikipediaGenerator generator;
  qec::doc::Corpus corpus = generator.Generate();
  qec::index::InvertedIndex index(corpus);
  std::printf("corpus: %zu XML articles indexed\n\n", corpus.NumDocs());

  // 2. Show the ranking bias: which senses dominate the top results?
  auto top = index.SearchText(query, 30);
  if (top.empty()) {
    std::printf("\"%s\" retrieved nothing — try java, eclipse, rockets, "
                "mouse, cell\n",
                query.c_str());
    return 1;
  }
  std::printf("top results for \"%s\" (note the dominant sense):\n",
              query.c_str());
  for (size_t i = 0; i < top.size() && i < 8; ++i) {
    std::printf("  %5.2f  %s\n", top[i].score,
                corpus.Get(top[i].doc).title().c_str());
  }

  // 3. Expand with both algorithms; each expanded query is one
  // interpretation of the ambiguous query.
  for (auto algorithm : {qec::core::ExpansionAlgorithm::kIskr,
                         qec::core::ExpansionAlgorithm::kPebc}) {
    qec::core::QueryExpanderOptions options;
    options.algorithm = algorithm;
    qec::core::QueryExpander expander(index, options);
    auto outcome = expander.ExpandText(query);
    if (!outcome.ok()) {
      std::fprintf(stderr, "expansion failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s interpretations (Eq. 1 score %.3f):\n",
                std::string(qec::core::AlgorithmName(algorithm)).c_str(),
                outcome->set_score);
    for (const auto& eq : outcome->queries) {
      std::printf("  \"");
      for (size_t i = 0; i < eq.keywords.size(); ++i) {
        std::printf("%s%s", i > 0 ? ", " : "", eq.keywords[i].c_str());
      }
      std::printf("\"  covers %zu of the results (F=%.2f)\n", eq.cluster_size,
                  eq.quality.f_measure);
    }
  }

  std::printf(
      "\neach suggestion retrieves one interpretation; issuing it as a new "
      "query navigates\ninto that sense — the exploratory workflow of "
      "Broder's taxonomy the paper targets.\n");
  return 0;
}
