# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/doc_index_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/core_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/iskr_test[1]_include.cmake")
include("/root/repo/build/tests/pebc_test[1]_include.cmake")
include("/root/repo/build/tests/expander_comparison_test[1]_include.cmake")
include("/root/repo/build/tests/query_expander_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/or_expander_test[1]_include.cmake")
include("/root/repo/build/tests/hac_corpus_io_test[1]_include.cmake")
include("/root/repo/build/tests/interleaved_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/snippet_vsm_faceted_test[1]_include.cmake")
include("/root/repo/build/tests/index_io_test[1]_include.cmake")
include("/root/repo/build/tests/engine_options_test[1]_include.cmake")
include("/root/repo/build/tests/minimizer_publications_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_bootstrap_test[1]_include.cmake")
