file(REMOVE_RECURSE
  "CMakeFiles/parallel_bootstrap_test.dir/parallel_bootstrap_test.cc.o"
  "CMakeFiles/parallel_bootstrap_test.dir/parallel_bootstrap_test.cc.o.d"
  "parallel_bootstrap_test"
  "parallel_bootstrap_test.pdb"
  "parallel_bootstrap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_bootstrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
