# Empty dependencies file for parallel_bootstrap_test.
# This may be replaced when dependencies are built.
