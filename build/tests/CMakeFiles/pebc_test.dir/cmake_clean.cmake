file(REMOVE_RECURSE
  "CMakeFiles/pebc_test.dir/pebc_test.cc.o"
  "CMakeFiles/pebc_test.dir/pebc_test.cc.o.d"
  "pebc_test"
  "pebc_test.pdb"
  "pebc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pebc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
