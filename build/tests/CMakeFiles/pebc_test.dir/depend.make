# Empty dependencies file for pebc_test.
# This may be replaced when dependencies are built.
