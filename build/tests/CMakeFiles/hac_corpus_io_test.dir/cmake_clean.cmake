file(REMOVE_RECURSE
  "CMakeFiles/hac_corpus_io_test.dir/hac_corpus_io_test.cc.o"
  "CMakeFiles/hac_corpus_io_test.dir/hac_corpus_io_test.cc.o.d"
  "hac_corpus_io_test"
  "hac_corpus_io_test.pdb"
  "hac_corpus_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hac_corpus_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
