# Empty dependencies file for hac_corpus_io_test.
# This may be replaced when dependencies are built.
