# Empty dependencies file for snippet_vsm_faceted_test.
# This may be replaced when dependencies are built.
