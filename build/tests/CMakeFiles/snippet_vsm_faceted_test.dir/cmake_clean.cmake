file(REMOVE_RECURSE
  "CMakeFiles/snippet_vsm_faceted_test.dir/snippet_vsm_faceted_test.cc.o"
  "CMakeFiles/snippet_vsm_faceted_test.dir/snippet_vsm_faceted_test.cc.o.d"
  "snippet_vsm_faceted_test"
  "snippet_vsm_faceted_test.pdb"
  "snippet_vsm_faceted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snippet_vsm_faceted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
