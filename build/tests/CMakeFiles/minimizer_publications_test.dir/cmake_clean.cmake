file(REMOVE_RECURSE
  "CMakeFiles/minimizer_publications_test.dir/minimizer_publications_test.cc.o"
  "CMakeFiles/minimizer_publications_test.dir/minimizer_publications_test.cc.o.d"
  "minimizer_publications_test"
  "minimizer_publications_test.pdb"
  "minimizer_publications_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimizer_publications_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
