# Empty compiler generated dependencies file for minimizer_publications_test.
# This may be replaced when dependencies are built.
