file(REMOVE_RECURSE
  "CMakeFiles/expander_comparison_test.dir/expander_comparison_test.cc.o"
  "CMakeFiles/expander_comparison_test.dir/expander_comparison_test.cc.o.d"
  "expander_comparison_test"
  "expander_comparison_test.pdb"
  "expander_comparison_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expander_comparison_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
