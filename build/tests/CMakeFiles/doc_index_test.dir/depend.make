# Empty dependencies file for doc_index_test.
# This may be replaced when dependencies are built.
