file(REMOVE_RECURSE
  "CMakeFiles/doc_index_test.dir/doc_index_test.cc.o"
  "CMakeFiles/doc_index_test.dir/doc_index_test.cc.o.d"
  "doc_index_test"
  "doc_index_test.pdb"
  "doc_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
