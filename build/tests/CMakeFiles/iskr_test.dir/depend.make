# Empty dependencies file for iskr_test.
# This may be replaced when dependencies are built.
