file(REMOVE_RECURSE
  "CMakeFiles/iskr_test.dir/iskr_test.cc.o"
  "CMakeFiles/iskr_test.dir/iskr_test.cc.o.d"
  "iskr_test"
  "iskr_test.pdb"
  "iskr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iskr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
