file(REMOVE_RECURSE
  "CMakeFiles/query_expander_test.dir/query_expander_test.cc.o"
  "CMakeFiles/query_expander_test.dir/query_expander_test.cc.o.d"
  "query_expander_test"
  "query_expander_test.pdb"
  "query_expander_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_expander_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
