# Empty dependencies file for query_expander_test.
# This may be replaced when dependencies are built.
