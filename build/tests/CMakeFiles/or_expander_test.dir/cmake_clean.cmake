file(REMOVE_RECURSE
  "CMakeFiles/or_expander_test.dir/or_expander_test.cc.o"
  "CMakeFiles/or_expander_test.dir/or_expander_test.cc.o.d"
  "or_expander_test"
  "or_expander_test.pdb"
  "or_expander_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/or_expander_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
