# Empty dependencies file for or_expander_test.
# This may be replaced when dependencies are built.
