# Empty compiler generated dependencies file for bench_fig1_fig2_individual_user_study.
# This may be replaced when dependencies are built.
