file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_fig2_individual_user_study.dir/bench_fig1_fig2_individual_user_study.cc.o"
  "CMakeFiles/bench_fig1_fig2_individual_user_study.dir/bench_fig1_fig2_individual_user_study.cc.o.d"
  "bench_fig1_fig2_individual_user_study"
  "bench_fig1_fig2_individual_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fig2_individual_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
