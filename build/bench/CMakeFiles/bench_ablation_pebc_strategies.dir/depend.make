# Empty dependencies file for bench_ablation_pebc_strategies.
# This may be replaced when dependencies are built.
