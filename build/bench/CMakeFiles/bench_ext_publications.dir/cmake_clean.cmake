file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_publications.dir/bench_ext_publications.cc.o"
  "CMakeFiles/bench_ext_publications.dir/bench_ext_publications.cc.o.d"
  "bench_ext_publications"
  "bench_ext_publications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_publications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
