# Empty dependencies file for bench_ext_publications.
# This may be replaced when dependencies are built.
