# Empty dependencies file for bench_fig3_fig4_collective_user_study.
# This may be replaced when dependencies are built.
