# Empty compiler generated dependencies file for bench_fig8_fig9_expanded_queries.
# This may be replaced when dependencies are built.
