# Empty dependencies file for bench_ablation_iskr.
# This may be replaced when dependencies are built.
