file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_iskr.dir/bench_ablation_iskr.cc.o"
  "CMakeFiles/bench_ablation_iskr.dir/bench_ablation_iskr.cc.o.d"
  "bench_ablation_iskr"
  "bench_ablation_iskr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_iskr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
