# Empty dependencies file for shopping_facets.
# This may be replaced when dependencies are built.
