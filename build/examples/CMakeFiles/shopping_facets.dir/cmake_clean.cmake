file(REMOVE_RECURSE
  "CMakeFiles/shopping_facets.dir/shopping_facets.cc.o"
  "CMakeFiles/shopping_facets.dir/shopping_facets.cc.o.d"
  "shopping_facets"
  "shopping_facets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shopping_facets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
