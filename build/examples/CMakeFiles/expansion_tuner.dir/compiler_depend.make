# Empty compiler generated dependencies file for expansion_tuner.
# This may be replaced when dependencies are built.
