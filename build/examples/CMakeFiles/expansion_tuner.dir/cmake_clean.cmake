file(REMOVE_RECURSE
  "CMakeFiles/expansion_tuner.dir/expansion_tuner.cc.o"
  "CMakeFiles/expansion_tuner.dir/expansion_tuner.cc.o.d"
  "expansion_tuner"
  "expansion_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expansion_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
