# Empty dependencies file for wikipedia_disambiguation.
# This may be replaced when dependencies are built.
