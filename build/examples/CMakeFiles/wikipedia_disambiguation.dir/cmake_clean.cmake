file(REMOVE_RECURSE
  "CMakeFiles/wikipedia_disambiguation.dir/wikipedia_disambiguation.cc.o"
  "CMakeFiles/wikipedia_disambiguation.dir/wikipedia_disambiguation.cc.o.d"
  "wikipedia_disambiguation"
  "wikipedia_disambiguation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikipedia_disambiguation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
