# Empty compiler generated dependencies file for qec_cli.
# This may be replaced when dependencies are built.
