file(REMOVE_RECURSE
  "CMakeFiles/qec_cli.dir/qec_cli.cc.o"
  "CMakeFiles/qec_cli.dir/qec_cli.cc.o.d"
  "qec_cli"
  "qec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
