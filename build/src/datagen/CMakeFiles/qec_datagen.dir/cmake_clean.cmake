file(REMOVE_RECURSE
  "CMakeFiles/qec_datagen.dir/publications.cc.o"
  "CMakeFiles/qec_datagen.dir/publications.cc.o.d"
  "CMakeFiles/qec_datagen.dir/shopping.cc.o"
  "CMakeFiles/qec_datagen.dir/shopping.cc.o.d"
  "CMakeFiles/qec_datagen.dir/wikipedia.cc.o"
  "CMakeFiles/qec_datagen.dir/wikipedia.cc.o.d"
  "CMakeFiles/qec_datagen.dir/workload.cc.o"
  "CMakeFiles/qec_datagen.dir/workload.cc.o.d"
  "libqec_datagen.a"
  "libqec_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
