
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/publications.cc" "src/datagen/CMakeFiles/qec_datagen.dir/publications.cc.o" "gcc" "src/datagen/CMakeFiles/qec_datagen.dir/publications.cc.o.d"
  "/root/repo/src/datagen/shopping.cc" "src/datagen/CMakeFiles/qec_datagen.dir/shopping.cc.o" "gcc" "src/datagen/CMakeFiles/qec_datagen.dir/shopping.cc.o.d"
  "/root/repo/src/datagen/wikipedia.cc" "src/datagen/CMakeFiles/qec_datagen.dir/wikipedia.cc.o" "gcc" "src/datagen/CMakeFiles/qec_datagen.dir/wikipedia.cc.o.d"
  "/root/repo/src/datagen/workload.cc" "src/datagen/CMakeFiles/qec_datagen.dir/workload.cc.o" "gcc" "src/datagen/CMakeFiles/qec_datagen.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/qec_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/qec_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/qec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/qec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/qec_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/qec_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/qec_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
