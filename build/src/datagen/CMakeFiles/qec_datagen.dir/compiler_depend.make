# Empty compiler generated dependencies file for qec_datagen.
# This may be replaced when dependencies are built.
