file(REMOVE_RECURSE
  "libqec_datagen.a"
)
