file(REMOVE_RECURSE
  "libqec_snippet.a"
)
