# Empty compiler generated dependencies file for qec_snippet.
# This may be replaced when dependencies are built.
