file(REMOVE_RECURSE
  "CMakeFiles/qec_snippet.dir/snippet.cc.o"
  "CMakeFiles/qec_snippet.dir/snippet.cc.o.d"
  "libqec_snippet.a"
  "libqec_snippet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_snippet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
