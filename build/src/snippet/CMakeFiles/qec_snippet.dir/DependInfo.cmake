
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snippet/snippet.cc" "src/snippet/CMakeFiles/qec_snippet.dir/snippet.cc.o" "gcc" "src/snippet/CMakeFiles/qec_snippet.dir/snippet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/qec_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/qec_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
