file(REMOVE_RECURSE
  "libqec_cluster.a"
)
