# Empty dependencies file for qec_cluster.
# This may be replaced when dependencies are built.
