
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/hac.cc" "src/cluster/CMakeFiles/qec_cluster.dir/hac.cc.o" "gcc" "src/cluster/CMakeFiles/qec_cluster.dir/hac.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/qec_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/qec_cluster.dir/kmeans.cc.o.d"
  "/root/repo/src/cluster/sparse_vector.cc" "src/cluster/CMakeFiles/qec_cluster.dir/sparse_vector.cc.o" "gcc" "src/cluster/CMakeFiles/qec_cluster.dir/sparse_vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/qec_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/qec_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
