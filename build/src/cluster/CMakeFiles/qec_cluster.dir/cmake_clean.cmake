file(REMOVE_RECURSE
  "CMakeFiles/qec_cluster.dir/hac.cc.o"
  "CMakeFiles/qec_cluster.dir/hac.cc.o.d"
  "CMakeFiles/qec_cluster.dir/kmeans.cc.o"
  "CMakeFiles/qec_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/qec_cluster.dir/sparse_vector.cc.o"
  "CMakeFiles/qec_cluster.dir/sparse_vector.cc.o.d"
  "libqec_cluster.a"
  "libqec_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
