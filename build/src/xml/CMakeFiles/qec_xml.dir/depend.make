# Empty dependencies file for qec_xml.
# This may be replaced when dependencies are built.
