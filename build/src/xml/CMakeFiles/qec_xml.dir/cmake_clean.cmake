file(REMOVE_RECURSE
  "CMakeFiles/qec_xml.dir/xml.cc.o"
  "CMakeFiles/qec_xml.dir/xml.cc.o.d"
  "libqec_xml.a"
  "libqec_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
