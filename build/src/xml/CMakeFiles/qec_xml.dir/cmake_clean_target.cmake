file(REMOVE_RECURSE
  "libqec_xml.a"
)
