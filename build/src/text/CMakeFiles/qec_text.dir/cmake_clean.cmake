file(REMOVE_RECURSE
  "CMakeFiles/qec_text.dir/analyzer.cc.o"
  "CMakeFiles/qec_text.dir/analyzer.cc.o.d"
  "CMakeFiles/qec_text.dir/porter_stemmer.cc.o"
  "CMakeFiles/qec_text.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/qec_text.dir/stopwords.cc.o"
  "CMakeFiles/qec_text.dir/stopwords.cc.o.d"
  "CMakeFiles/qec_text.dir/tokenizer.cc.o"
  "CMakeFiles/qec_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/qec_text.dir/vocabulary.cc.o"
  "CMakeFiles/qec_text.dir/vocabulary.cc.o.d"
  "libqec_text.a"
  "libqec_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
