file(REMOVE_RECURSE
  "libqec_text.a"
)
