# Empty compiler generated dependencies file for qec_text.
# This may be replaced when dependencies are built.
