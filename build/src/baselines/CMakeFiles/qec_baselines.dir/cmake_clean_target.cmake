file(REMOVE_RECURSE
  "libqec_baselines.a"
)
