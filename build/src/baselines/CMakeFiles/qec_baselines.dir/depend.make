# Empty dependencies file for qec_baselines.
# This may be replaced when dependencies are built.
