file(REMOVE_RECURSE
  "CMakeFiles/qec_baselines.dir/cluster_summarization.cc.o"
  "CMakeFiles/qec_baselines.dir/cluster_summarization.cc.o.d"
  "CMakeFiles/qec_baselines.dir/data_clouds.cc.o"
  "CMakeFiles/qec_baselines.dir/data_clouds.cc.o.d"
  "CMakeFiles/qec_baselines.dir/faceted.cc.o"
  "CMakeFiles/qec_baselines.dir/faceted.cc.o.d"
  "CMakeFiles/qec_baselines.dir/query_log.cc.o"
  "CMakeFiles/qec_baselines.dir/query_log.cc.o.d"
  "libqec_baselines.a"
  "libqec_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
