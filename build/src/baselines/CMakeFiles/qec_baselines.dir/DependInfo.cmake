
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cluster_summarization.cc" "src/baselines/CMakeFiles/qec_baselines.dir/cluster_summarization.cc.o" "gcc" "src/baselines/CMakeFiles/qec_baselines.dir/cluster_summarization.cc.o.d"
  "/root/repo/src/baselines/data_clouds.cc" "src/baselines/CMakeFiles/qec_baselines.dir/data_clouds.cc.o" "gcc" "src/baselines/CMakeFiles/qec_baselines.dir/data_clouds.cc.o.d"
  "/root/repo/src/baselines/faceted.cc" "src/baselines/CMakeFiles/qec_baselines.dir/faceted.cc.o" "gcc" "src/baselines/CMakeFiles/qec_baselines.dir/faceted.cc.o.d"
  "/root/repo/src/baselines/query_log.cc" "src/baselines/CMakeFiles/qec_baselines.dir/query_log.cc.o" "gcc" "src/baselines/CMakeFiles/qec_baselines.dir/query_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/qec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/qec_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/qec_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/qec_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/qec_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
