file(REMOVE_RECURSE
  "libqec_core.a"
)
