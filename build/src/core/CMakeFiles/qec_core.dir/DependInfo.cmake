
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidates.cc" "src/core/CMakeFiles/qec_core.dir/candidates.cc.o" "gcc" "src/core/CMakeFiles/qec_core.dir/candidates.cc.o.d"
  "/root/repo/src/core/exact.cc" "src/core/CMakeFiles/qec_core.dir/exact.cc.o" "gcc" "src/core/CMakeFiles/qec_core.dir/exact.cc.o.d"
  "/root/repo/src/core/expansion_context.cc" "src/core/CMakeFiles/qec_core.dir/expansion_context.cc.o" "gcc" "src/core/CMakeFiles/qec_core.dir/expansion_context.cc.o.d"
  "/root/repo/src/core/fmeasure_expander.cc" "src/core/CMakeFiles/qec_core.dir/fmeasure_expander.cc.o" "gcc" "src/core/CMakeFiles/qec_core.dir/fmeasure_expander.cc.o.d"
  "/root/repo/src/core/interleaved.cc" "src/core/CMakeFiles/qec_core.dir/interleaved.cc.o" "gcc" "src/core/CMakeFiles/qec_core.dir/interleaved.cc.o.d"
  "/root/repo/src/core/iskr.cc" "src/core/CMakeFiles/qec_core.dir/iskr.cc.o" "gcc" "src/core/CMakeFiles/qec_core.dir/iskr.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/qec_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/qec_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/or_expander.cc" "src/core/CMakeFiles/qec_core.dir/or_expander.cc.o" "gcc" "src/core/CMakeFiles/qec_core.dir/or_expander.cc.o.d"
  "/root/repo/src/core/pebc.cc" "src/core/CMakeFiles/qec_core.dir/pebc.cc.o" "gcc" "src/core/CMakeFiles/qec_core.dir/pebc.cc.o.d"
  "/root/repo/src/core/query_expander.cc" "src/core/CMakeFiles/qec_core.dir/query_expander.cc.o" "gcc" "src/core/CMakeFiles/qec_core.dir/query_expander.cc.o.d"
  "/root/repo/src/core/query_minimizer.cc" "src/core/CMakeFiles/qec_core.dir/query_minimizer.cc.o" "gcc" "src/core/CMakeFiles/qec_core.dir/query_minimizer.cc.o.d"
  "/root/repo/src/core/result_universe.cc" "src/core/CMakeFiles/qec_core.dir/result_universe.cc.o" "gcc" "src/core/CMakeFiles/qec_core.dir/result_universe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/qec_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/qec_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/qec_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/qec_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
