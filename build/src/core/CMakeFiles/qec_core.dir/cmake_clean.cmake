file(REMOVE_RECURSE
  "CMakeFiles/qec_core.dir/candidates.cc.o"
  "CMakeFiles/qec_core.dir/candidates.cc.o.d"
  "CMakeFiles/qec_core.dir/exact.cc.o"
  "CMakeFiles/qec_core.dir/exact.cc.o.d"
  "CMakeFiles/qec_core.dir/expansion_context.cc.o"
  "CMakeFiles/qec_core.dir/expansion_context.cc.o.d"
  "CMakeFiles/qec_core.dir/fmeasure_expander.cc.o"
  "CMakeFiles/qec_core.dir/fmeasure_expander.cc.o.d"
  "CMakeFiles/qec_core.dir/interleaved.cc.o"
  "CMakeFiles/qec_core.dir/interleaved.cc.o.d"
  "CMakeFiles/qec_core.dir/iskr.cc.o"
  "CMakeFiles/qec_core.dir/iskr.cc.o.d"
  "CMakeFiles/qec_core.dir/metrics.cc.o"
  "CMakeFiles/qec_core.dir/metrics.cc.o.d"
  "CMakeFiles/qec_core.dir/or_expander.cc.o"
  "CMakeFiles/qec_core.dir/or_expander.cc.o.d"
  "CMakeFiles/qec_core.dir/pebc.cc.o"
  "CMakeFiles/qec_core.dir/pebc.cc.o.d"
  "CMakeFiles/qec_core.dir/query_expander.cc.o"
  "CMakeFiles/qec_core.dir/query_expander.cc.o.d"
  "CMakeFiles/qec_core.dir/query_minimizer.cc.o"
  "CMakeFiles/qec_core.dir/query_minimizer.cc.o.d"
  "CMakeFiles/qec_core.dir/result_universe.cc.o"
  "CMakeFiles/qec_core.dir/result_universe.cc.o.d"
  "libqec_core.a"
  "libqec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
