# Empty compiler generated dependencies file for qec_core.
# This may be replaced when dependencies are built.
