file(REMOVE_RECURSE
  "CMakeFiles/qec_index.dir/index_io.cc.o"
  "CMakeFiles/qec_index.dir/index_io.cc.o.d"
  "CMakeFiles/qec_index.dir/inverted_index.cc.o"
  "CMakeFiles/qec_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/qec_index.dir/posting_codec.cc.o"
  "CMakeFiles/qec_index.dir/posting_codec.cc.o.d"
  "libqec_index.a"
  "libqec_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
