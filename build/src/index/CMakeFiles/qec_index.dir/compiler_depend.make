# Empty compiler generated dependencies file for qec_index.
# This may be replaced when dependencies are built.
