
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/index_io.cc" "src/index/CMakeFiles/qec_index.dir/index_io.cc.o" "gcc" "src/index/CMakeFiles/qec_index.dir/index_io.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/index/CMakeFiles/qec_index.dir/inverted_index.cc.o" "gcc" "src/index/CMakeFiles/qec_index.dir/inverted_index.cc.o.d"
  "/root/repo/src/index/posting_codec.cc" "src/index/CMakeFiles/qec_index.dir/posting_codec.cc.o" "gcc" "src/index/CMakeFiles/qec_index.dir/posting_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/qec_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/qec_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
