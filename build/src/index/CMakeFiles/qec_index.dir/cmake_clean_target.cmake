file(REMOVE_RECURSE
  "libqec_index.a"
)
