file(REMOVE_RECURSE
  "CMakeFiles/qec_eval.dir/bootstrap.cc.o"
  "CMakeFiles/qec_eval.dir/bootstrap.cc.o.d"
  "CMakeFiles/qec_eval.dir/harness.cc.o"
  "CMakeFiles/qec_eval.dir/harness.cc.o.d"
  "CMakeFiles/qec_eval.dir/table_printer.cc.o"
  "CMakeFiles/qec_eval.dir/table_printer.cc.o.d"
  "CMakeFiles/qec_eval.dir/user_study.cc.o"
  "CMakeFiles/qec_eval.dir/user_study.cc.o.d"
  "libqec_eval.a"
  "libqec_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
