
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/bootstrap.cc" "src/eval/CMakeFiles/qec_eval.dir/bootstrap.cc.o" "gcc" "src/eval/CMakeFiles/qec_eval.dir/bootstrap.cc.o.d"
  "/root/repo/src/eval/harness.cc" "src/eval/CMakeFiles/qec_eval.dir/harness.cc.o" "gcc" "src/eval/CMakeFiles/qec_eval.dir/harness.cc.o.d"
  "/root/repo/src/eval/table_printer.cc" "src/eval/CMakeFiles/qec_eval.dir/table_printer.cc.o" "gcc" "src/eval/CMakeFiles/qec_eval.dir/table_printer.cc.o.d"
  "/root/repo/src/eval/user_study.cc" "src/eval/CMakeFiles/qec_eval.dir/user_study.cc.o" "gcc" "src/eval/CMakeFiles/qec_eval.dir/user_study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/qec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/qec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/qec_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/qec_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/qec_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/qec_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/qec_text.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/qec_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
