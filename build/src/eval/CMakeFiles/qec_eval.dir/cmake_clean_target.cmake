file(REMOVE_RECURSE
  "libqec_eval.a"
)
