# Empty dependencies file for qec_eval.
# This may be replaced when dependencies are built.
