file(REMOVE_RECURSE
  "libqec_common.a"
)
