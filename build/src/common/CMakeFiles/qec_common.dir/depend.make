# Empty dependencies file for qec_common.
# This may be replaced when dependencies are built.
