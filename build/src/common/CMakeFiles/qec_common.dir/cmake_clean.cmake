file(REMOVE_RECURSE
  "CMakeFiles/qec_common.dir/dynamic_bitset.cc.o"
  "CMakeFiles/qec_common.dir/dynamic_bitset.cc.o.d"
  "CMakeFiles/qec_common.dir/logging.cc.o"
  "CMakeFiles/qec_common.dir/logging.cc.o.d"
  "CMakeFiles/qec_common.dir/random.cc.o"
  "CMakeFiles/qec_common.dir/random.cc.o.d"
  "CMakeFiles/qec_common.dir/status.cc.o"
  "CMakeFiles/qec_common.dir/status.cc.o.d"
  "CMakeFiles/qec_common.dir/string_util.cc.o"
  "CMakeFiles/qec_common.dir/string_util.cc.o.d"
  "libqec_common.a"
  "libqec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
