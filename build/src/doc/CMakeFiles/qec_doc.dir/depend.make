# Empty dependencies file for qec_doc.
# This may be replaced when dependencies are built.
