file(REMOVE_RECURSE
  "libqec_doc.a"
)
