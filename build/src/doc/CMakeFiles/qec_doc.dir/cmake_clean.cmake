file(REMOVE_RECURSE
  "CMakeFiles/qec_doc.dir/corpus.cc.o"
  "CMakeFiles/qec_doc.dir/corpus.cc.o.d"
  "CMakeFiles/qec_doc.dir/corpus_io.cc.o"
  "CMakeFiles/qec_doc.dir/corpus_io.cc.o.d"
  "CMakeFiles/qec_doc.dir/document.cc.o"
  "CMakeFiles/qec_doc.dir/document.cc.o.d"
  "libqec_doc.a"
  "libqec_doc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_doc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
